/**
 * @file
 * Ablation: enlargement termination conditions 4 and 5.
 *
 * The paper justifies condition 4 (never merge separate loop
 * iterations) as a code-expansion guard "without significantly
 * affecting performance", and condition 5 (library code) as a
 * toolchain limitation.  This bench lifts each restriction and
 * measures what the paper chose not to pay for.
 */

#include <iostream>

#include "bench_common.hh"
#include "exp/figures.hh"
#include "sim/trace_store.hh"
#include "support/table.hh"

using namespace bsisa;

namespace
{

void
report()
{
    const std::uint64_t divisor = scaleDivisor() * 4;
    std::cout << "Ablation: enlargement termination conditions 4 "
                 "(loop iterations) and 5 (library code).\n\n";

    struct Setup
    {
        const char *name;
        bool mergeBackEdges;
        bool enlargeLibrary;
    };
    const Setup setups[] = {
        {"paper (both conditions on)", false, false},
        {"merge across back edges", true, false},
        {"enlarge library code", false, true},
        {"both lifted", true, true},
    };

    const auto suite = specint95Suite();
    std::vector<Module> modules;
    for (const auto &bench : suite)
        modules.push_back(generateWorkload(bench.params));

    // All four setups reuse one committed stream per benchmark: the
    // enlargement config changes the timing machine, not the program.
    std::vector<ExecTrace> traces(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        Interp::Limits limits;
        limits.maxOps = suite[i].paperInstructions / divisor;
        traces[i] = captureOrLoadTrace(modules[i], limits);
    }

    Table t({"configuration", "avg reduction", "avg BSA block",
             "avg code expansion"});
    for (const Setup &setup : setups) {
        double red = 0.0, blk = 0.0, exp = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            RunConfig config;
            config.limits.maxOps =
                suite[i].paperInstructions / divisor;
            config.enlarge.mergeAcrossBackEdges = setup.mergeBackEdges;
            config.enlarge.enlargeLibraryFunctions =
                setup.enlargeLibrary;
            const PairResult r = runPair(modules[i], config, traces[i]);
            red += r.reduction();
            blk += r.bsa.avgBlockSize();
            exp += r.enlarge.expansion();
        }
        const double n = double(suite.size());
        t.addRow({setup.name, Table::fmt(100.0 * red / n, 1) + "%",
                  Table::fmt(blk / n, 2), Table::fmt(exp / n, 2)});
    }
    t.print(std::cout);
    std::cout << "\n(Condition 3 — calls/returns/indirect jumps — is "
                 "structural: the merge\nmachinery has no way to "
                 "combine across a window switch, matching the "
                 "paper.)\n";
}

} // namespace

int
main()
{
    return bsisabench::benchMain(report);
}
