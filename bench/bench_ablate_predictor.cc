/**
 * @file
 * Bench binary: regenerates one of the paper's artifacts (see
 * DESIGN.md's experiment index).  Scale with BSISA_SCALE.
 */

#include <iostream>

#include "exp/figures.hh"

int
main()
{
    bsisa::runPredictorAblation(std::cout);
    return 0;
}
