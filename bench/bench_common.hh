/**
 * @file
 * Shared main() wrapper for the bench binaries.
 *
 * Every bench driver runs through benchMain(): the driver's table
 * output goes to stdout exactly as before, and when a trace store is
 * configured (BSISA_TRACE_DIR) a one-line traffic summary goes to
 * stderr — warm entries served, cold captures, rejected-and-repaired
 * entries, and the number of live functional executions.  With
 * BSISA_EXPECT_WARM=1 the wrapper turns "the whole run replayed from
 * disk" into an exit status: any live interpreter invocation (a cold
 * or rejected entry) fails the binary, which is how CI proves a warm
 * suite performs zero functional executions.
 */

#ifndef BSISA_BENCH_BENCH_COMMON_HH
#define BSISA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <functional>

#include "sim/interp.hh"
#include "sim/trace_store.hh"
#include "support/env.hh"

namespace bsisabench
{

/** Stderr-only trace-store traffic report (no-op when disabled). */
inline void
reportTraceStore()
{
    const bsisa::TraceStore store = bsisa::TraceStore::fromEnv();
    if (!store.enabled())
        return;
    const bsisa::TraceStoreStats s = bsisa::TraceStore::stats();
    std::fprintf(stderr,
                 "trace-store: dir=%s warm=%llu cold=%llu "
                 "fallback=%llu live-interp-runs=%llu\n",
                 store.directory().c_str(),
                 static_cast<unsigned long long>(s.warmLoads),
                 static_cast<unsigned long long>(s.coldCaptures),
                 static_cast<unsigned long long>(s.fallbacks),
                 static_cast<unsigned long long>(
                     bsisa::interpInvocations()));
}

/** Run @p driver, report store traffic, enforce BSISA_EXPECT_WARM. */
inline int
benchMain(const std::function<void()> &driver)
{
    driver();
    reportTraceStore();
    if (bsisa::envSet("BSISA_EXPECT_WARM") &&
        bsisa::interpInvocations() != 0) {
        std::fprintf(stderr,
                     "error: BSISA_EXPECT_WARM is set but %llu live "
                     "functional executions ran (cold or rejected "
                     "trace-store entries)\n",
                     static_cast<unsigned long long>(
                         bsisa::interpInvocations()));
        return 1;
    }
    return 0;
}

} // namespace bsisabench

#endif // BSISA_BENCH_BENCH_COMMON_HH
