/**
 * @file
 * Extension bench: inlining as an enlargement enabler (section 6).
 *
 * The paper names procedure calls and returns as the main reason block
 * enlargement leaves half the fetch bandwidth unused, and proposes
 * inlining as the fix.  This bench runs the suite with and without
 * small-leaf inlining and reports the change in average block size and
 * execution-time reduction.
 */

#include <iostream>

#include "bench_common.hh"
#include "exp/figures.hh"
#include "support/table.hh"

using namespace bsisa;

namespace
{

void
report()
{
    const std::uint64_t divisor = scaleDivisor() * 2;
    std::cout << "Extension: small-leaf inlining before block "
                 "enlargement (section 6).\n\n";
    Table t({"Benchmark", "blk (plain)", "blk (inline)",
             "red% (plain)", "red% (inline)", "code x (inline)"});
    double base_sum = 0.0, inline_sum = 0.0;
    for (const auto &bench : specint95Suite()) {
        RunConfig config;
        config.limits.maxOps = bench.paperInstructions / divisor;

        const Module plain = generateWorkload(bench.params);
        const PairResult rp = runPair(plain, config);

        WorkloadParams inlined_params = bench.params;
        inlined_params.inlineSmallCalls = true;
        const Module inlined = generateWorkload(inlined_params);
        const PairResult ri = runPair(inlined, config);

        base_sum += rp.reduction();
        inline_sum += ri.reduction();
        t.addRow({bench.params.name,
                  Table::fmt(rp.bsa.avgBlockSize(), 2),
                  Table::fmt(ri.bsa.avgBlockSize(), 2),
                  Table::fmt(100.0 * rp.reduction(), 1),
                  Table::fmt(100.0 * ri.reduction(), 1),
                  Table::fmt(
                      double(ri.bsaCodeBytes) /
                          double(std::max<std::uint64_t>(
                              1, ri.convCodeBytes)),
                      2)});
    }
    t.addRow({"average", "", "", Table::fmt(100.0 * base_sum / 8, 1),
              Table::fmt(100.0 * inline_sum / 8, 1), ""});
    t.print(std::cout);
    std::cout << "\nInlining removes call/return boundaries "
                 "(enlargement condition 3), letting\natomic blocks "
                 "grow through former call sites at the cost of still "
                 "more code\nduplication — the paper's predicted "
                 "trade-off.\n";
}

} // namespace

int
main()
{
    return bsisabench::benchMain(report);
}
