/**
 * @file
 * Extension bench: the block-structured ISA versus a conventional ISA
 * with a TRACE CACHE (Rotenberg et al., the paper's reference [19]).
 *
 * Section 3 of the paper argues the two approaches are close cousins:
 * the trace cache combines blocks at run time (no ISA change, no code
 * expansion, but limited by its own capacity), block enlargement at
 * compile time (whole icache available, but duplicated code).  This
 * bench quantifies that trade-off on the synthetic suite, sweeping the
 * trace cache size.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "exp/figures.hh"
#include "sim/tc_source.hh"
#include "sim/trace_store.hh"
#include "support/table.hh"

using namespace bsisa;

namespace
{

void
report()
{
    const std::uint64_t divisor = scaleDivisor() * 2;
    std::cout << "Extension: block-structured ISA vs conventional +"
                 " trace cache\n(64KB icache; trace cache: up to 3"
                 " blocks / 16 ops per trace).\n\n";

    Table t({"Benchmark", "conv", "conv+TC(64)", "conv+TC(256)",
             "BSA", "TC(256) hit%", "best"});
    for (const auto &bench : specint95Suite()) {
        const Module m = generateWorkload(bench.params);
        Interp::Limits limits;
        limits.maxOps = bench.paperInstructions / divisor;
        MachineConfig machine;

        // One committed stream feeds all four timing runs.
        const ExecTrace trace = captureOrLoadTrace(m, limits);

        const SimResult conv = runConventional(m, machine, trace);

        // Both trace-cache sizes advance in one lockstep walk.
        TraceCacheConfig tc64;
        tc64.entries = 64;
        TraceCacheConfig tc256;
        tc256.entries = 256;
        const std::vector<TraceCacheResult> tcResults =
            runTraceCacheBatch(m, {machine, machine}, {tc64, tc256},
                               trace);
        const TraceCacheResult &small = tcResults[0];
        const TraceCacheResult &big = tcResults[1];

        RunConfig config;
        config.limits = limits;
        const PairResult pair = runPair(m, config, trace);

        const std::uint64_t best =
            std::min({small.sim.cycles, big.sim.cycles,
                      pair.bsa.cycles});
        t.addRow({bench.params.name, Table::fmtSep(conv.cycles),
                  Table::fmtSep(small.sim.cycles),
                  Table::fmtSep(big.sim.cycles),
                  Table::fmtSep(pair.bsa.cycles),
                  Table::fmt(100.0 * big.hitRate(), 1),
                  best == pair.bsa.cycles ? "BSA" : "trace cache"});
    }
    t.print(std::cout);
    std::cout << "\nBoth techniques combine blocks; the trace cache "
                 "avoids code expansion but only\nhelps on paths it has "
                 "already seen and that fit its capacity, while block\n"
                 "enlargement bakes every combination into the "
                 "executable (paper, section 3).\n";
}

} // namespace

int
main()
{
    return bsisabench::benchMain(report);
}
