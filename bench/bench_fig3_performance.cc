/**
 * @file
 * Bench binary for Figure 3: total cycles, conventional vs
 * block-structured, 64 KB 4-way icache, real predictors.
 */

#include <iostream>

#include "bench_common.hh"
#include "exp/figures.hh"

int
main()
{
    return bsisabench::benchMain(
        [] { bsisa::runCycleComparison(std::cout, false); });
}
