/**
 * @file
 * Bench binary for Figure 4: the same comparison as Figure 3 under
 * perfect branch prediction.
 */

#include <iostream>

#include "bench_common.hh"
#include "exp/figures.hh"

int
main()
{
    return bsisabench::benchMain(
        [] { bsisa::runCycleComparison(std::cout, true); });
}
