/**
 * @file
 * Bench binary for Figure 4: the same comparison as Figure 3 under
 * perfect branch prediction.
 */

#include <iostream>

#include "exp/figures.hh"

int
main()
{
    bsisa::runCycleComparison(std::cout, true);
    return 0;
}
