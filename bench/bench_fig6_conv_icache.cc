/**
 * @file
 * Bench binary for Figure 6: conventional-ISA slowdown relative to a
 * perfect icache across 16/32/64 KB icaches.
 */

#include <iostream>

#include "exp/figures.hh"

int
main()
{
    bsisa::runIcacheSweep(std::cout, false);
    return 0;
}
