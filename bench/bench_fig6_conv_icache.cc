/**
 * @file
 * Bench binary for Figure 6: conventional-ISA slowdown relative to a
 * perfect icache across 16/32/64 KB icaches.
 */

#include <iostream>

#include "bench_common.hh"
#include "exp/figures.hh"

int
main()
{
    return bsisabench::benchMain(
        [] { bsisa::runIcacheSweep(std::cout, false); });
}
