/**
 * @file
 * Bench binary for Figure 7: block-structured-ISA slowdown relative
 * to a perfect icache across 16/32/64 KB icaches (code duplication at
 * work).
 */

#include <iostream>

#include "bench_common.hh"
#include "exp/figures.hh"

int
main()
{
    return bsisabench::benchMain(
        [] { bsisa::runIcacheSweep(std::cout, true); });
}
