/**
 * @file
 * Throughput of the out-of-order backend vs the abstract model, plus
 * the dispatch-seam no-regression numbers, written as BENCH_PR10.json
 * (path overridable via BSISA_BENCH_JSON_PR10; empty disables).
 *
 * Three measurements over the same captured traces (two benchmarks,
 * conventional machine):
 *
 *   abstract_direct   — simulatePipeline() on a ConvFetchSource, the
 *                       pre-dispatch entry point.
 *   abstract_dispatch — runConventional() with the default config,
 *                       which now routes through simulateModel(); the
 *                       ratio dispatch/direct is the seam's overhead
 *                       and CI gates it at >= 0.95.
 *   ooo_dispatch      — runConventional() with timing_model=ooo; the
 *                       ratio ooo/abstract documents the fidelity
 *                       cost of the high-fidelity backend.
 *
 * Every variant is validated against the trace's committed-op count
 * before it is timed, so a silently wrong simulation cannot post a
 * throughput number.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "codegen/layout.hh"
#include "exp/runner.hh"
#include "sim/conv_source.hh"
#include "sim/pipeline.hh"
#include "sim/trace.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

namespace
{

constexpr std::uint64_t budgetDivisor = 2000;
constexpr int reps = 5;

struct Measurement
{
    double opsPerSec = 0.0;
    std::uint64_t dynOps = 0;
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-reps throughput of @p run, which must simulate the whole
 *  trace and return its retired-op count. */
template <typename Run>
Measurement
measure(const ExecTrace &trace, Run &&run)
{
    Measurement m;
    m.dynOps = trace.dynOps;
    for (int r = 0; r < reps; ++r) {
        const double t0 = now();
        const std::uint64_t retired = run();
        const double dt = now() - t0;
        if (retired == 0 || dt <= 0.0)
            continue;
        m.opsPerSec = std::max(m.opsPerSec, double(trace.dynOps) / dt);
    }
    return m;
}

void
driver()
{
    const auto suite = specint95Suite();
    // compress (small, loopy) and gcc (large code footprint): the two
    // icache extremes of the suite.
    const std::size_t picks[] = {0, 1};

    double direct = 0.0, dispatch = 0.0, ooo = 0.0;
    std::uint64_t totalOps = 0;
    std::printf("%-10s %16s %16s %16s\n", "bench", "abstract-direct",
                "abstract-dispatch", "ooo");

    for (const std::size_t pick : picks) {
        const SpecBenchmark &bench = suite[pick];
        const Module module = generateWorkload(bench.params);
        Interp::Limits limits;
        limits.maxOps = bench.scaledBudget(budgetDivisor);
        const ExecTrace trace = captureTrace(module, limits);
        const ConvLayout layout(module);

        MachineConfig abstractM;
        MachineConfig oooM;
        oooM.timingModel = TimingModel::Ooo;

        // Correctness pin before timing anything.
        if (runConventional(module, abstractM, trace).retiredOps !=
                trace.dynOps ||
            runConventional(module, oooM, trace).retiredOps !=
                trace.dynOps) {
            std::fprintf(stderr, "bench_ooo: %s: retired-op count "
                                 "diverged from the trace\n",
                         bench.params.name.c_str());
            std::exit(1);
        }

        const Measurement d = measure(trace, [&] {
            ConvFetchSource source(module, layout, abstractM, trace);
            return simulatePipeline(source, abstractM).retiredOps;
        });
        const Measurement v = measure(trace, [&] {
            return runConventional(module, abstractM, trace)
                .retiredOps;
        });
        const Measurement o = measure(trace, [&] {
            return runConventional(module, oooM, trace).retiredOps;
        });

        std::printf("%-10s %16.3g %16.3g %16.3g\n",
                    bench.params.name.c_str(), d.opsPerSec,
                    v.opsPerSec, o.opsPerSec);
        // Aggregate as total-ops / total-time.
        direct += double(d.dynOps) / d.opsPerSec;
        dispatch += double(v.dynOps) / v.opsPerSec;
        ooo += double(o.dynOps) / o.opsPerSec;
        totalOps += trace.dynOps;
    }

    const double directIps = double(totalOps) / direct;
    const double dispatchIps = double(totalOps) / dispatch;
    const double oooIps = double(totalOps) / ooo;
    const double seamRatio =
        directIps > 0.0 ? dispatchIps / directIps : 0.0;
    const double fidelityRatio =
        dispatchIps > 0.0 ? oooIps / dispatchIps : 0.0;

    std::printf("\nabstract dispatch/direct ratio: %.3f "
                "(CI gate: >= 0.95)\n",
                seamRatio);
    std::printf("ooo/abstract throughput ratio:  %.3f\n",
                fidelityRatio);

    const char *env = std::getenv("BSISA_BENCH_JSON_PR10");
    const std::string path = env ? env : "BENCH_PR10.json";
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"total_trace_ops\": %llu,\n",
                 static_cast<unsigned long long>(totalOps));
    std::fprintf(f, "  \"abstract_direct_ops_per_sec\": %.9g,\n",
                 directIps);
    std::fprintf(f, "  \"abstract_dispatch_ops_per_sec\": %.9g,\n",
                 dispatchIps);
    std::fprintf(f, "  \"ooo_ops_per_sec\": %.9g,\n", oooIps);
    std::fprintf(f, "  \"abstract_dispatch_ratio\": %.6g,\n",
                 seamRatio);
    std::fprintf(f, "  \"ooo_abstract_ratio\": %.6g\n",
                 fidelityRatio);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main()
{
    return bsisabench::benchMain(driver);
}
