/**
 * @file
 * google-benchmark microbenchmarks of the toolchain itself: BlockC
 * compilation, block enlargement, functional interpretation, and
 * cycle-level simulation throughput.  These are engineering
 * benchmarks, not paper artifacts; they keep the simulator's speed
 * honest as the code evolves.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "bench_common.hh"
#include "core/enlarge.hh"
#include "codegen/layout.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "sim/fetch_outcome.hh"
#include "sim/trace_store.hh"
#include "support/env.hh"
#include "support/simd_dispatch.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "support/varint.hh"
#include "workloads/specmix.hh"

namespace
{

using namespace bsisa;

const char *kSource = R"(
    var d[64];
    fn work(x, i) {
        var t = x;
        for (var k = 0; k < 4; k = k + 1) {
            if (d[(i + k) & 63] & 1) { t = t * 3 + 1; }
            else { t = t + k; }
        }
        return t;
    }
    fn main() {
        var acc = 0;
        for (var i = 0; i < 200; i = i + 1) { acc = acc + work(acc, i); }
        return acc;
    }
)";

void
BM_CompileBlockC(benchmark::State &state)
{
    for (auto _ : state) {
        Module m = compileBlockCOrDie(kSource);
        benchmark::DoNotOptimize(m.numOps());
    }
}
BENCHMARK(BM_CompileBlockC);

void
BM_GenerateWorkload(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const WorkloadParams &params = suite[0].params;  // compress
    for (auto _ : state) {
        Module m = generateWorkload(params);
        benchmark::DoNotOptimize(m.numOps());
    }
}
BENCHMARK(BM_GenerateWorkload);

void
BM_BlockEnlargement(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    for (auto _ : state) {
        BsaModule bsa = enlargeModule(m, EnlargeConfig{});
        benchmark::DoNotOptimize(bsa.numOps());
    }
}
BENCHMARK(BM_BlockEnlargement);

void
BM_FunctionalInterp(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        Interp::Limits limits;
        limits.maxOps = budget;
        Interp interp(m, limits);
        interp.run();
        benchmark::DoNotOptimize(interp.dynOps());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_FunctionalInterp);

void
BM_ConvTimingSim(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        MachineConfig machine;
        Interp::Limits limits;
        limits.maxOps = budget;
        const SimResult r = runConventional(m, machine, limits);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_ConvTimingSim);

void
BM_BsaTimingSim(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        MachineConfig machine;
        Interp::Limits limits;
        limits.maxOps = budget;
        const SimResult r = runBlockStructured(bsa, machine, limits);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_BsaTimingSim);

/**
 * The sweep-shaped workload the figure drivers actually run: a full
 * conv/BSA pair across a 3-point icache sweep (6 timing runs).  The
 * seed path re-runs the functional interpreter inside every timing
 * run and executes the points serially; the replay path captures one
 * trace and fans the points across BSISA_JOBS cores.  Items/s is
 * simulated operations per second (Mops/s at the usual scales), so
 * the two benchmarks are directly comparable.  BSISA_BENCH_OPS
 * shrinks the per-point budget for CI smoke runs.
 */
const std::vector<unsigned> kSweepKB = {16, 32, 64};

std::uint64_t
sweepBudget()
{
    return envU64("BSISA_BENCH_OPS", 200000);
}

void
BM_PairSweep_SeedPath(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (unsigned kb : kSweepKB) {
            MachineConfig machine;
            machine.icache.sizeBytes = kb * 1024;
            total += runConventional(m, machine, limits).cycles;
            total += runBlockStructured(bsa, machine, limits).cycles;
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) * 2 *
                            std::int64_t(kSweepKB.size()));
}
BENCHMARK(BM_PairSweep_SeedPath)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void
BM_PairSweep_CaptureReplayParallel(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    for (auto _ : state) {
        // Capture once per sweep (timed: it is part of the real cost),
        // then replay every config point from the shared trace.
        const ExecTrace trace = captureTrace(m, limits);
        std::vector<std::uint64_t> cycles(kSweepKB.size() * 2);
        parallelFor(cycles.size(), [&](std::size_t idx) {
            MachineConfig machine;
            machine.icache.sizeBytes = kSweepKB[idx / 2] * 1024;
            cycles[idx] =
                (idx & 1)
                    ? runBlockStructured(bsa, machine, trace).cycles
                    : runConventional(m, machine, trace).cycles;
        });
        std::uint64_t total = 0;
        for (std::uint64_t c : cycles)
            total += c;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) * 2 *
                            std::int64_t(kSweepKB.size()));
}
BENCHMARK(BM_PairSweep_CaptureReplayParallel)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * The lockstep sweep engine against the per-config replay it
 * replaces: a sixteen-config grid (issue width x predictor geometry x
 * prediction mode x icache size, the shape of the ablation drivers)
 * over one captured trace.  The independent path replays the trace
 * once per config, exactly as the figure drivers did before batching;
 * the lockstep path walks the trace once and advances all sixteen
 * machine lanes per event, sharing the config-independent translation
 * plus one predictor per identical-predictor group, one dcache
 * hit/miss stream per dcache geometry, and one icache model per
 * geometry within a group (effectively identical configs collapse to
 * a single lane).  Items/s is simulated operations per second summed
 * over the grid, so lockstep/independent is directly the sweep
 * speedup recorded in BENCH_PR6.json.
 */
std::vector<MachineConfig>
benchGrid16()
{
    std::vector<MachineConfig> grid;
    for (const unsigned width : {8u, 16u}) {
        for (const unsigned hist : {8u, 12u}) {
            for (const bool perfect : {false, true}) {
                for (const unsigned kb : {16u, 64u}) {
                    MachineConfig m;
                    m.issueWidth = width;
                    m.predictor.historyBits = hist;
                    m.perfectPrediction = perfect;
                    m.icache.sizeBytes = kb * 1024;
                    grid.push_back(m);
                }
            }
        }
    }
    return grid;
}

void
BM_Grid16Conv_IndependentReplay(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const ExecTrace trace = captureTrace(m, limits);
    const std::vector<MachineConfig> grid = benchGrid16();
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (const MachineConfig &machine : grid)
            total += runConventional(m, machine, trace).cycles;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) *
                            std::int64_t(grid.size()));
}
BENCHMARK(BM_Grid16Conv_IndependentReplay)
    ->Unit(benchmark::kMillisecond);

/**
 * Wall-clock split of the fused lockstep runs between the fetch
 * pre-pass (predictors walking the trace, recording outcome streams)
 * and the timing walk (op-major batches consuming them), accumulated
 * across benchmark iterations from lockstepLastFetchStats().  Each
 * phase's ops/s is the sweep's simulated ops divided by that phase's
 * seconds alone — i.e. the throughput the sweep would reach if the
 * other phase were free — recorded in BENCH_PR8.json.
 */
struct PhaseAccum
{
    double fetchSec = 0.0;
    double timingSec = 0.0;
    std::uint64_t simOps = 0;
};

PhaseAccum convPhases;
PhaseAccum bsaPhases;

void
accumulatePhases(PhaseAccum &accum, std::uint64_t simOps)
{
    const LockstepFetchStats &fs = lockstepLastFetchStats();
    accum.fetchSec += fs.fetchSeconds;
    accum.timingSec += fs.timingSeconds;
    accum.simOps += simOps;
}

void
BM_Grid16Conv_Lockstep(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const ExecTrace trace = captureTrace(m, limits);
    const std::vector<MachineConfig> grid = benchGrid16();
    convPhases = PhaseAccum{};
    for (auto _ : state) {
        const std::vector<SimResult> results =
            runConventionalBatch(m, grid, trace);
        std::uint64_t total = 0;
        for (const SimResult &r : results)
            total += r.cycles;
        benchmark::DoNotOptimize(total);
        accumulatePhases(convPhases, budget * grid.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) *
                            std::int64_t(grid.size()));
}
BENCHMARK(BM_Grid16Conv_Lockstep)->Unit(benchmark::kMillisecond);

void
BM_Grid16Bsa_IndependentReplay(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const ExecTrace trace = captureTrace(m, limits);
    const std::vector<MachineConfig> grid = benchGrid16();
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (const MachineConfig &machine : grid)
            total += runBlockStructured(bsa, machine, trace).cycles;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) *
                            std::int64_t(grid.size()));
}
BENCHMARK(BM_Grid16Bsa_IndependentReplay)
    ->Unit(benchmark::kMillisecond);

void
BM_Grid16Bsa_Lockstep(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const ExecTrace trace = captureTrace(m, limits);
    const std::vector<MachineConfig> grid = benchGrid16();
    bsaPhases = PhaseAccum{};
    for (auto _ : state) {
        const std::vector<SimResult> results =
            runBlockStructuredBatch(bsa, grid, trace);
        std::uint64_t total = 0;
        for (const SimResult &r : results)
            total += r.cycles;
        benchmark::DoNotOptimize(total);
        accumulatePhases(bsaPhases, budget * grid.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) *
                            std::int64_t(grid.size()));
}
BENCHMARK(BM_Grid16Bsa_Lockstep)->Unit(benchmark::kMillisecond);

#if defined(__unix__) || defined(__APPLE__)

/**
 * The same sixteen-config lockstep sweeps with the op-major inner
 * loop disabled (BSISA_FORCE_LANE_MAJOR pins the per-lane reference
 * walk, which is structurally the engine as it existed before the
 * op-major rework).  Lockstep / LockstepLaneMajor from one process
 * run is the op-major + SIMD speedup recorded in BENCH_PR7.json —
 * same binary, same machine state, so the ratio is immune to the
 * run-to-run drift that plagues absolute ops/s on shared hosts.
 */
struct ScopedSetenv
{
    const char *name;
    ScopedSetenv(const char *n, const char *v) : name(n)
    {
        ::setenv(n, v, 1);
    }
    ~ScopedSetenv() { ::unsetenv(name); }
};

void
BM_Grid16Conv_LockstepLaneMajor(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const ExecTrace trace = captureTrace(m, limits);
    const std::vector<MachineConfig> grid = benchGrid16();
    const ScopedSetenv laneMajor("BSISA_FORCE_LANE_MAJOR", "1");
    for (auto _ : state) {
        const std::vector<SimResult> results =
            runConventionalBatch(m, grid, trace);
        std::uint64_t total = 0;
        for (const SimResult &r : results)
            total += r.cycles;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) *
                            std::int64_t(grid.size()));
}
BENCHMARK(BM_Grid16Conv_LockstepLaneMajor)
    ->Unit(benchmark::kMillisecond);

void
BM_Grid16Bsa_LockstepLaneMajor(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const ExecTrace trace = captureTrace(m, limits);
    const std::vector<MachineConfig> grid = benchGrid16();
    const ScopedSetenv laneMajor("BSISA_FORCE_LANE_MAJOR", "1");
    for (auto _ : state) {
        const std::vector<SimResult> results =
            runBlockStructuredBatch(bsa, grid, trace);
        std::uint64_t total = 0;
        for (const SimResult &r : results)
            total += r.cycles;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) *
                            std::int64_t(grid.size()));
}
BENCHMARK(BM_Grid16Bsa_LockstepLaneMajor)
    ->Unit(benchmark::kMillisecond);

/**
 * The same sixteen-config lockstep sweeps with the fused cross-group
 * timing walk disabled (BSISA_FORCE_PER_GROUP pins the interleaved
 * per-group reference, which is structurally the engine as it existed
 * before the fetch/timing decoupling: prediction-group batches capped
 * at the group's lane count, predictor queried live between steps).
 * Lockstep / LockstepPerGroup from one process run is the fetch-
 * fusion speedup recorded in BENCH_PR8.json — same binary, same
 * machine state, so the ratio is immune to run-to-run drift.
 */
void
BM_Grid16Conv_LockstepPerGroup(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const ExecTrace trace = captureTrace(m, limits);
    const std::vector<MachineConfig> grid = benchGrid16();
    const ScopedSetenv perGroup("BSISA_FORCE_PER_GROUP", "1");
    for (auto _ : state) {
        const std::vector<SimResult> results =
            runConventionalBatch(m, grid, trace);
        std::uint64_t total = 0;
        for (const SimResult &r : results)
            total += r.cycles;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) *
                            std::int64_t(grid.size()));
}
BENCHMARK(BM_Grid16Conv_LockstepPerGroup)
    ->Unit(benchmark::kMillisecond);

void
BM_Grid16Bsa_LockstepPerGroup(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const ExecTrace trace = captureTrace(m, limits);
    const std::vector<MachineConfig> grid = benchGrid16();
    const ScopedSetenv perGroup("BSISA_FORCE_PER_GROUP", "1");
    for (auto _ : state) {
        const std::vector<SimResult> results =
            runBlockStructuredBatch(bsa, grid, trace);
        std::uint64_t total = 0;
        for (const SimResult &r : results)
            total += r.cycles;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) *
                            std::int64_t(grid.size()));
}
BENCHMARK(BM_Grid16Bsa_LockstepPerGroup)
    ->Unit(benchmark::kMillisecond);

#endif // unix

/**
 * Trace-store cold vs warm cost, and the sweep driven from a warm
 * store.  "Cold" is what the first process in a suite pays per
 * benchmark (functional execution + encode + atomic write); "warm" is
 * what every later process pays instead (mmap + checksum + event
 * decode, zero functional execution).  Items/s is simulated ops per
 * second in both, so warm/cold is directly the per-process saving.
 * The benchmarks use a private temp directory, not BSISA_TRACE_DIR,
 * so they measure the same thing no matter how the process was run.
 */
std::string
benchStoreDir()
{
    static const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("bsisa-bench-store-" + std::to_string(::getpid())))
            .string();
    return dir;
}

void
BM_TraceStore_ColdCapture(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const TraceStore store(benchStoreDir());
    const std::uint64_t digest = moduleDigest(m);
    const TraceKey key{digest, limits.maxOps, limits.maxBlocks};
    for (auto _ : state) {
        std::remove(store.entryPath(key).c_str());  // force a miss
        const ExecTrace trace = store.load(m, digest, limits);
        benchmark::DoNotOptimize(trace.eventCount);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_TraceStore_ColdCapture)->Unit(benchmark::kMillisecond);

void
BM_TraceStore_WarmLoad(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const TraceStore store(benchStoreDir());
    const std::uint64_t digest = moduleDigest(m);
    (void)store.load(m, digest, limits);  // warm the entry
    for (auto _ : state) {
        const ExecTrace trace = store.load(m, digest, limits);
        benchmark::DoNotOptimize(trace.eventCount);
        if (!trace.mapped())
            state.SkipWithError("warm load fell back to capture");
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_TraceStore_WarmLoad)->Unit(benchmark::kMillisecond);

void
BM_PairSweep_WarmStoreReplayParallel(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    const TraceStore store(benchStoreDir());
    const std::uint64_t digest = moduleDigest(m);
    (void)store.load(m, digest, limits);  // warm the entry
    for (auto _ : state) {
        // What a warm suite process pays: open from disk (timed),
        // then replay every config point from the mmap-ed trace.
        const ExecTrace trace = store.load(m, digest, limits);
        std::vector<std::uint64_t> cycles(kSweepKB.size() * 2);
        parallelFor(cycles.size(), [&](std::size_t idx) {
            MachineConfig machine;
            machine.icache.sizeBytes = kSweepKB[idx / 2] * 1024;
            cycles[idx] =
                (idx & 1)
                    ? runBlockStructured(bsa, machine, trace).cycles
                    : runConventional(m, machine, trace).cycles;
        });
        std::uint64_t total = 0;
        for (std::uint64_t c : cycles)
            total += c;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) * 2 *
                            std::int64_t(kSweepKB.size()));
}
BENCHMARK(BM_PairSweep_WarmStoreReplayParallel)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * The varint/delta codec on its own, over a value distribution shaped
 * like the event stream (mostly tiny deltas, occasional large jumps),
 * so future format tweaks have an ops/sec baseline to beat.
 */
std::vector<std::uint64_t>
codecValues()
{
    std::vector<std::uint64_t> values;
    values.reserve(1 << 16);
    Rng rng(12345);
    for (std::size_t i = 0; i < values.capacity(); ++i) {
        const unsigned shape = rng.nextBelow(16);
        if (shape < 12)  // predicted-successor deltas: ~0
            values.push_back(zigzagEncode(std::int64_t(shape) - 6));
        else if (shape < 15)  // address counts / short jumps
            values.push_back(rng.nextBelow(1024));
        else  // cross-function jumps
            values.push_back(rng.next() >> 16);
    }
    return values;
}

void
BM_VarintEncode(benchmark::State &state)
{
    const std::vector<std::uint64_t> values = codecValues();
    std::vector<std::uint8_t> out;
    for (auto _ : state) {
        out.clear();
        for (std::uint64_t v : values)
            putVarint(out, v);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(values.size()));
}
BENCHMARK(BM_VarintEncode);

void
BM_VarintDecode(benchmark::State &state)
{
    const std::vector<std::uint64_t> values = codecValues();
    std::vector<std::uint8_t> buf;
    for (std::uint64_t v : values)
        putVarint(buf, v);
    for (auto _ : state) {
        const std::uint8_t *p = buf.data();
        const std::uint8_t *end = buf.data() + buf.size();
        std::uint64_t sum = 0, v = 0;
        while (p < end && getVarint(p, end, v))
            sum += v;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(values.size()));
}
BENCHMARK(BM_VarintDecode);

/**
 * Console reporter that also records every run for the
 * machine-readable summary.  The human-facing output is exactly
 * google-benchmark's default; the JSON rides along for CI gating.
 */
class TeeReporter : public benchmark::ConsoleReporter
{
  public:
    struct Entry
    {
        std::string name;
        double realTimeSec = 0.0;
        double cpuTimeSec = 0.0;
        double itemsPerSecond = 0.0;
        std::int64_t iterations = 0;
    };

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        benchmark::ConsoleReporter::ReportRuns(reports);
        for (const Run &run : reports) {
            Entry e;
            e.name = run.benchmark_name();
            e.realTimeSec = run.GetAdjustedRealTime() *
                            timeMultiplier(run.time_unit);
            e.cpuTimeSec = run.GetAdjustedCPUTime() *
                           timeMultiplier(run.time_unit);
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                e.itemsPerSecond = it->second;
            e.iterations = run.iterations;
            entries.push_back(std::move(e));
        }
    }

    std::vector<Entry> entries;

  private:
    static double
    timeMultiplier(benchmark::TimeUnit unit)
    {
        switch (unit) {
          case benchmark::kNanosecond: return 1e-9;
          case benchmark::kMicrosecond: return 1e-6;
          case benchmark::kMillisecond: return 1e-3;
          case benchmark::kSecond: return 1.0;
        }
        return 1.0;
    }
};

/** Write the recorded runs as BENCH_PR3.json (path overridable via
 *  BSISA_BENCH_JSON; empty string disables). */
void
writeJson(const std::vector<TeeReporter::Entry> &entries)
{
    const char *env = std::getenv("BSISA_BENCH_JSON");
    const std::string path = env ? env : "BENCH_PR3.json";
    if (path.empty())
        return;

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return;
    }

    double seed_ips = 0.0, replay_ips = 0.0, warm_replay_ips = 0.0;
    double cold_sec = 0.0, warm_sec = 0.0;
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const TeeReporter::Entry &e = entries[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"real_time_sec\": %.9g, "
                     "\"cpu_time_sec\": %.9g, "
                     "\"items_per_second\": %.9g, "
                     "\"iterations\": %lld}%s\n",
                     e.name.c_str(), e.realTimeSec, e.cpuTimeSec,
                     e.itemsPerSecond,
                     static_cast<long long>(e.iterations),
                     i + 1 < entries.size() ? "," : "");
        if (e.name.find("PairSweep_SeedPath") != std::string::npos)
            seed_ips = e.itemsPerSecond;
        if (e.name.find("PairSweep_CaptureReplayParallel") !=
            std::string::npos)
            replay_ips = e.itemsPerSecond;
        if (e.name.find("PairSweep_WarmStoreReplayParallel") !=
            std::string::npos)
            warm_replay_ips = e.itemsPerSecond;
        if (e.name.find("TraceStore_ColdCapture") != std::string::npos)
            cold_sec = e.realTimeSec;
        if (e.name.find("TraceStore_WarmLoad") != std::string::npos)
            warm_sec = e.realTimeSec;
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"pair_sweep_seed_ops_per_sec\": %.9g,\n",
                 seed_ips);
    std::fprintf(f, "  \"pair_sweep_replay_ops_per_sec\": %.9g,\n",
                 replay_ips);
    std::fprintf(f, "  \"pair_sweep_speedup\": %.6g,\n",
                 seed_ips > 0.0 ? replay_ips / seed_ips : 0.0);
    std::fprintf(f,
                 "  \"pair_sweep_warm_store_ops_per_sec\": %.9g,\n",
                 warm_replay_ips);
    std::fprintf(f, "  \"trace_store_cold_capture_sec\": %.9g,\n",
                 cold_sec);
    std::fprintf(f, "  \"trace_store_warm_load_sec\": %.9g,\n",
                 warm_sec);
    std::fprintf(f, "  \"trace_store_warm_cold_ratio\": %.6g\n",
                 cold_sec > 0.0 ? warm_sec / cold_sec : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

/** Write the lockstep-vs-independent-replay grid numbers as
 *  BENCH_PR6.json (path overridable via BSISA_BENCH_JSON_PR6; empty
 *  string disables).  The speedup keys are real-time ratios of the
 *  same sixteen-config sweep run both ways on this machine. */
void
writePr6Json(const std::vector<TeeReporter::Entry> &entries)
{
    const char *env = std::getenv("BSISA_BENCH_JSON_PR6");
    const std::string path = env ? env : "BENCH_PR6.json";
    if (path.empty())
        return;

    double conv_indep = 0.0, conv_lock = 0.0;
    double bsa_indep = 0.0, bsa_lock = 0.0;
    bool any = false;
    for (const TeeReporter::Entry &e : entries) {
        // "Lockstep" is a prefix of the LaneMajor/PerGroup reference
        // variants' names, so exclude them before substring-matching.
        if (e.name.find("Grid16") == std::string::npos ||
            e.name.find("LaneMajor") != std::string::npos ||
            e.name.find("PerGroup") != std::string::npos)
            continue;
        any = true;
        if (e.name.find("Grid16Conv_IndependentReplay") !=
            std::string::npos)
            conv_indep = e.itemsPerSecond;
        else if (e.name.find("Grid16Conv_Lockstep") !=
                 std::string::npos)
            conv_lock = e.itemsPerSecond;
        else if (e.name.find("Grid16Bsa_IndependentReplay") !=
                 std::string::npos)
            bsa_indep = e.itemsPerSecond;
        else if (e.name.find("Grid16Bsa_Lockstep") !=
                 std::string::npos)
            bsa_lock = e.itemsPerSecond;
    }
    if (!any)
        return;  // grid benchmarks filtered out of this run

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    bool first = true;
    for (const TeeReporter::Entry &e : entries) {
        if (e.name.find("Grid16") == std::string::npos ||
            e.name.find("LaneMajor") != std::string::npos ||
            e.name.find("PerGroup") != std::string::npos)
            continue;
        std::fprintf(f,
                     "%s    {\"name\": \"%s\", "
                     "\"real_time_sec\": %.9g, "
                     "\"cpu_time_sec\": %.9g, "
                     "\"items_per_second\": %.9g, "
                     "\"iterations\": %lld}",
                     first ? "" : ",\n", e.name.c_str(),
                     e.realTimeSec, e.cpuTimeSec, e.itemsPerSecond,
                     static_cast<long long>(e.iterations));
        first = false;
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"grid_configs\": 16,\n");
    std::fprintf(f,
                 "  \"conv_independent_ops_per_sec\": %.9g,\n"
                 "  \"conv_lockstep_ops_per_sec\": %.9g,\n"
                 "  \"bsa_independent_ops_per_sec\": %.9g,\n"
                 "  \"bsa_lockstep_ops_per_sec\": %.9g,\n",
                 conv_indep, conv_lock, bsa_indep, bsa_lock);
    std::fprintf(f, "  \"conv_lockstep_speedup\": %.6g,\n",
                 conv_indep > 0.0 ? conv_lock / conv_indep : 0.0);
    std::fprintf(f, "  \"bsa_lockstep_speedup\": %.6g\n",
                 bsa_indep > 0.0 ? bsa_lock / bsa_indep : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

/** Write the op-major-vs-lane-major lockstep inner-loop numbers as
 *  BENCH_PR7.json (path overridable via BSISA_BENCH_JSON_PR7; empty
 *  string disables).  Both variants of each sweep ran in THIS
 *  process, so the speedup keys isolate the inner-loop rework from
 *  machine drift; simd_kernel records which kernel implementation the
 *  op-major runs dispatched to. */
void
writePr7Json(const std::vector<TeeReporter::Entry> &entries)
{
    const char *env = std::getenv("BSISA_BENCH_JSON_PR7");
    const std::string path = env ? env : "BENCH_PR7.json";
    if (path.empty())
        return;

    double conv_op = 0.0, conv_lane = 0.0;
    double bsa_op = 0.0, bsa_lane = 0.0;
    bool any = false;
    for (const TeeReporter::Entry &e : entries) {
        if (e.name.find("Grid16") == std::string::npos ||
            e.name.find("Lockstep") == std::string::npos ||
            e.name.find("PerGroup") != std::string::npos)
            continue;
        const bool lane_major =
            e.name.find("LaneMajor") != std::string::npos;
        const bool conv =
            e.name.find("Grid16Conv") != std::string::npos;
        if (lane_major)
            (conv ? conv_lane : bsa_lane) = e.itemsPerSecond;
        else
            (conv ? conv_op : bsa_op) = e.itemsPerSecond;
        any = true;
    }
    if (!any || (conv_lane == 0.0 && bsa_lane == 0.0))
        return;  // need both variants for a meaningful ratio

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    bool first = true;
    for (const TeeReporter::Entry &e : entries) {
        if (e.name.find("Grid16") == std::string::npos ||
            e.name.find("Lockstep") == std::string::npos ||
            e.name.find("PerGroup") != std::string::npos)
            continue;
        std::fprintf(f,
                     "%s    {\"name\": \"%s\", "
                     "\"real_time_sec\": %.9g, "
                     "\"cpu_time_sec\": %.9g, "
                     "\"items_per_second\": %.9g, "
                     "\"iterations\": %lld}",
                     first ? "" : ",\n", e.name.c_str(),
                     e.realTimeSec, e.cpuTimeSec, e.itemsPerSecond,
                     static_cast<long long>(e.iterations));
        first = false;
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"simd_kernel\": \"%s\",\n",
                 simdKernels().name);
    std::fprintf(f,
                 "  \"conv_lane_major_ops_per_sec\": %.9g,\n"
                 "  \"conv_op_major_ops_per_sec\": %.9g,\n"
                 "  \"bsa_lane_major_ops_per_sec\": %.9g,\n"
                 "  \"bsa_op_major_ops_per_sec\": %.9g,\n",
                 conv_lane, conv_op, bsa_lane, bsa_op);
    std::fprintf(f, "  \"conv_op_major_speedup\": %.6g,\n",
                 conv_lane > 0.0 ? conv_op / conv_lane : 0.0);
    std::fprintf(f, "  \"bsa_op_major_speedup\": %.6g\n",
                 bsa_lane > 0.0 ? bsa_op / bsa_lane : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

/** Write the fused-vs-per-group lockstep numbers plus the fused runs'
 *  fetch/timing phase split as BENCH_PR8.json (path overridable via
 *  BSISA_BENCH_JSON_PR8; empty string disables).  Both variants of
 *  each sweep ran in THIS process, so the speedup keys isolate the
 *  fetch/timing decoupling from machine drift; the phase keys report
 *  each phase's standalone throughput (sweep ops / that phase's
 *  seconds) from the fused runs' lockstepLastFetchStats(). */
void
writePr8Json(const std::vector<TeeReporter::Entry> &entries)
{
    const char *env = std::getenv("BSISA_BENCH_JSON_PR8");
    const std::string path = env ? env : "BENCH_PR8.json";
    if (path.empty())
        return;

    double conv_fused = 0.0, conv_group = 0.0;
    double bsa_fused = 0.0, bsa_group = 0.0;
    for (const TeeReporter::Entry &e : entries) {
        if (e.name.find("Grid16") == std::string::npos ||
            e.name.find("Lockstep") == std::string::npos ||
            e.name.find("LaneMajor") != std::string::npos)
            continue;
        const bool per_group =
            e.name.find("PerGroup") != std::string::npos;
        const bool conv =
            e.name.find("Grid16Conv") != std::string::npos;
        if (per_group)
            (conv ? conv_group : bsa_group) = e.itemsPerSecond;
        else
            (conv ? conv_fused : bsa_fused) = e.itemsPerSecond;
    }
    if (conv_group == 0.0 && bsa_group == 0.0)
        return;  // need both variants for a meaningful ratio

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    bool first = true;
    for (const TeeReporter::Entry &e : entries) {
        if (e.name.find("Grid16") == std::string::npos ||
            e.name.find("Lockstep") == std::string::npos ||
            e.name.find("LaneMajor") != std::string::npos)
            continue;
        std::fprintf(f,
                     "%s    {\"name\": \"%s\", "
                     "\"real_time_sec\": %.9g, "
                     "\"cpu_time_sec\": %.9g, "
                     "\"items_per_second\": %.9g, "
                     "\"iterations\": %lld}",
                     first ? "" : ",\n", e.name.c_str(),
                     e.realTimeSec, e.cpuTimeSec, e.itemsPerSecond,
                     static_cast<long long>(e.iterations));
        first = false;
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"simd_kernel\": \"%s\",\n",
                 simdKernels().name);
    std::fprintf(f,
                 "  \"conv_per_group_ops_per_sec\": %.9g,\n"
                 "  \"conv_fused_ops_per_sec\": %.9g,\n"
                 "  \"bsa_per_group_ops_per_sec\": %.9g,\n"
                 "  \"bsa_fused_ops_per_sec\": %.9g,\n",
                 conv_group, conv_fused, bsa_group, bsa_fused);
    std::fprintf(f, "  \"conv_fused_speedup\": %.6g,\n",
                 conv_group > 0.0 ? conv_fused / conv_group : 0.0);
    std::fprintf(f, "  \"bsa_fused_speedup\": %.6g,\n",
                 bsa_group > 0.0 ? bsa_fused / bsa_group : 0.0);
    std::fprintf(f,
                 "  \"conv_fetch_phase_ops_per_sec\": %.9g,\n"
                 "  \"conv_timing_phase_ops_per_sec\": %.9g,\n"
                 "  \"bsa_fetch_phase_ops_per_sec\": %.9g,\n"
                 "  \"bsa_timing_phase_ops_per_sec\": %.9g\n",
                 convPhases.fetchSec > 0.0
                     ? double(convPhases.simOps) / convPhases.fetchSec
                     : 0.0,
                 convPhases.timingSec > 0.0
                     ? double(convPhases.simOps) / convPhases.timingSec
                     : 0.0,
                 bsaPhases.fetchSec > 0.0
                     ? double(bsaPhases.simOps) / bsaPhases.fetchSec
                     : 0.0,
                 bsaPhases.timingSec > 0.0
                     ? double(bsaPhases.simOps) / bsaPhases.timingSec
                     : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    TeeReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    writeJson(reporter.entries);
    writePr6Json(reporter.entries);
    writePr7Json(reporter.entries);
    writePr8Json(reporter.entries);
    bsisabench::reportTraceStore();
    std::error_code ec;
    std::filesystem::remove_all(benchStoreDir(), ec);
    return 0;
}
