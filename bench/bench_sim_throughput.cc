/**
 * @file
 * google-benchmark microbenchmarks of the toolchain itself: BlockC
 * compilation, block enlargement, functional interpretation, and
 * cycle-level simulation throughput.  These are engineering
 * benchmarks, not paper artifacts; they keep the simulator's speed
 * honest as the code evolves.
 */

#include <benchmark/benchmark.h>

#include "core/enlarge.hh"
#include "codegen/layout.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "workloads/specmix.hh"

namespace
{

using namespace bsisa;

const char *kSource = R"(
    var d[64];
    fn work(x, i) {
        var t = x;
        for (var k = 0; k < 4; k = k + 1) {
            if (d[(i + k) & 63] & 1) { t = t * 3 + 1; }
            else { t = t + k; }
        }
        return t;
    }
    fn main() {
        var acc = 0;
        for (var i = 0; i < 200; i = i + 1) { acc = acc + work(acc, i); }
        return acc;
    }
)";

void
BM_CompileBlockC(benchmark::State &state)
{
    for (auto _ : state) {
        Module m = compileBlockCOrDie(kSource);
        benchmark::DoNotOptimize(m.numOps());
    }
}
BENCHMARK(BM_CompileBlockC);

void
BM_GenerateWorkload(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const WorkloadParams &params = suite[0].params;  // compress
    for (auto _ : state) {
        Module m = generateWorkload(params);
        benchmark::DoNotOptimize(m.numOps());
    }
}
BENCHMARK(BM_GenerateWorkload);

void
BM_BlockEnlargement(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    for (auto _ : state) {
        BsaModule bsa = enlargeModule(m, EnlargeConfig{});
        benchmark::DoNotOptimize(bsa.numOps());
    }
}
BENCHMARK(BM_BlockEnlargement);

void
BM_FunctionalInterp(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        Interp::Limits limits;
        limits.maxOps = budget;
        Interp interp(m, limits);
        interp.run();
        benchmark::DoNotOptimize(interp.dynOps());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_FunctionalInterp);

void
BM_ConvTimingSim(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        MachineConfig machine;
        Interp::Limits limits;
        limits.maxOps = budget;
        const SimResult r = runConventional(m, machine, limits);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_ConvTimingSim);

void
BM_BsaTimingSim(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        MachineConfig machine;
        Interp::Limits limits;
        limits.maxOps = budget;
        const SimResult r = runBlockStructured(bsa, machine, limits);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_BsaTimingSim);

} // namespace

BENCHMARK_MAIN();
