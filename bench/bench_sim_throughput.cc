/**
 * @file
 * google-benchmark microbenchmarks of the toolchain itself: BlockC
 * compilation, block enlargement, functional interpretation, and
 * cycle-level simulation throughput.  These are engineering
 * benchmarks, not paper artifacts; they keep the simulator's speed
 * honest as the code evolves.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/enlarge.hh"
#include "codegen/layout.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "support/env.hh"
#include "support/parallel.hh"
#include "workloads/specmix.hh"

namespace
{

using namespace bsisa;

const char *kSource = R"(
    var d[64];
    fn work(x, i) {
        var t = x;
        for (var k = 0; k < 4; k = k + 1) {
            if (d[(i + k) & 63] & 1) { t = t * 3 + 1; }
            else { t = t + k; }
        }
        return t;
    }
    fn main() {
        var acc = 0;
        for (var i = 0; i < 200; i = i + 1) { acc = acc + work(acc, i); }
        return acc;
    }
)";

void
BM_CompileBlockC(benchmark::State &state)
{
    for (auto _ : state) {
        Module m = compileBlockCOrDie(kSource);
        benchmark::DoNotOptimize(m.numOps());
    }
}
BENCHMARK(BM_CompileBlockC);

void
BM_GenerateWorkload(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const WorkloadParams &params = suite[0].params;  // compress
    for (auto _ : state) {
        Module m = generateWorkload(params);
        benchmark::DoNotOptimize(m.numOps());
    }
}
BENCHMARK(BM_GenerateWorkload);

void
BM_BlockEnlargement(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    for (auto _ : state) {
        BsaModule bsa = enlargeModule(m, EnlargeConfig{});
        benchmark::DoNotOptimize(bsa.numOps());
    }
}
BENCHMARK(BM_BlockEnlargement);

void
BM_FunctionalInterp(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        Interp::Limits limits;
        limits.maxOps = budget;
        Interp interp(m, limits);
        interp.run();
        benchmark::DoNotOptimize(interp.dynOps());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_FunctionalInterp);

void
BM_ConvTimingSim(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        MachineConfig machine;
        Interp::Limits limits;
        limits.maxOps = budget;
        const SimResult r = runConventional(m, machine, limits);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_ConvTimingSim);

void
BM_BsaTimingSim(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        MachineConfig machine;
        Interp::Limits limits;
        limits.maxOps = budget;
        const SimResult r = runBlockStructured(bsa, machine, limits);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_BsaTimingSim);

/**
 * The sweep-shaped workload the figure drivers actually run: a full
 * conv/BSA pair across a 3-point icache sweep (6 timing runs).  The
 * seed path re-runs the functional interpreter inside every timing
 * run and executes the points serially; the replay path captures one
 * trace and fans the points across BSISA_JOBS cores.  Items/s is
 * simulated operations per second (Mops/s at the usual scales), so
 * the two benchmarks are directly comparable.  BSISA_BENCH_OPS
 * shrinks the per-point budget for CI smoke runs.
 */
const std::vector<unsigned> kSweepKB = {16, 32, 64};

std::uint64_t
sweepBudget()
{
    return envU64("BSISA_BENCH_OPS", 200000);
}

void
BM_PairSweep_SeedPath(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (unsigned kb : kSweepKB) {
            MachineConfig machine;
            machine.icache.sizeBytes = kb * 1024;
            total += runConventional(m, machine, limits).cycles;
            total += runBlockStructured(bsa, machine, limits).cycles;
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) * 2 *
                            std::int64_t(kSweepKB.size()));
}
BENCHMARK(BM_PairSweep_SeedPath)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void
BM_PairSweep_CaptureReplayParallel(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    for (auto _ : state) {
        // Capture once per sweep (timed: it is part of the real cost),
        // then replay every config point from the shared trace.
        const ExecTrace trace = captureTrace(m, limits);
        std::vector<std::uint64_t> cycles(kSweepKB.size() * 2);
        parallelFor(cycles.size(), [&](std::size_t idx) {
            MachineConfig machine;
            machine.icache.sizeBytes = kSweepKB[idx / 2] * 1024;
            cycles[idx] =
                (idx & 1)
                    ? runBlockStructured(bsa, machine, trace).cycles
                    : runConventional(m, machine, trace).cycles;
        });
        std::uint64_t total = 0;
        for (std::uint64_t c : cycles)
            total += c;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) * 2 *
                            std::int64_t(kSweepKB.size()));
}
BENCHMARK(BM_PairSweep_CaptureReplayParallel)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * Console reporter that also records every run for the
 * machine-readable summary.  The human-facing output is exactly
 * google-benchmark's default; the JSON rides along for CI gating.
 */
class TeeReporter : public benchmark::ConsoleReporter
{
  public:
    struct Entry
    {
        std::string name;
        double realTimeSec = 0.0;
        double cpuTimeSec = 0.0;
        double itemsPerSecond = 0.0;
        std::int64_t iterations = 0;
    };

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        benchmark::ConsoleReporter::ReportRuns(reports);
        for (const Run &run : reports) {
            Entry e;
            e.name = run.benchmark_name();
            e.realTimeSec = run.GetAdjustedRealTime() *
                            timeMultiplier(run.time_unit);
            e.cpuTimeSec = run.GetAdjustedCPUTime() *
                           timeMultiplier(run.time_unit);
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                e.itemsPerSecond = it->second;
            e.iterations = run.iterations;
            entries.push_back(std::move(e));
        }
    }

    std::vector<Entry> entries;

  private:
    static double
    timeMultiplier(benchmark::TimeUnit unit)
    {
        switch (unit) {
          case benchmark::kNanosecond: return 1e-9;
          case benchmark::kMicrosecond: return 1e-6;
          case benchmark::kMillisecond: return 1e-3;
          case benchmark::kSecond: return 1.0;
        }
        return 1.0;
    }
};

/** Write the recorded runs as BENCH_PR2.json (path overridable via
 *  BSISA_BENCH_JSON; empty string disables). */
void
writeJson(const std::vector<TeeReporter::Entry> &entries)
{
    const char *env = std::getenv("BSISA_BENCH_JSON");
    const std::string path = env ? env : "BENCH_PR2.json";
    if (path.empty())
        return;

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return;
    }

    double seed_ips = 0.0, replay_ips = 0.0;
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const TeeReporter::Entry &e = entries[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"real_time_sec\": %.9g, "
                     "\"cpu_time_sec\": %.9g, "
                     "\"items_per_second\": %.9g, "
                     "\"iterations\": %lld}%s\n",
                     e.name.c_str(), e.realTimeSec, e.cpuTimeSec,
                     e.itemsPerSecond,
                     static_cast<long long>(e.iterations),
                     i + 1 < entries.size() ? "," : "");
        if (e.name.find("PairSweep_SeedPath") != std::string::npos)
            seed_ips = e.itemsPerSecond;
        if (e.name.find("PairSweep_CaptureReplayParallel") !=
            std::string::npos)
            replay_ips = e.itemsPerSecond;
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"pair_sweep_seed_ops_per_sec\": %.9g,\n",
                 seed_ips);
    std::fprintf(f, "  \"pair_sweep_replay_ops_per_sec\": %.9g,\n",
                 replay_ips);
    std::fprintf(f, "  \"pair_sweep_speedup\": %.6g\n",
                 seed_ips > 0.0 ? replay_ips / seed_ips : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    TeeReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    writeJson(reporter.entries);
    return 0;
}
