/**
 * @file
 * google-benchmark microbenchmarks of the toolchain itself: BlockC
 * compilation, block enlargement, functional interpretation, and
 * cycle-level simulation throughput.  These are engineering
 * benchmarks, not paper artifacts; they keep the simulator's speed
 * honest as the code evolves.
 */

#include <benchmark/benchmark.h>

#include "core/enlarge.hh"
#include "codegen/layout.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "support/env.hh"
#include "support/parallel.hh"
#include "workloads/specmix.hh"

namespace
{

using namespace bsisa;

const char *kSource = R"(
    var d[64];
    fn work(x, i) {
        var t = x;
        for (var k = 0; k < 4; k = k + 1) {
            if (d[(i + k) & 63] & 1) { t = t * 3 + 1; }
            else { t = t + k; }
        }
        return t;
    }
    fn main() {
        var acc = 0;
        for (var i = 0; i < 200; i = i + 1) { acc = acc + work(acc, i); }
        return acc;
    }
)";

void
BM_CompileBlockC(benchmark::State &state)
{
    for (auto _ : state) {
        Module m = compileBlockCOrDie(kSource);
        benchmark::DoNotOptimize(m.numOps());
    }
}
BENCHMARK(BM_CompileBlockC);

void
BM_GenerateWorkload(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const WorkloadParams &params = suite[0].params;  // compress
    for (auto _ : state) {
        Module m = generateWorkload(params);
        benchmark::DoNotOptimize(m.numOps());
    }
}
BENCHMARK(BM_GenerateWorkload);

void
BM_BlockEnlargement(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    for (auto _ : state) {
        BsaModule bsa = enlargeModule(m, EnlargeConfig{});
        benchmark::DoNotOptimize(bsa.numOps());
    }
}
BENCHMARK(BM_BlockEnlargement);

void
BM_FunctionalInterp(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        Interp::Limits limits;
        limits.maxOps = budget;
        Interp interp(m, limits);
        interp.run();
        benchmark::DoNotOptimize(interp.dynOps());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_FunctionalInterp);

void
BM_ConvTimingSim(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        MachineConfig machine;
        Interp::Limits limits;
        limits.maxOps = budget;
        const SimResult r = runConventional(m, machine, limits);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_ConvTimingSim);

void
BM_BsaTimingSim(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = 200000;
    for (auto _ : state) {
        MachineConfig machine;
        Interp::Limits limits;
        limits.maxOps = budget;
        const SimResult r = runBlockStructured(bsa, machine, limits);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget));
}
BENCHMARK(BM_BsaTimingSim);

/**
 * The sweep-shaped workload the figure drivers actually run: a full
 * conv/BSA pair across a 3-point icache sweep (6 timing runs).  The
 * seed path re-runs the functional interpreter inside every timing
 * run and executes the points serially; the replay path captures one
 * trace and fans the points across BSISA_JOBS cores.  Items/s is
 * simulated operations per second (Mops/s at the usual scales), so
 * the two benchmarks are directly comparable.  BSISA_BENCH_OPS
 * shrinks the per-point budget for CI smoke runs.
 */
const std::vector<unsigned> kSweepKB = {16, 32, 64};

std::uint64_t
sweepBudget()
{
    return envU64("BSISA_BENCH_OPS", 200000);
}

void
BM_PairSweep_SeedPath(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (unsigned kb : kSweepKB) {
            MachineConfig machine;
            machine.icache.sizeBytes = kb * 1024;
            total += runConventional(m, machine, limits).cycles;
            total += runBlockStructured(bsa, machine, limits).cycles;
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) * 2 *
                            std::int64_t(kSweepKB.size()));
}
BENCHMARK(BM_PairSweep_SeedPath)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void
BM_PairSweep_CaptureReplayParallel(benchmark::State &state)
{
    const auto suite = specint95Suite();
    const Module m = generateWorkload(suite[0].params);
    BsaModule bsa = enlargeModule(m, EnlargeConfig{});
    layoutBsaModule(bsa);
    const std::uint64_t budget = sweepBudget();
    Interp::Limits limits;
    limits.maxOps = budget;
    for (auto _ : state) {
        // Capture once per sweep (timed: it is part of the real cost),
        // then replay every config point from the shared trace.
        const ExecTrace trace = captureTrace(m, limits);
        std::vector<std::uint64_t> cycles(kSweepKB.size() * 2);
        parallelFor(cycles.size(), [&](std::size_t idx) {
            MachineConfig machine;
            machine.icache.sizeBytes = kSweepKB[idx / 2] * 1024;
            cycles[idx] =
                (idx & 1)
                    ? runBlockStructured(bsa, machine, trace).cycles
                    : runConventional(m, machine, trace).cycles;
        });
        std::uint64_t total = 0;
        for (std::uint64_t c : cycles)
            total += c;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(budget) * 2 *
                            std::int64_t(kSweepKB.size()));
}
BENCHMARK(BM_PairSweep_CaptureReplayParallel)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
