/**
 * @file
 * Bench binary: regenerates one of the paper's artifacts (see
 * DESIGN.md's experiment index).  Scale with BSISA_SCALE.
 */

#include <iostream>

#include "bench_common.hh"
#include "exp/figures.hh"

int
main()
{
    return bsisabench::benchMain(
        [] { bsisa::printTable1(std::cout); });
}
