/**
 * @file
 * Workload characterization report: the synthetic SPECint95 stand-ins'
 * architecturally relevant properties, next to the real benchmarks'
 * published character.  This is the evidence for DESIGN.md's
 * substitution argument — the three axes the paper's results hinge on
 * (code footprint, basic-block size, branch predictability) plus call
 * density and the library share.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "exp/figures.hh"
#include "sim/interp.hh"
#include "sim/trace_store.hh"
#include "support/table.hh"

using namespace bsisa;

namespace
{

void
report()
{
    const std::uint64_t divisor = scaleDivisor() * 4;
    std::cout << "Synthetic workload characterization (dynamic "
                 "properties at 1/4 scale budget).\n\n";
    Table t({"Benchmark", "code KB", "funcs", "dyn block", "call+ret%",
             "lib%", "branch acc", "dcache miss%"});
    for (const auto &bench : specint95Suite()) {
        const Module m = generateWorkload(bench.params);

        std::vector<bool> is_lib;
        for (const auto &f : m.functions)
            is_lib.push_back(f.isLibrary);

        Interp::Limits limits;
        limits.maxOps = bench.paperInstructions / divisor;
        // One trace (store-served when warm) answers both the
        // characterization walk and the timing pair.
        const ExecTrace trace = captureOrLoadTrace(m, limits);
        TraceReplaySource replay(trace);
        BlockEvent ev;
        std::uint64_t blocks = 0, ops = 0, callret = 0, lib_blocks = 0;
        while (replay.next(ev)) {
            ++blocks;
            ops += m.functions[ev.func].blocks[ev.block].ops.size();
            callret += ev.exit == ExitKind::Call ||
                       ev.exit == ExitKind::Ret;
            lib_blocks += is_lib[ev.func];
        }

        RunConfig config;
        config.limits = limits;
        const PairResult r = runPair(m, config, trace);

        t.addRow({bench.params.name,
                  Table::fmt(m.numOps() * opBytes / 1024.0, 1),
                  Table::fmt(std::uint64_t(m.functions.size())),
                  Table::fmt(double(ops) / double(blocks), 2),
                  Table::fmt(100.0 * double(callret) / double(blocks),
                             1),
                  Table::fmt(100.0 * double(lib_blocks) /
                                 double(blocks),
                             1),
                  Table::fmt(100.0 * r.conv.branchAccuracy(), 1) + "%",
                  Table::fmt(100.0 * r.conv.dcache.missRate(), 2)});
    }
    t.print(std::cout);
    std::cout <<
        "\nIntended character (see src/workloads/specmix.cc):\n"
        "  - gcc/go/vortex: large code, small blocks, weaker "
        "prediction (gcc/go)\n"
        "  - compress/li: tiny code; li call-dominated, compress "
        "loop/data-dominated\n"
        "  - ijpeg/m88ksim: predictable, larger blocks (ijpeg) / "
        "dispatch loops (m88ksim)\n";
}

} // namespace

int
main()
{
    return bsisabench::benchMain(report);
}
