file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_conditions.dir/bench_ablate_conditions.cc.o"
  "CMakeFiles/bench_ablate_conditions.dir/bench_ablate_conditions.cc.o.d"
  "bench_ablate_conditions"
  "bench_ablate_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
