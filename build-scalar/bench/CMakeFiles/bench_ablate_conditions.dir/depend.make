# Empty dependencies file for bench_ablate_conditions.
# This may be replaced when dependencies are built.
