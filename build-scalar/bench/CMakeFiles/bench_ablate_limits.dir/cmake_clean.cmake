file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_limits.dir/bench_ablate_limits.cc.o"
  "CMakeFiles/bench_ablate_limits.dir/bench_ablate_limits.cc.o.d"
  "bench_ablate_limits"
  "bench_ablate_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
