# Empty dependencies file for bench_ablate_limits.
# This may be replaced when dependencies are built.
