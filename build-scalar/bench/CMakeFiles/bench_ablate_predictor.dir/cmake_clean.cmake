file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_predictor.dir/bench_ablate_predictor.cc.o"
  "CMakeFiles/bench_ablate_predictor.dir/bench_ablate_predictor.cc.o.d"
  "bench_ablate_predictor"
  "bench_ablate_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
