# Empty dependencies file for bench_ablate_predictor.
# This may be replaced when dependencies are built.
