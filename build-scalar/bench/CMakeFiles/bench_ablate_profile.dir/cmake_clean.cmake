file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_profile.dir/bench_ablate_profile.cc.o"
  "CMakeFiles/bench_ablate_profile.dir/bench_ablate_profile.cc.o.d"
  "bench_ablate_profile"
  "bench_ablate_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
