# Empty dependencies file for bench_ablate_profile.
# This may be replaced when dependencies are built.
