file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_inline.dir/bench_ext_inline.cc.o"
  "CMakeFiles/bench_ext_inline.dir/bench_ext_inline.cc.o.d"
  "bench_ext_inline"
  "bench_ext_inline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
