# Empty dependencies file for bench_ext_inline.
# This may be replaced when dependencies are built.
