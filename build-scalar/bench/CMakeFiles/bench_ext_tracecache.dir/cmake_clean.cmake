file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tracecache.dir/bench_ext_tracecache.cc.o"
  "CMakeFiles/bench_ext_tracecache.dir/bench_ext_tracecache.cc.o.d"
  "bench_ext_tracecache"
  "bench_ext_tracecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tracecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
