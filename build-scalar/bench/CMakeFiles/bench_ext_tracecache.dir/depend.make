# Empty dependencies file for bench_ext_tracecache.
# This may be replaced when dependencies are built.
