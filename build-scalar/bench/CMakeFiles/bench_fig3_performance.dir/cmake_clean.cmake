file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_performance.dir/bench_fig3_performance.cc.o"
  "CMakeFiles/bench_fig3_performance.dir/bench_fig3_performance.cc.o.d"
  "bench_fig3_performance"
  "bench_fig3_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
