# Empty dependencies file for bench_fig3_performance.
# This may be replaced when dependencies are built.
