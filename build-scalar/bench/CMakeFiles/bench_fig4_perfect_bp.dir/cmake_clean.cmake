file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_perfect_bp.dir/bench_fig4_perfect_bp.cc.o"
  "CMakeFiles/bench_fig4_perfect_bp.dir/bench_fig4_perfect_bp.cc.o.d"
  "bench_fig4_perfect_bp"
  "bench_fig4_perfect_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_perfect_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
