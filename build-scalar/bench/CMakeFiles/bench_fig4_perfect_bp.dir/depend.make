# Empty dependencies file for bench_fig4_perfect_bp.
# This may be replaced when dependencies are built.
