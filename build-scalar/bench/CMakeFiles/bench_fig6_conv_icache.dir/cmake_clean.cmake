file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_conv_icache.dir/bench_fig6_conv_icache.cc.o"
  "CMakeFiles/bench_fig6_conv_icache.dir/bench_fig6_conv_icache.cc.o.d"
  "bench_fig6_conv_icache"
  "bench_fig6_conv_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_conv_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
