# Empty dependencies file for bench_fig6_conv_icache.
# This may be replaced when dependencies are built.
