file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_bsa_icache.dir/bench_fig7_bsa_icache.cc.o"
  "CMakeFiles/bench_fig7_bsa_icache.dir/bench_fig7_bsa_icache.cc.o.d"
  "bench_fig7_bsa_icache"
  "bench_fig7_bsa_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_bsa_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
