# Empty dependencies file for bench_fig7_bsa_icache.
# This may be replaced when dependencies are built.
