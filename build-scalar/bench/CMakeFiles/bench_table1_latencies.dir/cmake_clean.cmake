file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_latencies.dir/bench_table1_latencies.cc.o"
  "CMakeFiles/bench_table1_latencies.dir/bench_table1_latencies.cc.o.d"
  "bench_table1_latencies"
  "bench_table1_latencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_latencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
