# Empty dependencies file for bench_table1_latencies.
# This may be replaced when dependencies are built.
