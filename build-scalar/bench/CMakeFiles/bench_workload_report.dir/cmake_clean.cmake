file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_report.dir/bench_workload_report.cc.o"
  "CMakeFiles/bench_workload_report.dir/bench_workload_report.cc.o.d"
  "bench_workload_report"
  "bench_workload_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
