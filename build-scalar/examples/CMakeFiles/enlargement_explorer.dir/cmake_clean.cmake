file(REMOVE_RECURSE
  "CMakeFiles/enlargement_explorer.dir/enlargement_explorer.cpp.o"
  "CMakeFiles/enlargement_explorer.dir/enlargement_explorer.cpp.o.d"
  "enlargement_explorer"
  "enlargement_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enlargement_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
