# Empty dependencies file for enlargement_explorer.
# This may be replaced when dependencies are built.
