file(REMOVE_RECURSE
  "CMakeFiles/icache_study.dir/icache_study.cpp.o"
  "CMakeFiles/icache_study.dir/icache_study.cpp.o.d"
  "icache_study"
  "icache_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icache_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
