# Empty dependencies file for icache_study.
# This may be replaced when dependencies are built.
