file(REMOVE_RECURSE
  "CMakeFiles/ir_tour.dir/ir_tour.cpp.o"
  "CMakeFiles/ir_tour.dir/ir_tour.cpp.o.d"
  "ir_tour"
  "ir_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
