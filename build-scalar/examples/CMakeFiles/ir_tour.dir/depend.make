# Empty dependencies file for ir_tour.
# This may be replaced when dependencies are built.
