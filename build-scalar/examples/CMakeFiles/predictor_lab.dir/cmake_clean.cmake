file(REMOVE_RECURSE
  "CMakeFiles/predictor_lab.dir/predictor_lab.cpp.o"
  "CMakeFiles/predictor_lab.dir/predictor_lab.cpp.o.d"
  "predictor_lab"
  "predictor_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
