# Empty dependencies file for predictor_lab.
# This may be replaced when dependencies are built.
