
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/instr_class.cc" "src/CMakeFiles/bsisa.dir/arch/instr_class.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/arch/instr_class.cc.o.d"
  "/root/repo/src/arch/opcode.cc" "src/CMakeFiles/bsisa.dir/arch/opcode.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/arch/opcode.cc.o.d"
  "/root/repo/src/arch/operation.cc" "src/CMakeFiles/bsisa.dir/arch/operation.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/arch/operation.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/bsisa.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/trace_cache.cc" "src/CMakeFiles/bsisa.dir/cache/trace_cache.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/cache/trace_cache.cc.o.d"
  "/root/repo/src/codegen/layout.cc" "src/CMakeFiles/bsisa.dir/codegen/layout.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/codegen/layout.cc.o.d"
  "/root/repo/src/core/enlarge.cc" "src/CMakeFiles/bsisa.dir/core/enlarge.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/core/enlarge.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/CMakeFiles/bsisa.dir/core/profile.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/core/profile.cc.o.d"
  "/root/repo/src/exp/figures.cc" "src/CMakeFiles/bsisa.dir/exp/figures.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/exp/figures.cc.o.d"
  "/root/repo/src/exp/runner.cc" "src/CMakeFiles/bsisa.dir/exp/runner.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/exp/runner.cc.o.d"
  "/root/repo/src/frontend/compile.cc" "src/CMakeFiles/bsisa.dir/frontend/compile.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/frontend/compile.cc.o.d"
  "/root/repo/src/frontend/diag.cc" "src/CMakeFiles/bsisa.dir/frontend/diag.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/frontend/diag.cc.o.d"
  "/root/repo/src/frontend/irgen.cc" "src/CMakeFiles/bsisa.dir/frontend/irgen.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/frontend/irgen.cc.o.d"
  "/root/repo/src/frontend/lexer.cc" "src/CMakeFiles/bsisa.dir/frontend/lexer.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/frontend/lexer.cc.o.d"
  "/root/repo/src/frontend/parser.cc" "src/CMakeFiles/bsisa.dir/frontend/parser.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/frontend/parser.cc.o.d"
  "/root/repo/src/frontend/sema.cc" "src/CMakeFiles/bsisa.dir/frontend/sema.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/frontend/sema.cc.o.d"
  "/root/repo/src/fuzz/corpus.cc" "src/CMakeFiles/bsisa.dir/fuzz/corpus.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/fuzz/corpus.cc.o.d"
  "/root/repo/src/fuzz/gen.cc" "src/CMakeFiles/bsisa.dir/fuzz/gen.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/fuzz/gen.cc.o.d"
  "/root/repo/src/fuzz/harness.cc" "src/CMakeFiles/bsisa.dir/fuzz/harness.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/fuzz/harness.cc.o.d"
  "/root/repo/src/fuzz/oracle.cc" "src/CMakeFiles/bsisa.dir/fuzz/oracle.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/fuzz/oracle.cc.o.d"
  "/root/repo/src/fuzz/shrink.cc" "src/CMakeFiles/bsisa.dir/fuzz/shrink.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/fuzz/shrink.cc.o.d"
  "/root/repo/src/ir/cfg.cc" "src/CMakeFiles/bsisa.dir/ir/cfg.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/ir/cfg.cc.o.d"
  "/root/repo/src/ir/dom.cc" "src/CMakeFiles/bsisa.dir/ir/dom.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/ir/dom.cc.o.d"
  "/root/repo/src/ir/module.cc" "src/CMakeFiles/bsisa.dir/ir/module.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/ir/module.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/bsisa.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/textform.cc" "src/CMakeFiles/bsisa.dir/ir/textform.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/ir/textform.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/CMakeFiles/bsisa.dir/ir/verifier.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/ir/verifier.cc.o.d"
  "/root/repo/src/opt/constfold.cc" "src/CMakeFiles/bsisa.dir/opt/constfold.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/opt/constfold.cc.o.d"
  "/root/repo/src/opt/copyprop.cc" "src/CMakeFiles/bsisa.dir/opt/copyprop.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/opt/copyprop.cc.o.d"
  "/root/repo/src/opt/cse.cc" "src/CMakeFiles/bsisa.dir/opt/cse.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/opt/cse.cc.o.d"
  "/root/repo/src/opt/dce.cc" "src/CMakeFiles/bsisa.dir/opt/dce.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/opt/dce.cc.o.d"
  "/root/repo/src/opt/inliner.cc" "src/CMakeFiles/bsisa.dir/opt/inliner.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/opt/inliner.cc.o.d"
  "/root/repo/src/opt/simplifycfg.cc" "src/CMakeFiles/bsisa.dir/opt/simplifycfg.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/opt/simplifycfg.cc.o.d"
  "/root/repo/src/predict/blockpred.cc" "src/CMakeFiles/bsisa.dir/predict/blockpred.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/predict/blockpred.cc.o.d"
  "/root/repo/src/predict/twolevel.cc" "src/CMakeFiles/bsisa.dir/predict/twolevel.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/predict/twolevel.cc.o.d"
  "/root/repo/src/regalloc/linearscan.cc" "src/CMakeFiles/bsisa.dir/regalloc/linearscan.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/regalloc/linearscan.cc.o.d"
  "/root/repo/src/regalloc/liveness.cc" "src/CMakeFiles/bsisa.dir/regalloc/liveness.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/regalloc/liveness.cc.o.d"
  "/root/repo/src/sim/alu.cc" "src/CMakeFiles/bsisa.dir/sim/alu.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/alu.cc.o.d"
  "/root/repo/src/sim/bsa_interp.cc" "src/CMakeFiles/bsisa.dir/sim/bsa_interp.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/bsa_interp.cc.o.d"
  "/root/repo/src/sim/bsa_source.cc" "src/CMakeFiles/bsisa.dir/sim/bsa_source.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/bsa_source.cc.o.d"
  "/root/repo/src/sim/conv_source.cc" "src/CMakeFiles/bsisa.dir/sim/conv_source.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/conv_source.cc.o.d"
  "/root/repo/src/sim/decoded.cc" "src/CMakeFiles/bsisa.dir/sim/decoded.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/decoded.cc.o.d"
  "/root/repo/src/sim/interp.cc" "src/CMakeFiles/bsisa.dir/sim/interp.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/interp.cc.o.d"
  "/root/repo/src/sim/lockstep.cc" "src/CMakeFiles/bsisa.dir/sim/lockstep.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/lockstep.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/CMakeFiles/bsisa.dir/sim/memory.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/memory.cc.o.d"
  "/root/repo/src/sim/pipeline.cc" "src/CMakeFiles/bsisa.dir/sim/pipeline.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/pipeline.cc.o.d"
  "/root/repo/src/sim/tc_source.cc" "src/CMakeFiles/bsisa.dir/sim/tc_source.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/tc_source.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/bsisa.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/trace.cc.o.d"
  "/root/repo/src/sim/trace_store.cc" "src/CMakeFiles/bsisa.dir/sim/trace_store.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/sim/trace_store.cc.o.d"
  "/root/repo/src/support/env.cc" "src/CMakeFiles/bsisa.dir/support/env.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/support/env.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/bsisa.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/support/logging.cc.o.d"
  "/root/repo/src/support/parallel.cc" "src/CMakeFiles/bsisa.dir/support/parallel.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/support/parallel.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/bsisa.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/support/rng.cc.o.d"
  "/root/repo/src/support/simd_avx2.cc" "src/CMakeFiles/bsisa.dir/support/simd_avx2.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/support/simd_avx2.cc.o.d"
  "/root/repo/src/support/simd_dispatch.cc" "src/CMakeFiles/bsisa.dir/support/simd_dispatch.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/support/simd_dispatch.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/bsisa.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/support/stats.cc.o.d"
  "/root/repo/src/support/table.cc" "src/CMakeFiles/bsisa.dir/support/table.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/support/table.cc.o.d"
  "/root/repo/src/workloads/specmix.cc" "src/CMakeFiles/bsisa.dir/workloads/specmix.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/workloads/specmix.cc.o.d"
  "/root/repo/src/workloads/synth.cc" "src/CMakeFiles/bsisa.dir/workloads/synth.cc.o" "gcc" "src/CMakeFiles/bsisa.dir/workloads/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
