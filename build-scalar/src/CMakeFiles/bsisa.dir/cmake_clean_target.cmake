file(REMOVE_RECURSE
  "libbsisa.a"
)
