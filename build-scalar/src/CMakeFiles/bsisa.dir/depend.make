# Empty dependencies file for bsisa.
# This may be replaced when dependencies are built.
