file(REMOVE_RECURSE
  "CMakeFiles/test_bsa_source.dir/test_bsa_source.cc.o"
  "CMakeFiles/test_bsa_source.dir/test_bsa_source.cc.o.d"
  "test_bsa_source"
  "test_bsa_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsa_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
