# Empty dependencies file for test_bsa_source.
# This may be replaced when dependencies are built.
