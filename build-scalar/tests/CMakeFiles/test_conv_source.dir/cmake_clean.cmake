file(REMOVE_RECURSE
  "CMakeFiles/test_conv_source.dir/test_conv_source.cc.o"
  "CMakeFiles/test_conv_source.dir/test_conv_source.cc.o.d"
  "test_conv_source"
  "test_conv_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
