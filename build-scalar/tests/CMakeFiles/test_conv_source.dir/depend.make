# Empty dependencies file for test_conv_source.
# This may be replaced when dependencies are built.
