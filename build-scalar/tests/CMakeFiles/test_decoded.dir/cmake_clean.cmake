file(REMOVE_RECURSE
  "CMakeFiles/test_decoded.dir/test_decoded.cc.o"
  "CMakeFiles/test_decoded.dir/test_decoded.cc.o.d"
  "test_decoded"
  "test_decoded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decoded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
