# Empty dependencies file for test_decoded.
# This may be replaced when dependencies are built.
