file(REMOVE_RECURSE
  "CMakeFiles/test_enlarge.dir/test_enlarge.cc.o"
  "CMakeFiles/test_enlarge.dir/test_enlarge.cc.o.d"
  "test_enlarge"
  "test_enlarge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enlarge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
