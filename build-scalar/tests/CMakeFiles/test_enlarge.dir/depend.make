# Empty dependencies file for test_enlarge.
# This may be replaced when dependencies are built.
