file(REMOVE_RECURSE
  "CMakeFiles/test_exp.dir/test_exp.cc.o"
  "CMakeFiles/test_exp.dir/test_exp.cc.o.d"
  "test_exp"
  "test_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
