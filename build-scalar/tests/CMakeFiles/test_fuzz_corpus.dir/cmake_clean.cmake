file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_corpus.dir/test_fuzz_corpus.cc.o"
  "CMakeFiles/test_fuzz_corpus.dir/test_fuzz_corpus.cc.o.d"
  "test_fuzz_corpus"
  "test_fuzz_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
