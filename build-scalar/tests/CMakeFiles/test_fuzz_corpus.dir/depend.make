# Empty dependencies file for test_fuzz_corpus.
# This may be replaced when dependencies are built.
