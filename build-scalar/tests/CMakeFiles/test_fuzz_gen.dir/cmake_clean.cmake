file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_gen.dir/test_fuzz_gen.cc.o"
  "CMakeFiles/test_fuzz_gen.dir/test_fuzz_gen.cc.o.d"
  "test_fuzz_gen"
  "test_fuzz_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
