# Empty dependencies file for test_fuzz_gen.
# This may be replaced when dependencies are built.
