file(REMOVE_RECURSE
  "CMakeFiles/test_lockstep.dir/test_lockstep.cc.o"
  "CMakeFiles/test_lockstep.dir/test_lockstep.cc.o.d"
  "test_lockstep"
  "test_lockstep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lockstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
