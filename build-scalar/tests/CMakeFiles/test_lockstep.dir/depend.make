# Empty dependencies file for test_lockstep.
# This may be replaced when dependencies are built.
