file(REMOVE_RECURSE
  "CMakeFiles/test_predict.dir/test_predict.cc.o"
  "CMakeFiles/test_predict.dir/test_predict.cc.o.d"
  "test_predict"
  "test_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
