file(REMOVE_RECURSE
  "CMakeFiles/test_textform.dir/test_textform.cc.o"
  "CMakeFiles/test_textform.dir/test_textform.cc.o.d"
  "test_textform"
  "test_textform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
