# Empty dependencies file for test_textform.
# This may be replaced when dependencies are built.
