file(REMOVE_RECURSE
  "CMakeFiles/test_trace_store.dir/test_trace_store.cc.o"
  "CMakeFiles/test_trace_store.dir/test_trace_store.cc.o.d"
  "test_trace_store"
  "test_trace_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
