# Empty dependencies file for test_trace_store.
# This may be replaced when dependencies are built.
