file(REMOVE_RECURSE
  "CMakeFiles/test_tracecache.dir/test_tracecache.cc.o"
  "CMakeFiles/test_tracecache.dir/test_tracecache.cc.o.d"
  "test_tracecache"
  "test_tracecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
