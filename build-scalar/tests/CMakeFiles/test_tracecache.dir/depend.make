# Empty dependencies file for test_tracecache.
# This may be replaced when dependencies are built.
