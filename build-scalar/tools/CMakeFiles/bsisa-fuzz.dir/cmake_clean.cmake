file(REMOVE_RECURSE
  "CMakeFiles/bsisa-fuzz.dir/bsisa-fuzz.cc.o"
  "CMakeFiles/bsisa-fuzz.dir/bsisa-fuzz.cc.o.d"
  "bsisa-fuzz"
  "bsisa-fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsisa-fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
