# Empty dependencies file for bsisa-fuzz.
# This may be replaced when dependencies are built.
