file(REMOVE_RECURSE
  "CMakeFiles/bsisa-tracedump.dir/bsisa-tracedump.cc.o"
  "CMakeFiles/bsisa-tracedump.dir/bsisa-tracedump.cc.o.d"
  "bsisa-tracedump"
  "bsisa-tracedump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsisa-tracedump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
