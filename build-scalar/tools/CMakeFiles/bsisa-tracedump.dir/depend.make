# Empty dependencies file for bsisa-tracedump.
# This may be replaced when dependencies are built.
