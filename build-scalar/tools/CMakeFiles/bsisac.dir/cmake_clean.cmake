file(REMOVE_RECURSE
  "CMakeFiles/bsisac.dir/bsisac.cc.o"
  "CMakeFiles/bsisac.dir/bsisac.cc.o.d"
  "bsisac"
  "bsisac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsisac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
