# Empty dependencies file for bsisac.
# This may be replaced when dependencies are built.
