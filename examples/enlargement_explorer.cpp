/**
 * @file
 * Enlargement explorer: shows what the block enlargement optimization
 * does to a function, reproducing the paper's figure-1 walk-through.
 *
 * Compiles a small function with an if/else diamond, prints its
 * conventional control-flow graph, runs enlargement, and dumps every
 * atomic block with its constituent basic blocks, fault operations
 * (with polarity and targets), and successor metadata.
 */

#include <iostream>

#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "frontend/compile.hh"
#include "ir/printer.hh"

using namespace bsisa;

namespace
{

const char *kProgram = R"(
    var d[8];
    fn main() {
        var x = d[0];        // block A: load, then branch
        var y = 0;
        if (x & 1) {         //   taken -> block B's role
            y = x * 3 + 1;   // block C
        } else {
            y = x + 7;       // block D
        }
        d[1] = y;            // block E: join
        return y;
    }
)";

void
dumpAtomicBlock(const BsaModule &bsa, const AtomicBlock &blk)
{
    (void)bsa;
    std::cout << "  atomic block AB" << blk.id << " @0x" << std::hex
              << blk.addr << std::dec << "  (" << blk.ops.size()
              << " ops, " << blk.numFaults << " faults, succBits "
              << unsigned(blk.succBits) << ")\n";
    std::cout << "    merged basic blocks:";
    for (BlockId b : blk.bbs)
        std::cout << " B" << b;
    if (!blk.dirs.empty()) {
        std::cout << "   (directions:";
        for (bool d : blk.dirs)
            std::cout << (d ? " taken" : " not-taken");
        std::cout << ")";
    }
    std::cout << "\n";
    for (const Operation &op : blk.ops) {
        std::cout << "      " << op.toString();
        if (op.op == Opcode::Fault) {
            std::cout << (op.imm ? "   ; fires when cond is FALSE "
                                   "(complemented, merged taken-side)"
                                 : "   ; fires when cond is TRUE "
                                   "(merged fall-through)");
            std::cout << " -> redirects to AB" << op.target0;
        }
        std::cout << "\n";
    }
}

} // namespace

int
main()
{
    const Module module = compileBlockCOrDie(kProgram);

    std::cout << "==== conventional control-flow graph ====\n";
    printFunction(std::cout, module.functions[module.mainFunc]);

    EnlargeStats stats;
    BsaModule bsa = enlargeModule(module, EnlargeConfig{}, nullptr,
                                  &stats);
    layoutBsaModule(bsa);

    std::cout << "\n==== after block enlargement ====\n";
    std::cout << "atomic blocks: " << stats.atomicBlocks
              << ", trap->fault conversions: " << stats.mergedEdges
              << ", jumps deleted: " << stats.thruMerges
              << ", code expansion: " << stats.expansion() << "x\n\n";

    for (const auto &bf : bsa.funcs) {
        for (const auto &[head, trie] : bf.tries) {
            std::cout << "head B" << head << " of f" << bf.id << ": "
                      << trie.emitted.size() << " variant(s), "
                      << unsigned(trie.variantBits)
                      << " selection bit(s)\n";
            for (int n : trie.emitted)
                dumpAtomicBlock(bsa, bsa.blocks[trie.nodes[n].block]);
            std::cout << "\n";
        }
    }

    std::cout << "Note how the if/else became TWO enlarged blocks (the "
                 "paper's BC and BD):\neach contains the condition "
                 "computation, ONE arm, and a fault whose target\nis "
                 "the sibling variant, so a wrong fetch repairs itself "
                 "at run time.\n";
    return 0;
}
