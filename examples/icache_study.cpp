/**
 * @file
 * Icache study: the paper's figure-6/7 experiment on a single
 * workload, extended with a finer size sweep.
 *
 * Generates the synthetic gcc stand-in (the suite's most icache-bound
 * benchmark), then sweeps the L1 icache from 4 KB to 256 KB for both
 * machines and reports cycles, miss rates, and the slowdown relative
 * to a perfect icache — making the code-duplication cost of block
 * enlargement directly visible.
 */

#include <iostream>

#include "codegen/layout.hh"
#include "exp/runner.hh"
#include "support/table.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

int
main()
{
    const auto suite = specint95Suite();
    const SpecBenchmark &bench = suite[1];  // gcc
    std::cout << "workload: synthetic '" << bench.params.name
              << "' stand-in\n";

    const Module module = generateWorkload(bench.params);
    BsaModule bsa = enlargeModule(module, EnlargeConfig{});
    const std::uint64_t bsa_bytes = layoutBsaModule(bsa);
    std::cout << "conventional code: " << module.numOps() * opBytes
              << " bytes; block-structured code: " << bsa_bytes
              << " bytes (duplication!)\n\n";

    Interp::Limits limits;
    limits.maxOps = bench.paperInstructions / 400;

    // Perfect-icache baselines.
    MachineConfig ideal;
    ideal.icache.perfect = true;
    const std::uint64_t conv_base =
        runConventional(module, ideal, limits).cycles;
    const std::uint64_t bsa_base =
        runBlockStructured(bsa, ideal, limits).cycles;

    Table t({"icache", "conv cycles", "conv miss%", "conv slowdown",
             "bsa cycles", "bsa miss%", "bsa slowdown"});
    for (unsigned kb : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        MachineConfig machine;
        machine.icache.sizeBytes = kb * 1024;
        const SimResult conv =
            runConventional(module, machine, limits);
        const SimResult blk =
            runBlockStructured(bsa, machine, limits);
        t.addRow({std::to_string(kb) + "KB",
                  Table::fmtSep(conv.cycles),
                  Table::fmt(100.0 * conv.icache.missRate(), 2),
                  Table::fmt(double(conv.cycles) / conv_base - 1.0, 3),
                  Table::fmtSep(blk.cycles),
                  Table::fmt(100.0 * blk.icache.missRate(), 2),
                  Table::fmt(double(blk.cycles) / bsa_base - 1.0, 3)});
    }
    t.print(std::cout);

    std::cout << "\nThe block-structured executable needs roughly "
                 "twice the icache for the\nsame miss rate — the "
                 "price of keeping every block combination as a\n"
                 "separate enlarged block (paper, section 5).\n";
    return 0;
}
