/**
 * @file
 * IR tour: the compiler's intermediate form as a first-class artifact.
 *
 * Shows the textual IR round trip (serialize -> parse -> identical
 * program), hand-written IR being assembled and executed directly, and
 * how compiler stages transform the same function (raw vs optimized vs
 * register-allocated op counts).
 */

#include <iostream>

#include "frontend/compile.hh"
#include "ir/textform.hh"
#include "ir/verifier.hh"
#include "sim/interp.hh"

using namespace bsisa;

int
main()
{
    // ---------------------------------------------------------------
    // 1. Hand-written IR, assembled from text and executed directly.
    //    (This is the format `bsisac compile` emits.)
    // ---------------------------------------------------------------
    const char *hand_written = R"(
        module main=f0
        data 4
        0 10
        1 32
        end
        func main id=0 library=0 vregs=32 frame=0
        block
          movi r12, 1048576
          ld r13, [r12 + 0]
          ld r14, [r12 + 8]
          add r4, r13, r14
          halt
        endblock
        endfunc
    )";
    const ParseModuleResult parsed = parseModuleText(hand_written);
    if (!parsed.ok) {
        std::cerr << "assembler error: " << parsed.error << "\n";
        return 1;
    }
    Interp hand(parsed.module);
    hand.run();
    std::cout << "hand-written IR computes data[0] + data[1] = "
              << hand.exitValue() << "\n\n";

    // ---------------------------------------------------------------
    // 2. Compiler stages on one program.
    // ---------------------------------------------------------------
    const char *src = R"(
        var g[4];
        fn main() {
            var a = 6;
            var b = a * 7;        // foldable
            var dead = b * 100;   // dead
            g[0] = b;
            return g[0];
        }
    )";
    CompileOptions raw_opts;
    raw_opts.optimize = false;
    raw_opts.allocate = false;
    const Module raw = compileBlockCOrDie(src, raw_opts);

    CompileOptions opt_opts;
    opt_opts.allocate = false;
    const Module optimized = compileBlockCOrDie(src, opt_opts);

    const Module allocated = compileBlockCOrDie(src);

    std::cout << "stage op counts: raw=" << raw.numOps()
              << "  optimized=" << optimized.numOps()
              << "  register-allocated=" << allocated.numOps() << "\n";
    std::cout << "virtual registers: raw="
              << raw.functions[raw.mainFunc].numVirtualRegs
              << "  allocated="
              << allocated.functions[allocated.mainFunc].numVirtualRegs
              << "\n\n";

    // ---------------------------------------------------------------
    // 3. Round trip: text(parse(text(M))) == text(M).
    // ---------------------------------------------------------------
    const std::string text = moduleToText(allocated);
    const ParseModuleResult again = parseModuleText(text);
    if (!again.ok) {
        std::cerr << "round-trip error: " << again.error << "\n";
        return 1;
    }
    std::cout << "round trip: "
              << (moduleToText(again.module) == text
                      ? "text fixpoint reached"
                      : "MISMATCH")
              << " (" << text.size() << " bytes of IR text)\n\n";

    std::cout << "==== final register-allocated IR ====\n" << text;
    return 0;
}
