/**
 * @file
 * Predictor lab: how successor prediction quality shapes the
 * block-structured advantage.
 *
 * Runs one workload across predictor configurations — from a tiny
 * 2-bit-history predictor to the oracle — on both machines, showing
 * (a) the paper's figure-3-vs-figure-4 effect (the BSA gain grows
 * with prediction quality because fault mispredictions discard good
 * work), and (b) the variable-history-shift block predictor tracking
 * the conventional predictor's accuracy.
 */

#include <iostream>

#include "exp/runner.hh"
#include "support/table.hh"
#include "workloads/specmix.hh"

using namespace bsisa;

int
main()
{
    const auto suite = specint95Suite();
    const SpecBenchmark &bench = suite[6];  // perl: branchy
    std::cout << "workload: synthetic '" << bench.params.name
              << "' stand-in\n\n";
    const Module module = generateWorkload(bench.params);

    RunConfig base;
    base.limits.maxOps = bench.paperInstructions / 400;

    Table t({"predictor", "conv acc", "bsa acc", "conv cycles",
             "bsa cycles", "reduction"});

    struct Setup
    {
        const char *name;
        unsigned history;
        unsigned pht;
        bool perfect;
    };
    const Setup setups[] = {
        {"2-bit history / 1K PHT", 2, 10, false},
        {"8-bit history / 4K PHT", 8, 12, false},
        {"12-bit history / 16K PHT (paper-ish)", 12, 14, false},
        {"16-bit history / 64K PHT", 16, 16, false},
        {"perfect (figure 4)", 12, 14, true},
    };

    for (const Setup &setup : setups) {
        RunConfig config = base;
        config.machine.predictor.historyBits = setup.history;
        config.machine.predictor.phtBits = setup.pht;
        config.machine.perfectPrediction = setup.perfect;
        const PairResult r = runPair(module, config);
        t.addRow({setup.name,
                  Table::fmt(100.0 * r.conv.branchAccuracy(), 1) + "%",
                  Table::fmt(100.0 * r.bsa.branchAccuracy(), 1) + "%",
                  Table::fmtSep(r.conv.cycles),
                  Table::fmtSep(r.bsa.cycles),
                  Table::fmt(100.0 * r.reduction(), 1) + "%"});
    }
    t.print(std::cout);

    std::cout << "\nBetter prediction widens the block-structured "
                 "lead: a mispredicted fault\nthrows away the whole "
                 "atomic block's work, so the BSA machine pays more\n"
                 "per miss and gains more per hit (paper, section 5, "
                 "figures 3 vs 4).\n";
    return 0;
}
