/**
 * @file
 * Quickstart: compile a BlockC program, run it on both machines, and
 * compare.
 *
 * This walks the library's whole public pipeline in ~80 lines:
 *   1. compile BlockC source to the conventional load/store ISA;
 *   2. execute it functionally (correct answer, dynamic op count);
 *   3. run the block enlargement pass to get a block-structured
 *      program;
 *   4. simulate both programs cycle-by-cycle on identically
 *      configured 16-wide machines;
 *   5. print the comparison.
 */

#include <iostream>

#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "sim/interp.hh"
#include "support/table.hh"

using namespace bsisa;

namespace
{

const char *kProgram = R"(
    // A toy histogram/transform kernel.
    var data[256];
    var hist[16];

    fn classify(v) {
        if (v < 0) { return 0; }
        if (v < 100) { return 1; }
        return 2;
    }

    fn main() {
        // Fill with a deterministic pseudo-random sequence.
        var x = 12345;
        for (var i = 0; i < 256; i = i + 1) {
            x = (x * 1103515245 + 12345) & 0x7fffffff;
            data[i] = x & 0xff;
        }
        // Histogram with a data-dependent branch per element.
        var sum = 0;
        for (var i = 0; i < 256; i = i + 1) {
            var v = data[i];
            if (v & 1) { hist[v & 15] = hist[v & 15] + 1; }
            else { sum = sum + classify(v); }
        }
        return sum;
    }
)";

} // namespace

int
main()
{
    // 1. Compile.
    const Module module = compileBlockCOrDie(kProgram);
    std::cout << "compiled: " << module.functions.size()
              << " functions, " << module.numOps()
              << " static operations\n";

    // 2. Functional execution.
    Interp interp(module);
    interp.run();
    std::cout << "program result: " << interp.exitValue() << " ("
              << interp.dynOps() << " dynamic ops)\n\n";

    // 3. Block enlargement.
    EnlargeStats stats;
    BsaModule bsa = enlargeModule(module, EnlargeConfig{}, nullptr,
                                  &stats);
    layoutBsaModule(bsa);
    std::cout << "block enlargement: " << stats.atomicBlocks
              << " atomic blocks, " << stats.mergedEdges
              << " trap->fault conversions, code expansion "
              << stats.expansion() << "x\n\n";

    // 4. Cycle-level simulation of both machines.
    RunConfig config;
    const PairResult r = runPair(module, config);

    // 5. Report.
    Table t({"metric", "conventional", "block-structured"});
    t.addRow({"cycles", Table::fmtSep(r.conv.cycles),
              Table::fmtSep(r.bsa.cycles)});
    t.addRow({"retired ops", Table::fmtSep(r.conv.retiredOps),
              Table::fmtSep(r.bsa.retiredOps)});
    t.addRow({"avg block size", Table::fmt(r.conv.avgBlockSize(), 2),
              Table::fmt(r.bsa.avgBlockSize(), 2)});
    t.addRow({"IPC", Table::fmt(r.conv.ipc(), 2),
              Table::fmt(r.bsa.ipc(), 2)});
    t.addRow({"branch accuracy",
              Table::fmt(100.0 * r.conv.branchAccuracy(), 1) + "%",
              Table::fmt(100.0 * r.bsa.branchAccuracy(), 1) + "%"});
    t.print(std::cout);
    std::cout << "\nexecution time reduction: "
              << Table::fmt(100.0 * r.reduction(), 1) << "%\n";
    return 0;
}
