/**
 * @file
 * Table-1 latency definitions.
 */

#include "arch/instr_class.hh"

#include "support/logging.hh"

namespace bsisa
{

unsigned
execLatency(InstrClass cls)
{
    switch (cls) {
      case InstrClass::IntAlu:
        return 1;
      case InstrClass::FpAdd:
        return 3;
      case InstrClass::FpIntMul:
        return 3;
      case InstrClass::FpIntDiv:
        return 8;
      case InstrClass::Load:
        return 2;
      case InstrClass::Store:
        return 1;
      case InstrClass::BitField:
        return 1;
      case InstrClass::Branch:
        return 1;
    }
    panic("bad instruction class");
}

const char *
instrClassName(InstrClass cls)
{
    switch (cls) {
      case InstrClass::IntAlu:
        return "Integer";
      case InstrClass::FpAdd:
        return "FP Add";
      case InstrClass::FpIntMul:
        return "FP/INT Mul";
      case InstrClass::FpIntDiv:
        return "FP/INT Div";
      case InstrClass::Load:
        return "Load";
      case InstrClass::Store:
        return "Store";
      case InstrClass::BitField:
        return "Bit Field";
      case InstrClass::Branch:
        return "Branch";
    }
    panic("bad instruction class");
}

} // namespace bsisa
