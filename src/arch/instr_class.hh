/**
 * @file
 * Instruction classes and execution latencies.
 *
 * This reproduces Table 1 of the paper exactly: eight classes with
 * execution latencies of 1 (integer ALU), 3 (FP add/convert), 3
 * (FP/INT multiply), 8 (FP/INT divide), 2 (loads), 1 (stores), 1
 * (shift and bit testing), and 1 (control).
 */

#ifndef BSISA_ARCH_INSTR_CLASS_HH
#define BSISA_ARCH_INSTR_CLASS_HH

namespace bsisa
{

/** The paper's Table-1 instruction classes. */
enum class InstrClass : unsigned char
{
    IntAlu,    //!< INT add, sub and logic OPs
    FpAdd,     //!< FP add, sub, and convert
    FpIntMul,  //!< FP mul and INT mul
    FpIntDiv,  //!< FP div and INT div
    Load,      //!< Memory loads
    Store,     //!< Memory stores
    BitField,  //!< Shift, and bit testing
    Branch,    //!< Control instructions
};

constexpr unsigned numInstrClasses = 8;

/** Execution latency in cycles for a class (Table 1). */
unsigned execLatency(InstrClass cls);

/** Human-readable class name. */
const char *instrClassName(InstrClass cls);

} // namespace bsisa

#endif // BSISA_ARCH_INSTR_CLASS_HH
