/**
 * @file
 * Opcode property tables.
 */

#include "arch/opcode.hh"

#include "support/logging.hh"

namespace bsisa
{

InstrClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::MovI:
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::AddI:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::AndI:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::CmpEq:
      case Opcode::CmpEqI:
      case Opcode::CmpNe:
      case Opcode::CmpLt:
      case Opcode::CmpLtI:
      case Opcode::CmpLe:
        return InstrClass::IntAlu;
      case Opcode::Shl:
      case Opcode::ShlI:
      case Opcode::Shr:
      case Opcode::ShrI:
      case Opcode::BitTest:
        return InstrClass::BitField;
      case Opcode::Mul:
      case Opcode::FMul:
        return InstrClass::FpIntMul;
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::FDiv:
        return InstrClass::FpIntDiv;
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FCvt:
        return InstrClass::FpAdd;
      case Opcode::Ld:
        return InstrClass::Load;
      case Opcode::St:
        return InstrClass::Store;
      case Opcode::Jmp:
      case Opcode::Trap:
      case Opcode::Fault:
      case Opcode::Call:
      case Opcode::IJmp:
      case Opcode::Ret:
      case Opcode::Halt:
        return InstrClass::Branch;
    }
    panic("bad opcode");
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::MovI: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::AddI: return "addi";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::AndI: return "andi";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpEqI: return "cmpeqi";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLtI: return "cmplti";
      case Opcode::CmpLe: return "cmple";
      case Opcode::Shl: return "shl";
      case Opcode::ShlI: return "shli";
      case Opcode::Shr: return "shr";
      case Opcode::ShrI: return "shri";
      case Opcode::BitTest: return "bittest";
      case Opcode::Mul: return "mul";
      case Opcode::FMul: return "fmul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FCvt: return "fcvt";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Jmp: return "jmp";
      case Opcode::Trap: return "trap";
      case Opcode::Fault: return "fault";
      case Opcode::Call: return "call";
      case Opcode::IJmp: return "ijmp";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
    }
    panic("bad opcode");
}

bool
isTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Jmp:
      case Opcode::Trap:
      case Opcode::Call:
      case Opcode::IJmp:
      case Opcode::Ret:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

bool
hasDest(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::St:
      case Opcode::Jmp:
      case Opcode::Trap:
      case Opcode::Fault:
      case Opcode::Call:
      case Opcode::IJmp:
      case Opcode::Ret:
      case Opcode::Halt:
        return false;
      default:
        return true;
    }
}

unsigned
numSources(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::MovI:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::Halt:
        return 0;
      case Opcode::Mov:
      case Opcode::AddI:
      case Opcode::AndI:
      case Opcode::CmpEqI:
      case Opcode::CmpLtI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::FCvt:
      case Opcode::Ld:
      case Opcode::Trap:
      case Opcode::Fault:
      case Opcode::IJmp:
        return 1;
      default:
        return 2;
    }
}

} // namespace bsisa
