/**
 * @file
 * Opcodes of the load/store ISA that underlies both the conventional
 * and the block-structured machine (section 4.1 of the paper: the
 * operations in an atomic block "correspond to the instructions of a
 * load/store architecture with the exception of conditional branches
 * with direct targets", which become trap and fault operations).
 */

#ifndef BSISA_ARCH_OPCODE_HH
#define BSISA_ARCH_OPCODE_HH

#include "arch/instr_class.hh"

namespace bsisa
{

enum class Opcode : unsigned char
{
    // Integer ALU (latency 1)
    Nop,
    MovI,    //!< dst = imm
    Mov,     //!< dst = src1
    Add,     //!< dst = src1 + src2
    AddI,    //!< dst = src1 + imm
    Sub,     //!< dst = src1 - src2
    And,     //!< dst = src1 & src2
    AndI,    //!< dst = src1 & imm
    Or,      //!< dst = src1 | src2
    Xor,     //!< dst = src1 ^ src2
    CmpEq,   //!< dst = (src1 == src2)
    CmpEqI,  //!< dst = (src1 == imm)
    CmpNe,   //!< dst = (src1 != src2)
    CmpLt,   //!< dst = (src1 < src2), signed
    CmpLtI,  //!< dst = (src1 < imm), signed
    CmpLe,   //!< dst = (src1 <= src2), signed

    // Bit field (latency 1)
    Shl,     //!< dst = src1 << (src2 & 63)
    ShlI,    //!< dst = src1 << (imm & 63)
    Shr,     //!< dst = src1 >> (src2 & 63), logical
    ShrI,    //!< dst = src1 >> (imm & 63), logical
    BitTest, //!< dst = (src1 >> (src2 & 63)) & 1

    // FP/INT multiply (latency 3)
    Mul,     //!< dst = src1 * src2
    FMul,    //!< dst = fp(src1) * fp(src2)

    // FP/INT divide (latency 8)
    Div,     //!< dst = src1 / src2, signed; x/0 == 0
    Rem,     //!< dst = src1 % src2, signed; x%0 == x
    FDiv,    //!< dst = fp(src1) / fp(src2)

    // FP add (latency 3)
    FAdd,    //!< dst = fp(src1) + fp(src2)
    FSub,    //!< dst = fp(src1) - fp(src2)
    FCvt,    //!< dst = double(int64(src1))

    // Memory (loads latency 2 + dcache, stores latency 1)
    Ld,      //!< dst = mem64[src1 + imm]
    St,      //!< mem64[src1 + imm] = src2

    // Control (latency 1).  Only these may terminate a block.
    Jmp,     //!< goto target0
    Trap,    //!< if (src1 != 0) goto target0 else goto target1
    Fault,   //!< if (src1 != 0) suppress block, goto atomic block target0
    Call,    //!< call function 'callee'; continue at target0 on return
    IJmp,    //!< goto jumpTable[imm][src1 % size]
    Ret,     //!< return to caller (value in regRet)
    Halt,    //!< stop the program
};

/** Instruction class (and thereby Table-1 latency) of an opcode. */
InstrClass opcodeClass(Opcode op);

/** Mnemonic for printing. */
const char *opcodeName(Opcode op);

/** True iff the opcode may appear only as a block terminator.  Fault
 *  is not a terminator: it sits in the interior of enlarged blocks. */
bool isTerminator(Opcode op);

/** True iff the opcode writes a destination register. */
bool hasDest(Opcode op);

/** Number of register sources read (0, 1, or 2). */
unsigned numSources(Opcode op);

} // namespace bsisa

#endif // BSISA_ARCH_OPCODE_HH
