/**
 * @file
 * Operation factories and printing.
 */

#include "arch/operation.hh"

#include <sstream>

namespace bsisa
{

std::string
Operation::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    switch (op) {
      case Opcode::Nop:
        break;
      case Opcode::MovI:
        os << " r" << dst << ", " << imm;
        break;
      case Opcode::Mov:
      case Opcode::FCvt:
        os << " r" << dst << ", r" << src1;
        break;
      case Opcode::AddI:
      case Opcode::AndI:
      case Opcode::CmpEqI:
      case Opcode::CmpLtI:
      case Opcode::ShlI:
      case Opcode::ShrI:
        os << " r" << dst << ", r" << src1 << ", " << imm;
        break;
      case Opcode::Ld:
        os << " r" << dst << ", [r" << src1 << " + " << imm << "]";
        break;
      case Opcode::St:
        os << " [r" << src1 << " + " << imm << "], r" << src2;
        break;
      case Opcode::Jmp:
        os << " B" << target0;
        break;
      case Opcode::Trap:
        os << " r" << src1 << ", B" << target0 << ", B" << target1
           << " (succBits " << unsigned(succBits) << ")";
        break;
      case Opcode::Fault:
        os << " r" << src1 << ", AB" << target0;
        if (imm != 0)
            os << ", inv";  // fires when the condition is FALSE
        break;
      case Opcode::Call:
        os << " f" << callee << ", cont B" << target0;
        break;
      case Opcode::IJmp:
        os << " r" << src1 << ", table " << imm;
        break;
      case Opcode::Ret:
      case Opcode::Halt:
        break;
      default:
        os << " r" << dst << ", r" << src1 << ", r" << src2;
        break;
    }
    return os.str();
}

Operation
makeNop()
{
    return Operation{};
}

Operation
makeMovI(RegNum dst, std::int64_t imm)
{
    Operation o;
    o.op = Opcode::MovI;
    o.dst = dst;
    o.imm = imm;
    return o;
}

Operation
makeMov(RegNum dst, RegNum src)
{
    Operation o;
    o.op = Opcode::Mov;
    o.dst = dst;
    o.src1 = src;
    return o;
}

Operation
makeBin(Opcode op, RegNum dst, RegNum s1, RegNum s2)
{
    Operation o;
    o.op = op;
    o.dst = dst;
    o.src1 = s1;
    o.src2 = s2;
    return o;
}

Operation
makeBinI(Opcode op, RegNum dst, RegNum s1, std::int64_t imm)
{
    Operation o;
    o.op = op;
    o.dst = dst;
    o.src1 = s1;
    o.imm = imm;
    return o;
}

Operation
makeLd(RegNum dst, RegNum base, std::int64_t off)
{
    Operation o;
    o.op = Opcode::Ld;
    o.dst = dst;
    o.src1 = base;
    o.imm = off;
    return o;
}

Operation
makeSt(RegNum base, std::int64_t off, RegNum value)
{
    Operation o;
    o.op = Opcode::St;
    o.src1 = base;
    o.src2 = value;
    o.imm = off;
    return o;
}

Operation
makeJmp(BlockId target)
{
    Operation o;
    o.op = Opcode::Jmp;
    o.target0 = target;
    return o;
}

Operation
makeTrap(RegNum cond, BlockId taken, BlockId notTaken)
{
    Operation o;
    o.op = Opcode::Trap;
    o.src1 = cond;
    o.target0 = taken;
    o.target1 = notTaken;
    return o;
}

Operation
makeFault(RegNum cond, AtomicBlockId target)
{
    Operation o;
    o.op = Opcode::Fault;
    o.src1 = cond;
    o.target0 = target;
    return o;
}

Operation
makeCall(FuncId callee, BlockId continuation)
{
    Operation o;
    o.op = Opcode::Call;
    o.callee = callee;
    o.target0 = continuation;
    return o;
}

Operation
makeIJmp(RegNum index, std::uint32_t tableIndex)
{
    Operation o;
    o.op = Opcode::IJmp;
    o.src1 = index;
    o.imm = tableIndex;
    return o;
}

Operation
makeRet()
{
    Operation o;
    o.op = Opcode::Ret;
    return o;
}

Operation
makeHalt()
{
    Operation o;
    o.op = Opcode::Halt;
    return o;
}

} // namespace bsisa
