/**
 * @file
 * The Operation: one load/store-architecture instruction, or one
 * operation inside an atomic block.  All operations occupy 4 bytes in
 * the laid-out executable image.
 */

#ifndef BSISA_ARCH_OPERATION_HH
#define BSISA_ARCH_OPERATION_HH

#include <cstdint>
#include <string>

#include "arch/opcode.hh"
#include "arch/reg.hh"

namespace bsisa
{

/** Block identifier, local to a function's block list. */
using BlockId = std::uint32_t;
/** Function identifier within a Module. */
using FuncId = std::uint32_t;
/** Atomic-block identifier, global within a BsaModule. */
using AtomicBlockId = std::uint32_t;

constexpr std::uint32_t invalidId = 0xffffffffu;

/** Bytes occupied by one operation in the executable image. */
constexpr unsigned opBytes = 4;

/**
 * A single operation.  Field use depends on the opcode:
 *   - ALU/memory ops use dst/src1/src2/imm as documented in opcode.hh.
 *   - Jmp: target0 is the successor block.
 *   - Trap: src1 is the condition; target0/target1 are the taken /
 *     not-taken successors; succBits is the log2 of the number of
 *     control-flow successors of the block (section 4.1) which tells
 *     the predictor how many history bits to shift (section 4.3).
 *   - Fault: src1 is the condition; target0 is the *atomic* block the
 *     instruction stream is redirected to when the condition is true.
 *   - Call: callee is the function; target0 is the continuation block.
 *   - IJmp: imm is the index of a per-function jump table; src1 picks
 *     the entry.
 */
struct Operation
{
    Opcode op = Opcode::Nop;
    RegNum dst = 0;
    RegNum src1 = 0;
    RegNum src2 = 0;
    std::int64_t imm = 0;
    std::uint32_t target0 = invalidId;
    std::uint32_t target1 = invalidId;
    FuncId callee = invalidId;
    std::uint8_t succBits = 1;

    /** Instruction class of this operation. */
    InstrClass cls() const { return opcodeClass(op); }

    /** Table-1 execution latency. */
    unsigned latency() const { return execLatency(cls()); }

    /** True iff this operation ends a basic block. */
    bool terminates() const { return isTerminator(op); }

    /** One-line textual form (for dumps and tests). */
    std::string toString() const;
};

// Factory helpers keep construction sites short and readable.
Operation makeNop();
Operation makeMovI(RegNum dst, std::int64_t imm);
Operation makeMov(RegNum dst, RegNum src);
Operation makeBin(Opcode op, RegNum dst, RegNum s1, RegNum s2);
Operation makeBinI(Opcode op, RegNum dst, RegNum s1, std::int64_t imm);
Operation makeLd(RegNum dst, RegNum base, std::int64_t off);
Operation makeSt(RegNum base, std::int64_t off, RegNum value);
Operation makeJmp(BlockId target);
Operation makeTrap(RegNum cond, BlockId taken, BlockId notTaken);
Operation makeFault(RegNum cond, AtomicBlockId target);
Operation makeCall(FuncId callee, BlockId continuation);
Operation makeIJmp(RegNum index, std::uint32_t tableIndex);
Operation makeRet();
Operation makeHalt();

} // namespace bsisa

#endif // BSISA_ARCH_OPERATION_HH
