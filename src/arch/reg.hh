/**
 * @file
 * Register numbering and the ABI.
 *
 * The conventional ISA modelled here is a register-windowed load/store
 * architecture with 32 architectural GPRs per window.  On a call, the
 * callee receives a fresh window whose low 32 registers are copied from
 * the caller (so argument registers carry values in); on return, the
 * return-value register is copied back and the caller's window is
 * restored.  Register windows keep every register effectively preserved
 * across calls, which removes caller/callee-save traffic from the
 * register allocator without affecting anything the paper measures
 * (fetch rate, prediction accuracy, icache behaviour).
 *
 * Before register allocation, functions additionally use an unbounded
 * set of virtual registers numbered from firstVirtualReg upward; the
 * low 32 numbers always refer to the architectural registers so ABI
 * copies can be expressed in the same operation format.
 */

#ifndef BSISA_ARCH_REG_HH
#define BSISA_ARCH_REG_HH

#include <cstdint>

namespace bsisa
{

/** Register number; < numArchRegs means architectural. */
using RegNum = std::uint32_t;

constexpr RegNum numArchRegs = 32;

/** r0 is hardwired to zero. */
constexpr RegNum regZero = 0;
/** Stack pointer (frame allocation for spills and local arrays). */
constexpr RegNum regSp = 1;
/** First argument / return-value register. */
constexpr RegNum regArg0 = 4;
/** Number of register arguments in the ABI. */
constexpr unsigned numArgRegs = 8;
/** Return value register (same as first argument register). */
constexpr RegNum regRet = regArg0;
/** First register the allocator may assign freely. */
constexpr RegNum firstAllocatableReg = 12;

/** Virtual registers are numbered from here before allocation. */
constexpr RegNum firstVirtualReg = numArchRegs;

/** True iff @p r is an architectural register. */
constexpr bool
isArchReg(RegNum r)
{
    return r < numArchRegs;
}

} // namespace bsisa

#endif // BSISA_ARCH_REG_HH
