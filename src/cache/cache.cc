/**
 * @file
 * Cache model implementation.
 */

#include "cache/cache.hh"

#include "support/bitutil.hh"
#include "support/logging.hh"

namespace bsisa
{

std::uint32_t
CacheConfig::numSets() const
{
    return sizeBytes / (assoc * lineBytes);
}

Cache::Cache(const CacheConfig &config)
    : cfg(config)
{
    BSISA_ASSERT(isPowerOfTwo(cfg.lineBytes));
    lineShift = floorLog2(cfg.lineBytes);
    if (!cfg.perfect) {
        const std::uint32_t sets = cfg.numSets();
        BSISA_ASSERT(sets > 0 && isPowerOfTwo(sets),
                     "cache sets must be a nonzero power of two");
        setMask = sets - 1;
        lines.resize(std::size_t(sets) * cfg.assoc);
    } else {
        setMask = 0;
    }
}

bool
Cache::accessLine(std::uint64_t lineAddr)
{
    ++statistics.accesses;
    if (cfg.perfect)
        return true;

    const std::uint32_t set = lineAddr & setMask;
    const std::uint64_t tag = lineAddr;  // full line addr as tag
    Line *base = &lines[std::size_t(set) * cfg.assoc];

    ++useClock;
    Line *victim = base;
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    ++statistics.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    return false;
}

unsigned
Cache::accessRange(std::uint64_t addr, std::uint32_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    const std::uint64_t first = addr >> lineShift;
    const std::uint64_t last = (addr + bytes - 1) >> lineShift;
    unsigned missing = 0;
    for (std::uint64_t line = first; line <= last; ++line)
        missing += !accessLine(line);
    return missing;
}

void
Cache::flush()
{
    for (Line &line : lines)
        line.valid = false;
}

} // namespace bsisa
