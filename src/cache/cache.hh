/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * Used for both the L1 instruction cache (whose size the paper sweeps
 * across 16/32/64 KB, 4-way, backed by a perfect 6-cycle L2) and the
 * 16 KB L1 data cache.  The model tracks hits/misses only; timing is
 * applied by the pipeline model.
 */

#ifndef BSISA_CACHE_CACHE_HH
#define BSISA_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

namespace bsisa
{

/** Cache geometry. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = 64;
    bool perfect = false;  //!< always hits (infinite cache)

    std::uint32_t numSets() const;
};

/** Access statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }
};

class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access one line; allocates on miss.
     * @retval true hit.
     */
    bool
    access(std::uint64_t addr)
    {
        return accessLine(addr >> lineShift);
    }

    /**
     * Access a byte range (e.g. an atomic block spanning lines).
     * @return number of missing lines (0 = all hit).
     */
    unsigned accessRange(std::uint64_t addr, std::uint32_t bytes);

    /** Invalidate everything (keeps statistics). */
    void flush();

    const CacheStats &stats() const { return statistics; }
    const CacheConfig &config() const { return cfg; }

  private:
    struct Line
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /** Probe by line number (addr >> lineShift); allocates on miss.
     *  Internal granularity shared by access() and accessRange(),
     *  which walks whole lines without re-deriving byte addresses. */
    bool accessLine(std::uint64_t lineAddr);

    CacheConfig cfg;
    /** log2(lineBytes); valid in perfect mode too. */
    std::uint32_t lineShift;
    std::uint32_t setMask;
    std::vector<Line> lines;  //!< sets * assoc, set-major
    std::uint64_t useClock = 0;
    CacheStats statistics;
};

} // namespace bsisa

#endif // BSISA_CACHE_CACHE_HH
