/**
 * @file
 * Trace cache implementation.
 */

#include "cache/trace_cache.hh"

#include "support/logging.hh"

namespace bsisa
{

TraceCache::TraceCache(const TraceCacheConfig &config)
    : cfg(config), slots(config.entries)
{
    BSISA_ASSERT(cfg.entries % cfg.assoc == 0);
    BSISA_ASSERT(cfg.maxBlocks >= 1 && cfg.maxOps >= 1);
}

std::size_t
TraceCache::setOf(std::uint64_t start) const
{
    const std::size_t sets = cfg.entries / cfg.assoc;
    // Mix function and block id bits.
    return (start ^ (start >> 32)) % sets;
}

const Trace *
TraceCache::lookup(std::uint64_t start,
                   const std::vector<bool> &predictedDirs)
{
    Trace *base = &slots[setOf(start) * cfg.assoc];
    ++clock;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Trace &trace = base[w];
        if (!trace.valid || trace.start != start)
            continue;
        // The trace is usable when its interior directions agree with
        // the predictions we have.
        bool match = trace.dirs.size() <= predictedDirs.size();
        for (std::size_t i = 0; match && i < trace.dirs.size(); ++i)
            match = trace.dirs[i] == predictedDirs[i];
        if (match) {
            trace.lastUse = clock;
            ++nHits;
            return &trace;
        }
    }
    ++nMisses;
    return nullptr;
}

void
TraceCache::install(const Trace &trace)
{
    BSISA_ASSERT(trace.valid && !trace.blocks.empty());
    Trace *base = &slots[setOf(trace.start) * cfg.assoc];
    ++clock;
    Trace *victim = base;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Trace &slot = base[w];
        // Replace an existing same-start same-dirs trace in place.
        if (slot.valid && slot.start == trace.start &&
            slot.dirs == trace.dirs) {
            victim = &slot;
            break;
        }
        if (!slot.valid) {
            victim = &slot;
        } else if (victim->valid && slot.lastUse < victim->lastUse) {
            victim = &slot;
        }
    }
    *victim = trace;
    victim->lastUse = clock;
}

} // namespace bsisa
