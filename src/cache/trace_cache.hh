/**
 * @file
 * A trace cache model (Rotenberg, Bennett, and Smith, 1996 — the
 * paper's reference [19] and its closest competitor).
 *
 * The trace cache records sequences of committed basic blocks (a
 * *trace*: up to maxBlocks blocks / maxOps operations, ending early at
 * any call/return/indirect jump).  When the fetch unit's predicted
 * path matches a cached trace, the whole trace is fetched in one
 * cycle; otherwise the core fetch unit supplies one basic block per
 * cycle and the fill unit learns the new trace.
 *
 * Traces are identified by their starting block and the directions of
 * their interior conditional branches, set-associative on the start.
 */

#ifndef BSISA_CACHE_TRACE_CACHE_HH
#define BSISA_CACHE_TRACE_CACHE_HH

#include <cstdint>
#include <vector>

namespace bsisa
{

/** Geometry of the trace cache. */
struct TraceCacheConfig
{
    unsigned entries = 64;   //!< total trace slots
    unsigned assoc = 4;
    unsigned maxBlocks = 3;  //!< basic blocks per trace
    unsigned maxOps = 16;    //!< operations per trace
};

/** One cached trace. */
struct Trace
{
    std::uint64_t start = ~0ull;      //!< starting block token
    std::vector<std::uint64_t> blocks;  //!< block tokens, in order
    /** Interior branch directions (blocks.size()-1 entries at most;
     *  unconditional interior edges contribute no bit). */
    std::vector<bool> dirs;
    unsigned ops = 0;
    bool valid = false;
    std::uint64_t lastUse = 0;
};

class TraceCache
{
  public:
    explicit TraceCache(const TraceCacheConfig &config);

    /**
     * Look up a trace starting at @p start whose interior directions
     * are a prefix of @p predictedDirs.
     * @return the trace, or null on miss.
     */
    const Trace *lookup(std::uint64_t start,
                        const std::vector<bool> &predictedDirs);

    /** Install (or refresh) a trace. */
    void install(const Trace &trace);

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }

    const TraceCacheConfig &config() const { return cfg; }

  private:
    TraceCacheConfig cfg;
    std::vector<Trace> slots;
    std::uint64_t clock = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;

    std::size_t setOf(std::uint64_t start) const;
};

} // namespace bsisa

#endif // BSISA_CACHE_TRACE_CACHE_HH
