/**
 * @file
 * Layout implementation.
 */

#include "codegen/layout.hh"

namespace bsisa
{

ConvLayout::ConvLayout(const Module &module)
{
    std::uint64_t addr = codeBase;
    blockAddr.resize(module.functions.size());
    blockBytes.resize(module.functions.size());
    for (const Function &fn : module.functions) {
        blockAddr[fn.id].resize(fn.blocks.size());
        blockBytes[fn.id].resize(fn.blocks.size());
        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            blockAddr[fn.id][b] = addr;
            const auto bytes = static_cast<std::uint32_t>(
                fn.blocks[b].ops.size() * opBytes);
            blockBytes[fn.id][b] = bytes;
            addr += bytes;
        }
    }
    total = addr - codeBase;
}

std::uint64_t
layoutBsaModule(BsaModule &bsa)
{
    // Group blocks by (function, head) in trie-emission order: the
    // blocks vector was already filled head-by-head in discovery
    // order, so a single sequential pass keeps variants adjacent.
    std::uint64_t addr = codeBase;
    for (AtomicBlock &blk : bsa.blocks) {
        blk.addr = addr;
        addr += blk.sizeBytes();
    }
    return addr - codeBase;
}

} // namespace bsisa
