/**
 * @file
 * Code layout: assigns instruction-memory addresses to the blocks of
 * both program forms so the icache model sees realistic footprints.
 *
 * Conventional code lays out each function's blocks in id order
 * (roughly source order, which approximates the fall-through layout a
 * real compiler emits).  Block-structured code lays out each head's
 * variants consecutively, heads in discovery order, functions in id
 * order; enlarged variants therefore dilute locality exactly as the
 * paper's duplication discussion describes.
 */

#ifndef BSISA_CODEGEN_LAYOUT_HH
#define BSISA_CODEGEN_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "core/bsa.hh"
#include "ir/module.hh"

namespace bsisa
{

/** Base address of the code segment. */
constexpr std::uint64_t codeBase = 0x10000;

/** Conventional-program layout. */
class ConvLayout
{
  public:
    explicit ConvLayout(const Module &module);

    /** Address of (func, block). */
    std::uint64_t
    addrOf(FuncId func, BlockId block) const
    {
        return blockAddr[func][block];
    }

    /** Size in bytes of (func, block). */
    std::uint32_t
    bytesOf(FuncId func, BlockId block) const
    {
        return blockBytes[func][block];
    }

    /** Total code bytes. */
    std::uint64_t totalBytes() const { return total; }

  private:
    std::vector<std::vector<std::uint64_t>> blockAddr;
    std::vector<std::vector<std::uint32_t>> blockBytes;
    std::uint64_t total = 0;
};

/**
 * Assign AtomicBlock::addr for every block of @p bsa; returns total
 * code bytes.
 */
std::uint64_t layoutBsaModule(BsaModule &bsa);

} // namespace bsisa

#endif // BSISA_CODEGEN_LAYOUT_HH
