/**
 * @file
 * The block-structured ISA program form.
 *
 * A BsaModule is the output of the block enlargement pass: a set of
 * AtomicBlocks (the architectural units of the block-structured ISA)
 * plus, per function, a *variant trie* for every enlargement head.
 *
 * Trie structure.  For each head basic block the compiler explores
 * merges with control-flow successors ("the compiler attempts to
 * combine as many different combinations of blocks as possible",
 * section 4.2).  Each trie node appends one basic block to the merge
 * path.  Edges are either:
 *   - fault edges (the predecessor's trap became a fault operation;
 *     two possible children keyed by the trap direction), or
 *   - thru edges (the predecessor ended in an unconditional jump; the
 *     jump is deleted and there is a single child).
 *
 * A node is *emitted* as a real AtomicBlock iff the dynamic variant
 * selection can stop there: leaves, and nodes missing a child on one
 * trap direction.  A node with both trap children is pass-through
 * (control always commits one of the deeper variants).  Fault targets
 * point to the sibling variant when it exists and otherwise to the
 * nearest emitted ancestor-with-real-trap, exactly reproducing the
 * paper's BC/BD example in figure 1.
 */

#ifndef BSISA_CORE_BSA_HH
#define BSISA_CORE_BSA_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/module.hh"

namespace bsisa
{

/** One atomic block of the block-structured ISA. */
struct AtomicBlock
{
    AtomicBlockId id = invalidId;
    FuncId func = invalidId;

    /** Operations including interior Fault ops; terminator last. */
    std::vector<Operation> ops;

    /** Constituent basic blocks, in merge order. */
    std::vector<BlockId> bbs;

    /** Trap directions consumed between trap-merged blocks, in order
     *  (thru merges contribute no entry). */
    std::vector<bool> dirs;

    unsigned numFaults = 0;

    /** log2 of the block's control-flow successor count (carried by
     *  the trap operation per section 4.1; drives the BHR shift). */
    std::uint8_t succBits = 0;

    /** Assigned code address (set by layout). */
    std::uint64_t addr = 0;

    std::uint32_t
    sizeBytes() const
    {
        return static_cast<std::uint32_t>(ops.size()) * opBytes;
    }

    const Operation &terminator() const { return ops.back(); }
};

/** One node of a variant trie. */
struct TrieNode
{
    BlockId bb = invalidId;   //!< basic block this node appends
    int parent = -1;
    /** Children by trap direction (fault edges). */
    int childTaken = -1;
    int childNotTaken = -1;
    /** Child via unconditional-jump deletion (thru edge). */
    int childThru = -1;
    /** Operation count of the merged block up to this node. */
    unsigned sizeOps = 0;
    /** Fault count of the merged block up to this node. */
    unsigned faults = 0;
    /** Emitted atomic block, or invalidId for pass-through nodes. */
    AtomicBlockId block = invalidId;
};

/** The variant trie of one enlargement head. */
struct HeadTrie
{
    BlockId head = invalidId;
    std::vector<TrieNode> nodes;  //!< nodes[0] is the root
    /** Emitted node indices in canonical (variant) order. */
    std::vector<int> emitted;
    /** Number of selection bits needed: ceil(log2(|emitted|)). */
    std::uint8_t variantBits = 0;
};

/** Per-function enlargement output. */
struct BsaFunction
{
    FuncId id = invalidId;
    std::unordered_map<BlockId, HeadTrie> tries;
};

/** Where an atomic block lives in its variant trie. */
struct BlockOrigin
{
    FuncId func = invalidId;
    BlockId head = invalidId;
    int node = -1;
};

/** A block-structured ISA program. */
struct BsaModule
{
    const Module *src = nullptr;
    std::vector<AtomicBlock> blocks;
    std::vector<BsaFunction> funcs;
    /** origin[i] locates blocks[i] in its trie. */
    std::vector<BlockOrigin> origin;

    /** The trie for (func, head); the head must exist. */
    const HeadTrie &trie(FuncId func, BlockId head) const;
    /** Null when (func, head) is not an enlargement head. */
    const HeadTrie *findTrie(FuncId func, BlockId head) const;

    /** Total operation count across atomic blocks (code expansion). */
    std::size_t numOps() const;

    /** Total code bytes. */
    std::uint64_t
    codeBytes() const
    {
        return numOps() * opBytes;
    }
};

} // namespace bsisa

#endif // BSISA_CORE_BSA_HH
