/**
 * @file
 * Block enlargement implementation.
 *
 * Phase 1 builds a variant trie per enlargement head (fixpoint over
 * heads discovered from emitted blocks' exits) and assigns atomic
 * block ids to emitted nodes.  Phase 2 assembles each emitted block's
 * operations, converting merged traps into fault operations whose
 * targets are the sibling variants (cascading through pass-through
 * siblings to their default emitted descendant).
 */

#include "core/enlarge.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>

#include "ir/cfg.hh"
#include "ir/dom.hh"
#include "support/bitutil.hh"
#include "support/logging.hh"

namespace bsisa
{

namespace
{

/** Builder state shared across the fixpoint. */
class Enlarger
{
  public:
    Enlarger(const Module &module, const EnlargeConfig &config,
             const ProfileData *profile)
        : module(module), config(config), profile(profile)
    {
        out.src = &module;
        out.funcs.resize(module.functions.size());
        for (FuncId f = 0; f < module.functions.size(); ++f)
            out.funcs[f].id = f;
        doms.resize(module.functions.size());
    }

    BsaModule
    run(EnlargeStats *stats)
    {
        enqueueHead(module.mainFunc, 0);
        while (!worklist.empty()) {
            const auto [f, h] = worklist.front();
            worklist.pop_front();
            buildTrie(f, h);
        }
        assembleAll();
        computeSuccBits();
        if (stats)
            fillStats(*stats);
        return std::move(out);
    }

  private:
    const Module &module;
    const EnlargeConfig &config;
    const ProfileData *profile;
    BsaModule out;
    std::vector<std::unique_ptr<DomInfo>> doms;
    std::deque<std::pair<FuncId, BlockId>> worklist;
    std::set<std::pair<FuncId, BlockId>> seen;
    std::size_t mergedEdges = 0;
    std::size_t thruMerges = 0;

    const DomInfo &
    dom(FuncId f)
    {
        if (!doms[f])
            doms[f] = std::make_unique<DomInfo>(module.functions[f]);
        return *doms[f];
    }

    void
    enqueueHead(FuncId f, BlockId h)
    {
        if (seen.insert({f, h}).second)
            worklist.push_back({f, h});
    }

    /** True iff merging node @p n with successor @p succ is allowed. */
    bool
    canMerge(const Function &fn, const HeadTrie &trie, int n,
             BlockId succ, bool is_thru)
    {
        const TrieNode &node = trie.nodes[n];
        if (!config.enabled)
            return false;
        // Condition 5: library code is never enlarged.
        if (fn.isLibrary && !config.enlargeLibraryFunctions)
            return false;
        // Condition 1: respect the issue width.
        const unsigned new_size = node.sizeOps - (is_thru ? 1 : 0) +
            static_cast<unsigned>(fn.blocks[succ].ops.size());
        if (new_size > config.maxOps)
            return false;
        // Condition 2: fault budget.
        if (!is_thru && node.faults + 1 > config.maxFaults)
            return false;
        // Condition 4: never merge separate loop iterations.
        if (!config.mergeAcrossBackEdges &&
            dom(fn.id).isBackEdge(node.bb, succ)) {
            return false;
        }
        // No block may appear twice in one merge path (guards against
        // non-back-edge cycles in irreducible regions).
        for (int walk = n; walk != -1; walk = trie.nodes[walk].parent)
            if (trie.nodes[walk].bb == succ)
                return false;
        // Profile-guided filter (section-6 extension): leave weakly
        // biased traps unmerged to limit duplication.
        if (!is_thru && profile && config.minMergeBias > 0.0) {
            const BranchProfile bp = profile->lookup(fn.id, node.bb);
            if (bp.total() > 0 && bp.bias() < config.minMergeBias)
                return false;
        }
        return true;
    }

    void
    expand(const Function &fn, HeadTrie &trie, int n)
    {
        const Operation term =
            fn.blocks[trie.nodes[n].bb].terminator();
        if (term.op == Opcode::Jmp) {
            const BlockId succ = term.target0;
            if (canMerge(fn, trie, n, succ, true)) {
                const int child = addChild(fn, trie, n, succ, true);
                trie.nodes[n].childThru = child;
                ++thruMerges;
                expand(fn, trie, child);
            }
            return;
        }
        if (term.op != Opcode::Trap)
            return;  // condition 3: call/ret/ijmp/halt never merge
        // Taken side first, then not-taken; both are attempted ("as
        // many different combinations of blocks as possible").
        if (canMerge(fn, trie, n, term.target0, false)) {
            const int child = addChild(fn, trie, n, term.target0, false);
            trie.nodes[n].childTaken = child;
            ++mergedEdges;
            expand(fn, trie, child);
        }
        if (term.target1 != term.target0 &&
            canMerge(fn, trie, n, term.target1, false)) {
            const int child = addChild(fn, trie, n, term.target1, false);
            trie.nodes[n].childNotTaken = child;
            ++mergedEdges;
            expand(fn, trie, child);
        }
    }

    int
    addChild(const Function &fn, HeadTrie &trie, int parent, BlockId bb,
             bool is_thru)
    {
        TrieNode node;
        node.bb = bb;
        node.parent = parent;
        node.sizeOps = trie.nodes[parent].sizeOps - (is_thru ? 1 : 0) +
            static_cast<unsigned>(fn.blocks[bb].ops.size());
        node.faults = trie.nodes[parent].faults + (is_thru ? 0 : 1);
        trie.nodes.push_back(node);
        return static_cast<int>(trie.nodes.size() - 1);
    }

    /** Emitted iff variant selection can stop at @p n. */
    static bool
    isEmitted(const Function &fn, const HeadTrie &trie, int n)
    {
        const TrieNode &node = trie.nodes[n];
        const Operation &term = fn.blocks[node.bb].terminator();
        switch (term.op) {
          case Opcode::Jmp:
            return node.childThru == -1;
          case Opcode::Trap:
            return node.childTaken == -1 || node.childNotTaken == -1;
          default:
            return true;  // leaves by condition 3
        }
    }

    /** Nodes reachable from the root, in index (creation) order. */
    static std::vector<int>
    reachableNodes(const HeadTrie &trie)
    {
        std::vector<int> stack{0};
        std::vector<int> reach;
        while (!stack.empty()) {
            const int n = stack.back();
            stack.pop_back();
            reach.push_back(n);
            const TrieNode &node = trie.nodes[n];
            for (int child :
                 {node.childThru, node.childTaken, node.childNotTaken}) {
                if (child != -1)
                    stack.push_back(child);
            }
        }
        std::sort(reach.begin(), reach.end());
        return reach;
    }

    void
    collectEmitted(const Function &fn, HeadTrie &trie)
    {
        trie.emitted.clear();
        for (int n : reachableNodes(trie))
            if (isEmitted(fn, trie, n))
                trie.emitted.push_back(n);
    }

    /**
     * Prune the trie until at most maxVariantsPerHead variants remain:
     * repeatedly delete the children of the deepest trap node whose
     * subtree consists only of leaves.
     */
    void
    pruneTrie(const Function &fn, HeadTrie &trie)
    {
        auto depth = [&](int n) {
            int d = 0;
            for (int w = n; w != -1; w = trie.nodes[w].parent)
                ++d;
            return d;
        };
        auto is_leaf = [&](int n) {
            const TrieNode &node = trie.nodes[n];
            return node.childTaken == -1 && node.childNotTaken == -1 &&
                   node.childThru == -1;
        };

        collectEmitted(fn, trie);
        while (trie.emitted.size() > config.maxVariantsPerHead) {
            // Deepest node all of whose children are leaves.  Cutting
            // a trap pair reduces the variant count by one; cutting a
            // thru child is count-neutral but shrinks the tree so a
            // reducing cut becomes available next round.  The tree
            // strictly shrinks, so this terminates (at worst at the
            // root, which is a single variant).
            int best = -1;
            int best_depth = -1;
            for (int n : reachableNodes(trie)) {
                const TrieNode &node = trie.nodes[n];
                const bool has_children = node.childTaken != -1 ||
                                          node.childNotTaken != -1 ||
                                          node.childThru != -1;
                if (!has_children || is_leaf(n))
                    continue;
                if (node.childTaken != -1 && !is_leaf(node.childTaken))
                    continue;
                if (node.childNotTaken != -1 &&
                    !is_leaf(node.childNotTaken)) {
                    continue;
                }
                if (node.childThru != -1 && !is_leaf(node.childThru))
                    continue;
                if (depth(n) > best_depth) {
                    best_depth = depth(n);
                    best = n;
                }
            }
            BSISA_ASSERT(best != -1, "prune found no candidate");
            // Orphan the children; compactTrie drops them (they are no
            // longer reachable from the root).
            TrieNode &node = trie.nodes[best];
            for (int child :
                 {node.childTaken, node.childNotTaken, node.childThru}) {
                if (child != -1)
                    trie.nodes[child].parent = -2;
            }
            node.childTaken = -1;
            node.childNotTaken = -1;
            node.childThru = -1;
            collectEmitted(fn, trie);
        }
    }

    void
    buildTrie(FuncId f, BlockId head)
    {
        const Function &fn = module.functions[f];
        BSISA_ASSERT(head < fn.blocks.size());

        HeadTrie trie;
        trie.head = head;
        TrieNode root;
        root.bb = head;
        root.sizeOps = static_cast<unsigned>(fn.blocks[head].ops.size());
        trie.nodes.push_back(root);
        expand(fn, trie, 0);
        pruneTrie(fn, trie);

        // Drop orphaned subtrees so indices only reference live nodes.
        compactTrie(trie);
        collectEmitted(fn, trie);
        BSISA_ASSERT(!trie.emitted.empty());
        trie.variantBits =
            static_cast<std::uint8_t>(ceilLog2(trie.emitted.size()));

        // Assign atomic block ids and enqueue successor heads.
        for (int n : trie.emitted) {
            AtomicBlock blk;
            blk.id = static_cast<AtomicBlockId>(out.blocks.size());
            blk.func = f;
            trie.nodes[n].block = blk.id;
            out.blocks.push_back(std::move(blk));
            out.origin.push_back({f, head, n});

            const Operation &term =
                fn.blocks[trie.nodes[n].bb].terminator();
            switch (term.op) {
              case Opcode::Jmp:
                enqueueHead(f, term.target0);
                break;
              case Opcode::Trap:
                // Both targets become heads: the maximal variant only
                // exits through unmerged directions, but the fetch
                // engine may legally commit a *shallower* variant and
                // continue through a merged direction, so a block must
                // exist at every trap target (this mirrors the paper's
                // trap operation carrying two explicit block targets).
                enqueueHead(f, term.target0);
                enqueueHead(f, term.target1);
                break;
              case Opcode::Call:
                enqueueHead(term.callee, 0);
                enqueueHead(f, term.target0);
                break;
              case Opcode::IJmp:
                for (BlockId t : fn.jumpTables[term.imm])
                    enqueueHead(f, t);
                break;
              default:
                break;
            }
        }
        out.funcs[f].tries.emplace(head, std::move(trie));
    }

    /** Remove nodes unreachable from the root after pruning. */
    static void
    compactTrie(HeadTrie &trie)
    {
        std::vector<int> remap(trie.nodes.size(), -1);
        std::vector<TrieNode> kept;
        // Root-first DFS preserves construction (variant) order.
        std::vector<int> stack{0};
        std::vector<int> order;
        while (!stack.empty()) {
            const int n = stack.back();
            stack.pop_back();
            order.push_back(n);
            const TrieNode &node = trie.nodes[n];
            // Push in reverse so visitation matches creation order.
            if (node.childNotTaken != -1)
                stack.push_back(node.childNotTaken);
            if (node.childTaken != -1)
                stack.push_back(node.childTaken);
            if (node.childThru != -1)
                stack.push_back(node.childThru);
        }
        std::sort(order.begin(), order.end());
        for (int n : order) {
            remap[n] = static_cast<int>(kept.size());
            kept.push_back(trie.nodes[n]);
        }
        for (TrieNode &node : kept) {
            if (node.parent >= 0)
                node.parent = remap[node.parent];
            if (node.childTaken != -1)
                node.childTaken = remap[node.childTaken];
            if (node.childNotTaken != -1)
                node.childNotTaken = remap[node.childNotTaken];
            if (node.childThru != -1)
                node.childThru = remap[node.childThru];
        }
        trie.nodes = std::move(kept);
    }

    /**
     * Default emitted descendant of @p n: follow thru children and
     * the not-taken-preferred trap child until an emitted node.
     */
    int
    defaultEmitted(const Function &fn, const HeadTrie &trie, int n) const
    {
        int cur = n;
        for (;;) {
            const TrieNode &node = trie.nodes[cur];
            if (isEmitted(fn, trie, cur))
                return cur;
            if (node.childThru != -1) {
                cur = node.childThru;
            } else if (node.childNotTaken != -1) {
                cur = node.childNotTaken;
            } else {
                BSISA_ASSERT(node.childTaken != -1);
                cur = node.childTaken;
            }
        }
    }

    void
    assembleAll()
    {
        for (auto &bf : out.funcs) {
            const Function &fn = module.functions[bf.id];
            for (auto &[head, trie] : bf.tries)
                for (int n : trie.emitted)
                    assembleBlock(fn, trie, n);
        }
    }

    void
    assembleBlock(const Function &fn, const HeadTrie &trie, int n)
    {
        AtomicBlock &blk = out.blocks[trie.nodes[n].block];

        // Path root..n.
        std::vector<int> path;
        for (int w = n; w != -1; w = trie.nodes[w].parent)
            path.push_back(w);
        std::reverse(path.begin(), path.end());

        for (std::size_t i = 0; i < path.size(); ++i) {
            const TrieNode &node = trie.nodes[path[i]];
            const Block &bb = fn.blocks[node.bb];
            blk.bbs.push_back(node.bb);
            const bool last = i + 1 == path.size();
            if (last) {
                blk.ops.insert(blk.ops.end(), bb.ops.begin(),
                               bb.ops.end());
                break;
            }
            const int child = path[i + 1];
            const bool is_thru = node.childThru == child;
            // Interior operations always copy over.
            blk.ops.insert(blk.ops.end(), bb.ops.begin(),
                           bb.ops.end() - 1);
            if (is_thru)
                continue;  // unconditional jump deleted
            // Trap -> fault conversion.
            const Operation &trap = bb.terminator();
            const bool dir_taken = node.childTaken == child;
            blk.dirs.push_back(dir_taken);
            // Fault target: sibling variant, else this node itself.
            const int sibling =
                dir_taken ? node.childNotTaken : node.childTaken;
            int target_node =
                sibling != -1 ? defaultEmitted(fn, trie, sibling)
                              : path[i];
            BSISA_ASSERT(trie.nodes[target_node].block != invalidId,
                         "fault target is not an emitted block");
            Operation fault = makeFault(
                trap.src1, trie.nodes[target_node].block);
            // Merged with the taken target: fault fires when the
            // condition is FALSE (complemented, per section 2).
            fault.imm = dir_taken ? 1 : 0;
            blk.ops.push_back(fault);
            ++blk.numFaults;
        }
        BSISA_ASSERT(blk.ops.size() <= config.maxOps,
                     "atomic block exceeds the issue width");
        BSISA_ASSERT(blk.ops.back().terminates());
    }

    /** Variant count of the trie rooted at (f, head). */
    std::size_t
    headVariants(FuncId f, BlockId head) const
    {
        const HeadTrie *trie = out.findTrie(f, head);
        BSISA_ASSERT(trie, "missing trie for f", f, " B", head);
        return trie->emitted.size();
    }

    void
    computeSuccBits()
    {
        for (AtomicBlock &blk : out.blocks) {
            const Function &fn = module.functions[blk.func];
            const BlockOrigin &org = out.origin[blk.id];
            const HeadTrie &trie = out.trie(org.func, org.head);
            const TrieNode &node = trie.nodes[org.node];
            Operation &term = blk.ops.back();
            std::size_t succs = 0;
            switch (term.op) {
              case Opcode::Trap:
                // A committed block exits only through unmerged
                // directions (the variant walk descends through merged
                // ones), so only those contribute successors.
                if (node.childTaken == -1)
                    succs += headVariants(blk.func, term.target0);
                if (node.childNotTaken == -1 &&
                    term.target1 != term.target0) {
                    succs += headVariants(blk.func, term.target1);
                }
                break;
              case Opcode::Jmp:
                succs = headVariants(blk.func, term.target0);
                break;
              case Opcode::Call:
                succs = headVariants(term.callee, 0);
                break;
              case Opcode::Ret:
                succs = 4;  // continuation head comes from the RAS;
                            // its variant needs up to 2 bits
                break;
              case Opcode::IJmp: {
                for (BlockId t : fn.jumpTables[term.imm])
                    succs += headVariants(blk.func, t);
                succs = std::min<std::size_t>(succs, 8);
                break;
              }
              case Opcode::Halt:
                succs = 1;
                break;
              default:
                panic("bad atomic block terminator");
            }
            blk.succBits = static_cast<std::uint8_t>(
                std::min<unsigned>(3, ceilLog2(std::max<std::size_t>(
                                          1, succs))));
            term.succBits = blk.succBits;
        }
    }

    void
    fillStats(EnlargeStats &stats) const
    {
        stats.atomicBlocks = out.blocks.size();
        stats.mergedEdges = mergedEdges;
        stats.thruMerges = thruMerges;
        for (const auto &blk : out.blocks)
            stats.bsaOps += blk.ops.size();
        for (const auto &bf : out.funcs)
            stats.heads += bf.tries.size();
        // Reachable conventional ops (heads' functions only would skew
        // small; count the whole module).
        stats.srcOps = module.numOps();
    }
};

} // namespace

const HeadTrie &
BsaModule::trie(FuncId func, BlockId head) const
{
    const HeadTrie *t = findTrie(func, head);
    BSISA_ASSERT(t, "no trie for f", func, " B", head);
    return *t;
}

const HeadTrie *
BsaModule::findTrie(FuncId func, BlockId head) const
{
    if (func >= funcs.size())
        return nullptr;
    const auto it = funcs[func].tries.find(head);
    return it == funcs[func].tries.end() ? nullptr : &it->second;
}

std::size_t
BsaModule::numOps() const
{
    std::size_t n = 0;
    for (const auto &blk : blocks)
        n += blk.ops.size();
    return n;
}

BsaModule
enlargeModule(const Module &module, const EnlargeConfig &config,
              const ProfileData *profile, EnlargeStats *stats)
{
    Enlarger enlarger(module, config, profile);
    return enlarger.run(stats);
}

unsigned
splitOversizedBlocks(Module &module, unsigned maxOps)
{
    BSISA_ASSERT(maxOps >= 2);
    unsigned splits = 0;
    for (Function &fn : module.functions) {
        // New tail blocks are appended and revisited by this loop, so
        // a single pass reaches the fixpoint.
        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            if (fn.blocks[b].ops.size() <= maxOps)
                continue;
            // Keep maxOps-1 ops plus a new jump; move the rest.
            const BlockId rest = fn.newBlock();
            Block &blk = fn.blocks[b];  // revalidate after newBlock
            auto cut = blk.ops.begin() + (maxOps - 1);
            fn.blocks[rest].ops.assign(cut, blk.ops.end());
            blk.ops.erase(cut, blk.ops.end());
            blk.ops.push_back(makeJmp(rest));
            ++splits;
        }
    }
    return splits;
}

} // namespace bsisa
