/**
 * @file
 * The block enlargement optimization (the paper's core contribution).
 *
 * Converts a register-allocated conventional Module into a BsaModule,
 * merging basic blocks with their control-flow successors into
 * enlarged atomic blocks under the paper's five termination
 * conditions (section 4.2):
 *   1. the enlarged block may not exceed the issue width (maxOps);
 *   2. at most maxFaults fault operations per block (bounding the
 *      successor count at 8);
 *   3. blocks connected via call, return, or indirect jump are never
 *      combined;
 *   4. separate loop iterations are never combined (no merging across
 *      natural-loop back edges);
 *   5. library functions are never enlarged.
 *
 * An optional branch-bias profile enables the paper's section-6
 * "profiling" extension: traps whose dynamic bias is weaker than
 * minMergeBias are not merged, trading block size for less code
 * duplication.
 */

#ifndef BSISA_CORE_ENLARGE_HH
#define BSISA_CORE_ENLARGE_HH

#include "core/bsa.hh"
#include "core/profile.hh"

namespace bsisa
{

/** Enlargement parameters; defaults reproduce the paper. */
struct EnlargeConfig
{
    /** Condition 1: maximum operations per atomic block. */
    unsigned maxOps = 16;
    /** Condition 2: maximum fault operations per atomic block. */
    unsigned maxFaults = 2;
    /** Disable condition 4 (ablation only; the paper keeps it). */
    bool mergeAcrossBackEdges = false;
    /** Disable condition 5 (ablation only; the paper keeps it). */
    bool enlargeLibraryFunctions = false;
    /** Master switch: false produces one atomic block per basic
     *  block (the degenerate block-structured program). */
    bool enabled = true;
    /** Cap on emitted variants per head (8 successors per block =
     *  4 variants per trap side). */
    unsigned maxVariantsPerHead = 4;
    /** Profile-guided merging: only merge a trap whose taken-bias
     *  max(p, 1-p) is at least this (0 disables the filter). */
    double minMergeBias = 0.0;
};

/** Aggregate statistics of an enlargement run. */
struct EnlargeStats
{
    std::size_t srcOps = 0;        //!< reachable conventional ops
    std::size_t bsaOps = 0;        //!< ops across all atomic blocks
    std::size_t atomicBlocks = 0;
    std::size_t mergedEdges = 0;   //!< fault conversions performed
    std::size_t thruMerges = 0;    //!< jumps deleted
    std::size_t heads = 0;

    double
    expansion() const
    {
        return srcOps ? double(bsaOps) / double(srcOps) : 1.0;
    }
};

/**
 * Run block enlargement over @p module.
 *
 * @param module Register-allocated conventional program (every block
 *               must already satisfy ops <= config.maxOps; see
 *               splitOversizedBlocks).
 * @param config Termination-condition parameters.
 * @param profile Optional branch-bias profile for minMergeBias.
 * @param stats Optional out-param for statistics.
 */
BsaModule enlargeModule(const Module &module, const EnlargeConfig &config,
                        const ProfileData *profile = nullptr,
                        EnlargeStats *stats = nullptr);

/**
 * Split any basic block larger than @p maxOps into a chain of blocks
 * linked by unconditional jumps, in place.  Run before enlargement so
 * condition 1 is satisfiable; both ISAs execute the split module so
 * the committed block streams stay aligned.
 */
unsigned splitOversizedBlocks(Module &module, unsigned maxOps);

} // namespace bsisa

#endif // BSISA_CORE_ENLARGE_HH
