/**
 * @file
 * Profile collection via functional execution.
 */

#include "core/profile.hh"

#include "sim/interp.hh"

namespace bsisa
{

ProfileData
collectProfile(const Module &module, std::uint64_t maxOps)
{
    ProfileData profile;
    Interp::Limits limits;
    limits.maxOps = maxOps;
    Interp interp(module, limits);
    BlockEvent ev;
    while (interp.step(ev)) {
        if (ev.exit == ExitKind::Trap)
            profile.record(ev.func, ev.block, ev.taken);
    }
    return profile;
}

} // namespace bsisa
