/**
 * @file
 * Branch-bias profiles.
 *
 * A ProfileData records, per (function, block), how often the block's
 * trap was taken.  It feeds the profile-guided enlargement filter
 * (the paper's section-6 "profiling" future-work item) and the
 * workload characterization reports.
 */

#ifndef BSISA_CORE_PROFILE_HH
#define BSISA_CORE_PROFILE_HH

#include <cstdint>
#include <unordered_map>

#include "ir/module.hh"

namespace bsisa
{

/** Dynamic execution counts of one block's trap. */
struct BranchProfile
{
    std::uint64_t taken = 0;
    std::uint64_t notTaken = 0;

    std::uint64_t total() const { return taken + notTaken; }

    /** max(p, 1-p); 1.0 when never executed (treated as biased). */
    double
    bias() const
    {
        const std::uint64_t t = total();
        if (t == 0)
            return 1.0;
        const double p = double(taken) / double(t);
        return p > 0.5 ? p : 1.0 - p;
    }
};

/** Profile for a whole module. */
class ProfileData
{
  public:
    /** Record one execution of (func, block) with trap direction. */
    void
    record(FuncId func, BlockId block, bool taken)
    {
        BranchProfile &p = counts[key(func, block)];
        if (taken)
            ++p.taken;
        else
            ++p.notTaken;
    }

    /** Profile for (func, block); zeroes when never executed. */
    BranchProfile
    lookup(FuncId func, BlockId block) const
    {
        const auto it = counts.find(key(func, block));
        return it == counts.end() ? BranchProfile{} : it->second;
    }

    std::size_t size() const { return counts.size(); }

  private:
    static std::uint64_t
    key(FuncId func, BlockId block)
    {
        return (std::uint64_t(func) << 32) | block;
    }

    std::unordered_map<std::uint64_t, BranchProfile> counts;
};

/**
 * Collect a branch profile by functionally executing @p module for at
 * most @p maxOps operations.
 */
ProfileData collectProfile(const Module &module, std::uint64_t maxOps);

} // namespace bsisa

#endif // BSISA_CORE_PROFILE_HH
