/**
 * @file
 * Figure-driver implementation.
 *
 * Every driver is a grid of independent simulation points (benchmark x
 * machine config).  The points are computed into pre-sized result
 * slots by parallelFor() (BSISA_JOBS workers) and printed serially in
 * grid order, so the rendered tables are byte-identical for any worker
 * count.  Where the grid sweeps timing configs over a fixed (module,
 * limits), one functional trace is captured per benchmark and replayed
 * into every point (sim/trace.hh).
 */

#include "exp/figures.hh"

#include "arch/instr_class.hh"
#include "codegen/layout.hh"
#include "sim/trace_store.hh"
#include "support/env.hh"
#include "support/parallel.hh"
#include "support/table.hh"

namespace bsisa
{

const std::vector<unsigned> icacheSizesKB = {16, 32, 64};

std::uint64_t
scaleDivisor()
{
    return envU64("BSISA_SCALE", specScaleDivisor);
}

namespace
{

RunConfig
baseConfig(const SpecBenchmark &bench)
{
    RunConfig config;
    config.limits.maxOps = bench.scaledBudget(scaleDivisor());
    // BSISA_TIMING_MODEL=ooo re-runs every figure driver on the
    // out-of-order backend (sim/ooo); traces are model-independent,
    // so both models replay the same store entries.  Routing the
    // knob through here covers Fig. 3-7 and the ablations at once.
    if (envString("BSISA_TIMING_MODEL", "abstract") == "ooo")
        config.machine.timingModel = TimingModel::Ooo;
    return config;
}

BenchOutcome
outcomeOf(const SpecBenchmark &bench, const PairResult &r)
{
    return benchOutcomeOf(bench.params.name, r);
}

/** Generate the whole suite's modules into index-stable slots. */
std::vector<Module>
generateSuiteModules(const std::vector<SpecBenchmark> &suite)
{
    std::vector<Module> modules(suite.size());
    parallelFor(suite.size(), [&](std::size_t i) {
        modules[i] = generateWorkload(suite[i].params);
    });
    return modules;
}

/** Hash each benchmark's compiled module exactly once per suite —
 *  the trace store's content keys.  Skipped (all zero) when no store
 *  is configured, since nothing would consume the digests. */
std::vector<std::uint64_t>
suiteDigests(const std::vector<Module> &modules)
{
    std::vector<std::uint64_t> digests(modules.size(), 0);
    if (TraceStore::fromEnv().enabled()) {
        parallelFor(modules.size(), [&](std::size_t i) {
            digests[i] = moduleDigest(modules[i]);
        });
    }
    return digests;
}

/** Acquire one functional trace per benchmark at @p budgetDiv of the
 *  scaled budget (the ablations run at 1/4 budget): served from the
 *  trace store when warm, captured live otherwise. */
std::vector<ExecTrace>
captureSuiteTraces(const std::vector<SpecBenchmark> &suite,
                   const std::vector<Module> &modules,
                   std::uint64_t budgetDiv)
{
    const std::vector<std::uint64_t> digests = suiteDigests(modules);
    std::vector<ExecTrace> traces(suite.size());
    parallelFor(suite.size(), [&](std::size_t i) {
        RunConfig config = baseConfig(suite[i]);
        config.limits.maxOps /= budgetDiv;
        traces[i] =
            captureOrLoadTrace(modules[i], digests[i], config.limits);
    });
    return traces;
}

} // namespace

BenchOutcome
benchOutcomeOf(const std::string &name, const PairResult &r)
{
    BenchOutcome o;
    o.name = name;
    o.convCycles = r.conv.cycles;
    o.bsaCycles = r.bsa.cycles;
    o.convBlockSize = r.conv.avgBlockSize();
    o.bsaBlockSize = r.bsa.avgBlockSize();
    o.convIcacheMissRate = r.conv.icache.missRate();
    o.bsaIcacheMissRate = r.bsa.icache.missRate();
    o.dynOps = r.dynOps;
    return o;
}

void
renderCycleComparison(std::ostream &os,
                      const std::vector<BenchOutcome> &outcomes,
                      bool perfectPrediction)
{
    os << (perfectPrediction
               ? "Figure 4: Performance comparison assuming perfect "
                 "branch prediction.\n"
               : "Figure 3: Performance comparison of block-structured "
                 "ISA executables\nand conventional ISA executables "
                 "(64KB 4-way L1 icache).\n")
       << "\n";

    Table t({"Benchmark", "Conventional (cycles)",
             "Block-Structured (cycles)", "Reduction"});
    BarChart chart("Total cycles (lower is better)",
                   {"Conventional ISA", "Block-Structured ISA"});
    double geo = 0.0;
    for (const BenchOutcome &o : outcomes) {
        t.addRow({o.name, Table::fmtSep(o.convCycles),
                  Table::fmtSep(o.bsaCycles),
                  Table::fmt(100.0 * o.reduction(), 1) + "%"});
        chart.addGroup(o.name, {double(o.convCycles) / 1e3,
                                double(o.bsaCycles) / 1e3});
        geo += o.reduction();
    }
    t.addRow({"average", "", "",
              Table::fmt(100.0 * geo / outcomes.size(), 1) + "%"});
    t.print(os);
    os << "\n";
    chart.print(os);
}

void
renderBlockSizeComparison(std::ostream &os,
                          const std::vector<BenchOutcome> &outcomes)
{
    os << "Figure 5: Average block sizes for block-structured and "
          "conventional ISA executables\n(retired blocks only).\n\n";

    Table t({"Benchmark", "Conventional", "Block-Structured"});
    BarChart chart("Average retired block size (operations)",
                   {"Conventional ISA", "Block-Structured ISA"});
    double conv_sum = 0.0, bsa_sum = 0.0;
    for (const BenchOutcome &o : outcomes) {
        t.addRow({o.name, Table::fmt(o.convBlockSize, 2),
                  Table::fmt(o.bsaBlockSize, 2)});
        chart.addGroup(o.name, {o.convBlockSize, o.bsaBlockSize});
        conv_sum += o.convBlockSize;
        bsa_sum += o.bsaBlockSize;
    }
    t.addRow({"average", Table::fmt(conv_sum / outcomes.size(), 2),
              Table::fmt(bsa_sum / outcomes.size(), 2)});
    t.print(os);
    os << "\n";
    chart.print(os);
}

void
printTable1(std::ostream &os)
{
    os << "Table 1: Instruction classes and latencies\n\n";
    Table t({"Instruction Class", "Exec. Lat.", "Description"});
    t.addRow({"Integer", "1", "INT add, sub and logic OPs"});
    t.addRow({"FP Add", "3", "FP add, sub, and convert"});
    t.addRow({"FP/INT Mul", "3", "FP mul and INT mul"});
    t.addRow({"FP/INT Div", "8", "FP div and INT div"});
    t.addRow({"Load", "2", "Memory loads"});
    t.addRow({"Store", "1", "Memory stores"});
    t.addRow({"Bit Field", "1", "Shift, and bit testing"});
    t.addRow({"Branch", "1", "Control instructions"});
    t.print(os);
    os << "\nModel check (execLatency):\n";
    Table v({"class", "latency"});
    const InstrClass classes[] = {
        InstrClass::IntAlu,   InstrClass::FpAdd, InstrClass::FpIntMul,
        InstrClass::FpIntDiv, InstrClass::Load,  InstrClass::Store,
        InstrClass::BitField, InstrClass::Branch};
    for (InstrClass cls : classes) {
        v.addRow({instrClassName(cls),
                  Table::fmt(std::uint64_t(execLatency(cls)))});
    }
    v.print(os);
}

std::vector<BenchOutcome>
printTable2(std::ostream &os)
{
    const std::uint64_t divisor = scaleDivisor();
    os << "Table 2: The SPECint95 benchmarks and their input data "
          "sets.\n(synthetic stand-ins; dynamic op budgets are the "
          "paper's counts / "
       << divisor << ")\n\n";
    Table t({"Benchmark", "Input", "# of Instructions (paper)",
             "# simulated (measured)"});
    const auto suite = specint95Suite();
    std::vector<BenchOutcome> outcomes(suite.size());
    parallelFor(suite.size(), [&](std::size_t i) {
        const Module m = generateWorkload(suite[i].params);
        Interp::Limits limits;
        limits.maxOps = suite[i].scaledBudget(divisor);
        // The measured count is a property of the committed stream, so
        // a warm trace store answers it without executing anything.
        const ExecTrace trace = captureOrLoadTrace(m, limits);
        outcomes[i].name = suite[i].params.name;
        outcomes[i].dynOps = trace.dynOps;
    });
    for (std::size_t i = 0; i < suite.size(); ++i) {
        t.addRow({suite[i].params.name, suite[i].input,
                  Table::fmtSep(suite[i].paperInstructions),
                  Table::fmtSep(outcomes[i].dynOps)});
    }
    t.print(os);
    return outcomes;
}

std::vector<BenchOutcome>
runCycleComparison(std::ostream &os, bool perfectPrediction)
{
    const auto suite = specint95Suite();
    const std::vector<Module> modules = generateSuiteModules(suite);
    const std::vector<ExecTrace> traces =
        captureSuiteTraces(suite, modules, 1);

    PairSweep sweep;
    std::vector<std::size_t> pointOf(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const std::size_t b = sweep.addBenchmark(modules[i],
                                                 traces[i]);
        RunConfig config = baseConfig(suite[i]);
        config.machine.perfectPrediction = perfectPrediction;
        pointOf[i] = sweep.addPoint(b, config);
    }
    sweep.plan();
    parallelFor(sweep.batchCount(),
                [&](std::size_t b) { sweep.runBatch(b); });

    std::vector<BenchOutcome> outcomes(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        outcomes[i] =
            outcomeOf(suite[i], sweep.results()[pointOf[i]]);

    renderCycleComparison(os, outcomes, perfectPrediction);
    return outcomes;
}

std::vector<BenchOutcome>
runBlockSizeComparison(std::ostream &os)
{
    const auto suite = specint95Suite();
    const std::vector<Module> modules = generateSuiteModules(suite);
    const std::vector<ExecTrace> traces =
        captureSuiteTraces(suite, modules, 1);

    PairSweep sweep;
    std::vector<std::size_t> pointOf(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const std::size_t b = sweep.addBenchmark(modules[i],
                                                 traces[i]);
        pointOf[i] = sweep.addPoint(b, baseConfig(suite[i]));
    }
    sweep.plan();
    parallelFor(sweep.batchCount(),
                [&](std::size_t b) { sweep.runBatch(b); });

    std::vector<BenchOutcome> outcomes(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        outcomes[i] =
            outcomeOf(suite[i], sweep.results()[pointOf[i]]);

    renderBlockSizeComparison(os, outcomes);
    return outcomes;
}

std::vector<IcacheSweepRow>
runIcacheSweep(std::ostream &os, bool blockStructured)
{
    os << (blockStructured
               ? "Figure 7: Relative increase in execution times for "
                 "the block-structured ISA\nexecutables over the "
                 "execution time with a perfect icache.\n"
               : "Figure 6: Relative increase in execution times for "
                 "the conventional ISA\nexecutables over the execution "
                 "time with a perfect icache.\n")
       << "\n";

    const auto suite = specint95Suite();

    // One functional trace per benchmark serves the perfect-icache
    // baseline and every swept size, and all four configs advance in
    // a single lockstep walk of that trace; BSISA_JOBS fans across
    // benchmarks (one batch each).
    const std::size_t nsizes = icacheSizesKB.size();
    std::vector<std::uint64_t> baseCycles(suite.size());
    std::vector<std::uint64_t> cycles(suite.size() * nsizes);
    parallelFor(suite.size(), [&](std::size_t bi) {
        const Module m = generateWorkload(suite[bi].params);
        RunConfig ideal = baseConfig(suite[bi]);
        ideal.machine.icache.perfect = true;
        const ExecTrace trace = captureOrLoadTrace(m, ideal.limits);

        std::vector<MachineConfig> machines;
        machines.reserve(1 + nsizes);
        machines.push_back(ideal.machine);
        for (unsigned kb : icacheSizesKB) {
            RunConfig config = baseConfig(suite[bi]);
            config.machine.icache.sizeBytes = kb * 1024;
            machines.push_back(config.machine);
        }

        std::vector<SimResult> sims;
        if (blockStructured) {
            BsaModule bsa = enlargeModule(m, ideal.enlarge);
            layoutBsaModule(bsa);
            sims = runBlockStructuredBatch(bsa, machines, trace);
        } else {
            sims = runConventionalBatch(m, machines, trace);
        }
        baseCycles[bi] = sims[0].cycles;
        for (std::size_t si = 0; si < nsizes; ++si)
            cycles[bi * nsizes + si] = sims[1 + si].cycles;
    });

    std::vector<IcacheSweepRow> rows;
    std::vector<std::string> headers{"Benchmark"};
    for (unsigned kb : icacheSizesKB)
        headers.push_back(std::to_string(kb) + "KB");
    Table t(headers);
    BarChart chart("Relative execution-time increase vs perfect icache",
                   {"16KB", "32KB", "64KB"});

    for (std::size_t bi = 0; bi < suite.size(); ++bi) {
        IcacheSweepRow row;
        row.name = suite[bi].params.name;
        std::vector<std::string> cells{row.name};
        std::vector<double> values;
        for (std::size_t si = 0; si < nsizes; ++si) {
            const double increase =
                double(cycles[bi * nsizes + si]) /
                    double(baseCycles[bi]) -
                1.0;
            row.relativeIncrease.push_back(increase);
            cells.push_back(Table::fmt(increase, 3));
            values.push_back(increase);
        }
        t.addRow(cells);
        chart.addGroup(row.name, values);
        rows.push_back(row);
    }
    t.print(os);
    os << "\n";
    chart.print(os);
    return rows;
}

void
runLimitsAblation(std::ostream &os)
{
    os << "Ablation: enlargement termination conditions 1-2 "
          "(issue-width and fault limits).\nAverage reduction across "
          "the suite for each (maxOps, maxFaults).\n\n";
    Table t({"maxOps", "maxFaults", "avg reduction", "avg BSA block",
             "avg code expansion"});
    const std::pair<unsigned, unsigned> configs[] = {
        {16, 0}, {16, 1}, {16, 2}, {16, 3},
        {8, 2},  {24, 2}, {32, 2}};
    const std::size_t nconfigs = std::size(configs);
    const auto suite = specint95Suite();
    const std::vector<Module> modules = generateSuiteModules(suite);
    // The unsplit-module configs all share one trace per benchmark.
    const std::vector<ExecTrace> traces =
        captureSuiteTraces(suite, modules, 4);

    // Unsplit-module configs register with the sweep planner: per
    // benchmark the (identical) conventional runs collapse into one
    // lockstep walk while each distinct enlargement keeps its own BSA
    // run.  Narrow widths need a re-split copy (whose committed
    // stream differs — fresh capture), so they stay on the
    // standalone path as extra parallel tasks.
    PairSweep sweep;
    std::vector<std::size_t> benchId(suite.size());
    for (std::size_t bi = 0; bi < suite.size(); ++bi)
        benchId[bi] = sweep.addBenchmark(modules[bi], traces[bi]);

    std::vector<PairResult> results(nconfigs * suite.size());
    std::vector<std::ptrdiff_t> pointOf(results.size(), -1);
    std::vector<std::size_t> resplit;
    for (std::size_t idx = 0; idx < results.size(); ++idx) {
        const std::size_t ci = idx / suite.size();
        const std::size_t bi = idx % suite.size();
        const auto [max_ops, max_faults] = configs[ci];
        RunConfig config = baseConfig(suite[bi]);
        config.limits.maxOps /= 4;  // ablations use 1/4 budget
        config.enlarge.maxOps = max_ops;
        config.enlarge.maxFaults = max_faults;
        if (max_ops < 16)
            resplit.push_back(idx);
        else
            pointOf[idx] = std::ptrdiff_t(
                sweep.addPoint(benchId[bi], config));
    }
    sweep.plan();

    parallelFor(sweep.batchCount() + resplit.size(),
                [&](std::size_t task) {
        if (task < sweep.batchCount()) {
            sweep.runBatch(task);
            return;
        }
        const std::size_t idx = resplit[task - sweep.batchCount()];
        const std::size_t ci = idx / suite.size();
        const std::size_t bi = idx % suite.size();
        const auto [max_ops, max_faults] = configs[ci];
        RunConfig config = baseConfig(suite[bi]);
        config.limits.maxOps /= 4;
        config.enlarge.maxOps = max_ops;
        config.enlarge.maxFaults = max_faults;
        Module m = modules[bi];
        splitOversizedBlocks(m, max_ops);
        results[idx] = runPair(m, config);
    });
    for (std::size_t idx = 0; idx < results.size(); ++idx)
        if (pointOf[idx] >= 0)
            results[idx] = sweep.results()[std::size_t(pointOf[idx])];

    for (std::size_t ci = 0; ci < nconfigs; ++ci) {
        double total_red = 0.0, total_blk = 0.0, total_exp = 0.0;
        for (std::size_t bi = 0; bi < suite.size(); ++bi) {
            const PairResult &r = results[ci * suite.size() + bi];
            total_red += r.reduction();
            total_blk += r.bsa.avgBlockSize();
            total_exp += r.enlarge.expansion();
        }
        const double n = double(suite.size());
        t.addRow({Table::fmt(std::uint64_t(configs[ci].first)),
                  Table::fmt(std::uint64_t(configs[ci].second)),
                  Table::fmt(100.0 * total_red / n, 1) + "%",
                  Table::fmt(total_blk / n, 2),
                  Table::fmt(total_exp / n, 2)});
    }
    t.print(os);
    os << "\nNOTE: maxOps above 16 models issue widths beyond the "
          "paper's processor;\nblocks are still split at the "
          "conventional compiler's 16-op limit.\n";
}

void
runProfileAblation(std::ostream &os)
{
    os << "Ablation: profile-guided enlargement (the paper's section-6 "
          "'profiling'\nextension): skip merging traps whose dynamic "
          "bias is below the threshold.\n\n";
    Table t({"min merge bias", "avg reduction", "avg code expansion",
             "avg BSA icache miss%"});
    const double thresholds[] = {0.0, 0.6, 0.75, 0.9, 0.99};
    const std::size_t nthresh = std::size(thresholds);
    const auto suite = specint95Suite();
    const std::vector<Module> modules = generateSuiteModules(suite);
    const std::vector<ExecTrace> traces =
        captureSuiteTraces(suite, modules, 4);

    // Each threshold enlarges differently (BSA runs stay singleton),
    // but every benchmark's five identical conventional runs share
    // one lockstep walk.
    PairSweep sweep;
    std::vector<std::size_t> benchId(suite.size());
    for (std::size_t bi = 0; bi < suite.size(); ++bi)
        benchId[bi] = sweep.addBenchmark(modules[bi], traces[bi]);

    std::vector<std::size_t> pointOf(nthresh * suite.size());
    for (std::size_t idx = 0; idx < pointOf.size(); ++idx) {
        const std::size_t ti = idx / suite.size();
        const std::size_t bi = idx % suite.size();
        RunConfig config = baseConfig(suite[bi]);
        config.limits.maxOps /= 4;  // ablations use 1/4 budget
        config.minMergeBias = thresholds[ti];
        pointOf[idx] = sweep.addPoint(benchId[bi], config);
    }
    sweep.plan();
    parallelFor(sweep.batchCount(),
                [&](std::size_t b) { sweep.runBatch(b); });

    std::vector<PairResult> results(nthresh * suite.size());
    for (std::size_t idx = 0; idx < results.size(); ++idx)
        results[idx] = sweep.results()[pointOf[idx]];

    for (std::size_t ti = 0; ti < nthresh; ++ti) {
        double total_red = 0.0, total_exp = 0.0, total_miss = 0.0;
        for (std::size_t bi = 0; bi < suite.size(); ++bi) {
            const PairResult &r = results[ti * suite.size() + bi];
            total_red += r.reduction();
            total_exp += r.enlarge.expansion();
            total_miss += r.bsa.icache.missRate();
        }
        const double n = double(suite.size());
        t.addRow({thresholds[ti] == 0.0
                      ? "off"
                      : Table::fmt(thresholds[ti], 2),
                  Table::fmt(100.0 * total_red / n, 1) + "%",
                  Table::fmt(total_exp / n, 2),
                  Table::fmt(100.0 * total_miss / n, 2) + "%"});
    }
    t.print(os);
}

void
runPredictorAblation(std::ostream &os)
{
    os << "Ablation: predictor geometry (history length and PHT "
          "size), both machines,\naverage across the suite.\n\n";
    Table t({"history bits", "PHT bits", "conv accuracy",
             "bsa accuracy", "avg reduction"});
    const std::pair<unsigned, unsigned> configs[] = {
        {4, 10}, {8, 12}, {12, 14}, {16, 16}};
    const std::size_t ngeom = std::size(configs);
    const auto suite = specint95Suite();
    const std::vector<Module> modules = generateSuiteModules(suite);
    const std::vector<ExecTrace> traces =
        captureSuiteTraces(suite, modules, 4);

    // Only the predictor geometry varies, so per benchmark the whole
    // grid collapses to two lockstep walks: one advancing every
    // conventional lane, one advancing every BSA lane (the module
    // enlarges once per benchmark).
    PairSweep geomSweep;
    std::vector<std::size_t> geomBench(suite.size());
    for (std::size_t bi = 0; bi < suite.size(); ++bi)
        geomBench[bi] = geomSweep.addBenchmark(modules[bi],
                                               traces[bi]);
    std::vector<std::size_t> geomPoint(ngeom * suite.size());
    for (std::size_t idx = 0; idx < geomPoint.size(); ++idx) {
        const std::size_t ci = idx / suite.size();
        const std::size_t bi = idx % suite.size();
        RunConfig config = baseConfig(suite[bi]);
        config.limits.maxOps /= 4;  // ablations use 1/4 budget
        config.machine.predictor.historyBits = configs[ci].first;
        config.machine.predictor.phtBits = configs[ci].second;
        geomPoint[idx] = geomSweep.addPoint(geomBench[bi], config);
    }
    geomSweep.plan();
    parallelFor(geomSweep.batchCount(),
                [&](std::size_t b) { geomSweep.runBatch(b); });

    std::vector<PairResult> geomResults(ngeom * suite.size());
    for (std::size_t idx = 0; idx < geomResults.size(); ++idx)
        geomResults[idx] = geomSweep.results()[geomPoint[idx]];

    for (std::size_t ci = 0; ci < ngeom; ++ci) {
        double conv_acc = 0.0, bsa_acc = 0.0, total_red = 0.0;
        for (std::size_t bi = 0; bi < suite.size(); ++bi) {
            const PairResult &r = geomResults[ci * suite.size() + bi];
            conv_acc += r.conv.branchAccuracy();
            bsa_acc += r.bsa.branchAccuracy();
            total_red += r.reduction();
        }
        const double n = double(suite.size());
        t.addRow({Table::fmt(std::uint64_t(configs[ci].first)),
                  Table::fmt(std::uint64_t(configs[ci].second)),
                  Table::fmt(100.0 * conv_acc / n, 1) + "%",
                  Table::fmt(100.0 * bsa_acc / n, 1) + "%",
                  Table::fmt(100.0 * total_red / n, 1) + "%"});
    }
    t.print(os);

    os << "\nTwo-level scheme variants (Yeh-Patt taxonomy), "
          "paper-size tables:\n\n";
    Table ts({"scheme", "conv accuracy", "bsa accuracy",
              "avg reduction"});
    const PredictorScheme schemes[] = {
        PredictorScheme::GAg, PredictorScheme::GAs,
        PredictorScheme::PAg, PredictorScheme::PAs};
    const std::size_t nschemes = std::size(schemes);

    PairSweep schemeSweep;
    std::vector<std::size_t> schemeBench(suite.size());
    for (std::size_t bi = 0; bi < suite.size(); ++bi)
        schemeBench[bi] = schemeSweep.addBenchmark(modules[bi],
                                                   traces[bi]);
    std::vector<std::size_t> schemePoint(nschemes * suite.size());
    for (std::size_t idx = 0; idx < schemePoint.size(); ++idx) {
        const std::size_t ci = idx / suite.size();
        const std::size_t bi = idx % suite.size();
        RunConfig config = baseConfig(suite[bi]);
        config.limits.maxOps /= 4;
        config.machine.predictor.scheme = schemes[ci];
        schemePoint[idx] = schemeSweep.addPoint(schemeBench[bi],
                                                config);
    }
    schemeSweep.plan();
    parallelFor(schemeSweep.batchCount(),
                [&](std::size_t b) { schemeSweep.runBatch(b); });

    std::vector<PairResult> schemeResults(nschemes * suite.size());
    for (std::size_t idx = 0; idx < schemeResults.size(); ++idx)
        schemeResults[idx] = schemeSweep.results()[schemePoint[idx]];

    for (std::size_t ci = 0; ci < nschemes; ++ci) {
        double conv_acc = 0.0, bsa_acc = 0.0, total_red = 0.0;
        for (std::size_t bi = 0; bi < suite.size(); ++bi) {
            const PairResult &r = schemeResults[ci * suite.size() + bi];
            conv_acc += r.conv.branchAccuracy();
            bsa_acc += r.bsa.branchAccuracy();
            total_red += r.reduction();
        }
        const double n = double(suite.size());
        ts.addRow({predictorSchemeName(schemes[ci]),
                   Table::fmt(100.0 * conv_acc / n, 1) + "%",
                   Table::fmt(100.0 * bsa_acc / n, 1) + "%",
                   Table::fmt(100.0 * total_red / n, 1) + "%"});
    }
    ts.print(os);
}

} // namespace bsisa
