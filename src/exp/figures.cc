/**
 * @file
 * Figure-driver implementation.
 */

#include "exp/figures.hh"

#include "arch/instr_class.hh"
#include "codegen/layout.hh"
#include "support/env.hh"
#include "support/table.hh"

namespace bsisa
{

const std::vector<unsigned> icacheSizesKB = {16, 32, 64};

std::uint64_t
scaleDivisor()
{
    return envU64("BSISA_SCALE", specScaleDivisor);
}

namespace
{

RunConfig
baseConfig(const SpecBenchmark &bench)
{
    RunConfig config;
    config.limits.maxOps = bench.scaledBudget(scaleDivisor());
    return config;
}

BenchOutcome
outcomeOf(const SpecBenchmark &bench, const PairResult &r)
{
    BenchOutcome o;
    o.name = bench.params.name;
    o.convCycles = r.conv.cycles;
    o.bsaCycles = r.bsa.cycles;
    o.convBlockSize = r.conv.avgBlockSize();
    o.bsaBlockSize = r.bsa.avgBlockSize();
    o.convIcacheMissRate = r.conv.icache.missRate();
    o.bsaIcacheMissRate = r.bsa.icache.missRate();
    o.dynOps = r.dynOps;
    return o;
}

} // namespace

void
printTable1(std::ostream &os)
{
    os << "Table 1: Instruction classes and latencies\n\n";
    Table t({"Instruction Class", "Exec. Lat.", "Description"});
    t.addRow({"Integer", "1", "INT add, sub and logic OPs"});
    t.addRow({"FP Add", "3", "FP add, sub, and convert"});
    t.addRow({"FP/INT Mul", "3", "FP mul and INT mul"});
    t.addRow({"FP/INT Div", "8", "FP div and INT div"});
    t.addRow({"Load", "2", "Memory loads"});
    t.addRow({"Store", "1", "Memory stores"});
    t.addRow({"Bit Field", "1", "Shift, and bit testing"});
    t.addRow({"Branch", "1", "Control instructions"});
    t.print(os);
    os << "\nModel check (execLatency):\n";
    Table v({"class", "latency"});
    const InstrClass classes[] = {
        InstrClass::IntAlu,   InstrClass::FpAdd, InstrClass::FpIntMul,
        InstrClass::FpIntDiv, InstrClass::Load,  InstrClass::Store,
        InstrClass::BitField, InstrClass::Branch};
    for (InstrClass cls : classes) {
        v.addRow({instrClassName(cls),
                  Table::fmt(std::uint64_t(execLatency(cls)))});
    }
    v.print(os);
}

std::vector<BenchOutcome>
printTable2(std::ostream &os)
{
    const std::uint64_t divisor = scaleDivisor();
    os << "Table 2: The SPECint95 benchmarks and their input data "
          "sets.\n(synthetic stand-ins; dynamic op budgets are the "
          "paper's counts / "
       << divisor << ")\n\n";
    Table t({"Benchmark", "Input", "# of Instructions (paper)",
             "# simulated (measured)"});
    std::vector<BenchOutcome> outcomes;
    for (const auto &bench : specint95Suite()) {
        const Module m = generateWorkload(bench.params);
        Interp::Limits limits;
        limits.maxOps = bench.scaledBudget(divisor);
        Interp interp(m, limits);
        interp.run();
        BenchOutcome o;
        o.name = bench.params.name;
        o.dynOps = interp.dynOps();
        outcomes.push_back(o);
        t.addRow({bench.params.name, bench.input,
                  Table::fmtSep(bench.paperInstructions),
                  Table::fmtSep(interp.dynOps())});
    }
    t.print(os);
    return outcomes;
}

std::vector<BenchOutcome>
runCycleComparison(std::ostream &os, bool perfectPrediction)
{
    os << (perfectPrediction
               ? "Figure 4: Performance comparison assuming perfect "
                 "branch prediction.\n"
               : "Figure 3: Performance comparison of block-structured "
                 "ISA executables\nand conventional ISA executables "
                 "(64KB 4-way L1 icache).\n")
       << "\n";

    std::vector<BenchOutcome> outcomes;
    Table t({"Benchmark", "Conventional (cycles)",
             "Block-Structured (cycles)", "Reduction"});
    BarChart chart("Total cycles (lower is better)",
                   {"Conventional ISA", "Block-Structured ISA"});
    double geo = 0.0;
    for (const auto &bench : specint95Suite()) {
        const Module m = generateWorkload(bench.params);
        RunConfig config = baseConfig(bench);
        config.machine.perfectPrediction = perfectPrediction;
        const PairResult r = runPair(m, config);
        const BenchOutcome o = outcomeOf(bench, r);
        outcomes.push_back(o);
        t.addRow({o.name, Table::fmtSep(o.convCycles),
                  Table::fmtSep(o.bsaCycles),
                  Table::fmt(100.0 * o.reduction(), 1) + "%"});
        chart.addGroup(o.name, {double(o.convCycles) / 1e3,
                                double(o.bsaCycles) / 1e3});
        geo += o.reduction();
    }
    t.addRow({"average", "", "",
              Table::fmt(100.0 * geo / outcomes.size(), 1) + "%"});
    t.print(os);
    os << "\n";
    chart.print(os);
    return outcomes;
}

std::vector<BenchOutcome>
runBlockSizeComparison(std::ostream &os)
{
    os << "Figure 5: Average block sizes for block-structured and "
          "conventional ISA executables\n(retired blocks only).\n\n";
    std::vector<BenchOutcome> outcomes;
    Table t({"Benchmark", "Conventional", "Block-Structured"});
    BarChart chart("Average retired block size (operations)",
                   {"Conventional ISA", "Block-Structured ISA"});
    double conv_sum = 0.0, bsa_sum = 0.0;
    for (const auto &bench : specint95Suite()) {
        const Module m = generateWorkload(bench.params);
        const PairResult r = runPair(m, baseConfig(bench));
        const BenchOutcome o = outcomeOf(bench, r);
        outcomes.push_back(o);
        t.addRow({o.name, Table::fmt(o.convBlockSize, 2),
                  Table::fmt(o.bsaBlockSize, 2)});
        chart.addGroup(o.name, {o.convBlockSize, o.bsaBlockSize});
        conv_sum += o.convBlockSize;
        bsa_sum += o.bsaBlockSize;
    }
    t.addRow({"average", Table::fmt(conv_sum / outcomes.size(), 2),
              Table::fmt(bsa_sum / outcomes.size(), 2)});
    t.print(os);
    os << "\n";
    chart.print(os);
    return outcomes;
}

std::vector<IcacheSweepRow>
runIcacheSweep(std::ostream &os, bool blockStructured)
{
    os << (blockStructured
               ? "Figure 7: Relative increase in execution times for "
                 "the block-structured ISA\nexecutables over the "
                 "execution time with a perfect icache.\n"
               : "Figure 6: Relative increase in execution times for "
                 "the conventional ISA\nexecutables over the execution "
                 "time with a perfect icache.\n")
       << "\n";

    std::vector<IcacheSweepRow> rows;
    std::vector<std::string> headers{"Benchmark"};
    for (unsigned kb : icacheSizesKB)
        headers.push_back(std::to_string(kb) + "KB");
    Table t(headers);
    BarChart chart("Relative execution-time increase vs perfect icache",
                   {"16KB", "32KB", "64KB"});

    for (const auto &bench : specint95Suite()) {
        const Module m = generateWorkload(bench.params);
        IcacheSweepRow row;
        row.name = bench.params.name;

        // Baseline with a perfect icache.
        RunConfig ideal = baseConfig(bench);
        ideal.machine.icache.perfect = true;
        std::uint64_t base_cycles;
        BsaModule bsa;
        if (blockStructured) {
            bsa = enlargeModule(m, ideal.enlarge);
            layoutBsaModule(bsa);
            base_cycles =
                runBlockStructured(bsa, ideal.machine, ideal.limits)
                    .cycles;
        } else {
            base_cycles =
                runConventional(m, ideal.machine, ideal.limits).cycles;
        }

        std::vector<std::string> cells{row.name};
        std::vector<double> values;
        for (unsigned kb : icacheSizesKB) {
            RunConfig config = baseConfig(bench);
            config.machine.icache.sizeBytes = kb * 1024;
            const std::uint64_t cycles =
                blockStructured
                    ? runBlockStructured(bsa, config.machine,
                                         config.limits)
                          .cycles
                    : runConventional(m, config.machine, config.limits)
                          .cycles;
            const double increase =
                double(cycles) / double(base_cycles) - 1.0;
            row.relativeIncrease.push_back(increase);
            cells.push_back(Table::fmt(increase, 3));
            values.push_back(increase);
        }
        t.addRow(cells);
        chart.addGroup(row.name, values);
        rows.push_back(row);
    }
    t.print(os);
    os << "\n";
    chart.print(os);
    return rows;
}

void
runLimitsAblation(std::ostream &os)
{
    os << "Ablation: enlargement termination conditions 1-2 "
          "(issue-width and fault limits).\nAverage reduction across "
          "the suite for each (maxOps, maxFaults).\n\n";
    Table t({"maxOps", "maxFaults", "avg reduction", "avg BSA block",
             "avg code expansion"});
    const std::pair<unsigned, unsigned> configs[] = {
        {16, 0}, {16, 1}, {16, 2}, {16, 3},
        {8, 2},  {24, 2}, {32, 2}};
    const auto suite = specint95Suite();
    std::vector<Module> modules;
    for (const auto &bench : suite)
        modules.push_back(generateWorkload(bench.params));
    for (const auto &[max_ops, max_faults] : configs) {
        double total_red = 0.0, total_blk = 0.0, total_exp = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const SpecBenchmark &bench = suite[i];
            // The compiler splits blocks at the atomic-block size
            // limit, so narrower widths need a re-split copy.
            Module m = modules[i];
            if (max_ops < 16)
                splitOversizedBlocks(m, max_ops);
            RunConfig config = baseConfig(bench);
            config.limits.maxOps /= 4;  // ablations use 1/4 budget
            config.enlarge.maxOps = max_ops;
            config.enlarge.maxFaults = max_faults;
            const PairResult r = runPair(m, config);
            total_red += r.reduction();
            total_blk += r.bsa.avgBlockSize();
            total_exp += r.enlarge.expansion();
        }
        const double n = double(suite.size());
        t.addRow({Table::fmt(std::uint64_t(max_ops)),
                  Table::fmt(std::uint64_t(max_faults)),
                  Table::fmt(100.0 * total_red / n, 1) + "%",
                  Table::fmt(total_blk / n, 2),
                  Table::fmt(total_exp / n, 2)});
    }
    t.print(os);
    os << "\nNOTE: maxOps above 16 models issue widths beyond the "
          "paper's processor;\nblocks are still split at the "
          "conventional compiler's 16-op limit.\n";
}

void
runProfileAblation(std::ostream &os)
{
    os << "Ablation: profile-guided enlargement (the paper's section-6 "
          "'profiling'\nextension): skip merging traps whose dynamic "
          "bias is below the threshold.\n\n";
    Table t({"min merge bias", "avg reduction", "avg code expansion",
             "avg BSA icache miss%"});
    const double thresholds[] = {0.0, 0.6, 0.75, 0.9, 0.99};
    const auto suite = specint95Suite();
    std::vector<Module> modules;
    for (const auto &bench : suite)
        modules.push_back(generateWorkload(bench.params));
    for (double threshold : thresholds) {
        double total_red = 0.0, total_exp = 0.0, total_miss = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const SpecBenchmark &bench = suite[i];
            const Module &m = modules[i];
            RunConfig config = baseConfig(bench);
            config.limits.maxOps /= 4;  // ablations use 1/4 budget
            config.minMergeBias = threshold;
            const PairResult r = runPair(m, config);
            total_red += r.reduction();
            total_exp += r.enlarge.expansion();
            total_miss += r.bsa.icache.missRate();
        }
        const double n = double(suite.size());
        t.addRow({threshold == 0.0 ? "off" : Table::fmt(threshold, 2),
                  Table::fmt(100.0 * total_red / n, 1) + "%",
                  Table::fmt(total_exp / n, 2),
                  Table::fmt(100.0 * total_miss / n, 2) + "%"});
    }
    t.print(os);
}

void
runPredictorAblation(std::ostream &os)
{
    os << "Ablation: predictor geometry (history length and PHT "
          "size), both machines,\naverage across the suite.\n\n";
    Table t({"history bits", "PHT bits", "conv accuracy",
             "bsa accuracy", "avg reduction"});
    const std::pair<unsigned, unsigned> configs[] = {
        {4, 10}, {8, 12}, {12, 14}, {16, 16}};
    const auto suite = specint95Suite();
    std::vector<Module> modules;
    for (const auto &bench : suite)
        modules.push_back(generateWorkload(bench.params));
    for (const auto &[hist, pht] : configs) {
        double conv_acc = 0.0, bsa_acc = 0.0, total_red = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const SpecBenchmark &bench = suite[i];
            const Module &m = modules[i];
            RunConfig config = baseConfig(bench);
            config.limits.maxOps /= 4;  // ablations use 1/4 budget
            config.machine.predictor.historyBits = hist;
            config.machine.predictor.phtBits = pht;
            const PairResult r = runPair(m, config);
            conv_acc += r.conv.branchAccuracy();
            bsa_acc += r.bsa.branchAccuracy();
            total_red += r.reduction();
        }
        const double n = double(suite.size());
        t.addRow({Table::fmt(std::uint64_t(hist)),
                  Table::fmt(std::uint64_t(pht)),
                  Table::fmt(100.0 * conv_acc / n, 1) + "%",
                  Table::fmt(100.0 * bsa_acc / n, 1) + "%",
                  Table::fmt(100.0 * total_red / n, 1) + "%"});
    }
    t.print(os);

    os << "\nTwo-level scheme variants (Yeh-Patt taxonomy), "
          "paper-size tables:\n\n";
    Table ts({"scheme", "conv accuracy", "bsa accuracy",
              "avg reduction"});
    const PredictorScheme schemes[] = {
        PredictorScheme::GAg, PredictorScheme::GAs,
        PredictorScheme::PAg, PredictorScheme::PAs};
    for (PredictorScheme scheme : schemes) {
        double conv_acc = 0.0, bsa_acc = 0.0, total_red = 0.0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            RunConfig config = baseConfig(suite[i]);
            config.limits.maxOps /= 4;
            config.machine.predictor.scheme = scheme;
            const PairResult r = runPair(modules[i], config);
            conv_acc += r.conv.branchAccuracy();
            bsa_acc += r.bsa.branchAccuracy();
            total_red += r.reduction();
        }
        const double n = double(suite.size());
        ts.addRow({predictorSchemeName(scheme),
                   Table::fmt(100.0 * conv_acc / n, 1) + "%",
                   Table::fmt(100.0 * bsa_acc / n, 1) + "%",
                   Table::fmt(100.0 * total_red / n, 1) + "%"});
    }
    ts.print(os);
}

} // namespace bsisa
