/**
 * @file
 * Per-figure experiment drivers.
 *
 * Each function regenerates one of the paper's tables or figures (or
 * one of DESIGN.md's ablations) over the synthetic SPECint95 suite and
 * renders it as text; the bench/ binaries are thin wrappers.  The
 * drivers also return their numbers so tests can assert the shapes.
 *
 * The dynamic-op budget is Table-2's instruction counts divided by
 * the BSISA_SCALE env var (default specScaleDivisor).
 */

#ifndef BSISA_EXP_FIGURES_HH
#define BSISA_EXP_FIGURES_HH

#include <ostream>
#include <string>
#include <vector>

#include "exp/runner.hh"
#include "workloads/specmix.hh"

namespace bsisa
{

/** One benchmark's outcome in a two-machine comparison. */
struct BenchOutcome
{
    std::string name;
    std::uint64_t convCycles = 0;
    std::uint64_t bsaCycles = 0;
    double convBlockSize = 0.0;
    double bsaBlockSize = 0.0;
    double convIcacheMissRate = 0.0;
    double bsaIcacheMissRate = 0.0;
    std::uint64_t dynOps = 0;

    double
    reduction() const
    {
        return convCycles
                   ? 1.0 - double(bsaCycles) / double(convCycles)
                   : 0.0;
    }
};

/** Scale divisor from BSISA_SCALE (default specScaleDivisor). */
std::uint64_t scaleDivisor();

/** Fold one benchmark's PairResult into a BenchOutcome (the figure
 *  drivers' metric extraction, shared with the sweep service so
 *  store-rendered figures use the exact same folding). */
BenchOutcome benchOutcomeOf(const std::string &name,
                            const PairResult &r);

/** Render figures 3/4 from already-computed outcomes — the exact
 *  print path of runCycleComparison, split out so the sweep service
 *  renders byte-identical tables from its results store. */
void renderCycleComparison(std::ostream &os,
                           const std::vector<BenchOutcome> &outcomes,
                           bool perfectPrediction);

/** Render figure 5 from already-computed outcomes (see above). */
void renderBlockSizeComparison(
    std::ostream &os, const std::vector<BenchOutcome> &outcomes);

/** Table 1: instruction classes and latencies. */
void printTable1(std::ostream &os);

/** Table 2: benchmarks, inputs, dynamic instruction counts. */
std::vector<BenchOutcome> printTable2(std::ostream &os);

/** Figures 3/4: total cycles, conventional vs block-structured; set
 *  @p perfectPrediction for figure 4. */
std::vector<BenchOutcome> runCycleComparison(std::ostream &os,
                                             bool perfectPrediction);

/** Figure 5: average retired block sizes. */
std::vector<BenchOutcome> runBlockSizeComparison(std::ostream &os);

/** Figures 6/7: relative execution-time increase over a perfect
 *  icache for 16/32/64 KB icaches; one row per benchmark, one column
 *  per size.  @p blockStructured selects the machine. */
struct IcacheSweepRow
{
    std::string name;
    /** Relative increase per icache size, icacheSizesKB order. */
    std::vector<double> relativeIncrease;
};
extern const std::vector<unsigned> icacheSizesKB;
std::vector<IcacheSweepRow> runIcacheSweep(std::ostream &os,
                                           bool blockStructured);

/** Ablation: enlargement limits (issue width / fault budget). */
void runLimitsAblation(std::ostream &os);

/** Ablation: profile-guided merge filtering (section-6 extension). */
void runProfileAblation(std::ostream &os);

/** Ablation: predictor geometry sweep. */
void runPredictorAblation(std::ostream &os);

} // namespace bsisa

#endif // BSISA_EXP_FIGURES_HH
