/**
 * @file
 * Plan builder: grid expansion, config digests, unit dedup, and
 * lease-chunk carving.
 */

#include "exp/plan.hh"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "exp/result_store.hh"
#include "sim/interp.hh"
#include "sim/trace_store.hh"
#include "support/digest.hh"
#include "support/parallel.hh"
#include "workloads/specmix.hh"

namespace bsisa
{

namespace
{

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

std::uint64_t
runConfigDigest(const RunConfig &c)
{
    // Every field, fixed order, fixed width.  Adding a RunConfig
    // field without extending this list would silently alias configs;
    // test_sweep's per-field sensitivity check guards the common
    // fields, and new fields must be appended *at the end* (order is
    // part of the digest's identity).
    return Fnv1a64()
        .u64(c.machine.issueWidth)
        .u64(c.machine.windowOps)
        .u64(c.machine.windowUnits)
        .u64(c.machine.frontendDepth)
        .u64(c.machine.redirectPenalty)
        .u64(c.machine.l2Latency)
        .u64(c.machine.icache.sizeBytes)
        .u64(c.machine.icache.assoc)
        .u64(c.machine.icache.lineBytes)
        .u64(c.machine.icache.perfect ? 1 : 0)
        .u64(c.machine.dcache.sizeBytes)
        .u64(c.machine.dcache.assoc)
        .u64(c.machine.dcache.lineBytes)
        .u64(c.machine.dcache.perfect ? 1 : 0)
        .u64(std::uint64_t(c.machine.predictor.scheme))
        .u64(c.machine.predictor.historyBits)
        .u64(c.machine.predictor.phtBits)
        .u64(c.machine.predictor.historyEntries)
        .u64(c.machine.predictor.btbEntries)
        .u64(c.machine.predictor.btbAssoc)
        .u64(c.machine.predictor.perfect ? 1 : 0)
        .u64(c.machine.perfectPrediction ? 1 : 0)
        .u64(c.enlarge.maxOps)
        .u64(c.enlarge.maxFaults)
        .u64(c.enlarge.mergeAcrossBackEdges ? 1 : 0)
        .u64(c.enlarge.enlargeLibraryFunctions ? 1 : 0)
        .u64(c.enlarge.enabled ? 1 : 0)
        .u64(c.enlarge.maxVariantsPerHead)
        .u64(doubleBits(c.enlarge.minMergeBias))
        .u64(c.limits.maxOps)
        .u64(c.limits.maxBlocks)
        .u64(doubleBits(c.minMergeBias))
        .u64(std::uint64_t(c.machine.timingModel))
        .u64(c.machine.ooo.robOps)
        .u64(c.machine.ooo.physRegs)
        .u64(c.machine.ooo.rsPerClass)
        .u64(c.machine.ooo.lsqEntries)
        .u64(c.machine.ooo.commitWidth)
        .value();
}

std::uint64_t
workUnitKey(std::uint64_t moduleDigest, std::uint64_t configDigest)
{
    return Fnv1a64()
        .u64(moduleDigest)
        .u64(configDigest)
        .u64(interpVersion)
        .u64(resultStoreFormatVersion)
        .value();
}

bool
expandGrid(const SweepSpec &spec, Interp::Limits limits,
           std::vector<RunConfig> &out, std::string &error)
{
    out.clear();
    RunConfig base;
    base.limits = limits;
    for (const SpecAssign &assign : spec.base) {
        if (!applyConfigKey(base, assign.first, assign.second, error))
            return false;
    }

    if (!spec.axes.empty()) {
        // Cross-product, first axis outermost (odometer order).
        std::uint64_t count = 1;
        for (const auto &axis : spec.axes)
            count *= axis.second.size();
        for (std::uint64_t n = 0; n < count; ++n) {
            RunConfig config = base;
            std::uint64_t rem = n;
            for (std::size_t a = spec.axes.size(); a-- > 0;) {
                const auto &axis = spec.axes[a];
                const std::size_t pick = rem % axis.second.size();
                rem /= axis.second.size();
                if (!applyConfigKey(config, axis.first,
                                    axis.second[pick], error))
                    return false;
            }
            out.push_back(config);
        }
    } else if (spec.points.empty()) {
        out.push_back(base);
    }

    for (const auto &point : spec.points) {
        RunConfig config = base;
        for (const SpecAssign &assign : point) {
            if (!applyConfigKey(config, assign.first, assign.second,
                                error))
                return false;
        }
        out.push_back(config);
    }
    return true;
}

bool
buildPlan(const SweepSpec &spec, std::uint64_t chunkOverride,
          SweepPlan &out, std::string &error)
{
    out = SweepPlan{};
    out.spec = spec;
    out.specDigest = specDigest(spec);

    const auto suite = specint95Suite();
    for (const std::string &name : spec.benchmarks) {
        for (std::size_t i = 0; i < suite.size(); ++i) {
            if (name == suite[i].params.name) {
                PlanBench bench;
                bench.name = name;
                bench.suiteIndex = i;
                bench.limits.maxOps =
                    suite[i].scaledBudget(spec.effectiveScale()) /
                    spec.budgetDiv;
                out.benches.push_back(std::move(bench));
                break;
            }
        }
    }
    if (out.benches.size() != spec.benchmarks.size()) {
        error = "plan: unknown benchmark in spec";  // parse catches it
        return false;
    }

    // Generate + digest the modules (the expensive part of planning;
    // both are per-benchmark independent).
    out.modules.resize(out.benches.size());
    parallelFor(out.benches.size(), [&](std::size_t i) {
        out.modules[i] =
            generateWorkload(suite[out.benches[i].suiteIndex].params);
        out.benches[i].moduleDigest = moduleDigest(out.modules[i]);
    });

    // Expand the grid once per benchmark (limits differ per
    // benchmark, so config digests do too) and dedup into units.
    std::unordered_map<std::uint64_t, std::size_t> unitOf;
    for (std::size_t b = 0; b < out.benches.size(); ++b) {
        std::vector<RunConfig> grid;
        if (!expandGrid(spec, out.benches[b].limits, grid, error))
            return false;
        for (const RunConfig &config : grid) {
            const std::uint64_t configDigest = runConfigDigest(config);
            const std::uint64_t key =
                workUnitKey(out.benches[b].moduleDigest, configDigest);
            const std::size_t pointId = out.pointUnit.size();
            const auto it = unitOf.find(key);
            if (it != unitOf.end()) {
                out.units[it->second].pointIds.push_back(pointId);
                out.pointUnit.push_back(it->second);
                continue;
            }
            WorkUnit unit;
            unit.key = key;
            unit.moduleDigest = out.benches[b].moduleDigest;
            unit.configDigest = configDigest;
            unit.bench = b;
            unit.config = config;
            unit.pointIds.push_back(pointId);
            unitOf.emplace(key, out.units.size());
            out.pointUnit.push_back(out.units.size());
            out.units.push_back(std::move(unit));
        }
    }

    // Lease chunks: per benchmark, split at the chunk cap.  Chunk
    // keys hash the member unit keys, so chunk identity follows
    // content — the same spec leases the same names everywhere.
    const std::uint64_t cap =
        chunkOverride ? chunkOverride : spec.chunkUnits;
    for (std::size_t b = 0; b < out.benches.size(); ++b) {
        std::vector<std::size_t> members;
        for (std::size_t u = 0; u < out.units.size(); ++u)
            if (out.units[u].bench == b)
                members.push_back(u);
        for (std::size_t at = 0; at < members.size();
             at += cap ? cap : members.size()) {
            const std::size_t end =
                cap ? std::min(at + cap, members.size())
                    : members.size();
            std::vector<std::size_t> chunk(members.begin() + at,
                                           members.begin() + end);
            Fnv1a64 h;
            for (std::size_t u : chunk)
                h.u64(out.units[u].key);
            out.chunkKeys.push_back(h.value());
            out.chunks.push_back(std::move(chunk));
        }
    }
    return true;
}

} // namespace bsisa
