/**
 * @file
 * Content-addressed work-unit plans for the sweep service.
 *
 * A plan expands a SweepSpec's config grid into work units.  One unit
 * is one (module digest x RunConfig digest x interp/format version)
 * — exactly the identity the results store records — and grid points
 * whose configs collapse to the same unit are deduplicated up front,
 * the planning analog of lockstep's effectively-identical-config
 * dedup: the unit runs once and its result serves every point.
 *
 * Units are grouped into lease *chunks* (per benchmark, split by the
 * spec's chunk_units or a CLI override).  A chunk is the granularity
 * at which workers claim work; its key hashes the member unit keys,
 * so the same spec always produces the same lease names and two
 * workers on the same store contend over the same files.
 *
 * Unit keys are stable across processes and sessions — everything
 * hashed is either canonical spec text, module content, or
 * fixed-width config fields — which is what makes the results store
 * a warm cache rather than a per-run scratch file.
 */

#ifndef BSISA_EXP_PLAN_HH
#define BSISA_EXP_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/spec.hh"
#include "ir/module.hh"

namespace bsisa
{

/** Stable digest of every RunConfig field (fixed order, fixed width;
 *  doubles hashed by bit pattern; Interp::Limits included — the
 *  budget changes the committed stream, hence the results). */
std::uint64_t runConfigDigest(const RunConfig &config);

/** The content address of one work unit. */
std::uint64_t workUnitKey(std::uint64_t moduleDigest,
                          std::uint64_t configDigest);

/** One benchmark of a plan. */
struct PlanBench
{
    std::string name;
    std::size_t suiteIndex = 0;   //!< into specint95Suite()
    std::uint64_t moduleDigest = 0;
    Interp::Limits limits;        //!< scaled trace budget
};

/** One deduplicated work unit. */
struct WorkUnit
{
    std::uint64_t key = 0;
    std::uint64_t moduleDigest = 0;
    std::uint64_t configDigest = 0;
    std::size_t bench = 0;        //!< into SweepPlan::benches
    RunConfig config;
    /** Grid points (bench-major global ids) served by this unit. */
    std::vector<std::size_t> pointIds;
};

/** A fully expanded plan. */
struct SweepPlan
{
    SweepSpec spec;
    std::uint64_t specDigest = 0;
    std::vector<PlanBench> benches;
    std::vector<Module> modules;  //!< per bench, generation order
    std::vector<WorkUnit> units;
    /** Grid point (bench-major) -> unit index. */
    std::vector<std::size_t> pointUnit;
    /** Lease chunks: unit indices, benchmark-major order. */
    std::vector<std::vector<std::size_t>> chunks;
    /** Chunk identity (lease file name component). */
    std::vector<std::uint64_t> chunkKeys;

    std::size_t gridPoints() const { return pointUnit.size(); }
};

/**
 * Expand the spec's config grid for one benchmark budget: the axis
 * cross-product applied over the base config (first axis outermost),
 * then the explicit points.  Returns false on a config-key error
 * (already excluded by parse validation; belt and braces).
 */
bool expandGrid(const SweepSpec &spec, Interp::Limits limits,
                std::vector<RunConfig> &out, std::string &error);

/**
 * Build the full plan: generate the benchmark modules (parallelFor),
 * digest them, expand and dedup the grid, and carve lease chunks.
 * @p chunkOverride replaces the spec's chunk_units when non-zero.
 */
bool buildPlan(const SweepSpec &spec, std::uint64_t chunkOverride,
               SweepPlan &out, std::string &error);

} // namespace bsisa

#endif // BSISA_EXP_PLAN_HH
