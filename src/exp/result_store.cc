/**
 * @file
 * Results-store implementation: framed shard files, merge-on-refresh
 * indexing with torn-tail repair, and deterministic compaction.
 */

#include "exp/result_store.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <sstream>
#include <type_traits>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "sim/interp.hh"
#include "support/digest.hh"
#include "support/lockfile.hh"
#include "support/logging.hh"

namespace bsisa
{

namespace
{

// The record is a padding-free POD: every PairResult member is a
// 64-bit scalar (SimResult = 14 uint64 + 2 x CacheStats, EnlargeStats
// = 6 size_t), so the layout below is exact or the asserts fire and
// force a resultStoreFormatVersion bump.
static_assert(std::is_trivially_copyable_v<ResultRecord>);
static_assert(sizeof(SimResult) == 144);
static_assert(sizeof(PairResult) == 2 * sizeof(SimResult) +
                                        sizeof(EnlargeStats) + 24);
static_assert(sizeof(ResultRecord) == 32 + sizeof(PairResult),
              "on-disk record layout changed; bump "
              "resultStoreFormatVersion");

/** 16-byte shard/snapshot file header. */
struct ShardHeader
{
    char magic[8];
    std::uint32_t formatVersion;
    std::uint32_t reserved;
};
static_assert(sizeof(ShardHeader) == 16);

/** 16-byte per-record frame header preceding the payload. */
struct FrameHeader
{
    std::uint32_t payloadBytes;
    std::uint32_t frameMagic;
    std::uint64_t checksum;  //!< fnv1a64Words over the payload
};
static_assert(sizeof(FrameHeader) == 16);

constexpr std::uint32_t resultFrameMagic = 0x30434552;  // "REC0"

std::atomic<bool> warnedDuplicate{false};
std::atomic<bool> warnedWrite{false};
std::atomic<std::uint64_t> tempSeq{0};

std::uint64_t
processTag()
{
#if defined(__unix__) || defined(__APPLE__)
    return std::uint64_t(::getpid());
#else
    return 0;
#endif
}

constexpr char snapshotName[] = "snapshot.bsr";

bool
isSnapshotPath(const std::string &path)
{
    // Compare by filename, never by raw string: the same file can be
    // spelled `results/snapshot.bsr` or `results//snapshot.bsr`
    // depending on how the directory was given.
    return std::filesystem::path(path).filename() == snapshotName;
}

/** The writer pid embedded in a `shard-<pid>-<salt>.bsr` name, or 0
 *  when the name does not carry one (snapshot, foreign files). */
std::uint64_t
shardWriterPid(const std::string &path)
{
    const std::string name =
        std::filesystem::path(path).filename().string();
    unsigned long long pid = 0;
    if (std::sscanf(name.c_str(), "shard-%llu-", &pid) != 1)
        return 0;
    return pid;
}

void
appendShardHeader(std::string &out)
{
    ShardHeader h;
    std::memset(&h, 0, sizeof(h));
    std::memcpy(h.magic, resultStoreMagic, sizeof(h.magic));
    h.formatVersion = resultStoreFormatVersion;
    out.append(reinterpret_cast<const char *>(&h), sizeof(h));
}

void
appendFrame(std::string &out, const ResultRecord &record)
{
    FrameHeader f;
    f.payloadBytes = sizeof(ResultRecord);
    f.frameMagic = resultFrameMagic;
    f.checksum = fnv1a64Words(&record, sizeof(record));
    out.append(reinterpret_cast<const char *>(&f), sizeof(f));
    out.append(reinterpret_cast<const char *>(&record),
               sizeof(record));
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** Atomically publish @p bytes as @p path (temp + rename). */
bool
publishFile(const std::string &path, const std::string &bytes)
{
    const std::string temp =
        path + ".tmp-" + std::to_string(processTag()) + "-" +
        std::to_string(
            tempSeq.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out || !out.write(bytes.data(),
                               std::streamsize(bytes.size()))) {
            std::remove(temp.c_str());
            return false;
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

} // namespace

ResultRecord
makeResultRecord(std::uint64_t unitKey, std::uint64_t moduleDigest,
                 std::uint64_t configDigest, const PairResult &pair)
{
    ResultRecord record{};  // value-init: no indeterminate padding
    record.unitKey = unitKey;
    record.moduleDigest = moduleDigest;
    record.configDigest = configDigest;
    record.interpVersionTag = interpVersion;
    record.formatVersion = resultStoreFormatVersion;
    record.pair = pair;
    return record;
}

ResultStore::ResultStore(std::string directory)
    : dir(std::move(directory))
{
    // Normalize away trailing slashes so paths built as dir + "/x"
    // match what directory_iterator yields for the same files.
    while (dir.size() > 1 && dir.back() == '/')
        dir.pop_back();
}

ResultStore::~ResultStore() = default;

const ResultRecord *
ResultStore::find(std::uint64_t unitKey) const
{
    const auto it = index.find(unitKey);
    return it == index.end() ? nullptr : &it->second;
}

std::vector<std::uint64_t>
ResultStore::keys() const
{
    std::vector<std::uint64_t> out;
    out.reserve(index.size());
    for (const auto &kv : index)
        out.push_back(kv.first);
    return out;
}

ResultScanStats
ResultStore::refresh()
{
    ResultScanStats stats;
    index.clear();
    scanned.clear();

    // Snapshot first, then shards sorted by name: scan order decides
    // nothing semantically (first record per key wins and duplicates
    // are byte-identical), but a deterministic order keeps the
    // duplicate counters stable for tests.
    std::vector<std::string> files;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (!ec) {
        for (const auto &de : it) {
            if (!de.is_regular_file(ec) || ec)
                continue;
            if (de.path().extension() == ".bsr")
                files.push_back(de.path().string());
        }
    }
    std::sort(files.begin(), files.end(),
              [&](const std::string &a, const std::string &b) {
                  const bool sa = isSnapshotPath(a);
                  const bool sb = isSnapshotPath(b);
                  if (sa != sb)
                      return sa;
                  return a < b;
              });

    for (const std::string &path : files) {
        std::string bytes;
        if (!readWholeFile(path, bytes) ||
            bytes.size() < sizeof(ShardHeader)) {
            ++stats.badShards;
            continue;
        }
        ShardHeader h;
        std::memcpy(&h, bytes.data(), sizeof(h));
        if (std::memcmp(h.magic, resultStoreMagic, sizeof(h.magic)) !=
                0 ||
            h.formatVersion != resultStoreFormatVersion) {
            ++stats.badShards;
            continue;
        }
        ++stats.shardFiles;
        scanned.push_back(path);

        std::size_t pos = sizeof(ShardHeader);
        while (pos < bytes.size()) {
            if (bytes.size() - pos < sizeof(FrameHeader)) {
                ++stats.tornTails;
                break;
            }
            FrameHeader f;
            std::memcpy(&f, bytes.data() + pos, sizeof(f));
            if (f.frameMagic != resultFrameMagic ||
                f.payloadBytes != sizeof(ResultRecord) ||
                bytes.size() - pos - sizeof(f) < f.payloadBytes) {
                ++stats.tornTails;
                break;
            }
            const char *payload = bytes.data() + pos + sizeof(f);
            if (f.checksum != fnv1a64Words(payload, f.payloadBytes)) {
                ++stats.tornTails;
                break;
            }
            ResultRecord record;
            std::memcpy(&record, payload, sizeof(record));
            pos += sizeof(f) + f.payloadBytes;

            const auto [at, inserted] =
                index.emplace(record.unitKey, record);
            if (!inserted) {
                ++stats.duplicates;
                if (std::memcmp(&at->second, &record,
                                sizeof(record)) != 0 &&
                    !warnedDuplicate.exchange(true)) {
                    warn("result store: byte-differing duplicate for "
                         "unit key ",
                         record.unitKey, " in ", path,
                         "; keeping the first record seen");
                }
            }
        }
    }
    stats.records = index.size();
    return stats;
}

bool
ResultStore::append(const ResultRecord &record)
{
    if (!shard.is_open()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        // One shard per process: the name embeds the pid plus a
        // random salt so re-executed pids and non-unix builds (pid
        // tag 0) never collide on a shared directory.
        std::random_device rd;
        shardPath = dir + "/shard-" + std::to_string(processTag()) +
                    "-" + std::to_string(std::uint64_t(rd()) << 32 |
                                         rd()) +
                    ".bsr";
        shard.open(shardPath, std::ios::binary | std::ios::trunc);
        std::string header;
        appendShardHeader(header);
        if (!shard ||
            !shard.write(header.data(),
                         std::streamsize(header.size()))) {
            shard.close();
            shardPath.clear();
            if (!warnedWrite.exchange(true))
                warn("result store: cannot write to ", dir,
                     "; results will not persist");
            return false;
        }
    }
    // One buffered write + flush per frame: after append() returns
    // the frame is in the kernel, so killing the process cannot tear
    // it; a kill *during* the write leaves a checksummed torn tail
    // that the next refresh() drops.
    std::string frame;
    appendFrame(frame, record);
    if (!shard.write(frame.data(), std::streamsize(frame.size())) ||
        !shard.flush())
        return false;
    index.emplace(record.unitKey, record);
    return true;
}

bool
ResultStore::compact()
{
    refresh();
    // Our own shard is about to be merged and unlinked; close it so
    // a later append starts a fresh one.
    if (shard.is_open()) {
        shard.close();
        shard = std::ofstream();
        shardPath.clear();
    }

    std::string bytes;
    appendShardHeader(bytes);
    for (const auto &kv : index)
        appendFrame(bytes, kv.second);

    const std::string snapshot = dir + "/" + snapshotName;
    if (!publishFile(snapshot, bytes))
        return false;
    std::vector<std::string> kept;
    kept.push_back(snapshot);
    for (const std::string &path : scanned) {
        if (isSnapshotPath(path))
            continue;
        // Keep shards whose writer is a live peer process: it still
        // holds the file open and will append more records, which an
        // unlink would silently divert to an orphaned inode.  Its
        // already-merged records stay on disk twice until the writer
        // exits and a later compaction folds them (duplicates are
        // byte-identical and first-record-wins at refresh).  Our own
        // shard was closed above, and a dead writer's shard is fully
        // merged, so both are safe to unlink.
        const std::uint64_t writer = shardWriterPid(path);
        if (writer != 0 && writer != processTag() &&
            processAlive(writer)) {
            kept.push_back(path);
            continue;
        }
        std::remove(path.c_str());
    }
    scanned = std::move(kept);
    return true;
}

} // namespace bsisa
