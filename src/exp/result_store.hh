/**
 * @file
 * Persistent, sharded results store for the sweep service.
 *
 * The store is a directory of append-only shard files plus an
 * optional compacted snapshot.  Each record is one work unit's
 * PairResult, framed with a length, a magic, and an FNV-1a checksum,
 * so a `kill -9` mid-append costs exactly the torn tail frame: on
 * the next open the intact prefix is kept and the tail dropped —
 * the same graceful-degrade discipline as sim/trace_store.cc, with
 * the same atomic write-to-temp+rename publish for the snapshot.
 *
 * Concurrency model: every writing process appends to its *own*
 * shard (named by pid + sequence), so writers never contend; readers
 * merge all shards at refresh() time, first record per unit key
 * wins.  Duplicate keys are expected (two workers may race one unit
 * — units are idempotent and deterministic, so duplicates are
 * byte-identical; a byte-differing duplicate is warned about and
 * ignored).  compact() folds everything into a deterministic
 * `snapshot.bsr` — records sorted by unit key — and unlinks the
 * merged shards, except shards still held open by a live writer
 * process (identified by the pid in the shard name), which survive
 * until a compaction after that writer exits; two stores with the
 * same content compact to byte-identical snapshots, which is what
 * the crash-resume test asserts.
 */

#ifndef BSISA_EXP_RESULT_STORE_HH
#define BSISA_EXP_RESULT_STORE_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "exp/runner.hh"

namespace bsisa
{

/** On-disk layout version; a component of every work-unit key, so
 *  bumping it re-keys (and thus invalidates) old results. */
constexpr std::uint32_t resultStoreFormatVersion = 1;

constexpr char resultStoreMagic[8] = {'B', 'S', 'A', 'R',
                                      'E', 'S', '0', '1'};

/** One stored record.  POD, memcpy'd to disk; the key fields are
 *  stored redundantly with the frame so a record is self-describing
 *  (status tools need no plan to interpret a store). */
struct ResultRecord
{
    std::uint64_t unitKey;
    std::uint64_t moduleDigest;
    std::uint64_t configDigest;
    std::uint32_t interpVersionTag;
    std::uint32_t formatVersion;
    PairResult pair;
};

/** Build a fully initialised record (zeroed padding-free POD). */
ResultRecord makeResultRecord(std::uint64_t unitKey,
                              std::uint64_t moduleDigest,
                              std::uint64_t configDigest,
                              const PairResult &pair);

/** What refresh() saw while scanning the directory. */
struct ResultScanStats
{
    std::uint64_t records = 0;     //!< distinct unit keys indexed
    std::uint64_t duplicates = 0;  //!< same-key records skipped
    std::uint64_t tornTails = 0;   //!< shards truncated at a torn frame
    std::uint64_t badShards = 0;   //!< unreadable headers (skipped)
    std::uint64_t shardFiles = 0;  //!< files scanned (incl. snapshot)
};

/**
 * One process's handle on a store directory.  refresh() (re)builds
 * the in-memory index from disk; append() publishes one record to
 * this process's shard and indexes it.  Many processes may share a
 * directory; the handle itself is not thread-safe.
 */
class ResultStore
{
  public:
    explicit ResultStore(std::string directory);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &directory() const { return dir; }

    /** Rebuild the index from every shard on disk. */
    ResultScanStats refresh();

    bool contains(std::uint64_t unitKey) const
    {
        return index.find(unitKey) != index.end();
    }

    /** The indexed record, or nullptr. */
    const ResultRecord *find(std::uint64_t unitKey) const;

    std::size_t size() const { return index.size(); }

    /** Unit keys in sorted order (rendering walks the plan, not the
     *  store, so this is for status output and tests). */
    std::vector<std::uint64_t> keys() const;

    /**
     * Append one record to this process's shard (created lazily,
     * directory included) and index it.  The frame is flushed before
     * returning, so a subsequent SIGKILL cannot tear it.  False when
     * the directory is not writable.
     */
    bool append(const ResultRecord &record);

    /**
     * Fold the current index into `snapshot.bsr` (records sorted by
     * unit key, temp+rename publish) and unlink the shards that were
     * merged into it — except shards whose writer process is still
     * alive (it holds the file open and may append more records).
     * Implies refresh().  False on write failure.
     */
    bool compact();

  private:
    std::string dir;
    std::map<std::uint64_t, ResultRecord> index;
    std::vector<std::string> scanned;  //!< shard paths last refresh()
    std::ofstream shard;               //!< this process's shard
    std::string shardPath;
};

} // namespace bsisa

#endif // BSISA_EXP_RESULT_STORE_HH
