/**
 * @file
 * Experiment runner implementation.
 */

#include "exp/runner.hh"

#include "codegen/layout.hh"
#include "sim/bsa_source.hh"
#include "sim/conv_source.hh"
#include "sim/lockstep.hh"
#include "sim/ooo/ooo.hh"
#include "sim/pipeline.hh"
#include "sim/tc_source.hh"
#include "sim/trace_store.hh"
#include "support/env.hh"
#include "support/logging.hh"

namespace bsisa
{

namespace
{

/** Hand @p source to the backend config.machine selects: the paper's
 *  abstract window model or the out-of-order engine (sim/ooo). */
SimResult
simulateModel(FetchSource &source, const MachineConfig &machine)
{
    return machine.timingModel == TimingModel::Ooo
               ? simulateOoO(source, machine)
               : simulatePipeline(source, machine);
}

bool
anyOoo(const std::vector<MachineConfig> &machines)
{
    for (const MachineConfig &m : machines)
        if (m.timingModel == TimingModel::Ooo)
            return true;
    return false;
}

} // namespace

SimResult
runConventional(const Module &module, const MachineConfig &machine,
                Interp::Limits limits)
{
    const ConvLayout layout(module);
    ConvFetchSource source(module, layout, machine, limits);
    return simulateModel(source, machine);
}

SimResult
runConventional(const Module &module, const MachineConfig &machine,
                const ExecTrace &trace)
{
    const ConvLayout layout(module);
    ConvFetchSource source(module, layout, machine, trace);
    return simulateModel(source, machine);
}

SimResult
runBlockStructured(const BsaModule &bsa, const MachineConfig &machine,
                   Interp::Limits limits)
{
    BsaFetchSource source(bsa, machine, limits);
    return simulateModel(source, machine);
}

SimResult
runBlockStructured(const BsaModule &bsa, const MachineConfig &machine,
                   const ExecTrace &trace)
{
    BsaFetchSource source(bsa, machine, trace);
    return simulateModel(source, machine);
}

TraceCacheResult
runTraceCache(const Module &module, const MachineConfig &machine,
              const TraceCacheConfig &tcConfig, Interp::Limits limits)
{
    const ConvLayout layout(module);
    TraceCacheFetchSource source(module, layout, machine, tcConfig,
                                 limits);
    TraceCacheResult result;
    result.sim = simulateModel(source, machine);
    result.traceHits = source.traceHits();
    result.traceMisses = source.traceMisses();
    return result;
}

TraceCacheResult
runTraceCache(const Module &module, const MachineConfig &machine,
              const TraceCacheConfig &tcConfig, const ExecTrace &trace)
{
    const ConvLayout layout(module);
    TraceCacheFetchSource source(module, layout, machine, tcConfig,
                                 trace);
    TraceCacheResult result;
    result.sim = simulateModel(source, machine);
    result.traceHits = source.traceHits();
    result.traceMisses = source.traceMisses();
    return result;
}

// The batch entry points hand multi-config grids to the lockstep
// drivers, which dedup effectively identical configs, group lanes by
// predictor identity, and (by default) run the decoupled
// fetch-outcome pre-pass so timing lanes from every group step as
// fused full-width batches (sim/lockstep.hh).  A single config goes
// through the singleton replay instead: the lockstep layout and
// stream capture only pay for themselves with multiple lanes.
//
// Out-of-order lanes are the second grouping axis: the OoO backend
// reorders consumption and keeps private rename/ROB/LSQ state, so it
// cannot share a lockstep walk.  A batch is partitioned by timing
// model — abstract lanes keep the lockstep path, each OoO lane walks
// its own replay — with the layout and DecodedProgram still built
// once and shared by every lane of the batch.

std::vector<SimResult>
runConventionalBatch(const Module &module,
                     const std::vector<MachineConfig> &machines,
                     const ExecTrace &trace)
{
    if (machines.empty())
        return {};
    if (machines.size() == 1)
        return {runConventional(module, machines[0], trace)};
    const ConvLayout layout(module);
    const DecodedProgram decoded = DecodedProgram::forModule(module);
    if (!anyOoo(machines))
        return lockstepConventional(module, layout, decoded, machines,
                                    trace);

    std::vector<SimResult> out(machines.size());
    std::vector<MachineConfig> abstractLanes;
    std::vector<std::size_t> abstractIdx;
    for (std::size_t i = 0; i < machines.size(); ++i) {
        if (machines[i].timingModel == TimingModel::Ooo) {
            ConvFetchSource source(module, layout, machines[i], trace,
                                   decoded);
            out[i] = simulateOoO(source, machines[i]);
        } else {
            abstractIdx.push_back(i);
            abstractLanes.push_back(machines[i]);
        }
    }
    if (abstractLanes.size() == 1) {
        ConvFetchSource source(module, layout, abstractLanes[0], trace,
                               decoded);
        out[abstractIdx[0]] =
            simulatePipeline(source, abstractLanes[0]);
    } else if (!abstractLanes.empty()) {
        const std::vector<SimResult> sims = lockstepConventional(
            module, layout, decoded, abstractLanes, trace);
        for (std::size_t i = 0; i < abstractIdx.size(); ++i)
            out[abstractIdx[i]] = sims[i];
    }
    return out;
}

std::vector<SimResult>
runBlockStructuredBatch(const BsaModule &bsa,
                        const std::vector<MachineConfig> &machines,
                        const ExecTrace &trace)
{
    if (machines.empty())
        return {};
    if (machines.size() == 1)
        return {runBlockStructured(bsa, machines[0], trace)};
    const DecodedProgram decoded = DecodedProgram::forBsa(bsa);
    if (!anyOoo(machines))
        return lockstepBlockStructured(bsa, decoded, machines, trace);

    std::vector<SimResult> out(machines.size());
    std::vector<MachineConfig> abstractLanes;
    std::vector<std::size_t> abstractIdx;
    for (std::size_t i = 0; i < machines.size(); ++i) {
        if (machines[i].timingModel == TimingModel::Ooo) {
            BsaFetchSource source(bsa, machines[i], trace, decoded);
            out[i] = simulateOoO(source, machines[i]);
        } else {
            abstractIdx.push_back(i);
            abstractLanes.push_back(machines[i]);
        }
    }
    if (abstractLanes.size() == 1) {
        BsaFetchSource source(bsa, abstractLanes[0], trace, decoded);
        out[abstractIdx[0]] =
            simulatePipeline(source, abstractLanes[0]);
    } else if (!abstractLanes.empty()) {
        const std::vector<SimResult> sims =
            lockstepBlockStructured(bsa, decoded, abstractLanes, trace);
        for (std::size_t i = 0; i < abstractIdx.size(); ++i)
            out[abstractIdx[i]] = sims[i];
    }
    return out;
}

std::vector<TraceCacheResult>
runTraceCacheBatch(const Module &module,
                   const std::vector<MachineConfig> &machines,
                   const std::vector<TraceCacheConfig> &tcConfigs,
                   const ExecTrace &trace)
{
    BSISA_ASSERT(machines.size() == tcConfigs.size());
    if (machines.empty())
        return {};
    if (machines.size() == 1)
        return {runTraceCache(module, machines[0], tcConfigs[0],
                              trace)};
    const ConvLayout layout(module);
    const DecodedProgram decoded = DecodedProgram::forModule(module);
    if (!anyOoo(machines))
        return lockstepTraceCache(module, layout, decoded, machines,
                                  tcConfigs, trace);

    std::vector<TraceCacheResult> out(machines.size());
    std::vector<MachineConfig> abstractLanes;
    std::vector<TraceCacheConfig> abstractTc;
    std::vector<std::size_t> abstractIdx;
    for (std::size_t i = 0; i < machines.size(); ++i) {
        if (machines[i].timingModel == TimingModel::Ooo) {
            TraceCacheFetchSource source(module, layout, machines[i],
                                         tcConfigs[i], trace, decoded);
            out[i].sim = simulateOoO(source, machines[i]);
            out[i].traceHits = source.traceHits();
            out[i].traceMisses = source.traceMisses();
        } else {
            abstractIdx.push_back(i);
            abstractLanes.push_back(machines[i]);
            abstractTc.push_back(tcConfigs[i]);
        }
    }
    if (abstractLanes.size() == 1) {
        TraceCacheFetchSource source(module, layout, abstractLanes[0],
                                     abstractTc[0], trace, decoded);
        out[abstractIdx[0]].sim =
            simulatePipeline(source, abstractLanes[0]);
        out[abstractIdx[0]].traceHits = source.traceHits();
        out[abstractIdx[0]].traceMisses = source.traceMisses();
    } else if (!abstractLanes.empty()) {
        const std::vector<TraceCacheResult> sims =
            lockstepTraceCache(module, layout, decoded, abstractLanes,
                               abstractTc, trace);
        for (std::size_t i = 0; i < abstractIdx.size(); ++i)
            out[abstractIdx[i]] = sims[i];
    }
    return out;
}

namespace
{

/** Block-structured lanes may only share a walk when they would
 *  enlarge to the same BsaModule. */
bool
sameEnlargement(const RunConfig &a, const RunConfig &b)
{
    return a.enlarge.maxOps == b.enlarge.maxOps &&
           a.enlarge.maxFaults == b.enlarge.maxFaults &&
           a.enlarge.mergeAcrossBackEdges ==
               b.enlarge.mergeAcrossBackEdges &&
           a.enlarge.enlargeLibraryFunctions ==
               b.enlarge.enlargeLibraryFunctions &&
           a.enlarge.enabled == b.enlarge.enabled &&
           a.enlarge.maxVariantsPerHead ==
               b.enlarge.maxVariantsPerHead &&
           a.enlarge.minMergeBias == b.enlarge.minMergeBias &&
           a.minMergeBias == b.minMergeBias;
}

} // namespace

std::size_t
PairSweep::addBenchmark(const Module &module, const ExecTrace &trace)
{
    BSISA_ASSERT(!planned);
    benches.push_back(Bench{&module, &trace, {}});
    return benches.size() - 1;
}

std::size_t
PairSweep::addPoint(std::size_t bench, const RunConfig &config)
{
    BSISA_ASSERT(!planned && bench < benches.size());
    const std::size_t idx = points.size();
    pointBench.push_back(bench);
    pointConfig.push_back(config);
    points.emplace_back();
    benches[bench].pointIds.push_back(idx);
    return idx;
}

void
PairSweep::plan()
{
    BSISA_ASSERT(!planned);
    planned = true;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        const std::vector<std::size_t> &ids = benches[b].pointIds;
        if (ids.empty())
            continue;
        // All conventional points of a benchmark share one walk: the
        // conventional machine is independent of the enlargement
        // parameters, so any config mix is a valid batch.  Timing
        // model is a grouping axis too — abstract lanes go to one
        // lockstep batch, out-of-order lanes (which each walk a
        // private replay) to another, so a mixed grid neither
        // serializes the lockstep lanes behind OoO walks nor
        // re-partitions inside the batch entry points.
        std::vector<std::size_t> abstractIds;
        std::vector<std::size_t> oooIds;
        for (std::size_t idx : ids)
            (pointConfig[idx].machine.timingModel == TimingModel::Ooo
                 ? oooIds
                 : abstractIds)
                .push_back(idx);
        if (!abstractIds.empty())
            batches.push_back(Batch{false, b, abstractIds});
        if (!oooIds.empty())
            batches.push_back(Batch{false, b, oooIds});
        // Block-structured points group by enlargement identity (the
        // lanes must share one BsaModule) and by timing model.
        std::vector<std::size_t> groups;  // batch indices, this bench
        for (std::size_t idx : ids) {
            bool placed = false;
            for (std::size_t g : groups) {
                const RunConfig &head =
                    pointConfig[batches[g].pointIds.front()];
                if (sameEnlargement(head, pointConfig[idx]) &&
                    head.machine.timingModel ==
                        pointConfig[idx].machine.timingModel) {
                    batches[g].pointIds.push_back(idx);
                    placed = true;
                    break;
                }
            }
            if (!placed) {
                groups.push_back(batches.size());
                batches.push_back(Batch{true, b, {idx}});
            }
        }
    }

    // BSISA_BATCH_MAX caps the lockstep batch width: wider batches
    // amortize more trace-walk work but cost more memory per walk
    // (pools are laid out register-major across every lane of a
    // batch) and coarsen BSISA_JOBS parallelism.  0 / unset leaves
    // batches unbounded.  Splitting after grouping keeps the grouping
    // rules intact — every chunk is still a valid batch, and lanes
    // never interact, so results are identical at any cap.
    const std::uint64_t cap = envU64("BSISA_BATCH_MAX", 0);
    if (cap > 0) {
        std::vector<Batch> split;
        for (const Batch &bt : batches) {
            for (std::size_t at = 0; at < bt.pointIds.size();
                 at += cap) {
                const std::size_t end = std::min<std::size_t>(
                    at + cap, bt.pointIds.size());
                split.push_back(
                    Batch{bt.blockStructured, bt.bench,
                          {bt.pointIds.begin() +
                               static_cast<std::ptrdiff_t>(at),
                           bt.pointIds.begin() +
                               static_cast<std::ptrdiff_t>(end)}});
            }
        }
        batches.swap(split);
    }
}

void
PairSweep::runBatch(std::size_t batch)
{
    BSISA_ASSERT(planned && batch < batches.size());
    const Batch &bt = batches[batch];
    const Bench &bench = benches[bt.bench];

    if (!bt.blockStructured) {
        const ConvLayout layout(*bench.module);
        std::vector<MachineConfig> machines;
        machines.reserve(bt.pointIds.size());
        for (std::size_t idx : bt.pointIds) {
            points[idx].convCodeBytes = layout.totalBytes();
            points[idx].dynOps = bench.trace->dynOps;
            machines.push_back(pointConfig[idx].machine);
        }
        const std::vector<SimResult> sims =
            runConventionalBatch(*bench.module, machines,
                                 *bench.trace);
        for (std::size_t i = 0; i < bt.pointIds.size(); ++i)
            points[bt.pointIds[i]].conv = sims[i];
        return;
    }

    // One enlargement serves every lane of a block-structured batch.
    const RunConfig &head = pointConfig[bt.pointIds.front()];
    EnlargeConfig enlarge_cfg = head.enlarge;
    ProfileData profile;
    const ProfileData *profile_ptr = nullptr;
    if (head.minMergeBias > 0.0) {
        profile = profileFromTrace(*bench.trace);
        profile_ptr = &profile;
        enlarge_cfg.minMergeBias = head.minMergeBias;
    }
    EnlargeStats stats;
    BsaModule bsa = enlargeModule(*bench.module, enlarge_cfg,
                                  profile_ptr, &stats);
    const std::uint64_t code_bytes = layoutBsaModule(bsa);

    std::vector<MachineConfig> machines;
    machines.reserve(bt.pointIds.size());
    for (std::size_t idx : bt.pointIds) {
        points[idx].enlarge = stats;
        points[idx].bsaCodeBytes = code_bytes;
        machines.push_back(pointConfig[idx].machine);
    }
    const std::vector<SimResult> sims =
        runBlockStructuredBatch(bsa, machines, *bench.trace);
    for (std::size_t i = 0; i < bt.pointIds.size(); ++i)
        points[bt.pointIds[i]].bsa = sims[i];
}

PairResult
runPair(const Module &module, const RunConfig &config)
{
    // Capture-or-open: served from the BSISA_TRACE_DIR store when one
    // is configured, captured live (identical behavior) otherwise.
    const ExecTrace trace = captureOrLoadTrace(module, config.limits);
    return runPair(module, config, trace);
}

PairResult
runPair(const Module &module, const RunConfig &config,
        const ExecTrace &trace)
{
    PairResult result;

    const ConvLayout conv_layout(module);
    result.convCodeBytes = conv_layout.totalBytes();
    result.conv = runConventional(module, config.machine, trace);

    EnlargeConfig enlarge_cfg = config.enlarge;
    ProfileData profile;
    const ProfileData *profile_ptr = nullptr;
    if (config.minMergeBias > 0.0) {
        profile = profileFromTrace(trace);
        profile_ptr = &profile;
        enlarge_cfg.minMergeBias = config.minMergeBias;
    }
    BsaModule bsa =
        enlargeModule(module, enlarge_cfg, profile_ptr, &result.enlarge);
    result.bsaCodeBytes = layoutBsaModule(bsa);
    result.bsa = runBlockStructured(bsa, config.machine, trace);

    // Conventional dynamic op count (Table 2's metric).
    result.dynOps = trace.dynOps;
    return result;
}

} // namespace bsisa
