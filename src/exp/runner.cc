/**
 * @file
 * Experiment runner implementation.
 */

#include "exp/runner.hh"

#include "codegen/layout.hh"
#include "sim/bsa_source.hh"
#include "sim/conv_source.hh"
#include "sim/lockstep.hh"
#include "sim/pipeline.hh"
#include "sim/tc_source.hh"
#include "sim/trace_store.hh"
#include "support/env.hh"
#include "support/logging.hh"

namespace bsisa
{

SimResult
runConventional(const Module &module, const MachineConfig &machine,
                Interp::Limits limits)
{
    const ConvLayout layout(module);
    ConvFetchSource source(module, layout, machine, limits);
    return simulatePipeline(source, machine);
}

SimResult
runConventional(const Module &module, const MachineConfig &machine,
                const ExecTrace &trace)
{
    const ConvLayout layout(module);
    ConvFetchSource source(module, layout, machine, trace);
    return simulatePipeline(source, machine);
}

SimResult
runBlockStructured(const BsaModule &bsa, const MachineConfig &machine,
                   Interp::Limits limits)
{
    BsaFetchSource source(bsa, machine, limits);
    return simulatePipeline(source, machine);
}

SimResult
runBlockStructured(const BsaModule &bsa, const MachineConfig &machine,
                   const ExecTrace &trace)
{
    BsaFetchSource source(bsa, machine, trace);
    return simulatePipeline(source, machine);
}

TraceCacheResult
runTraceCache(const Module &module, const MachineConfig &machine,
              const TraceCacheConfig &tcConfig, Interp::Limits limits)
{
    const ConvLayout layout(module);
    TraceCacheFetchSource source(module, layout, machine, tcConfig,
                                 limits);
    TraceCacheResult result;
    result.sim = simulatePipeline(source, machine);
    result.traceHits = source.traceHits();
    result.traceMisses = source.traceMisses();
    return result;
}

TraceCacheResult
runTraceCache(const Module &module, const MachineConfig &machine,
              const TraceCacheConfig &tcConfig, const ExecTrace &trace)
{
    const ConvLayout layout(module);
    TraceCacheFetchSource source(module, layout, machine, tcConfig,
                                 trace);
    TraceCacheResult result;
    result.sim = simulatePipeline(source, machine);
    result.traceHits = source.traceHits();
    result.traceMisses = source.traceMisses();
    return result;
}

// The batch entry points hand multi-config grids to the lockstep
// drivers, which dedup effectively identical configs, group lanes by
// predictor identity, and (by default) run the decoupled
// fetch-outcome pre-pass so timing lanes from every group step as
// fused full-width batches (sim/lockstep.hh).  A single config goes
// through the singleton replay instead: the lockstep layout and
// stream capture only pay for themselves with multiple lanes.

std::vector<SimResult>
runConventionalBatch(const Module &module,
                     const std::vector<MachineConfig> &machines,
                     const ExecTrace &trace)
{
    if (machines.empty())
        return {};
    if (machines.size() == 1)
        return {runConventional(module, machines[0], trace)};
    const ConvLayout layout(module);
    const DecodedProgram decoded = DecodedProgram::forModule(module);
    return lockstepConventional(module, layout, decoded, machines,
                                trace);
}

std::vector<SimResult>
runBlockStructuredBatch(const BsaModule &bsa,
                        const std::vector<MachineConfig> &machines,
                        const ExecTrace &trace)
{
    if (machines.empty())
        return {};
    if (machines.size() == 1)
        return {runBlockStructured(bsa, machines[0], trace)};
    const DecodedProgram decoded = DecodedProgram::forBsa(bsa);
    return lockstepBlockStructured(bsa, decoded, machines, trace);
}

std::vector<TraceCacheResult>
runTraceCacheBatch(const Module &module,
                   const std::vector<MachineConfig> &machines,
                   const std::vector<TraceCacheConfig> &tcConfigs,
                   const ExecTrace &trace)
{
    BSISA_ASSERT(machines.size() == tcConfigs.size());
    if (machines.empty())
        return {};
    if (machines.size() == 1)
        return {runTraceCache(module, machines[0], tcConfigs[0],
                              trace)};
    const ConvLayout layout(module);
    const DecodedProgram decoded = DecodedProgram::forModule(module);
    return lockstepTraceCache(module, layout, decoded, machines,
                              tcConfigs, trace);
}

namespace
{

/** Block-structured lanes may only share a walk when they would
 *  enlarge to the same BsaModule. */
bool
sameEnlargement(const RunConfig &a, const RunConfig &b)
{
    return a.enlarge.maxOps == b.enlarge.maxOps &&
           a.enlarge.maxFaults == b.enlarge.maxFaults &&
           a.enlarge.mergeAcrossBackEdges ==
               b.enlarge.mergeAcrossBackEdges &&
           a.enlarge.enlargeLibraryFunctions ==
               b.enlarge.enlargeLibraryFunctions &&
           a.enlarge.enabled == b.enlarge.enabled &&
           a.enlarge.maxVariantsPerHead ==
               b.enlarge.maxVariantsPerHead &&
           a.enlarge.minMergeBias == b.enlarge.minMergeBias &&
           a.minMergeBias == b.minMergeBias;
}

} // namespace

std::size_t
PairSweep::addBenchmark(const Module &module, const ExecTrace &trace)
{
    BSISA_ASSERT(!planned);
    benches.push_back(Bench{&module, &trace, {}});
    return benches.size() - 1;
}

std::size_t
PairSweep::addPoint(std::size_t bench, const RunConfig &config)
{
    BSISA_ASSERT(!planned && bench < benches.size());
    const std::size_t idx = points.size();
    pointBench.push_back(bench);
    pointConfig.push_back(config);
    points.emplace_back();
    benches[bench].pointIds.push_back(idx);
    return idx;
}

void
PairSweep::plan()
{
    BSISA_ASSERT(!planned);
    planned = true;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        const std::vector<std::size_t> &ids = benches[b].pointIds;
        if (ids.empty())
            continue;
        // All conventional points of a benchmark share one walk: the
        // conventional machine is independent of the enlargement
        // parameters, so any config mix is a valid batch.
        batches.push_back(Batch{false, b, ids});
        // Block-structured points group by enlargement identity.
        std::vector<std::size_t> groups;  // batch indices, this bench
        for (std::size_t idx : ids) {
            bool placed = false;
            for (std::size_t g : groups) {
                if (sameEnlargement(
                        pointConfig[batches[g].pointIds.front()],
                        pointConfig[idx])) {
                    batches[g].pointIds.push_back(idx);
                    placed = true;
                    break;
                }
            }
            if (!placed) {
                groups.push_back(batches.size());
                batches.push_back(Batch{true, b, {idx}});
            }
        }
    }

    // BSISA_BATCH_MAX caps the lockstep batch width: wider batches
    // amortize more trace-walk work but cost more memory per walk
    // (pools are laid out register-major across every lane of a
    // batch) and coarsen BSISA_JOBS parallelism.  0 / unset leaves
    // batches unbounded.  Splitting after grouping keeps the grouping
    // rules intact — every chunk is still a valid batch, and lanes
    // never interact, so results are identical at any cap.
    const std::uint64_t cap = envU64("BSISA_BATCH_MAX", 0);
    if (cap > 0) {
        std::vector<Batch> split;
        for (const Batch &bt : batches) {
            for (std::size_t at = 0; at < bt.pointIds.size();
                 at += cap) {
                const std::size_t end = std::min<std::size_t>(
                    at + cap, bt.pointIds.size());
                split.push_back(
                    Batch{bt.blockStructured, bt.bench,
                          {bt.pointIds.begin() +
                               static_cast<std::ptrdiff_t>(at),
                           bt.pointIds.begin() +
                               static_cast<std::ptrdiff_t>(end)}});
            }
        }
        batches.swap(split);
    }
}

void
PairSweep::runBatch(std::size_t batch)
{
    BSISA_ASSERT(planned && batch < batches.size());
    const Batch &bt = batches[batch];
    const Bench &bench = benches[bt.bench];

    if (!bt.blockStructured) {
        const ConvLayout layout(*bench.module);
        std::vector<MachineConfig> machines;
        machines.reserve(bt.pointIds.size());
        for (std::size_t idx : bt.pointIds) {
            points[idx].convCodeBytes = layout.totalBytes();
            points[idx].dynOps = bench.trace->dynOps;
            machines.push_back(pointConfig[idx].machine);
        }
        const std::vector<SimResult> sims =
            runConventionalBatch(*bench.module, machines,
                                 *bench.trace);
        for (std::size_t i = 0; i < bt.pointIds.size(); ++i)
            points[bt.pointIds[i]].conv = sims[i];
        return;
    }

    // One enlargement serves every lane of a block-structured batch.
    const RunConfig &head = pointConfig[bt.pointIds.front()];
    EnlargeConfig enlarge_cfg = head.enlarge;
    ProfileData profile;
    const ProfileData *profile_ptr = nullptr;
    if (head.minMergeBias > 0.0) {
        profile = profileFromTrace(*bench.trace);
        profile_ptr = &profile;
        enlarge_cfg.minMergeBias = head.minMergeBias;
    }
    EnlargeStats stats;
    BsaModule bsa = enlargeModule(*bench.module, enlarge_cfg,
                                  profile_ptr, &stats);
    const std::uint64_t code_bytes = layoutBsaModule(bsa);

    std::vector<MachineConfig> machines;
    machines.reserve(bt.pointIds.size());
    for (std::size_t idx : bt.pointIds) {
        points[idx].enlarge = stats;
        points[idx].bsaCodeBytes = code_bytes;
        machines.push_back(pointConfig[idx].machine);
    }
    const std::vector<SimResult> sims =
        runBlockStructuredBatch(bsa, machines, *bench.trace);
    for (std::size_t i = 0; i < bt.pointIds.size(); ++i)
        points[bt.pointIds[i]].bsa = sims[i];
}

PairResult
runPair(const Module &module, const RunConfig &config)
{
    // Capture-or-open: served from the BSISA_TRACE_DIR store when one
    // is configured, captured live (identical behavior) otherwise.
    const ExecTrace trace = captureOrLoadTrace(module, config.limits);
    return runPair(module, config, trace);
}

PairResult
runPair(const Module &module, const RunConfig &config,
        const ExecTrace &trace)
{
    PairResult result;

    const ConvLayout conv_layout(module);
    result.convCodeBytes = conv_layout.totalBytes();
    result.conv = runConventional(module, config.machine, trace);

    EnlargeConfig enlarge_cfg = config.enlarge;
    ProfileData profile;
    const ProfileData *profile_ptr = nullptr;
    if (config.minMergeBias > 0.0) {
        profile = profileFromTrace(trace);
        profile_ptr = &profile;
        enlarge_cfg.minMergeBias = config.minMergeBias;
    }
    BsaModule bsa =
        enlargeModule(module, enlarge_cfg, profile_ptr, &result.enlarge);
    result.bsaCodeBytes = layoutBsaModule(bsa);
    result.bsa = runBlockStructured(bsa, config.machine, trace);

    // Conventional dynamic op count (Table 2's metric).
    result.dynOps = trace.dynOps;
    return result;
}

} // namespace bsisa
