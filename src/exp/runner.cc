/**
 * @file
 * Experiment runner implementation.
 */

#include "exp/runner.hh"

#include "codegen/layout.hh"
#include "sim/bsa_source.hh"
#include "sim/conv_source.hh"
#include "sim/pipeline.hh"
#include "sim/tc_source.hh"
#include "sim/trace_store.hh"

namespace bsisa
{

SimResult
runConventional(const Module &module, const MachineConfig &machine,
                Interp::Limits limits)
{
    const ConvLayout layout(module);
    ConvFetchSource source(module, layout, machine, limits);
    return simulatePipeline(source, machine);
}

SimResult
runConventional(const Module &module, const MachineConfig &machine,
                const ExecTrace &trace)
{
    const ConvLayout layout(module);
    ConvFetchSource source(module, layout, machine, trace);
    return simulatePipeline(source, machine);
}

SimResult
runBlockStructured(const BsaModule &bsa, const MachineConfig &machine,
                   Interp::Limits limits)
{
    BsaFetchSource source(bsa, machine, limits);
    return simulatePipeline(source, machine);
}

SimResult
runBlockStructured(const BsaModule &bsa, const MachineConfig &machine,
                   const ExecTrace &trace)
{
    BsaFetchSource source(bsa, machine, trace);
    return simulatePipeline(source, machine);
}

TraceCacheResult
runTraceCache(const Module &module, const MachineConfig &machine,
              const TraceCacheConfig &tcConfig, Interp::Limits limits)
{
    const ConvLayout layout(module);
    TraceCacheFetchSource source(module, layout, machine, tcConfig,
                                 limits);
    TraceCacheResult result;
    result.sim = simulatePipeline(source, machine);
    result.traceHits = source.traceHits();
    result.traceMisses = source.traceMisses();
    return result;
}

TraceCacheResult
runTraceCache(const Module &module, const MachineConfig &machine,
              const TraceCacheConfig &tcConfig, const ExecTrace &trace)
{
    const ConvLayout layout(module);
    TraceCacheFetchSource source(module, layout, machine, tcConfig,
                                 trace);
    TraceCacheResult result;
    result.sim = simulatePipeline(source, machine);
    result.traceHits = source.traceHits();
    result.traceMisses = source.traceMisses();
    return result;
}

PairResult
runPair(const Module &module, const RunConfig &config)
{
    // Capture-or-open: served from the BSISA_TRACE_DIR store when one
    // is configured, captured live (identical behavior) otherwise.
    const ExecTrace trace = captureOrLoadTrace(module, config.limits);
    return runPair(module, config, trace);
}

PairResult
runPair(const Module &module, const RunConfig &config,
        const ExecTrace &trace)
{
    PairResult result;

    const ConvLayout conv_layout(module);
    result.convCodeBytes = conv_layout.totalBytes();
    result.conv = runConventional(module, config.machine, trace);

    EnlargeConfig enlarge_cfg = config.enlarge;
    ProfileData profile;
    const ProfileData *profile_ptr = nullptr;
    if (config.minMergeBias > 0.0) {
        profile = profileFromTrace(trace);
        profile_ptr = &profile;
        enlarge_cfg.minMergeBias = config.minMergeBias;
    }
    BsaModule bsa =
        enlargeModule(module, enlarge_cfg, profile_ptr, &result.enlarge);
    result.bsaCodeBytes = layoutBsaModule(bsa);
    result.bsa = runBlockStructured(bsa, config.machine, trace);

    // Conventional dynamic op count (Table 2's metric).
    result.dynOps = trace.dynOps;
    return result;
}

} // namespace bsisa
