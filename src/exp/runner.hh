/**
 * @file
 * Experiment runner: one-call timing simulation of a compiled program
 * on the conventional and the block-structured machine, as the paper's
 * evaluation does (section 5: identically configured implementations,
 * same compiler, same functional units, caches, and cycle time).
 */

#ifndef BSISA_EXP_RUNNER_HH
#define BSISA_EXP_RUNNER_HH

#include <vector>

#include "core/enlarge.hh"
#include "ir/module.hh"
#include "sim/interp.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace bsisa
{

/** Everything one experiment needs. */
struct RunConfig
{
    MachineConfig machine;
    EnlargeConfig enlarge;
    Interp::Limits limits;
    /** Collect a profile first and filter merges by bias (section-6
     *  extension); 0 disables. */
    double minMergeBias = 0.0;
};

/** Results for one benchmark under one configuration. */
struct PairResult
{
    SimResult conv;
    SimResult bsa;
    EnlargeStats enlarge;
    std::uint64_t convCodeBytes = 0;
    std::uint64_t bsaCodeBytes = 0;
    std::uint64_t dynOps = 0;  //!< conventional dynamic op count

    /** Execution-time reduction of BSA relative to conventional. */
    double
    reduction() const
    {
        return conv.cycles
                   ? 1.0 - double(bsa.cycles) / double(conv.cycles)
                   : 0.0;
    }
};

/** Simulate the conventional machine only. */
SimResult runConventional(const Module &module,
                          const MachineConfig &machine,
                          Interp::Limits limits);

/** Conventional machine, replaying a captured trace. */
SimResult runConventional(const Module &module,
                          const MachineConfig &machine,
                          const ExecTrace &trace);

/** Enlarge (per @p config) then simulate the BSA machine only. */
SimResult runBlockStructured(const BsaModule &bsa,
                             const MachineConfig &machine,
                             Interp::Limits limits);

/** BSA machine, replaying a captured trace of the source module. */
SimResult runBlockStructured(const BsaModule &bsa,
                             const MachineConfig &machine,
                             const ExecTrace &trace);

/**
 * Full pair: conventional and block-structured on one module.  One
 * functional execution is captured and replayed into both timing
 * models (and the profile and Table-2 op count), instead of each
 * consumer re-running the interpreter.
 */
PairResult runPair(const Module &module, const RunConfig &config);

/** Full pair reusing an already-captured trace of (module,
 *  config.limits) — the sweep drivers capture once per benchmark and
 *  fan config points out from the same trace. */
PairResult runPair(const Module &module, const RunConfig &config,
                   const ExecTrace &trace);

/**
 * Batched conventional simulation: one lockstep walk replays @p trace
 * once and advances every config in @p machines per event
 * (sim/lockstep.hh), sharing one ConvLayout and one DecodedProgram
 * across all lanes.  A single-config batch falls back to the
 * per-config replay path.  Results are bit-identical to running each
 * config through runConventional() independently.
 */
std::vector<SimResult> runConventionalBatch(
    const Module &module, const std::vector<MachineConfig> &machines,
    const ExecTrace &trace);

/** Batched BSA simulation over one already-laid-out module; same
 *  contract as runConventionalBatch. */
std::vector<SimResult> runBlockStructuredBatch(
    const BsaModule &bsa, const std::vector<MachineConfig> &machines,
    const ExecTrace &trace);

/**
 * Planner for (benchmark x config) pair grids: groups the registered
 * points by (benchmark, fetch model), runs each same-model group as
 * one lockstep batch over a single trace replay, and falls back to
 * the per-config path for singleton groups.  Conventional points of a
 * benchmark always share one walk; block-structured points only share
 * when their enlargement parameters match (the lanes must share one
 * BsaModule).  Each point's RunConfig::limits is ignored — the
 * registered trace is the committed stream.
 *
 * The BSISA_BATCH_MAX environment variable (read in plan()) caps the
 * number of lanes per lockstep batch: oversized groups are split into
 * consecutive chunks of at most that many points after grouping, so
 * every chunk still satisfies the sharing rules and per-point results
 * are identical at any cap.  Use it to bound per-walk memory (pools
 * are sized by batch width) or to create more batches for BSISA_JOBS
 * to fan across; 0 or unset leaves batch width unbounded.
 *
 * Usage: addBenchmark() / addPoint() / plan(), then execute every
 * batch in [0, batchCount()) — typically one parallelFor, so
 * BSISA_JOBS fans across (benchmark x batch) rather than
 * (benchmark x config) — and read results() by point index.  Distinct
 * batches touch disjoint PairResult fields, so runBatch() is
 * thread-safe across distinct batch indices.
 */
class PairSweep
{
  public:
    /** Register one benchmark's shared inputs; both must outlive the
     *  sweep.  Returns the benchmark handle for addPoint(). */
    std::size_t addBenchmark(const Module &module,
                             const ExecTrace &trace);

    /** Add one grid point; returns its index into results(). */
    std::size_t addPoint(std::size_t bench, const RunConfig &config);

    /** Group the points into batches; call once after registration. */
    void plan();

    std::size_t batchCount() const { return batches.size(); }

    /** Execute one batch (thread-safe across distinct indices). */
    void runBatch(std::size_t batch);

    const std::vector<PairResult> &results() const { return points; }

  private:
    struct Bench
    {
        const Module *module;
        const ExecTrace *trace;
        /** Point indices in registration order. */
        std::vector<std::size_t> pointIds;
    };
    struct Batch
    {
        bool blockStructured;
        std::size_t bench;
        std::vector<std::size_t> pointIds;
    };

    std::vector<Bench> benches;
    std::vector<std::size_t> pointBench;
    std::vector<RunConfig> pointConfig;
    std::vector<PairResult> points;
    std::vector<Batch> batches;
    bool planned = false;
};

/**
 * Extension: conventional machine augmented with a trace cache (the
 * paper's section-3 competitor / section-6 complement).  Returns the
 * cycle result plus the trace cache's hit statistics
 * (TraceCacheResult, sim/machine.hh).
 */
struct TraceCacheConfig;
TraceCacheResult runTraceCache(const Module &module,
                               const MachineConfig &machine,
                               const TraceCacheConfig &tcConfig,
                               Interp::Limits limits);

/** Trace-cache machine, replaying a captured trace. */
TraceCacheResult runTraceCache(const Module &module,
                               const MachineConfig &machine,
                               const TraceCacheConfig &tcConfig,
                               const ExecTrace &trace);

/** Batched trace-cache simulation: lane i pairs machines[i] with
 *  tcConfigs[i] (the vectors must be the same length); same contract
 *  as runConventionalBatch. */
std::vector<TraceCacheResult> runTraceCacheBatch(
    const Module &module, const std::vector<MachineConfig> &machines,
    const std::vector<TraceCacheConfig> &tcConfigs,
    const ExecTrace &trace);

} // namespace bsisa

#endif // BSISA_EXP_RUNNER_HH
