/**
 * @file
 * Experiment runner: one-call timing simulation of a compiled program
 * on the conventional and the block-structured machine, as the paper's
 * evaluation does (section 5: identically configured implementations,
 * same compiler, same functional units, caches, and cycle time).
 */

#ifndef BSISA_EXP_RUNNER_HH
#define BSISA_EXP_RUNNER_HH

#include "core/enlarge.hh"
#include "ir/module.hh"
#include "sim/interp.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace bsisa
{

/** Everything one experiment needs. */
struct RunConfig
{
    MachineConfig machine;
    EnlargeConfig enlarge;
    Interp::Limits limits;
    /** Collect a profile first and filter merges by bias (section-6
     *  extension); 0 disables. */
    double minMergeBias = 0.0;
};

/** Results for one benchmark under one configuration. */
struct PairResult
{
    SimResult conv;
    SimResult bsa;
    EnlargeStats enlarge;
    std::uint64_t convCodeBytes = 0;
    std::uint64_t bsaCodeBytes = 0;
    std::uint64_t dynOps = 0;  //!< conventional dynamic op count

    /** Execution-time reduction of BSA relative to conventional. */
    double
    reduction() const
    {
        return conv.cycles
                   ? 1.0 - double(bsa.cycles) / double(conv.cycles)
                   : 0.0;
    }
};

/** Simulate the conventional machine only. */
SimResult runConventional(const Module &module,
                          const MachineConfig &machine,
                          Interp::Limits limits);

/** Conventional machine, replaying a captured trace. */
SimResult runConventional(const Module &module,
                          const MachineConfig &machine,
                          const ExecTrace &trace);

/** Enlarge (per @p config) then simulate the BSA machine only. */
SimResult runBlockStructured(const BsaModule &bsa,
                             const MachineConfig &machine,
                             Interp::Limits limits);

/** BSA machine, replaying a captured trace of the source module. */
SimResult runBlockStructured(const BsaModule &bsa,
                             const MachineConfig &machine,
                             const ExecTrace &trace);

/**
 * Full pair: conventional and block-structured on one module.  One
 * functional execution is captured and replayed into both timing
 * models (and the profile and Table-2 op count), instead of each
 * consumer re-running the interpreter.
 */
PairResult runPair(const Module &module, const RunConfig &config);

/** Full pair reusing an already-captured trace of (module,
 *  config.limits) — the sweep drivers capture once per benchmark and
 *  fan config points out from the same trace. */
PairResult runPair(const Module &module, const RunConfig &config,
                   const ExecTrace &trace);

/**
 * Extension: conventional machine augmented with a trace cache (the
 * paper's section-3 competitor / section-6 complement).  Returns the
 * cycle result plus the trace cache's hit statistics.
 */
struct TraceCacheResult
{
    SimResult sim;
    std::uint64_t traceHits = 0;
    std::uint64_t traceMisses = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = traceHits + traceMisses;
        return total ? double(traceHits) / double(total) : 0.0;
    }
};
struct TraceCacheConfig;
TraceCacheResult runTraceCache(const Module &module,
                               const MachineConfig &machine,
                               const TraceCacheConfig &tcConfig,
                               Interp::Limits limits);

/** Trace-cache machine, replaying a captured trace. */
TraceCacheResult runTraceCache(const Module &module,
                               const MachineConfig &machine,
                               const TraceCacheConfig &tcConfig,
                               const ExecTrace &trace);

} // namespace bsisa

#endif // BSISA_EXP_RUNNER_HH
