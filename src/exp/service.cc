/**
 * @file
 * Sweep-service implementation: worker loop, process coordinator,
 * store rendering, and status/listing output.
 */

#include "exp/service.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define BSISA_HAVE_FORK 1
#else
#define BSISA_HAVE_FORK 0
#endif

#include "exp/figures.hh"
#include "exp/result_store.hh"
#include "sim/trace_store.hh"
#include "support/env.hh"
#include "support/lockfile.hh"
#include "support/parallel.hh"
#include "support/table.hh"
#include "workloads/specmix.hh"

namespace bsisa
{

namespace
{

std::string
hex16(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
planMarkerPath(const std::string &storeDir, std::uint64_t specDigest)
{
    return storeDir + "/plan-" + hex16(specDigest) + ".plan";
}

std::string
leasePath(const std::string &storeDir, std::uint64_t chunkKey)
{
    return storeDir + "/lease-" + hex16(chunkKey) + ".lease";
}

/** Atomically publish @p bytes as @p path (temp + rename; same
 *  discipline as the trace and results stores). */
bool
publishTextFile(const std::string &path, const std::string &bytes)
{
#if BSISA_HAVE_FORK
    const std::uint64_t pid = std::uint64_t(::getpid());
#else
    const std::uint64_t pid = 0;
#endif
    const std::string temp = path + ".tmp-" + std::to_string(pid);
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out || !out.write(bytes.data(),
                               std::streamsize(bytes.size()))) {
            std::remove(temp.c_str());
            return false;
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

/** The completion marker: "units N" then one hex unit key per line. */
bool
readPlanMarker(const std::string &path,
               std::vector<std::uint64_t> &keys)
{
    std::ifstream in(path);
    std::string tag;
    std::uint64_t count = 0;
    if (!in || !(in >> tag >> count) || tag != "units")
        return false;
    keys.clear();
    keys.reserve(count);
    std::string hex;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!(in >> hex))
            return false;
        keys.push_back(std::strtoull(hex.c_str(), nullptr, 16));
    }
    return true;
}

void
writePlanMarker(const std::string &path, const SweepPlan &plan)
{
    std::ostringstream os;
    os << "units " << plan.units.size() << "\n";
    for (const WorkUnit &unit : plan.units)
        os << hex16(unit.key) << "\n";
    publishTextFile(path, os.str());
}

/** Probe that @p dir accepts file creation.  A worker whose store is
 *  unwritable can make no progress, but the wait loop cannot tell
 *  "every chunk leased by a peer" from "every write fails" — so
 *  writability is checked once up front instead. */
bool
storeWritable(const std::string &dir)
{
#if BSISA_HAVE_FORK
    const std::uint64_t pid = std::uint64_t(::getpid());
#else
    const std::uint64_t pid = 0;
#endif
    const std::string probe =
        dir + "/.probe-" + std::to_string(pid);
    {
        std::ofstream out(probe, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
    }
    std::remove(probe.c_str());
    return true;
}

/** Test hook: BSISA_SWEEP_STALL_AFTER=K parks the worker forever
 *  after its K-th published record (the crash-resume test SIGKILLs a
 *  worker parked mid-grid at a known checkpoint). */
void
maybeStall(std::size_t published, std::ostream *log)
{
    const std::uint64_t stallAfter =
        envU64("BSISA_SWEEP_STALL_AFTER", 0);
    if (stallAfter == 0 || published != stallAfter)
        return;
    if (log)
        *log << "sweep-worker: stalled" << std::endl;
    for (;;)
        std::this_thread::sleep_for(std::chrono::seconds(60));
}

} // namespace

SweepWorkerOutcome
runSweepWorker(const SweepSpec &spec, const SweepWorkerOptions &opts)
{
    SweepWorkerOutcome outcome;
    // The store directory must exist before the first lease attempt:
    // a failed O_CREAT on a missing directory is indistinguishable
    // from a held lease, and two workers each waiting for the other
    // to create the directory would spin forever.
    std::error_code dirEc;
    std::filesystem::create_directories(opts.storeDir, dirEc);
    if (dirEc || !storeWritable(opts.storeDir)) {
        if (opts.log)
            *opts.log << "sweep-worker: store directory "
                      << opts.storeDir << " is not writable\n";
        return outcome;
    }
    ResultStore store(opts.storeDir);
    store.refresh();

    // Warm fast path: a completion marker whose units the store
    // fully covers proves this exact spec already ran — skip plan
    // building (module generation included).
    const std::string markerPath =
        planMarkerPath(opts.storeDir, specDigest(spec));
    std::vector<std::uint64_t> markerKeys;
    if (readPlanMarker(markerPath, markerKeys)) {
        const bool covered = std::all_of(
            markerKeys.begin(), markerKeys.end(),
            [&](std::uint64_t key) { return store.contains(key); });
        if (covered) {
            outcome.units = markerKeys.size();
            outcome.warm = markerKeys.size();
            outcome.complete = true;
            return outcome;
        }
    }

    SweepPlan plan;
    std::string error;
    if (!buildPlan(spec, opts.chunkOverride, plan, error)) {
        if (opts.log)
            *opts.log << "sweep-worker: " << error << "\n";
        return outcome;
    }
    outcome.units = plan.units.size();
    for (const WorkUnit &unit : plan.units)
        if (store.contains(unit.key))
            ++outcome.warm;

    // One functional trace per benchmark, acquired on first need —
    // through the BSISA_TRACE_DIR store when configured, so
    // concurrent workers share warm captures.
    std::vector<ExecTrace> traces(plan.benches.size());
    std::vector<bool> haveTrace(plan.benches.size(), false);
    const auto ensureTrace = [&](std::size_t b) {
        if (haveTrace[b])
            return;
        traces[b] = captureOrLoadTrace(plan.modules[b],
                                       plan.benches[b].moduleDigest,
                                       plan.benches[b].limits);
        haveTrace[b] = true;
    };

    for (;;) {
        bool progress = false;
        bool anyPending = false;
        for (std::size_t c = 0; c < plan.chunks.size(); ++c) {
            std::vector<std::size_t> pending;
            for (std::size_t u : plan.chunks[c])
                if (!store.contains(plan.units[u].key))
                    pending.push_back(u);
            if (pending.empty())
                continue;
            anyPending = true;

            FileLease lease;
            if (!lease.tryAcquire(
                    leasePath(opts.storeDir, plan.chunkKeys[c]))) {
                ++outcome.peerSkips;
                continue;
            }

            // Double-check under the lease: the pending set above
            // was computed against a possibly stale index, and a
            // peer may have finished this chunk between our scan and
            // our acquisition of its just-released lease.
            store.refresh();
            pending.erase(
                std::remove_if(pending.begin(), pending.end(),
                               [&](std::size_t u) {
                                   return store.contains(
                                       plan.units[u].key);
                               }),
                pending.end());
            if (pending.empty()) {
                progress = true;
                continue;
            }

            // Simulate the chunk's pending units as one PairSweep:
            // one benchmark, one trace replay, lockstep batching by
            // the planner's usual grouping rules.
            const std::size_t b = plan.units[pending.front()].bench;
            ensureTrace(b);
            PairSweep sweep;
            const std::size_t bh =
                sweep.addBenchmark(plan.modules[b], traces[b]);
            std::vector<std::size_t> pointOf(pending.size());
            for (std::size_t i = 0; i < pending.size(); ++i)
                pointOf[i] = sweep.addPoint(
                    bh, plan.units[pending[i]].config);
            sweep.plan();
            parallelFor(sweep.batchCount(),
                        [&](std::size_t batch) {
                            sweep.runBatch(batch);
                        });

            for (std::size_t i = 0; i < pending.size(); ++i) {
                const WorkUnit &unit = plan.units[pending[i]];
                if (!store.append(makeResultRecord(
                        unit.key, unit.moduleDigest,
                        unit.configDigest,
                        sweep.results()[pointOf[i]]))) {
                    // The store went unwritable mid-run (disk full,
                    // directory removed).  Abort rather than spin:
                    // unpersisted units stay pending forever from
                    // this process's point of view.
                    if (opts.log)
                        *opts.log << "sweep-worker: failed to "
                                     "persist unit "
                                  << hex16(unit.key)
                                  << "; aborting\n";
                    return outcome;
                }
                ++outcome.executed;
                maybeStall(outcome.executed, opts.log);
            }
            progress = true;
        }
        if (!anyPending) {
            outcome.complete = true;
            break;
        }
        if (!progress) {
            // Every pending chunk is leased by a live peer; wait for
            // its records (or its death) to show up.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        store.refresh();
    }

    std::error_code ec;
    if (!std::filesystem::exists(markerPath, ec))
        writePlanMarker(markerPath, plan);
    return outcome;
}

bool
runSweepCoordinator(const SweepSpec &spec, const SweepRunOptions &opts,
                    std::ostream &log)
{
#if BSISA_HAVE_FORK
    if (opts.workers > 1 && !opts.selfExe.empty() &&
        !opts.specPath.empty()) {
        std::vector<pid_t> children;
        for (unsigned w = 0; w < opts.workers; ++w) {
            const pid_t pid = ::fork();
            if (pid < 0) {
                log << "sweep: fork failed, continuing with "
                    << children.size() << " workers\n";
                break;
            }
            if (pid == 0) {
                std::vector<std::string> args = {
                    opts.selfExe, "worker", opts.specPath, "--store",
                    opts.storeDir};
                if (opts.chunkOverride) {
                    args.push_back("--chunk");
                    args.push_back(
                        std::to_string(opts.chunkOverride));
                }
                std::vector<char *> argv;
                for (std::string &arg : args)
                    argv.push_back(arg.data());
                argv.push_back(nullptr);
                ::execv(opts.selfExe.c_str(), argv.data());
                std::fprintf(stderr, "sweep: exec %s failed\n",
                             opts.selfExe.c_str());
                ::_exit(127);
            }
            children.push_back(pid);
        }
        for (pid_t pid : children) {
            int status = 0;
            if (::waitpid(pid, &status, 0) < 0)
                continue;
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
                // Not fatal: units are idempotent, so the in-process
                // pass below re-leases whatever the dead worker left
                // pending (this is the resume path).
                log << "sweep: worker " << pid
                    << " exited abnormally; resuming its units\n";
            }
        }
    }
#endif

    SweepWorkerOptions workerOpts;
    workerOpts.storeDir = opts.storeDir;
    workerOpts.chunkOverride = opts.chunkOverride;
    workerOpts.log = &log;
    const SweepWorkerOutcome outcome =
        runSweepWorker(spec, workerOpts);
    log << "sweep: units=" << outcome.units << " executed="
        << outcome.executed << " warm=" << outcome.warm
        << " workers=" << opts.workers << "\n";
    if (!outcome.complete)
        return false;

    ResultStore store(opts.storeDir);
    return store.compact();
}

bool
renderSweepFromStore(std::ostream &os, const SweepSpec &spec,
                     const std::string &storeDir, std::string &error)
{
    SweepPlan plan;
    if (!buildPlan(spec, 0, plan, error))
        return false;
    ResultStore store(storeDir);
    store.refresh();
    for (const WorkUnit &unit : plan.units) {
        if (!store.contains(unit.key)) {
            error = "results store is missing unit " +
                    hex16(unit.key) + " (benchmark " +
                    plan.benches[unit.bench].name + "); run the "
                    "sweep first";
            return false;
        }
    }

    if (spec.figure == "cycles" || spec.figure == "blocksize") {
        // Parse validation guarantees one grid point per benchmark.
        std::vector<BenchOutcome> outcomes;
        for (std::size_t b = 0; b < plan.benches.size(); ++b) {
            const std::size_t unitId = plan.pointUnit[b];
            const ResultRecord *record =
                store.find(plan.units[unitId].key);
            outcomes.push_back(benchOutcomeOf(plan.benches[b].name,
                                              record->pair));
        }
        if (spec.figure == "cycles") {
            const bool perfect = plan.units[plan.pointUnit[0]]
                                     .config.machine.perfectPrediction;
            renderCycleComparison(os, outcomes, perfect);
        } else {
            renderBlockSizeComparison(os, outcomes);
        }
        return true;
    }

    // Generic grid rendering: one row per grid point, plan order.
    os << "Sweep '" << spec.name << "': "
       << spec.pointsPerBenchmark() << " configs x "
       << plan.benches.size() << " benchmarks, " << plan.units.size()
       << " work units\n\n";
    Table t({"Benchmark", "Unit", "Conv (cycles)", "BSA (cycles)",
             "Reduction"});
    const std::uint64_t perBench = spec.pointsPerBenchmark();
    for (std::size_t p = 0; p < plan.gridPoints(); ++p) {
        const WorkUnit &unit = plan.units[plan.pointUnit[p]];
        const ResultRecord *record = store.find(unit.key);
        t.addRow({plan.benches[p / perBench].name, hex16(unit.key),
                  Table::fmtSep(record->pair.conv.cycles),
                  Table::fmtSep(record->pair.bsa.cycles),
                  Table::fmt(100.0 * record->pair.reduction(), 1) +
                      "%"});
    }
    t.print(os);
    return true;
}

void
printSweepStatus(std::ostream &os, const std::string &storeDir)
{
    ResultStore store(storeDir);
    const ResultScanStats stats = store.refresh();
    os << "results store: " << storeDir << "\n";
    Table t({"records", "duplicates", "torn tails", "bad shards",
             "shard files"});
    t.addRow({Table::fmt(stats.records), Table::fmt(stats.duplicates),
              Table::fmt(stats.tornTails), Table::fmt(stats.badShards),
              Table::fmt(stats.shardFiles)});
    t.print(os);

    // Leases and plan markers.
    std::vector<std::string> leases, markers;
    std::error_code ec;
    std::filesystem::directory_iterator it(storeDir, ec);
    if (!ec) {
        for (const auto &de : it) {
            if (!de.is_regular_file(ec) || ec)
                continue;
            if (de.path().extension() == ".lease")
                leases.push_back(de.path().string());
            else if (de.path().extension() == ".plan")
                markers.push_back(de.path().string());
        }
    }
    std::sort(leases.begin(), leases.end());
    std::sort(markers.begin(), markers.end());
    for (const std::string &path : leases) {
        const std::uint64_t pid = leaseHolderPid(path);
        os << "lease: "
           << std::filesystem::path(path).filename().string()
           << " holder pid " << pid << " ("
           << (processAlive(pid) ? "alive" : "dead") << ")\n";
    }
    for (const std::string &path : markers) {
        std::vector<std::uint64_t> keys;
        if (!readPlanMarker(path, keys))
            continue;
        std::size_t present = 0;
        for (std::uint64_t key : keys)
            if (store.contains(key))
                ++present;
        os << "plan: "
           << std::filesystem::path(path).filename().string() << " "
           << present << "/" << keys.size() << " units stored\n";
    }

    const TraceStore traceStore = TraceStore::fromEnv();
    if (traceStore.enabled()) {
        os << "\n";
        printTraceStoreListing(os, traceStore.directory());
    }
}

void
printTraceStoreListing(std::ostream &os, const std::string &dir)
{
    const std::vector<TraceStoreEntryInfo> entries =
        listTraceStore(dir);
    os << "trace store: " << dir << " (" << entries.size()
       << " entries)\n";
    if (entries.empty())
        return;

    // Map module digests back to benchmark names by regenerating the
    // suite (the store only records digests — content addressing cuts
    // both ways).
    const auto suite = specint95Suite();
    std::vector<std::uint64_t> digests(suite.size());
    std::vector<Module> modules(suite.size());
    parallelFor(suite.size(), [&](std::size_t i) {
        modules[i] = generateWorkload(suite[i].params);
        digests[i] = moduleDigest(modules[i]);
    });

    Table t({"key", "benchmark", "max ops", "events", "bytes"});
    std::uint64_t totalBytes = 0;
    for (const TraceStoreEntryInfo &info : entries) {
        const std::string key =
            std::filesystem::path(info.path).stem().string();
        if (!info.headerOk) {
            t.addRow({key, "(corrupt header)", "-", "-",
                      Table::fmtSep(info.fileBytes)});
            totalBytes += info.fileBytes;
            continue;
        }
        std::string bench = "(unknown)";
        for (std::size_t i = 0; i < suite.size(); ++i) {
            if (digests[i] == info.header.moduleDigest) {
                bench = suite[i].params.name;
                break;
            }
        }
        t.addRow({key, bench, Table::fmtSep(info.header.maxOps),
                  Table::fmtSep(info.header.eventCount),
                  Table::fmtSep(info.fileBytes)});
        totalBytes += info.fileBytes;
    }
    t.print(os);
    os << "total: " << Table::fmtSep(totalBytes) << " bytes\n";
}

} // namespace bsisa
