/**
 * @file
 * The sweep service: multi-process scheduling of content-addressed
 * work units over a shared results store.
 *
 * Roles:
 *
 *   worker       runSweepWorker() — builds the plan, then repeatedly
 *                passes over the lease chunks: skip chunks whose
 *                units are all stored (warm), skip chunks leased by a
 *                live peer, otherwise lease, simulate the pending
 *                units through PairSweep, and publish one record per
 *                unit.  Exits when every unit of the plan is stored.
 *   coordinator  runSweepCoordinator() — spawns N worker processes
 *                on the same spec + store, waits for them, runs one
 *                in-process worker pass as the completeness check
 *                (which doubles as crash resume: a killed worker's
 *                pending chunks are simply re-leased), and compacts
 *                the store.
 *   render       renderSweepFromStore() — re-derives the plan and
 *                renders the spec's figure from stored records,
 *                byte-identical to the monolithic figure drivers.
 *
 * Safety argument: units are idempotent and deterministic, record
 * publishes are atomic appends of checksummed frames, and leases are
 * only an optimization — so `kill -9` of any role at any point
 * costs at most the in-flight units, and re-running any unit writes
 * a byte-identical duplicate that compaction folds away.
 *
 * Warm fast path: on completion a worker publishes a plan marker
 * (`plan-<spec digest>.plan`, the unit-key list) keyed by the spec's
 * canonical digest.  A warm rerun finds the marker, checks the store
 * covers every listed key, and skips plan building — module
 * generation included — so resweeping a finished grid costs a
 * directory scan.
 */

#ifndef BSISA_EXP_SERVICE_HH
#define BSISA_EXP_SERVICE_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "exp/plan.hh"

namespace bsisa
{

/** Worker knobs. */
struct SweepWorkerOptions
{
    std::string storeDir;
    std::uint64_t chunkOverride = 0;  //!< 0 = spec's chunk_units
    std::ostream *log = nullptr;      //!< progress/diagnostic sink
};

/** What one worker run did. */
struct SweepWorkerOutcome
{
    std::size_t units = 0;      //!< plan size
    std::size_t executed = 0;   //!< units simulated + published here
    std::size_t warm = 0;       //!< units already stored at first sight
    std::size_t peerSkips = 0;  //!< chunk claims lost to live peers
    bool complete = false;      //!< every unit stored on exit
};

/** Run one worker in-process until the plan is complete. */
SweepWorkerOutcome runSweepWorker(const SweepSpec &spec,
                                  const SweepWorkerOptions &opts);

/** Coordinator knobs. */
struct SweepRunOptions
{
    std::string storeDir;
    std::uint64_t chunkOverride = 0;
    unsigned workers = 1;
    /** This binary's path (argv[0]); empty = run in-process only. */
    std::string selfExe;
    /** Spec file path handed to spawned workers. */
    std::string specPath;
};

/** Coordinate a full sweep; true when the store ends complete. */
bool runSweepCoordinator(const SweepSpec &spec,
                         const SweepRunOptions &opts,
                         std::ostream &log);

/** Render the spec's figure from the store; false (with @p error)
 *  when the store does not cover the plan. */
bool renderSweepFromStore(std::ostream &os, const SweepSpec &spec,
                          const std::string &storeDir,
                          std::string &error);

/** Results-store + lease status summary (`bsisa-sweep status`). */
void printSweepStatus(std::ostream &os, const std::string &storeDir);

/** Human-readable listing of a BSISA_TRACE_DIR store — key,
 *  benchmark, events, bytes (`bsisa-tracedump --list`, also part of
 *  `bsisa-sweep status`). */
void printTraceStoreListing(std::ostream &os, const std::string &dir);

} // namespace bsisa

#endif // BSISA_EXP_SERVICE_HH
