/**
 * @file
 * Sweep-spec parser, config-key vocabulary, and canonicalisation.
 *
 * The accepted grammar is the YAML subset the experiment specs need:
 *
 *   - `#` starts a comment (outside quoted strings); blank lines are
 *     ignored; indentation is spaces (tabs are an error).
 *   - A block is either a map (`key: value` / `key:` + indented
 *     block) or a list (`- value` lines at one indent level).
 *   - Flow values: plain scalars, `"quoted strings"`, inline lists
 *     `[a, b, c]`, and inline maps `{k: v, k2: v2}` of scalars.
 *
 * Anchors, multi-document streams, block scalars, and nested flow
 * collections are deliberately out of scope.
 */

#include "exp/spec.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/digest.hh"
#include "workloads/specmix.hh"

namespace bsisa
{

namespace
{

// ---------------------------------------------------------------
// Generic node tree (the YAML-subset surface syntax).

struct SpecNode
{
    enum class Kind { Scalar, Map, List };
    Kind kind = Kind::Scalar;
    std::string scalar;
    std::vector<std::pair<std::string, SpecNode>> map;
    std::vector<SpecNode> list;
};

std::string
trimmed(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Split flow-collection contents on top-level commas. */
bool
splitFlowItems(const std::string &body, std::vector<std::string> &out,
               std::string &error)
{
    out.clear();
    int depth = 0;
    bool quoted = false;
    std::string cur;
    for (char c : body) {
        if (quoted) {
            cur.push_back(c);
            if (c == '"')
                quoted = false;
            continue;
        }
        if (c == '"') {
            quoted = true;
            cur.push_back(c);
        } else if (c == '[' || c == '{') {
            ++depth;
            cur.push_back(c);
        } else if (c == ']' || c == '}') {
            --depth;
            cur.push_back(c);
        } else if (c == ',' && depth == 0) {
            out.push_back(trimmed(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (quoted || depth != 0) {
        error = "unterminated quote or bracket in flow value";
        return false;
    }
    const std::string last = trimmed(cur);
    if (!last.empty())
        out.push_back(last);
    else if (!out.empty()) {
        error = "trailing comma in flow value";
        return false;
    }
    return true;
}

bool parseFlow(const std::string &text, SpecNode &out,
               std::string &error);

bool
parseFlowScalar(const std::string &text, SpecNode &out,
                std::string &error)
{
    out = SpecNode{};
    if (!text.empty() && text.front() == '"') {
        if (text.size() < 2 || text.back() != '"') {
            error = "unterminated quoted string";
            return false;
        }
        const std::string body = text.substr(1, text.size() - 2);
        if (body.find('"') != std::string::npos) {
            error = "embedded quote in quoted string";
            return false;
        }
        out.scalar = body;
        return true;
    }
    if (text.empty()) {
        error = "empty value";
        return false;
    }
    out.scalar = text;
    return true;
}

bool
parseFlow(const std::string &text, SpecNode &out, std::string &error)
{
    out = SpecNode{};
    if (!text.empty() && text.front() == '[') {
        if (text.back() != ']') {
            error = "unterminated inline list";
            return false;
        }
        out.kind = SpecNode::Kind::List;
        std::vector<std::string> items;
        if (!splitFlowItems(text.substr(1, text.size() - 2), items,
                            error))
            return false;
        for (const std::string &item : items) {
            SpecNode child;
            if (!parseFlowScalar(item, child, error))
                return false;
            out.list.push_back(std::move(child));
        }
        return true;
    }
    if (!text.empty() && text.front() == '{') {
        if (text.back() != '}') {
            error = "unterminated inline map";
            return false;
        }
        out.kind = SpecNode::Kind::Map;
        std::vector<std::string> items;
        if (!splitFlowItems(text.substr(1, text.size() - 2), items,
                            error))
            return false;
        for (const std::string &item : items) {
            const std::size_t colon = item.find(':');
            if (colon == std::string::npos) {
                error = "inline map entry without ':': " + item;
                return false;
            }
            const std::string key = trimmed(item.substr(0, colon));
            SpecNode child;
            if (key.empty() ||
                !parseFlowScalar(trimmed(item.substr(colon + 1)),
                                 child, error))
                return false;
            out.map.emplace_back(key, std::move(child));
        }
        return true;
    }
    return parseFlowScalar(text, out, error);
}

/** One logical line: indent width + comment-stripped content. */
struct SpecLine
{
    std::size_t indent;
    std::string text;
    std::size_t number;  //!< 1-based, for error messages
};

bool
splitLines(const std::string &text, std::vector<SpecLine> &out,
           std::string &error)
{
    std::istringstream in(text);
    std::string raw;
    std::size_t number = 0;
    while (std::getline(in, raw)) {
        ++number;
        // Strip comments outside quotes.
        bool quoted = false;
        std::string content;
        for (char c : raw) {
            if (c == '"')
                quoted = !quoted;
            if (c == '#' && !quoted)
                break;
            content.push_back(c);
        }
        std::size_t indent = 0;
        while (indent < content.size() && content[indent] == ' ')
            ++indent;
        if (indent < content.size() && content[indent] == '\t') {
            error = "line " + std::to_string(number) +
                    ": tab indentation is not supported";
            return false;
        }
        const std::string body = trimmed(content);
        if (body.empty())
            continue;
        out.push_back(SpecLine{indent, body, number});
    }
    return true;
}

class BlockParser
{
  public:
    BlockParser(std::vector<SpecLine> lines) : lines(std::move(lines))
    {
    }

    bool
    parse(SpecNode &out, std::string &error)
    {
        if (lines.empty()) {
            error = "empty spec";
            return false;
        }
        if (!parseBlock(lines[0].indent, out, error))
            return false;
        if (pos < lines.size()) {
            error = lineMsg("unexpected indentation");
            return false;
        }
        return true;
    }

  private:
    std::string
    lineMsg(const std::string &what) const
    {
        const std::size_t n =
            pos < lines.size() ? lines[pos].number : 0;
        return "line " + std::to_string(n) + ": " + what;
    }

    bool
    isListItem(const SpecLine &line) const
    {
        return line.text == "-" ||
               (line.text.size() >= 2 && line.text[0] == '-' &&
                line.text[1] == ' ');
    }

    bool
    parseBlock(std::size_t indent, SpecNode &out, std::string &error)
    {
        out = SpecNode{};
        if (lines[pos].indent != indent) {
            error = lineMsg("inconsistent indentation");
            return false;
        }
        const bool list = isListItem(lines[pos]);
        out.kind = list ? SpecNode::Kind::List : SpecNode::Kind::Map;
        while (pos < lines.size() && lines[pos].indent == indent) {
            const SpecLine &line = lines[pos];
            if (isListItem(line) != list) {
                error = lineMsg("mixed list and map entries");
                return false;
            }
            if (list) {
                SpecNode item;
                if (!parseFlow(trimmed(line.text.substr(1)), item,
                               error))
                    return false;
                out.list.push_back(std::move(item));
                ++pos;
                continue;
            }
            const std::size_t colon = line.text.find(':');
            if (colon == std::string::npos) {
                error = lineMsg("expected 'key: value'");
                return false;
            }
            const std::string key = trimmed(line.text.substr(0, colon));
            const std::string rest = trimmed(line.text.substr(colon + 1));
            if (key.empty()) {
                error = lineMsg("empty key");
                return false;
            }
            for (const auto &kv : out.map) {
                if (kv.first == key) {
                    error = lineMsg("duplicate key '" + key + "'");
                    return false;
                }
            }
            ++pos;
            SpecNode child;
            if (!rest.empty()) {
                if (!parseFlow(rest, child, error))
                    return false;
            } else {
                if (pos >= lines.size() ||
                    lines[pos].indent <= indent) {
                    error = lineMsg("key '" + key +
                                    "' has no value or nested block");
                    return false;
                }
                if (!parseBlock(lines[pos].indent, child, error))
                    return false;
            }
            out.map.emplace_back(key, std::move(child));
        }
        if (pos < lines.size() && lines[pos].indent > indent) {
            error = lineMsg("unexpected indentation");
            return false;
        }
        return true;
    }

    std::vector<SpecLine> lines;
    std::size_t pos = 0;
};

// ---------------------------------------------------------------
// Config-key vocabulary.

enum class KeyKind { U64, Bool, Double, Scheme, Model };

struct KeyValue
{
    std::uint64_t u = 0;
    double d = 0.0;
    bool b = false;
    PredictorScheme scheme = PredictorScheme::GAs;
    TimingModel model = TimingModel::Abstract;
};

struct ConfigKeyDef
{
    const char *name;
    KeyKind kind;
    void (*set)(RunConfig &, const KeyValue &);
};

// Sorted by name (configKeyNames leans on it; binary search does not,
// a linear scan over ~30 entries is fine).
const ConfigKeyDef configKeys[] = {
    {"btb_assoc", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.predictor.btbAssoc = unsigned(v.u);
     }},
    {"btb_entries", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.predictor.btbEntries = unsigned(v.u);
     }},
    {"commit_width", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.ooo.commitWidth = unsigned(v.u);
     }},
    {"dcache_assoc", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.dcache.assoc = std::uint32_t(v.u);
     }},
    {"dcache_kb", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.dcache.sizeBytes = std::uint32_t(v.u * 1024);
     }},
    {"dcache_perfect", KeyKind::Bool,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.dcache.perfect = v.b;
     }},
    {"enlarge_enabled", KeyKind::Bool,
     [](RunConfig &c, const KeyValue &v) { c.enlarge.enabled = v.b; }},
    {"enlarge_library_functions", KeyKind::Bool,
     [](RunConfig &c, const KeyValue &v) {
         c.enlarge.enlargeLibraryFunctions = v.b;
     }},
    {"enlarge_max_faults", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.enlarge.maxFaults = unsigned(v.u);
     }},
    {"enlarge_max_ops", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.enlarge.maxOps = unsigned(v.u);
     }},
    {"frontend_depth", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.frontendDepth = unsigned(v.u);
     }},
    {"history_bits", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.predictor.historyBits = unsigned(v.u);
     }},
    {"history_entries", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.predictor.historyEntries = unsigned(v.u);
     }},
    {"icache_assoc", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.icache.assoc = std::uint32_t(v.u);
     }},
    {"icache_kb", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.icache.sizeBytes = std::uint32_t(v.u * 1024);
     }},
    {"icache_perfect", KeyKind::Bool,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.icache.perfect = v.b;
     }},
    {"issue_width", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.issueWidth = unsigned(v.u);
     }},
    {"l2_latency", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.l2Latency = unsigned(v.u);
     }},
    {"lsq_entries", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.ooo.lsqEntries = unsigned(v.u);
     }},
    {"max_variants_per_head", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.enlarge.maxVariantsPerHead = unsigned(v.u);
     }},
    {"merge_across_back_edges", KeyKind::Bool,
     [](RunConfig &c, const KeyValue &v) {
         c.enlarge.mergeAcrossBackEdges = v.b;
     }},
    {"min_merge_bias", KeyKind::Double,
     [](RunConfig &c, const KeyValue &v) { c.minMergeBias = v.d; }},
    {"perfect_prediction", KeyKind::Bool,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.perfectPrediction = v.b;
     }},
    {"phys_regs", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.ooo.physRegs = unsigned(v.u);
     }},
    {"pht_bits", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.predictor.phtBits = unsigned(v.u);
     }},
    {"predictor_perfect", KeyKind::Bool,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.predictor.perfect = v.b;
     }},
    {"predictor_scheme", KeyKind::Scheme,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.predictor.scheme = v.scheme;
     }},
    {"redirect_penalty", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.redirectPenalty = unsigned(v.u);
     }},
    {"rob_ops", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.ooo.robOps = unsigned(v.u);
     }},
    {"rs_per_class", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.ooo.rsPerClass = unsigned(v.u);
     }},
    {"timing_model", KeyKind::Model,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.timingModel = v.model;
     }},
    {"window_ops", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.windowOps = unsigned(v.u);
     }},
    {"window_units", KeyKind::U64,
     [](RunConfig &c, const KeyValue &v) {
         c.machine.windowUnits = unsigned(v.u);
     }},
};

const ConfigKeyDef *
findKey(const std::string &name)
{
    for (const ConfigKeyDef &def : configKeys)
        if (name == def.name)
            return &def;
    return nullptr;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseKeyValue(const ConfigKeyDef &def, const std::string &value,
              KeyValue &out, std::string &error)
{
    switch (def.kind) {
      case KeyKind::U64:
        if (!parseU64(value, out.u)) {
            error = std::string(def.name) +
                    ": expected an unsigned integer, got '" + value +
                    "'";
            return false;
        }
        return true;
      case KeyKind::Bool:
        if (value == "true") {
            out.b = true;
            return true;
        }
        if (value == "false") {
            out.b = false;
            return true;
        }
        error = std::string(def.name) +
                ": expected true or false, got '" + value + "'";
        return false;
      case KeyKind::Double: {
        errno = 0;
        char *end = nullptr;
        out.d = std::strtod(value.c_str(), &end);
        if (value.empty() || errno != 0 ||
            end != value.c_str() + value.size()) {
            error = std::string(def.name) +
                    ": expected a number, got '" + value + "'";
            return false;
        }
        return true;
      }
      case KeyKind::Scheme:
        if (value == "GAg")
            out.scheme = PredictorScheme::GAg;
        else if (value == "GAs")
            out.scheme = PredictorScheme::GAs;
        else if (value == "PAg")
            out.scheme = PredictorScheme::PAg;
        else if (value == "PAs")
            out.scheme = PredictorScheme::PAs;
        else {
            error = std::string(def.name) +
                    ": expected GAg/GAs/PAg/PAs, got '" + value + "'";
            return false;
        }
        return true;
      case KeyKind::Model:
        if (value == "abstract")
            out.model = TimingModel::Abstract;
        else if (value == "ooo")
            out.model = TimingModel::Ooo;
        else {
            error = std::string(def.name) +
                    ": expected abstract or ooo, got '" + value + "'";
            return false;
        }
        return true;
    }
    error = "unreachable";
    return false;
}

std::string
renderKeyValue(const ConfigKeyDef &def, const KeyValue &v)
{
    switch (def.kind) {
      case KeyKind::U64:
        return std::to_string(v.u);
      case KeyKind::Bool:
        return v.b ? "true" : "false";
      case KeyKind::Double: {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", v.d);
        return buf;
      }
      case KeyKind::Scheme:
        return predictorSchemeName(v.scheme);
      case KeyKind::Model:
        return v.model == TimingModel::Ooo ? "ooo" : "abstract";
    }
    return "";
}

// ---------------------------------------------------------------
// Interpretation of the node tree into a SweepSpec.

/** Validate + canonicalise an assignment list; sorts by key. */
bool
interpretAssigns(const SpecNode &node, const char *what,
                 std::vector<SpecAssign> &out, std::string &error)
{
    if (node.kind != SpecNode::Kind::Map) {
        error = std::string(what) + ": expected a map of config keys";
        return false;
    }
    out.clear();
    for (const auto &kv : node.map) {
        if (kv.second.kind != SpecNode::Kind::Scalar) {
            error = std::string(what) + "." + kv.first +
                    ": expected a scalar value";
            return false;
        }
        std::string canonical;
        if (!canonicalConfigValue(kv.first, kv.second.scalar,
                                  canonical, error))
            return false;
        out.emplace_back(kv.first, canonical);
    }
    std::sort(out.begin(), out.end());
    for (std::size_t i = 1; i < out.size(); ++i) {
        if (out[i].first == out[i - 1].first) {
            error = std::string(what) + ": duplicate key '" +
                    out[i].first + "'";
            return false;
        }
    }
    return true;
}

bool
interpretSpec(const SpecNode &root, SweepSpec &spec, std::string &error)
{
    if (root.kind != SpecNode::Kind::Map) {
        error = "spec must be a top-level map";
        return false;
    }
    spec = SweepSpec{};
    bool sawBenchmarks = false;
    for (const auto &kv : root.map) {
        const std::string &key = kv.first;
        const SpecNode &node = kv.second;
        if (key == "name") {
            if (node.kind != SpecNode::Kind::Scalar ||
                node.scalar.empty()) {
                error = "name: expected a non-empty scalar";
                return false;
            }
            spec.name = node.scalar;
        } else if (key == "scale" || key == "budget_div" ||
                   key == "chunk_units") {
            std::uint64_t v = 0;
            if (node.kind != SpecNode::Kind::Scalar ||
                !parseU64(node.scalar, v)) {
                error = key + ": expected an unsigned integer";
                return false;
            }
            if (key == "scale") {
                // Scale is a divisor; an explicit zero is always a
                // mistake (omit the key to get the default).
                if (v == 0) {
                    error = "scale must be >= 1";
                    return false;
                }
                spec.scale = v;
            }
            else if (key == "budget_div")
                spec.budgetDiv = v;
            else
                spec.chunkUnits = v;
        } else if (key == "figure") {
            if (node.kind != SpecNode::Kind::Scalar ||
                (node.scalar != "none" && node.scalar != "cycles" &&
                 node.scalar != "blocksize")) {
                error = "figure: expected none, cycles, or blocksize";
                return false;
            }
            spec.figure = node.scalar;
        } else if (key == "benchmarks") {
            sawBenchmarks = true;
            std::vector<std::string> names;
            if (node.kind == SpecNode::Kind::Scalar) {
                names.push_back(node.scalar);
            } else if (node.kind == SpecNode::Kind::List) {
                for (const SpecNode &item : node.list) {
                    if (item.kind != SpecNode::Kind::Scalar) {
                        error = "benchmarks: expected scalar names";
                        return false;
                    }
                    names.push_back(item.scalar);
                }
            } else {
                error = "benchmarks: expected a name or list of names";
                return false;
            }
            const auto suite = specint95Suite();
            for (const std::string &name : names) {
                if (name == "suite") {
                    for (const SpecBenchmark &b : suite)
                        spec.benchmarks.push_back(b.params.name);
                    continue;
                }
                const bool known = std::any_of(
                    suite.begin(), suite.end(),
                    [&](const SpecBenchmark &b) {
                        return name == b.params.name;
                    });
                if (!known) {
                    error = "benchmarks: unknown benchmark '" + name +
                            "'";
                    return false;
                }
                spec.benchmarks.push_back(name);
            }
            std::vector<std::string> seen;
            for (const std::string &name : spec.benchmarks) {
                if (std::find(seen.begin(), seen.end(), name) !=
                    seen.end()) {
                    error = "benchmarks: duplicate benchmark '" + name +
                            "'";
                    return false;
                }
                seen.push_back(name);
            }
        } else if (key == "base") {
            if (!interpretAssigns(node, "base", spec.base, error))
                return false;
        } else if (key == "axes") {
            if (node.kind != SpecNode::Kind::Map) {
                error = "axes: expected a map of key -> value list";
                return false;
            }
            for (const auto &axis : node.map) {
                if (axis.second.kind != SpecNode::Kind::List ||
                    axis.second.list.empty()) {
                    error = "axes." + axis.first +
                            ": expected a non-empty value list";
                    return false;
                }
                std::vector<std::string> values;
                for (const SpecNode &item : axis.second.list) {
                    if (item.kind != SpecNode::Kind::Scalar) {
                        error = "axes." + axis.first +
                                ": expected scalar values";
                        return false;
                    }
                    std::string canonical;
                    if (!canonicalConfigValue(axis.first, item.scalar,
                                              canonical, error))
                        return false;
                    values.push_back(canonical);
                }
                for (const auto &prev : spec.axes) {
                    if (prev.first == axis.first) {
                        error = "axes: duplicate axis '" + axis.first +
                                "'";
                        return false;
                    }
                }
                spec.axes.emplace_back(axis.first, std::move(values));
            }
        } else if (key == "points") {
            if (node.kind != SpecNode::Kind::List) {
                error = "points: expected a list of config maps";
                return false;
            }
            for (const SpecNode &item : node.list) {
                std::vector<SpecAssign> point;
                if (!interpretAssigns(item, "points", point, error))
                    return false;
                spec.points.push_back(std::move(point));
            }
        } else {
            error = "unknown top-level key '" + key + "'";
            return false;
        }
    }

    if (spec.name.empty()) {
        error = "spec is missing 'name'";
        return false;
    }
    if (!sawBenchmarks || spec.benchmarks.empty()) {
        error = "spec is missing 'benchmarks'";
        return false;
    }
    if (spec.budgetDiv == 0) {
        error = "budget_div must be >= 1";
        return false;
    }
    if (spec.pointsPerBenchmark() == 0) {
        error = "spec defines an empty config grid";
        return false;
    }
    if (spec.figure != "none" && spec.pointsPerBenchmark() != 1) {
        error = "figure '" + spec.figure +
                "' needs exactly one config per benchmark (got " +
                std::to_string(spec.pointsPerBenchmark()) + ")";
        return false;
    }
    return true;
}

} // namespace

std::uint64_t
SweepSpec::effectiveScale() const
{
    return scale == 0 ? specScaleDivisor : scale;
}

std::uint64_t
SweepSpec::pointsPerBenchmark() const
{
    std::uint64_t grid = 1;
    for (const auto &axis : axes)
        grid *= axis.second.size();
    if (axes.empty())
        grid = points.empty() ? 1 : 0;
    return grid + points.size();
}

bool
parseSweepSpec(const std::string &text, SweepSpec &out,
               std::string &error)
{
    std::vector<SpecLine> lines;
    if (!splitLines(text, lines, error))
        return false;
    SpecNode root;
    BlockParser parser(std::move(lines));
    if (!parser.parse(root, error))
        return false;
    return interpretSpec(root, out, error);
}

bool
parseSweepSpecFile(const std::string &path, SweepSpec &out,
                   std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open spec file: " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseSweepSpec(text.str(), out, error);
}

std::string
canonicalSpec(const SweepSpec &spec)
{
    std::ostringstream os;
    os << "name: " << spec.name << "\n";
    os << "scale: " << spec.effectiveScale() << "\n";
    os << "budget_div: " << spec.budgetDiv << "\n";
    os << "chunk_units: " << spec.chunkUnits << "\n";
    os << "figure: " << spec.figure << "\n";
    os << "benchmarks: [";
    for (std::size_t i = 0; i < spec.benchmarks.size(); ++i)
        os << (i ? ", " : "") << spec.benchmarks[i];
    os << "]\n";

    const auto renderAssigns = [&](const std::vector<SpecAssign> &as) {
        os << "{";
        for (std::size_t i = 0; i < as.size(); ++i)
            os << (i ? ", " : "") << as[i].first << ": "
               << as[i].second;
        os << "}";
    };
    os << "base: ";
    renderAssigns(spec.base);
    os << "\n";

    if (spec.axes.empty()) {
        os << "axes: {}\n";
    } else {
        os << "axes:\n";
        for (const auto &axis : spec.axes) {
            os << "  " << axis.first << ": [";
            for (std::size_t i = 0; i < axis.second.size(); ++i)
                os << (i ? ", " : "") << axis.second[i];
            os << "]\n";
        }
    }

    if (spec.points.empty()) {
        os << "points: []\n";
    } else {
        os << "points:\n";
        for (const auto &point : spec.points) {
            os << "  - ";
            renderAssigns(point);
            os << "\n";
        }
    }
    return os.str();
}

std::uint64_t
specDigest(const SweepSpec &spec)
{
    const std::string canonical = canonicalSpec(spec);
    return Fnv1a64()
        .bytes(canonical.data(), canonical.size())
        .u64(sweepSpecVersion)
        .value();
}

bool
applyConfigKey(RunConfig &config, const std::string &key,
               const std::string &value, std::string &error)
{
    const ConfigKeyDef *def = findKey(key);
    if (!def) {
        error = "unknown config key '" + key + "'";
        return false;
    }
    KeyValue v;
    if (!parseKeyValue(*def, value, v, error))
        return false;
    def->set(config, v);
    return true;
}

bool
canonicalConfigValue(const std::string &key, const std::string &value,
                     std::string &canonical, std::string &error)
{
    const ConfigKeyDef *def = findKey(key);
    if (!def) {
        error = "unknown config key '" + key + "'";
        return false;
    }
    KeyValue v;
    if (!parseKeyValue(*def, value, v, error))
        return false;
    canonical = renderKeyValue(*def, v);
    return true;
}

std::vector<std::string>
configKeyNames()
{
    std::vector<std::string> names;
    for (const ConfigKeyDef &def : configKeys)
        names.push_back(def.name);
    return names;
}

} // namespace bsisa
