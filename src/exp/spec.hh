/**
 * @file
 * Declarative sweep specifications for the experiment service.
 *
 * A spec file names a benchmark set, a base machine configuration, a
 * config grid (axis cross-products plus explicit points), and the
 * figure to render from the results.  The syntax is a small YAML
 * subset (see parseSpecText for the exact grammar) — enough to write
 * the paper's grids by hand, small enough to parse with no
 * dependencies.
 *
 * Every spec canonicalises to a normalized text form (fixed field
 * order, normalized scalar spellings, sorted map keys where order is
 * not semantic) and is digested via support/digest.hh; the digest is
 * the spec's identity in plan markers and status output, so two
 * spellings of the same experiment — reordered keys, comments,
 * different whitespace — share one identity, while any semantic
 * change (an axis value, the scale, a benchmark) produces a new one.
 */

#ifndef BSISA_EXP_SPEC_HH
#define BSISA_EXP_SPEC_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/runner.hh"

namespace bsisa
{

/** Version of the spec grammar + canonical form (digest component). */
constexpr std::uint32_t sweepSpecVersion = 1;

/** One `key: value` assignment of config-grid text. */
using SpecAssign = std::pair<std::string, std::string>;

/** A parsed, validated sweep specification. */
struct SweepSpec
{
    std::string name;

    /** Divisor applied to the paper's Table-2 instruction counts
     *  (the spec-file analog of BSISA_SCALE). */
    std::uint64_t scale = 0;  //!< 0 = specScaleDivisor default

    /** Extra budget divisor on top of scale (the ablation drivers
     *  run at 1/4 budget; specs express that here). */
    std::uint64_t budgetDiv = 1;

    /** Benchmark names, suite order; "suite" in the file expands to
     *  all eight. */
    std::vector<std::string> benchmarks;

    /** Figure rendered from the results: "none", "cycles"
     *  (figures 3/4), or "blocksize" (figure 5). */
    std::string figure = "none";

    /** Base config overrides, sorted by key (order has no meaning). */
    std::vector<SpecAssign> base;

    /** Grid axes in file order (order defines grid enumeration:
     *  first axis outermost).  Each axis is (key, values). */
    std::vector<std::pair<std::string, std::vector<std::string>>> axes;

    /** Explicit extra grid points, file order, each sorted by key. */
    std::vector<std::vector<SpecAssign>> points;

    /** Default work-unit chunk size for leasing (0 = one chunk per
     *  benchmark); CLI --chunk overrides. */
    std::uint64_t chunkUnits = 0;

    /** The effective scale divisor. */
    std::uint64_t effectiveScale() const;

    /** Grid points per benchmark (axis cross-product + points). */
    std::uint64_t pointsPerBenchmark() const;
};

/**
 * Parse and validate spec text.  Returns false with a one-line
 * message in @p error on any syntax or semantic problem (unknown
 * key, unknown benchmark, unparsable value, empty grid...).
 */
bool parseSweepSpec(const std::string &text, SweepSpec &out,
                    std::string &error);

/** parseSweepSpec over a file's contents. */
bool parseSweepSpecFile(const std::string &path, SweepSpec &out,
                        std::string &error);

/** The canonical text form (also valid spec input). */
std::string canonicalSpec(const SweepSpec &spec);

/** Identity digest: canonical text + sweepSpecVersion. */
std::uint64_t specDigest(const SweepSpec &spec);

/**
 * Apply one config-key assignment to @p config.  Key names are the
 * spec-file vocabulary (issue_width, icache_kb, enlarge_max_ops,
 * predictor_scheme, ...); returns false with @p error set on an
 * unknown key or unparsable value.
 */
bool applyConfigKey(RunConfig &config, const std::string &key,
                    const std::string &value, std::string &error);

/** Normalize one assignment's value to its canonical spelling
 *  (numerics re-rendered, booleans to true/false, scheme names to
 *  their exact case); false on unknown key / bad value. */
bool canonicalConfigValue(const std::string &key,
                          const std::string &value,
                          std::string &canonical, std::string &error);

/** Every known config key, sorted (docs and error messages). */
std::vector<std::string> configKeyNames();

} // namespace bsisa

#endif // BSISA_EXP_SPEC_HH
