/**
 * @file
 * Abstract syntax tree for BlockC.
 *
 * All values are 64-bit signed words.  Globals may be scalars or
 * arrays; locals and parameters are scalars held in virtual registers.
 */

#ifndef BSISA_FRONTEND_AST_HH
#define BSISA_FRONTEND_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/diag.hh"

namespace bsisa
{

// ---------------------------------------------------------------- Expr

enum class ExprKind : unsigned char
{
    IntLit,
    VarRef,    //!< local, parameter, or global scalar
    Index,     //!< global array element
    Unary,
    Binary,
    CallExpr,
};

enum class UnaryOp : unsigned char { Neg, Not, BitNot };

enum class BinaryOp : unsigned char
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
    LogAnd, LogOr,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr
{
    ExprKind kind;
    SrcLoc loc;

    std::int64_t intValue = 0;      // IntLit
    std::string name;               // VarRef, Index, CallExpr
    UnaryOp unaryOp = UnaryOp::Neg;
    BinaryOp binaryOp = BinaryOp::Add;
    ExprPtr lhs;                    // Unary operand, Binary lhs, Index idx
    ExprPtr rhs;                    // Binary rhs
    std::vector<ExprPtr> args;      // CallExpr
};

// ---------------------------------------------------------------- Stmt

enum class StmtKind : unsigned char
{
    VarDecl,     //!< var name (= init)?
    Assign,      //!< name = expr
    IndexAssign, //!< name[idx] = expr
    If,
    While,
    For,
    Switch,
    Return,
    Break,
    Continue,
    Halt,
    ExprStmt,
    BlockStmt,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt
{
    StmtKind kind;
    SrcLoc loc;

    std::string name;           // VarDecl, Assign, IndexAssign
    ExprPtr index;              // IndexAssign
    ExprPtr value;              // init / rhs / condition / return value /
                                // switch selector / ExprStmt
    std::vector<StmtPtr> body;  // If-then, While/For body, BlockStmt,
                                // Switch cases (one BlockStmt per case)
    std::vector<StmtPtr> elseBody;  // If-else
    StmtPtr forInit;            // For
    StmtPtr forStep;            // For
};

// ------------------------------------------------------------- TopLevel

struct GlobalDecl
{
    SrcLoc loc;
    std::string name;
    std::uint64_t arraySize = 0;  //!< 0 = scalar
    std::int64_t init = 0;        //!< scalar initializer
};

struct FuncDecl
{
    SrcLoc loc;
    std::string name;
    bool isLibrary = false;
    std::vector<std::string> params;
    std::vector<StmtPtr> body;
};

/** A parsed translation unit. */
struct ParsedProgram
{
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> functions;
};

} // namespace bsisa

#endif // BSISA_FRONTEND_AST_HH
