/**
 * @file
 * BlockC compilation driver.
 */

#include "frontend/compile.hh"

#include "core/enlarge.hh"
#include "frontend/irgen.hh"
#include "frontend/lexer.hh"
#include "frontend/parser.hh"
#include "frontend/sema.hh"
#include "ir/verifier.hh"
#include "opt/inliner.hh"
#include "opt/passes.hh"
#include "regalloc/linearscan.hh"
#include "support/logging.hh"

namespace bsisa
{

CompileResult
compileBlockC(const std::string &source, const CompileOptions &options)
{
    CompileResult result;
    DiagSink diags;

    const auto tokens = lex(source, diags);
    const auto parsed = parse(tokens, diags);
    const auto sema = analyze(parsed, diags);
    if (diags.hasErrors()) {
        result.errors = diags.summary();
        return result;
    }

    result.module = generateIR(parsed, sema);
    verifyModuleOrDie(result.module, "after IR generation");
    if (options.inlineSmall) {
        inlineCalls(result.module, InlineOptions{});
        verifyModuleOrDie(result.module, "after inlining");
    }
    if (options.optimize) {
        optimizeModule(result.module);
        verifyModuleOrDie(result.module, "after optimization");
    }
    if (options.allocate) {
        allocateModule(result.module);
        verifyModuleOrDie(result.module, "after register allocation");
    }
    if (options.maxBlockOps > 0) {
        splitOversizedBlocks(result.module, options.maxBlockOps);
        verifyModuleOrDie(result.module, "after block splitting");
    }
    result.ok = true;
    return result;
}

Module
compileBlockCOrDie(const std::string &source, const CompileOptions &options)
{
    CompileResult result = compileBlockC(source, options);
    if (!result.ok)
        fatal("BlockC compilation failed:\n", result.errors);
    return std::move(result.module);
}

} // namespace bsisa
