/**
 * @file
 * One-call BlockC compilation driver: source text to a register-
 * allocated Module ready for the conventional simulator or the block
 * enlargement pass.
 */

#ifndef BSISA_FRONTEND_COMPILE_HH
#define BSISA_FRONTEND_COMPILE_HH

#include <string>

#include "ir/module.hh"

namespace bsisa
{

struct CompileOptions
{
    /** Inline small leaf functions before optimizing (the paper's
     *  section-6 extension; lets enlargement merge past former call
     *  sites). */
    bool inlineSmall = false;
    /** Run the mid-end optimization pipeline. */
    bool optimize = true;
    /** Run register allocation (leave virtual registers if false). */
    bool allocate = true;
    /** Split basic blocks larger than this many operations (the
     *  block-structured issue width); 0 disables splitting. */
    unsigned maxBlockOps = 16;
};

struct CompileResult
{
    bool ok = false;
    Module module;
    std::string errors;  //!< diagnostics when !ok
};

/** Compile BlockC source text. */
CompileResult compileBlockC(const std::string &source,
                            const CompileOptions &options = {});

/** Compile, fatal()ing on any diagnostic (for tests and examples). */
Module compileBlockCOrDie(const std::string &source,
                          const CompileOptions &options = {});

} // namespace bsisa

#endif // BSISA_FRONTEND_COMPILE_HH
