/**
 * @file
 * Diagnostics implementation.
 */

#include "frontend/diag.hh"

#include <sstream>

namespace bsisa
{

std::string
SrcLoc::toString() const
{
    std::ostringstream os;
    os << line << ":" << col;
    return os.str();
}

std::string
Diag::toString() const
{
    return loc.toString() + ": error: " + message;
}

void
DiagSink::error(SrcLoc loc, const std::string &message)
{
    diags.push_back({loc, message});
}

std::string
DiagSink::summary() const
{
    std::ostringstream os;
    for (const auto &d : diags)
        os << d.toString() << "\n";
    return os.str();
}

} // namespace bsisa
