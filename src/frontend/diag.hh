/**
 * @file
 * Diagnostics for the BlockC front end: source positions and an error
 * collector shared by the lexer, parser, and semantic analysis.
 */

#ifndef BSISA_FRONTEND_DIAG_HH
#define BSISA_FRONTEND_DIAG_HH

#include <string>
#include <vector>

namespace bsisa
{

/** 1-based source location. */
struct SrcLoc
{
    unsigned line = 0;
    unsigned col = 0;

    std::string toString() const;
};

/** One diagnostic message. */
struct Diag
{
    SrcLoc loc;
    std::string message;

    std::string toString() const;
};

/** Collects diagnostics; compilation is rejected if any were emitted. */
class DiagSink
{
  public:
    void error(SrcLoc loc, const std::string &message);

    bool hasErrors() const { return !diags.empty(); }
    const std::vector<Diag> &errors() const { return diags; }

    /** All diagnostics joined by newlines (for test assertions). */
    std::string summary() const;

  private:
    std::vector<Diag> diags;
};

} // namespace bsisa

#endif // BSISA_FRONTEND_DIAG_HH
