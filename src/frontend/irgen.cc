/**
 * @file
 * BlockC IR generation.
 *
 * Control flow lowers to the conventional ISA's terminators: if/while/
 * for produce Trap blocks, switch produces an IJmp through a jump
 * table, calls produce Call terminators with an explicit continuation
 * block.  Short-circuit && and || lower to control flow, matching C
 * semantics.  Statements after a return/break/continue open a fresh
 * unreachable block; the simplify-cfg pass removes it later.
 */

#include "frontend/irgen.hh"

#include <map>

#include "support/logging.hh"

namespace bsisa
{

namespace
{

class FuncGen
{
  public:
    FuncGen(Module &module, Function &fn, const FuncDecl &decl,
            const ParsedProgram &prog, const SemaResult &sema)
        : module(module), fn(fn), decl(decl), prog(prog), sema(sema)
    {
    }

    void
    run()
    {
        cur = fn.newBlock();
        pushScope();
        for (unsigned i = 0; i < decl.params.size(); ++i) {
            const RegNum v = fn.newReg();
            locals.back()[decl.params[i]] = v;
            emit(makeMov(v, regArg0 + i));
        }
        genStmts(decl.body);
        if (!blockDone()) {
            if (isMain()) {
                emit(makeHalt());
            } else {
                emit(makeMovI(regRet, 0));
                emit(makeRet());
            }
        }
    }

  private:
    Module &module;
    Function &fn;
    const FuncDecl &decl;
    const ParsedProgram &prog;
    const SemaResult &sema;

    BlockId cur = 0;
    /** Lexical scope stack of name -> register maps. */
    std::vector<std::map<std::string, RegNum>> locals;
    std::vector<BlockId> breakTargets;
    std::vector<BlockId> continueTargets;

    void pushScope() { locals.emplace_back(); }
    void popScope() { locals.pop_back(); }

    const RegNum *
    lookupLocal(const std::string &name) const
    {
        for (auto it = locals.rbegin(); it != locals.rend(); ++it) {
            const auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        return nullptr;
    }

    bool isMain() const { return decl.name == "main"; }

    void emit(Operation op) { fn.blocks[cur].ops.push_back(op); }

    bool blockDone() const { return fn.blocks[cur].sealed(); }

    /** Begin a new block and make it current. */
    BlockId
    startBlock()
    {
        cur = fn.newBlock();
        return cur;
    }

    std::uint64_t
    globalAddr(const std::string &name) const
    {
        const auto it = sema.globals.find(name);
        BSISA_ASSERT(it != sema.globals.end());
        return Module::dataBase + it->second.addr;
    }

    FuncId
    funcId(const std::string &name) const
    {
        const auto it = sema.functions.find(name);
        BSISA_ASSERT(it != sema.functions.end());
        return static_cast<FuncId>(it->second.index);
    }

    // ------------------------------------------------------ statements

    void
    genStmts(const std::vector<StmtPtr> &stmts)
    {
        for (const auto &s : stmts) {
            if (blockDone()) {
                // Dead code after return/break/continue/halt; emit into
                // an unreachable block that simplify-cfg deletes.
                startBlock();
            }
            genStmt(*s);
        }
    }

    void
    genStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::VarDecl: {
            const RegNum v = fn.newReg();
            if (s.value) {
                const RegNum init = genExpr(*s.value);
                emit(makeMov(v, init));
            } else {
                emit(makeMovI(v, 0));
            }
            locals.back()[s.name] = v;
            break;
          }
          case StmtKind::Assign: {
            const RegNum value = genExpr(*s.value);
            if (const RegNum *reg = lookupLocal(s.name)) {
                emit(makeMov(*reg, value));
            } else {
                const RegNum base = fn.newReg();
                emit(makeMovI(base, globalAddr(s.name)));
                emit(makeSt(base, 0, value));
            }
            break;
          }
          case StmtKind::IndexAssign: {
            const RegNum addr = genArrayAddr(s.name, *s.index);
            const RegNum value = genExpr(*s.value);
            emit(makeSt(addr, 0, value));
            break;
          }
          case StmtKind::If: {
            const RegNum cond = genExpr(*s.value);
            const BlockId then_b = fn.newBlock();
            const BlockId else_b =
                s.elseBody.empty() ? invalidId : fn.newBlock();
            const BlockId join_b = fn.newBlock();
            emit(makeTrap(cond, then_b,
                          else_b == invalidId ? join_b : else_b));
            cur = then_b;
            pushScope();
            genStmts(s.body);
            popScope();
            if (!blockDone())
                emit(makeJmp(join_b));
            if (else_b != invalidId) {
                cur = else_b;
                pushScope();
                genStmts(s.elseBody);
                popScope();
                if (!blockDone())
                    emit(makeJmp(join_b));
            }
            cur = join_b;
            break;
          }
          case StmtKind::While: {
            const BlockId head = fn.newBlock();
            emit(makeJmp(head));
            cur = head;
            const RegNum cond = genExpr(*s.value);
            const BlockId body = fn.newBlock();
            const BlockId exit = fn.newBlock();
            emit(makeTrap(cond, body, exit));
            breakTargets.push_back(exit);
            continueTargets.push_back(head);
            cur = body;
            pushScope();
            genStmts(s.body);
            popScope();
            if (!blockDone())
                emit(makeJmp(head));
            breakTargets.pop_back();
            continueTargets.pop_back();
            cur = exit;
            break;
          }
          case StmtKind::For: {
            pushScope();  // the init variable scopes over the loop
            if (s.forInit)
                genStmt(*s.forInit);
            const BlockId head = fn.newBlock();
            emit(makeJmp(head));
            cur = head;
            const BlockId body = fn.newBlock();
            const BlockId exit = fn.newBlock();
            if (s.value) {
                const RegNum cond = genExpr(*s.value);
                emit(makeTrap(cond, body, exit));
            } else {
                emit(makeJmp(body));
            }
            const BlockId step = fn.newBlock();
            breakTargets.push_back(exit);
            continueTargets.push_back(step);
            cur = body;
            pushScope();
            genStmts(s.body);
            popScope();
            if (!blockDone())
                emit(makeJmp(step));
            cur = step;
            if (s.forStep)
                genStmt(*s.forStep);
            if (!blockDone())
                emit(makeJmp(head));
            breakTargets.pop_back();
            continueTargets.pop_back();
            popScope();
            cur = exit;
            break;
          }
          case StmtKind::Switch: {
            const RegNum sel = genExpr(*s.value);
            const BlockId join_b = fn.newBlock();
            std::vector<BlockId> case_blocks;
            for (std::size_t i = 0; i < s.body.size(); ++i)
                case_blocks.push_back(fn.newBlock());
            const auto table =
                static_cast<std::uint32_t>(fn.jumpTables.size());
            fn.jumpTables.push_back(case_blocks);
            emit(makeIJmp(sel, table));
            for (std::size_t i = 0; i < s.body.size(); ++i) {
                cur = case_blocks[i];
                pushScope();
                genStmts(s.body[i]->body);
                popScope();
                if (!blockDone())
                    emit(makeJmp(join_b));
            }
            cur = join_b;
            break;
          }
          case StmtKind::Return: {
            if (s.value) {
                const RegNum v = genExpr(*s.value);
                emit(makeMov(regRet, v));
            } else {
                emit(makeMovI(regRet, 0));
            }
            emit(isMain() ? makeHalt() : makeRet());
            break;
          }
          case StmtKind::Break:
            BSISA_ASSERT(!breakTargets.empty());
            emit(makeJmp(breakTargets.back()));
            break;
          case StmtKind::Continue:
            BSISA_ASSERT(!continueTargets.empty());
            emit(makeJmp(continueTargets.back()));
            break;
          case StmtKind::Halt:
            emit(makeHalt());
            break;
          case StmtKind::ExprStmt:
            genExpr(*s.value);
            break;
          case StmtKind::BlockStmt:
            pushScope();
            genStmts(s.body);
            popScope();
            break;
        }
    }

    // ----------------------------------------------------- expressions

    /** Address of name[idx] into a fresh register. */
    RegNum
    genArrayAddr(const std::string &name, const Expr &idx)
    {
        const RegNum i = genExpr(idx);
        const RegNum off = fn.newReg();
        emit(makeBinI(Opcode::ShlI, off, i, 3));
        const RegNum base = fn.newReg();
        emit(makeMovI(base, globalAddr(name)));
        const RegNum addr = fn.newReg();
        emit(makeBin(Opcode::Add, addr, base, off));
        return addr;
    }

    RegNum
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit: {
            const RegNum v = fn.newReg();
            emit(makeMovI(v, e.intValue));
            return v;
          }
          case ExprKind::VarRef: {
            if (const RegNum *reg = lookupLocal(e.name))
                return *reg;
            const RegNum base = fn.newReg();
            emit(makeMovI(base, globalAddr(e.name)));
            const RegNum v = fn.newReg();
            emit(makeLd(v, base, 0));
            return v;
          }
          case ExprKind::Index: {
            const RegNum addr = genArrayAddr(e.name, *e.lhs);
            const RegNum v = fn.newReg();
            emit(makeLd(v, addr, 0));
            return v;
          }
          case ExprKind::Unary: {
            const RegNum operand = genExpr(*e.lhs);
            const RegNum v = fn.newReg();
            switch (e.unaryOp) {
              case UnaryOp::Neg:
                emit(makeBin(Opcode::Sub, v, regZero, operand));
                break;
              case UnaryOp::Not:
                emit(makeBinI(Opcode::CmpEqI, v, operand, 0));
                break;
              case UnaryOp::BitNot: {
                const RegNum ones = fn.newReg();
                emit(makeMovI(ones, -1));
                emit(makeBin(Opcode::Xor, v, operand, ones));
                break;
              }
            }
            return v;
          }
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::CallExpr: {
            std::vector<RegNum> args;
            for (const auto &a : e.args)
                args.push_back(genExpr(*a));
            for (unsigned i = 0; i < args.size(); ++i)
                emit(makeMov(regArg0 + i, args[i]));
            const BlockId cont = fn.newBlock();
            emit(makeCall(funcId(e.name), cont));
            cur = cont;
            const RegNum v = fn.newReg();
            emit(makeMov(v, regRet));
            return v;
          }
        }
        panic("bad expression kind");
    }

    RegNum
    genBinary(const Expr &e)
    {
        // Short-circuit forms lower to control flow.
        if (e.binaryOp == BinaryOp::LogAnd ||
            e.binaryOp == BinaryOp::LogOr) {
            const bool is_and = e.binaryOp == BinaryOp::LogAnd;
            const RegNum result = fn.newReg();
            const RegNum lhs = genExpr(*e.lhs);
            emit(makeMovI(result, is_and ? 0 : 1));
            const BlockId rhs_b = fn.newBlock();
            const BlockId join_b = fn.newBlock();
            emit(is_and ? makeTrap(lhs, rhs_b, join_b)
                        : makeTrap(lhs, join_b, rhs_b));
            cur = rhs_b;
            const RegNum rhs = genExpr(*e.rhs);
            emit(makeBin(Opcode::CmpNe, result, rhs, regZero));
            if (!blockDone())
                emit(makeJmp(join_b));
            cur = join_b;
            return result;
        }

        const RegNum lhs = genExpr(*e.lhs);
        const RegNum rhs = genExpr(*e.rhs);
        const RegNum v = fn.newReg();
        switch (e.binaryOp) {
          case BinaryOp::Add:
            emit(makeBin(Opcode::Add, v, lhs, rhs));
            break;
          case BinaryOp::Sub:
            emit(makeBin(Opcode::Sub, v, lhs, rhs));
            break;
          case BinaryOp::Mul:
            emit(makeBin(Opcode::Mul, v, lhs, rhs));
            break;
          case BinaryOp::Div:
            emit(makeBin(Opcode::Div, v, lhs, rhs));
            break;
          case BinaryOp::Rem:
            emit(makeBin(Opcode::Rem, v, lhs, rhs));
            break;
          case BinaryOp::And:
            emit(makeBin(Opcode::And, v, lhs, rhs));
            break;
          case BinaryOp::Or:
            emit(makeBin(Opcode::Or, v, lhs, rhs));
            break;
          case BinaryOp::Xor:
            emit(makeBin(Opcode::Xor, v, lhs, rhs));
            break;
          case BinaryOp::Shl:
            emit(makeBin(Opcode::Shl, v, lhs, rhs));
            break;
          case BinaryOp::Shr:
            emit(makeBin(Opcode::Shr, v, lhs, rhs));
            break;
          case BinaryOp::Eq:
            emit(makeBin(Opcode::CmpEq, v, lhs, rhs));
            break;
          case BinaryOp::Ne:
            emit(makeBin(Opcode::CmpNe, v, lhs, rhs));
            break;
          case BinaryOp::Lt:
            emit(makeBin(Opcode::CmpLt, v, lhs, rhs));
            break;
          case BinaryOp::Le:
            emit(makeBin(Opcode::CmpLe, v, lhs, rhs));
            break;
          case BinaryOp::Gt:
            emit(makeBin(Opcode::CmpLt, v, rhs, lhs));
            break;
          case BinaryOp::Ge:
            emit(makeBin(Opcode::CmpLe, v, rhs, lhs));
            break;
          case BinaryOp::LogAnd:
          case BinaryOp::LogOr:
            panic("handled above");
        }
        return v;
    }
};

} // namespace

Module
generateIR(const ParsedProgram &prog, const SemaResult &sema)
{
    Module module;
    module.allocData(sema.dataWords);
    for (const auto &g : prog.globals) {
        const auto it = sema.globals.find(g.name);
        if (it == sema.globals.end())
            continue;
        if (!it->second.isArray)
            module.data[it->second.addr / 8] =
                static_cast<std::uint64_t>(g.init);
    }

    // Create all functions first so calls can reference ids.
    for (const auto &f : prog.functions) {
        Function &fn = module.addFunction(f.name);
        fn.isLibrary = f.isLibrary;
        if (f.name == "main")
            module.mainFunc = fn.id;
    }
    for (unsigned i = 0; i < prog.functions.size(); ++i) {
        FuncGen gen(module, module.functions[i], prog.functions[i], prog,
                    sema);
        gen.run();
    }
    return module;
}

} // namespace bsisa
