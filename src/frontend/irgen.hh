/**
 * @file
 * IR generation: lower a semantically-valid BlockC program to a Module
 * in pre-register-allocation form (virtual registers).
 */

#ifndef BSISA_FRONTEND_IRGEN_HH
#define BSISA_FRONTEND_IRGEN_HH

#include "frontend/ast.hh"
#include "frontend/sema.hh"
#include "ir/module.hh"

namespace bsisa
{

/**
 * Lower @p prog to IR.  @p sema must come from analyze() on the same
 * program with no errors reported.
 */
Module generateIR(const ParsedProgram &prog, const SemaResult &sema);

} // namespace bsisa

#endif // BSISA_FRONTEND_IRGEN_HH
