/**
 * @file
 * BlockC lexer implementation.
 */

#include "frontend/lexer.hh"

#include <cctype>
#include <unordered_map>

namespace bsisa
{

const char *
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::EndOfFile: return "end of file";
      case TokKind::Ident: return "identifier";
      case TokKind::IntLit: return "integer literal";
      case TokKind::KwFn: return "'fn'";
      case TokKind::KwVar: return "'var'";
      case TokKind::KwIf: return "'if'";
      case TokKind::KwElse: return "'else'";
      case TokKind::KwWhile: return "'while'";
      case TokKind::KwFor: return "'for'";
      case TokKind::KwReturn: return "'return'";
      case TokKind::KwBreak: return "'break'";
      case TokKind::KwContinue: return "'continue'";
      case TokKind::KwHalt: return "'halt'";
      case TokKind::KwLibrary: return "'library'";
      case TokKind::KwSwitch: return "'switch'";
      case TokKind::KwCase: return "'case'";
      case TokKind::KwDefault: return "'default'";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::LBrace: return "'{'";
      case TokKind::RBrace: return "'}'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::Comma: return "','";
      case TokKind::Semi: return "';'";
      case TokKind::Colon: return "':'";
      case TokKind::Assign: return "'='";
      case TokKind::Plus: return "'+'";
      case TokKind::Minus: return "'-'";
      case TokKind::Star: return "'*'";
      case TokKind::Slash: return "'/'";
      case TokKind::Percent: return "'%'";
      case TokKind::Amp: return "'&'";
      case TokKind::Pipe: return "'|'";
      case TokKind::Caret: return "'^'";
      case TokKind::Tilde: return "'~'";
      case TokKind::Bang: return "'!'";
      case TokKind::AmpAmp: return "'&&'";
      case TokKind::PipePipe: return "'||'";
      case TokKind::Shl: return "'<<'";
      case TokKind::Shr: return "'>>'";
      case TokKind::Eq: return "'=='";
      case TokKind::Ne: return "'!='";
      case TokKind::Lt: return "'<'";
      case TokKind::Le: return "'<='";
      case TokKind::Gt: return "'>'";
      case TokKind::Ge: return "'>='";
    }
    return "?";
}

std::vector<Token>
lex(const std::string &source, DiagSink &diags)
{
    static const std::unordered_map<std::string, TokKind> keywords = {
        {"fn", TokKind::KwFn},
        {"var", TokKind::KwVar},
        {"if", TokKind::KwIf},
        {"else", TokKind::KwElse},
        {"while", TokKind::KwWhile},
        {"for", TokKind::KwFor},
        {"return", TokKind::KwReturn},
        {"break", TokKind::KwBreak},
        {"continue", TokKind::KwContinue},
        {"halt", TokKind::KwHalt},
        {"library", TokKind::KwLibrary},
        {"switch", TokKind::KwSwitch},
        {"case", TokKind::KwCase},
        {"default", TokKind::KwDefault},
    };

    std::vector<Token> toks;
    std::size_t i = 0;
    unsigned line = 1, col = 1;

    auto peek = [&](std::size_t off = 0) -> char {
        return i + off < source.size() ? source[i + off] : '\0';
    };
    auto advance = [&]() {
        if (source[i] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        ++i;
    };
    auto push = [&](TokKind kind, SrcLoc loc) {
        Token t;
        t.kind = kind;
        t.loc = loc;
        toks.push_back(std::move(t));
    };

    while (i < source.size()) {
        const char c = peek();
        const SrcLoc loc{line, col};

        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        // Comments: // to end of line, /* ... */.
        if (c == '/' && peek(1) == '/') {
            while (i < source.size() && peek() != '\n')
                advance();
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (i < source.size() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (i >= source.size()) {
                diags.error(loc, "unterminated block comment");
            } else {
                advance();
                advance();
            }
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string text;
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_') {
                text.push_back(peek());
                advance();
            }
            const auto kw = keywords.find(text);
            Token t;
            t.kind = kw != keywords.end() ? kw->second : TokKind::Ident;
            t.loc = loc;
            t.text = std::move(text);
            toks.push_back(std::move(t));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::uint64_t value = 0;
            bool overflow = false;
            bool hex = false;
            if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
                hex = true;
                advance();
                advance();
            }
            while (std::isalnum(static_cast<unsigned char>(peek()))) {
                const char d = peek();
                int digit;
                if (d >= '0' && d <= '9')
                    digit = d - '0';
                else if (hex && d >= 'a' && d <= 'f')
                    digit = d - 'a' + 10;
                else if (hex && d >= 'A' && d <= 'F')
                    digit = d - 'A' + 10;
                else {
                    diags.error({line, col}, "bad digit in integer literal");
                    break;
                }
                const std::uint64_t base = hex ? 16 : 10;
                if (value > (~0ULL - digit) / base)
                    overflow = true;
                value = value * base + digit;
                advance();
            }
            if (overflow)
                diags.error(loc, "integer literal overflows 64 bits");
            Token t;
            t.kind = TokKind::IntLit;
            t.loc = loc;
            t.intValue = static_cast<std::int64_t>(value);
            toks.push_back(std::move(t));
            continue;
        }

        // Operators and punctuation.
        auto two = [&](char second, TokKind twoKind, TokKind oneKind) {
            advance();
            if (peek() == second) {
                advance();
                push(twoKind, loc);
            } else {
                push(oneKind, loc);
            }
        };
        switch (c) {
          case '(': advance(); push(TokKind::LParen, loc); break;
          case ')': advance(); push(TokKind::RParen, loc); break;
          case '{': advance(); push(TokKind::LBrace, loc); break;
          case '}': advance(); push(TokKind::RBrace, loc); break;
          case '[': advance(); push(TokKind::LBracket, loc); break;
          case ']': advance(); push(TokKind::RBracket, loc); break;
          case ',': advance(); push(TokKind::Comma, loc); break;
          case ';': advance(); push(TokKind::Semi, loc); break;
          case ':': advance(); push(TokKind::Colon, loc); break;
          case '+': advance(); push(TokKind::Plus, loc); break;
          case '-': advance(); push(TokKind::Minus, loc); break;
          case '*': advance(); push(TokKind::Star, loc); break;
          case '/': advance(); push(TokKind::Slash, loc); break;
          case '%': advance(); push(TokKind::Percent, loc); break;
          case '^': advance(); push(TokKind::Caret, loc); break;
          case '~': advance(); push(TokKind::Tilde, loc); break;
          case '&': two('&', TokKind::AmpAmp, TokKind::Amp); break;
          case '|': two('|', TokKind::PipePipe, TokKind::Pipe); break;
          case '=': two('=', TokKind::Eq, TokKind::Assign); break;
          case '!': two('=', TokKind::Ne, TokKind::Bang); break;
          case '<':
            advance();
            if (peek() == '<') {
                advance();
                push(TokKind::Shl, loc);
            } else if (peek() == '=') {
                advance();
                push(TokKind::Le, loc);
            } else {
                push(TokKind::Lt, loc);
            }
            break;
          case '>':
            advance();
            if (peek() == '>') {
                advance();
                push(TokKind::Shr, loc);
            } else if (peek() == '=') {
                advance();
                push(TokKind::Ge, loc);
            } else {
                push(TokKind::Gt, loc);
            }
            break;
          default:
            diags.error(loc, std::string("unexpected character '") + c +
                                 "'");
            advance();
            break;
        }
    }

    Token eof;
    eof.kind = TokKind::EndOfFile;
    eof.loc = {line, col};
    toks.push_back(std::move(eof));
    return toks;
}

} // namespace bsisa
