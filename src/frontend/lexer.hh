/**
 * @file
 * Lexer for BlockC, the C-subset source language of the toolchain.
 *
 * BlockC stands in for the C front end the paper used (the Intel
 * Reference C Compiler); see README.md for the language reference.
 */

#ifndef BSISA_FRONTEND_LEXER_HH
#define BSISA_FRONTEND_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/diag.hh"

namespace bsisa
{

enum class TokKind : unsigned char
{
    EndOfFile,
    Ident,
    IntLit,
    // Keywords
    KwFn, KwVar, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwBreak,
    KwContinue, KwHalt, KwLibrary, KwSwitch, KwCase, KwDefault,
    // Punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi, Colon,
    // Operators
    Assign,            // =
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    AmpAmp, PipePipe,
    Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
};

/** One token with its source location. */
struct Token
{
    TokKind kind = TokKind::EndOfFile;
    SrcLoc loc;
    std::string text;        //!< identifier spelling
    std::int64_t intValue = 0;  //!< IntLit value
};

/** Spelling of a token kind for diagnostics. */
const char *tokKindName(TokKind kind);

/**
 * Tokenize @p source.  Lexical errors are reported to @p diags and the
 * offending characters skipped; an EndOfFile token always terminates
 * the stream.
 */
std::vector<Token> lex(const std::string &source, DiagSink &diags);

} // namespace bsisa

#endif // BSISA_FRONTEND_LEXER_HH
