/**
 * @file
 * BlockC recursive-descent parser.
 *
 * Expression grammar (loosest to tightest):
 *   logor:  logand ('||' logand)*
 *   logand: bitor ('&&' bitor)*
 *   bitor:  bitxor ('|' bitxor)*
 *   bitxor: bitand ('^' bitand)*
 *   bitand: equality ('&' equality)*
 *   equality: relational (('=='|'!=') relational)*
 *   relational: shift (('<'|'<='|'>'|'>=') shift)*
 *   shift: additive (('<<'|'>>') additive)*
 *   additive: term (('+'|'-') term)*
 *   term: unary (('*'|'/'|'%') unary)*
 *   unary: ('-'|'!'|'~')* primary
 *   primary: intlit | ident | ident '(' args ')' | ident '[' expr ']'
 *          | '(' expr ')'
 */

#include "frontend/parser.hh"

namespace bsisa
{

namespace
{

class Parser
{
  public:
    Parser(const std::vector<Token> &tokens, DiagSink &diags)
        : toks(tokens), diags(diags)
    {
    }

    ParsedProgram
    parseProgram()
    {
        ParsedProgram prog;
        while (!at(TokKind::EndOfFile)) {
            if (at(TokKind::KwVar)) {
                parseGlobal(prog);
            } else if (at(TokKind::KwFn) || at(TokKind::KwLibrary)) {
                parseFunction(prog);
            } else {
                error("expected 'var', 'fn', or 'library' at top level");
                recoverTo({TokKind::KwVar, TokKind::KwFn,
                           TokKind::KwLibrary});
            }
        }
        return prog;
    }

  private:
    const std::vector<Token> &toks;
    DiagSink &diags;
    std::size_t pos = 0;

    const Token &cur() const { return toks[pos]; }
    bool at(TokKind k) const { return cur().kind == k; }

    const Token &
    take()
    {
        const Token &t = cur();
        if (!at(TokKind::EndOfFile))
            ++pos;
        return t;
    }

    void
    error(const std::string &msg)
    {
        diags.error(cur().loc, msg);
    }

    bool
    expect(TokKind k, const char *context)
    {
        if (at(k)) {
            take();
            return true;
        }
        error(std::string("expected ") + tokKindName(k) + " " + context +
              ", found " + tokKindName(cur().kind));
        return false;
    }

    void
    recoverTo(std::initializer_list<TokKind> kinds)
    {
        while (!at(TokKind::EndOfFile)) {
            for (TokKind k : kinds)
                if (at(k))
                    return;
            take();
        }
    }

    // ------------------------------------------------------ top level

    void
    parseGlobal(ParsedProgram &prog)
    {
        GlobalDecl g;
        g.loc = cur().loc;
        take();  // var
        if (!at(TokKind::Ident)) {
            error("expected global variable name");
            recoverTo({TokKind::Semi});
            take();
            return;
        }
        g.name = take().text;
        if (at(TokKind::LBracket)) {
            take();
            if (at(TokKind::IntLit)) {
                const std::int64_t n = take().intValue;
                if (n <= 0)
                    diags.error(g.loc, "array size must be positive");
                else
                    g.arraySize = static_cast<std::uint64_t>(n);
            } else {
                error("expected constant array size");
            }
            expect(TokKind::RBracket, "after array size");
        }
        if (at(TokKind::Assign)) {
            take();
            bool negative = false;
            if (at(TokKind::Minus)) {
                take();
                negative = true;
            }
            if (at(TokKind::IntLit)) {
                g.init = take().intValue;
                if (negative) {
                    // Negate in unsigned space: -INT64_MIN is UB, but
                    // the wrapped two's-complement value is the intent.
                    g.init = static_cast<std::int64_t>(
                        -static_cast<std::uint64_t>(g.init));
                }
            } else {
                error("global initializer must be an integer constant");
            }
        }
        expect(TokKind::Semi, "after global declaration");
        prog.globals.push_back(std::move(g));
    }

    void
    parseFunction(ParsedProgram &prog)
    {
        FuncDecl f;
        f.loc = cur().loc;
        if (at(TokKind::KwLibrary)) {
            take();
            f.isLibrary = true;
        }
        if (!expect(TokKind::KwFn, "to begin a function")) {
            recoverTo({TokKind::KwFn, TokKind::KwVar, TokKind::KwLibrary});
            return;
        }
        if (at(TokKind::Ident)) {
            f.name = take().text;
        } else {
            error("expected function name");
        }
        expect(TokKind::LParen, "after function name");
        if (!at(TokKind::RParen)) {
            for (;;) {
                if (at(TokKind::Ident)) {
                    f.params.push_back(take().text);
                } else {
                    error("expected parameter name");
                    break;
                }
                if (!at(TokKind::Comma))
                    break;
                take();
            }
        }
        expect(TokKind::RParen, "after parameters");
        f.body = parseBraceBlock();
        prog.functions.push_back(std::move(f));
    }

    // ------------------------------------------------------ statements

    std::vector<StmtPtr>
    parseBraceBlock()
    {
        std::vector<StmtPtr> stmts;
        if (!expect(TokKind::LBrace, "to begin a block"))
            return stmts;
        while (!at(TokKind::RBrace) && !at(TokKind::EndOfFile)) {
            if (StmtPtr s = parseStmt())
                stmts.push_back(std::move(s));
        }
        expect(TokKind::RBrace, "to end a block");
        return stmts;
    }

    StmtPtr
    makeStmt(StmtKind kind)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->loc = cur().loc;
        return s;
    }

    StmtPtr
    parseStmt()
    {
        switch (cur().kind) {
          case TokKind::KwVar:
            return parseVarDecl();
          case TokKind::KwIf:
            return parseIf();
          case TokKind::KwWhile:
            return parseWhile();
          case TokKind::KwFor:
            return parseFor();
          case TokKind::KwSwitch:
            return parseSwitch();
          case TokKind::KwReturn: {
            StmtPtr s = makeStmt(StmtKind::Return);
            take();
            if (!at(TokKind::Semi))
                s->value = parseExpr();
            expect(TokKind::Semi, "after return");
            return s;
          }
          case TokKind::KwBreak: {
            StmtPtr s = makeStmt(StmtKind::Break);
            take();
            expect(TokKind::Semi, "after break");
            return s;
          }
          case TokKind::KwContinue: {
            StmtPtr s = makeStmt(StmtKind::Continue);
            take();
            expect(TokKind::Semi, "after continue");
            return s;
          }
          case TokKind::KwHalt: {
            StmtPtr s = makeStmt(StmtKind::Halt);
            take();
            expect(TokKind::Semi, "after halt");
            return s;
          }
          case TokKind::LBrace: {
            StmtPtr s = makeStmt(StmtKind::BlockStmt);
            s->body = parseBraceBlock();
            return s;
          }
          default:
            return parseSimpleStmt(true);
        }
    }

    StmtPtr
    parseVarDecl()
    {
        StmtPtr s = makeStmt(StmtKind::VarDecl);
        take();  // var
        if (at(TokKind::Ident)) {
            s->name = take().text;
        } else {
            error("expected local variable name");
            recoverTo({TokKind::Semi, TokKind::RBrace});
        }
        if (at(TokKind::Assign)) {
            take();
            s->value = parseExpr();
        }
        expect(TokKind::Semi, "after variable declaration");
        return s;
    }

    /**
     * Assignment, index assignment, or expression statement.  With
     * @p requireSemi false this parses a 'for' clause (no semicolon).
     */
    StmtPtr
    parseSimpleStmt(bool requireSemi)
    {
        // Lookahead for 'ident =' and 'ident [ ... ] ='.
        if (at(TokKind::Ident)) {
            if (toks[pos + 1].kind == TokKind::Assign) {
                StmtPtr s = makeStmt(StmtKind::Assign);
                s->name = take().text;
                take();  // =
                s->value = parseExpr();
                if (requireSemi)
                    expect(TokKind::Semi, "after assignment");
                return s;
            }
            if (toks[pos + 1].kind == TokKind::LBracket) {
                // Could be an index assignment or an array read inside
                // an expression; scan for the matching ']' then '='.
                std::size_t scan = pos + 2;
                int depth = 1;
                while (scan < toks.size() && depth > 0) {
                    if (toks[scan].kind == TokKind::LBracket)
                        ++depth;
                    if (toks[scan].kind == TokKind::RBracket)
                        --depth;
                    ++scan;
                }
                if (scan < toks.size() &&
                    toks[scan].kind == TokKind::Assign) {
                    StmtPtr s = makeStmt(StmtKind::IndexAssign);
                    s->name = take().text;
                    take();  // [
                    s->index = parseExpr();
                    expect(TokKind::RBracket, "after index");
                    take();  // =
                    s->value = parseExpr();
                    if (requireSemi)
                        expect(TokKind::Semi, "after assignment");
                    return s;
                }
            }
        }
        StmtPtr s = makeStmt(StmtKind::ExprStmt);
        s->value = parseExpr();
        if (requireSemi)
            expect(TokKind::Semi, "after expression");
        return s;
    }

    StmtPtr
    parseIf()
    {
        StmtPtr s = makeStmt(StmtKind::If);
        take();  // if
        expect(TokKind::LParen, "after 'if'");
        s->value = parseExpr();
        expect(TokKind::RParen, "after condition");
        s->body = parseBraceBlock();
        if (at(TokKind::KwElse)) {
            take();
            if (at(TokKind::KwIf)) {
                s->elseBody.push_back(parseIf());
            } else {
                s->elseBody = parseBraceBlock();
            }
        }
        return s;
    }

    StmtPtr
    parseWhile()
    {
        StmtPtr s = makeStmt(StmtKind::While);
        take();  // while
        expect(TokKind::LParen, "after 'while'");
        s->value = parseExpr();
        expect(TokKind::RParen, "after condition");
        s->body = parseBraceBlock();
        return s;
    }

    StmtPtr
    parseFor()
    {
        StmtPtr s = makeStmt(StmtKind::For);
        take();  // for
        expect(TokKind::LParen, "after 'for'");
        if (!at(TokKind::Semi)) {
            s->forInit = at(TokKind::KwVar) ? parseVarDecl()
                                            : parseSimpleStmt(true);
        } else {
            take();  // ;
        }
        if (s->forInit && s->forInit->kind != StmtKind::VarDecl &&
            s->forInit->kind != StmtKind::Assign &&
            s->forInit->kind != StmtKind::IndexAssign &&
            s->forInit->kind != StmtKind::ExprStmt) {
            diags.error(s->loc, "bad 'for' initializer");
        }
        if (!at(TokKind::Semi))
            s->value = parseExpr();
        expect(TokKind::Semi, "after 'for' condition");
        if (!at(TokKind::RParen))
            s->forStep = parseSimpleStmt(false);
        expect(TokKind::RParen, "after 'for' clauses");
        s->body = parseBraceBlock();
        return s;
    }

    /**
     * switch (expr) { case 0: {..} case 1: {..} ... }
     *
     * Case labels must be 0..N-1 in order; the selector is reduced
     * modulo N at run time (this maps directly onto the ISA's indirect
     * jump through a jump table).
     */
    StmtPtr
    parseSwitch()
    {
        StmtPtr s = makeStmt(StmtKind::Switch);
        take();  // switch
        expect(TokKind::LParen, "after 'switch'");
        s->value = parseExpr();
        expect(TokKind::RParen, "after selector");
        expect(TokKind::LBrace, "to begin switch body");
        std::int64_t expected = 0;
        while (at(TokKind::KwCase)) {
            const SrcLoc case_loc = cur().loc;
            take();
            if (at(TokKind::IntLit)) {
                const std::int64_t label = take().intValue;
                if (label != expected) {
                    diags.error(case_loc,
                                "case labels must be dense from 0 (expected "
                                + std::to_string(expected) + ")");
                }
            } else {
                error("expected integer case label");
            }
            ++expected;
            expect(TokKind::Colon, "after case label");
            StmtPtr body = makeStmt(StmtKind::BlockStmt);
            body->body = parseBraceBlock();
            s->body.push_back(std::move(body));
        }
        if (s->body.empty())
            diags.error(s->loc, "switch must have at least one case");
        expect(TokKind::RBrace, "to end switch body");
        return s;
    }

    // ----------------------------------------------------- expressions

    ExprPtr
    makeExpr(ExprKind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->loc = cur().loc;
        return e;
    }

    ExprPtr
    binaryChain(ExprPtr (Parser::*sub)(),
                std::initializer_list<std::pair<TokKind, BinaryOp>> table)
    {
        ExprPtr lhs = (this->*sub)();
        for (;;) {
            bool matched = false;
            for (const auto &[tok, op] : table) {
                if (at(tok)) {
                    ExprPtr e = makeExpr(ExprKind::Binary);
                    take();
                    e->binaryOp = op;
                    e->lhs = std::move(lhs);
                    e->rhs = (this->*sub)();
                    lhs = std::move(e);
                    matched = true;
                    break;
                }
            }
            if (!matched)
                return lhs;
        }
    }

    ExprPtr
    parseExpr()
    {
        return parseLogOr();
    }

    ExprPtr
    parseLogOr()
    {
        return binaryChain(&Parser::parseLogAnd,
                           {{TokKind::PipePipe, BinaryOp::LogOr}});
    }

    ExprPtr
    parseLogAnd()
    {
        return binaryChain(&Parser::parseBitOr,
                           {{TokKind::AmpAmp, BinaryOp::LogAnd}});
    }

    ExprPtr
    parseBitOr()
    {
        return binaryChain(&Parser::parseBitXor,
                           {{TokKind::Pipe, BinaryOp::Or}});
    }

    ExprPtr
    parseBitXor()
    {
        return binaryChain(&Parser::parseBitAnd,
                           {{TokKind::Caret, BinaryOp::Xor}});
    }

    ExprPtr
    parseBitAnd()
    {
        return binaryChain(&Parser::parseEquality,
                           {{TokKind::Amp, BinaryOp::And}});
    }

    ExprPtr
    parseEquality()
    {
        return binaryChain(&Parser::parseRelational,
                           {{TokKind::Eq, BinaryOp::Eq},
                            {TokKind::Ne, BinaryOp::Ne}});
    }

    ExprPtr
    parseRelational()
    {
        return binaryChain(&Parser::parseShift,
                           {{TokKind::Lt, BinaryOp::Lt},
                            {TokKind::Le, BinaryOp::Le},
                            {TokKind::Gt, BinaryOp::Gt},
                            {TokKind::Ge, BinaryOp::Ge}});
    }

    ExprPtr
    parseShift()
    {
        return binaryChain(&Parser::parseAdditive,
                           {{TokKind::Shl, BinaryOp::Shl},
                            {TokKind::Shr, BinaryOp::Shr}});
    }

    ExprPtr
    parseAdditive()
    {
        return binaryChain(&Parser::parseTerm,
                           {{TokKind::Plus, BinaryOp::Add},
                            {TokKind::Minus, BinaryOp::Sub}});
    }

    ExprPtr
    parseTerm()
    {
        return binaryChain(&Parser::parseUnary,
                           {{TokKind::Star, BinaryOp::Mul},
                            {TokKind::Slash, BinaryOp::Div},
                            {TokKind::Percent, BinaryOp::Rem}});
    }

    ExprPtr
    parseUnary()
    {
        if (at(TokKind::Minus) || at(TokKind::Bang) || at(TokKind::Tilde)) {
            ExprPtr e = makeExpr(ExprKind::Unary);
            const TokKind k = take().kind;
            e->unaryOp = k == TokKind::Minus  ? UnaryOp::Neg
                         : k == TokKind::Bang ? UnaryOp::Not
                                              : UnaryOp::BitNot;
            e->lhs = parseUnary();
            return e;
        }
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        if (at(TokKind::IntLit)) {
            ExprPtr e = makeExpr(ExprKind::IntLit);
            e->intValue = take().intValue;
            return e;
        }
        if (at(TokKind::LParen)) {
            take();
            ExprPtr e = parseExpr();
            expect(TokKind::RParen, "after parenthesized expression");
            return e;
        }
        if (at(TokKind::Ident)) {
            if (toks[pos + 1].kind == TokKind::LParen) {
                ExprPtr e = makeExpr(ExprKind::CallExpr);
                e->name = take().text;
                take();  // (
                if (!at(TokKind::RParen)) {
                    for (;;) {
                        e->args.push_back(parseExpr());
                        if (!at(TokKind::Comma))
                            break;
                        take();
                    }
                }
                expect(TokKind::RParen, "after call arguments");
                return e;
            }
            if (toks[pos + 1].kind == TokKind::LBracket) {
                ExprPtr e = makeExpr(ExprKind::Index);
                e->name = take().text;
                take();  // [
                e->lhs = parseExpr();
                expect(TokKind::RBracket, "after index");
                return e;
            }
            ExprPtr e = makeExpr(ExprKind::VarRef);
            e->name = take().text;
            return e;
        }
        error(std::string("expected an expression, found ") +
              tokKindName(cur().kind));
        // Synthesize a zero so parsing can continue.
        ExprPtr e = makeExpr(ExprKind::IntLit);
        if (!at(TokKind::EndOfFile) && !at(TokKind::Semi) &&
            !at(TokKind::RBrace))
            take();
        return e;
    }
};

} // namespace

ParsedProgram
parse(const std::vector<Token> &tokens, DiagSink &diags)
{
    Parser p(tokens, diags);
    return p.parseProgram();
}

} // namespace bsisa
