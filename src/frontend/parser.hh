/**
 * @file
 * Recursive-descent parser for BlockC.
 */

#ifndef BSISA_FRONTEND_PARSER_HH
#define BSISA_FRONTEND_PARSER_HH

#include "frontend/ast.hh"
#include "frontend/lexer.hh"

namespace bsisa
{

/**
 * Parse a token stream into a ParsedProgram.  Syntax errors go to
 * @p diags; the parser recovers at statement/declaration boundaries so
 * multiple errors can be reported per run.
 */
ParsedProgram parse(const std::vector<Token> &tokens, DiagSink &diags);

} // namespace bsisa

#endif // BSISA_FRONTEND_PARSER_HH
