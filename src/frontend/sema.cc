/**
 * @file
 * BlockC semantic analysis.
 */

#include "frontend/sema.hh"

#include <set>
#include <vector>

#include "arch/reg.hh"

namespace bsisa
{

namespace
{

class Analyzer
{
  public:
    Analyzer(const ParsedProgram &prog, DiagSink &diags)
        : prog(prog), diags(diags)
    {
    }

    SemaResult
    run()
    {
        collectGlobals();
        collectFunctions();
        for (const auto &f : prog.functions)
            checkFunction(f);
        return std::move(result);
    }

  private:
    const ParsedProgram &prog;
    DiagSink &diags;
    SemaResult result;

    // Per-function state: a stack of lexical scopes, innermost last.
    std::vector<std::set<std::string>> scopes;
    bool inMain = false;
    unsigned loopDepth = 0;

    void pushScope() { scopes.emplace_back(); }
    void popScope() { scopes.pop_back(); }

    bool
    isDeclared(const std::string &name) const
    {
        for (const auto &scope : scopes)
            if (scope.count(name))
                return true;
        return false;
    }

    void
    collectGlobals()
    {
        for (const auto &g : prog.globals) {
            if (result.globals.count(g.name)) {
                diags.error(g.loc, "duplicate global '" + g.name + "'");
                continue;
            }
            GlobalSym sym;
            sym.isArray = g.arraySize > 0;
            sym.words = sym.isArray ? g.arraySize : 1;
            sym.addr = 0;  // assigned below, after dedup
            result.globals.emplace(g.name, sym);
        }
        // Assign addresses in declaration order (skipping duplicates).
        std::set<std::string> assigned;
        std::uint64_t words = 0;
        for (const auto &g : prog.globals) {
            if (!assigned.insert(g.name).second)
                continue;
            auto it = result.globals.find(g.name);
            it->second.addr = words * 8;  // offset; rebased by irgen
            words += it->second.words;
        }
        result.dataWords = words;
    }

    void
    collectFunctions()
    {
        for (unsigned i = 0; i < prog.functions.size(); ++i) {
            const FuncDecl &f = prog.functions[i];
            if (result.functions.count(f.name)) {
                diags.error(f.loc, "duplicate function '" + f.name + "'");
                continue;
            }
            if (result.globals.count(f.name)) {
                diags.error(f.loc, "'" + f.name +
                                       "' is both a global and a function");
            }
            if (f.params.size() > numArgRegs) {
                diags.error(f.loc, "too many parameters (ABI limit is " +
                                       std::to_string(numArgRegs) + ")");
            }
            FuncSym sym;
            sym.index = i;
            sym.arity = static_cast<unsigned>(f.params.size());
            sym.isLibrary = f.isLibrary;
            result.functions.emplace(f.name, sym);
        }
        const auto main_it = result.functions.find("main");
        if (main_it == result.functions.end()) {
            DiagSink &d = diags;
            d.error({1, 1}, "program has no 'main' function");
        } else {
            if (main_it->second.arity != 0)
                diags.error(prog.functions[main_it->second.index].loc,
                            "'main' must take no parameters");
            if (main_it->second.isLibrary)
                diags.error(prog.functions[main_it->second.index].loc,
                            "'main' cannot be a library function");
        }
    }

    void
    checkFunction(const FuncDecl &f)
    {
        scopes.clear();
        pushScope();
        inMain = f.name == "main";
        loopDepth = 0;
        for (const auto &p : f.params) {
            if (!scopes.back().insert(p).second)
                diags.error(f.loc, "duplicate parameter '" + p + "'");
            if (result.globals.count(p))
                diags.error(f.loc, "parameter '" + p +
                                       "' shadows a global");
        }
        checkStmts(f.body);
        popScope();
    }

    void
    checkStmts(const std::vector<StmtPtr> &stmts)
    {
        for (const auto &s : stmts)
            checkStmt(*s);
    }

    void
    checkStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::VarDecl:
            if (s.value)
                checkExpr(*s.value);
            // BlockC has lexical block scoping: a local is visible
            // from its declaration to the end of its enclosing block
            // and may shadow outer locals (but not globals).
            if (result.globals.count(s.name)) {
                diags.error(s.loc,
                            "local '" + s.name + "' shadows a global");
            } else if (!scopes.back().insert(s.name).second) {
                diags.error(s.loc, "duplicate local '" + s.name +
                                       "' in the same scope");
            }
            break;
          case StmtKind::Assign:
            checkExpr(*s.value);
            if (isDeclared(s.name))
                break;
            if (auto it = result.globals.find(s.name);
                it != result.globals.end()) {
                if (it->second.isArray)
                    diags.error(s.loc, "cannot assign to array '" +
                                           s.name + "' without an index");
                break;
            }
            diags.error(s.loc, "assignment to undeclared '" + s.name + "'");
            break;
          case StmtKind::IndexAssign: {
            checkExpr(*s.index);
            checkExpr(*s.value);
            const auto it = result.globals.find(s.name);
            if (it == result.globals.end())
                diags.error(s.loc, "unknown array '" + s.name + "'");
            else if (!it->second.isArray)
                diags.error(s.loc, "'" + s.name + "' is not an array");
            break;
          }
          case StmtKind::If:
            checkExpr(*s.value);
            pushScope();
            checkStmts(s.body);
            popScope();
            pushScope();
            checkStmts(s.elseBody);
            popScope();
            break;
          case StmtKind::While:
            checkExpr(*s.value);
            ++loopDepth;
            pushScope();
            checkStmts(s.body);
            popScope();
            --loopDepth;
            break;
          case StmtKind::For:
            pushScope();  // the init variable scopes over the loop
            if (s.forInit)
                checkStmt(*s.forInit);
            if (s.value)
                checkExpr(*s.value);
            if (s.forStep)
                checkStmt(*s.forStep);
            ++loopDepth;
            pushScope();
            checkStmts(s.body);
            popScope();
            --loopDepth;
            popScope();
            break;
          case StmtKind::Switch:
            checkExpr(*s.value);
            for (const auto &c : s.body) {
                pushScope();
                checkStmts(c->body);
                popScope();
            }
            break;
          case StmtKind::Return:
            if (s.value)
                checkExpr(*s.value);
            break;
          case StmtKind::Break:
          case StmtKind::Continue:
            if (loopDepth == 0)
                diags.error(s.loc, "break/continue outside a loop");
            break;
          case StmtKind::Halt:
            if (!inMain)
                diags.error(s.loc, "halt is only allowed in main");
            break;
          case StmtKind::ExprStmt:
            checkExpr(*s.value);
            break;
          case StmtKind::BlockStmt:
            pushScope();
            checkStmts(s.body);
            popScope();
            break;
        }
    }

    void
    checkExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            break;
          case ExprKind::VarRef:
            if (isDeclared(e.name))
                break;
            if (auto it = result.globals.find(e.name);
                it != result.globals.end()) {
                if (it->second.isArray)
                    diags.error(e.loc, "array '" + e.name +
                                           "' used without an index");
                break;
            }
            diags.error(e.loc, "undeclared identifier '" + e.name + "'");
            break;
          case ExprKind::Index: {
            checkExpr(*e.lhs);
            const auto it = result.globals.find(e.name);
            if (it == result.globals.end())
                diags.error(e.loc, "unknown array '" + e.name + "'");
            else if (!it->second.isArray)
                diags.error(e.loc, "'" + e.name + "' is not an array");
            break;
          }
          case ExprKind::Unary:
            checkExpr(*e.lhs);
            break;
          case ExprKind::Binary:
            checkExpr(*e.lhs);
            checkExpr(*e.rhs);
            break;
          case ExprKind::CallExpr: {
            for (const auto &a : e.args)
                checkExpr(*a);
            const auto it = result.functions.find(e.name);
            if (it == result.functions.end()) {
                diags.error(e.loc, "call to unknown function '" + e.name +
                                       "'");
            } else if (it->second.arity != e.args.size()) {
                diags.error(e.loc,
                            "'" + e.name + "' expects " +
                                std::to_string(it->second.arity) +
                                " arguments, got " +
                                std::to_string(e.args.size()));
            }
            break;
          }
        }
    }
};

} // namespace

SemaResult
analyze(const ParsedProgram &prog, DiagSink &diags)
{
    Analyzer a(prog, diags);
    return a.run();
}

} // namespace bsisa
