/**
 * @file
 * Semantic analysis for BlockC: name resolution and well-formedness
 * checks, producing the symbol tables IR generation consumes.
 */

#ifndef BSISA_FRONTEND_SEMA_HH
#define BSISA_FRONTEND_SEMA_HH

#include <cstdint>
#include <map>
#include <string>

#include "frontend/ast.hh"

namespace bsisa
{

/** A resolved global symbol. */
struct GlobalSym
{
    std::uint64_t addr = 0;   //!< byte address in the data segment
    std::uint64_t words = 1;  //!< 1 for scalars
    bool isArray = false;
};

/** A resolved function symbol. */
struct FuncSym
{
    unsigned index = 0;  //!< position in ParsedProgram::functions
    unsigned arity = 0;
    bool isLibrary = false;
};

/** Symbol tables produced by sema and consumed by irgen. */
struct SemaResult
{
    std::map<std::string, GlobalSym> globals;
    std::map<std::string, FuncSym> functions;
    std::uint64_t dataWords = 0;  //!< total data-segment size
};

/**
 * Analyze @p prog.  Errors go to @p diags; the result is meaningful
 * only if no errors were reported.  Checks:
 *   - no duplicate global / function / parameter / local names,
 *   - a zero-argument 'main' exists and is not a library function,
 *   - every name reference resolves, with array/scalar use matching
 *     the declaration, and calls matching the callee's arity,
 *   - break/continue appear only inside loops,
 *   - halt appears only in main,
 *   - call argument counts fit the ABI's register argument limit.
 */
SemaResult analyze(const ParsedProgram &prog, DiagSink &diags);

} // namespace bsisa

#endif // BSISA_FRONTEND_SEMA_HH
