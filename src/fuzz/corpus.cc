/**
 * @file
 * Corpus entry I/O (see corpus.hh for the file format).
 */

#include "fuzz/corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/module.hh"

namespace bsisa
{
namespace fuzz
{

Expectation
computeExpectation(const Module &module, Interp::Limits limits)
{
    Interp interp(module, limits);
    interp.run();
    Expectation e;
    e.halted = interp.halted();
    e.exit = interp.exitValue();
    e.dataChecksum = interp.dataChecksum();
    e.memChecksum = interp.memChecksum();
    e.dynOps = interp.dynOps();
    e.dynBlocks = interp.dynBlocks();
    return e;
}

std::string
formatExpectation(const Expectation &e)
{
    std::ostringstream os;
    os << "halted " << (e.halted ? 1 : 0) << "\n"
       << "exit " << e.exit << "\n"
       << "data_checksum " << e.dataChecksum << "\n"
       << "mem_checksum " << e.memChecksum << "\n"
       << "dyn_ops " << e.dynOps << "\n"
       << "dyn_blocks " << e.dynBlocks << "\n";
    return os.str();
}

bool
parseExpectation(const std::string &text, Expectation &out)
{
    std::istringstream is(text);
    std::string key;
    std::uint64_t value;
    unsigned seen = 0;
    while (is >> key >> value) {
        if (key == "halted")
            out.halted = value != 0;
        else if (key == "exit")
            out.exit = value;
        else if (key == "data_checksum")
            out.dataChecksum = value;
        else if (key == "mem_checksum")
            out.memChecksum = value;
        else if (key == "dyn_ops")
            out.dynOps = value;
        else if (key == "dyn_blocks")
            out.dynBlocks = value;
        else
            return false;
        ++seen;
    }
    return seen == 6;
}

bool
writeCorpusEntry(const std::string &dir, const std::string &name,
                 const std::string &source, const Expectation &e)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    std::ofstream src(fs::path(dir) / (name + ".blockc"),
                      std::ios::trunc);
    src << source;
    std::ofstream exp(fs::path(dir) / (name + ".expect"),
                      std::ios::trunc);
    exp << formatExpectation(e);
    return bool(src) && bool(exp);
}

bool
readCorpusEntry(const std::string &dir, const std::string &name,
                std::string &source, Expectation &out)
{
    namespace fs = std::filesystem;
    std::ifstream src(fs::path(dir) / (name + ".blockc"));
    if (!src)
        return false;
    std::ostringstream ss;
    ss << src.rdbuf();
    source = ss.str();

    std::ifstream exp(fs::path(dir) / (name + ".expect"));
    if (!exp)
        return false;
    std::ostringstream es;
    es << exp.rdbuf();
    return parseExpectation(es.str(), out);
}

std::vector<std::string>
listCorpus(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".blockc")
            names.push_back(entry.path().stem().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace fuzz
} // namespace bsisa
