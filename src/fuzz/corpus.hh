/**
 * @file
 * On-disk fuzz corpus entries.
 *
 * A corpus entry is a pair of files in one directory:
 *   <name>.blockc  the program source (self-contained; generated
 *                  programs seed their own global data), and
 *   <name>.expect  the expected architectural result of the
 *                  conventional interpreter, as "key value" lines.
 *
 * Checked-in entries (tests/data/fuzz_corpus/) are replayed through
 * every oracle by the test_fuzz_corpus suite; the harness writes
 * shrunk reproducers in the same format so a failing program can be
 * promoted into the corpus by copying two files.
 */

#ifndef BSISA_FUZZ_CORPUS_HH
#define BSISA_FUZZ_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/interp.hh"

namespace bsisa
{

struct Module;

namespace fuzz
{

/** Expected conventional-execution result of a corpus program. */
struct Expectation
{
    bool halted = false;
    std::uint64_t exit = 0;
    std::uint64_t dataChecksum = 0;
    std::uint64_t memChecksum = 0;
    std::uint64_t dynOps = 0;
    std::uint64_t dynBlocks = 0;
};

/** Run the conventional interpreter and record the expectation. */
Expectation computeExpectation(const Module &module,
                               Interp::Limits limits);

/** Serialize / parse the .expect sidecar format. */
std::string formatExpectation(const Expectation &e);
bool parseExpectation(const std::string &text, Expectation &out);

/** Write <dir>/<name>.blockc + .expect; false on I/O failure. */
bool writeCorpusEntry(const std::string &dir, const std::string &name,
                      const std::string &source, const Expectation &e);

/** Read one entry back; false when either file is missing/bad. */
bool readCorpusEntry(const std::string &dir, const std::string &name,
                     std::string &source, Expectation &out);

/** Entry names (sorted): basenames of the .blockc files in @p dir. */
std::vector<std::string> listCorpus(const std::string &dir);

} // namespace fuzz
} // namespace bsisa

#endif // BSISA_FUZZ_CORPUS_HH
