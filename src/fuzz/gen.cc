/**
 * @file
 * Random BlockC program generator implementation.
 */

#include "fuzz/gen.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "support/logging.hh"
#include "support/rng.hh"

namespace bsisa
{
namespace fuzz
{

namespace
{

// ------------------------------------------------------------ render

void renderExpr(std::ostringstream &os, const FuzzExpr &e);

void
renderArgs(std::ostringstream &os, const FuzzExpr &e)
{
    os << e.name << "(";
    for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i)
            os << ", ";
        renderExpr(os, e.kids[i]);
    }
    os << ")";
}

void
renderExpr(std::ostringstream &os, const FuzzExpr &e)
{
    switch (e.kind) {
      case FuzzExpr::Kind::IntLit:
        os << e.value;
        break;
      case FuzzExpr::Kind::VarRef:
        os << e.name;
        break;
      case FuzzExpr::Kind::Index:
        os << e.name << "[";
        renderExpr(os, e.kids[0]);
        os << "]";
        break;
      case FuzzExpr::Kind::Unary:
        os << e.op << "(";
        renderExpr(os, e.kids[0]);
        os << ")";
        break;
      case FuzzExpr::Kind::Binary:
        // Fully parenthesized: renders precedence-independent.
        os << "(";
        renderExpr(os, e.kids[0]);
        os << " " << e.op << " ";
        renderExpr(os, e.kids[1]);
        os << ")";
        break;
      case FuzzExpr::Kind::Call:
        renderArgs(os, e);
        break;
    }
}

void
renderStmts(std::ostringstream &os, const std::vector<FuzzStmt> &stmts,
            int indent)
{
    const std::string pad(indent * 2, ' ');
    for (const FuzzStmt &s : stmts) {
        os << pad;
        switch (s.kind) {
          case FuzzStmt::Kind::VarDecl:
            os << "var " << s.name << " = ";
            renderExpr(os, s.value);
            os << ";\n";
            break;
          case FuzzStmt::Kind::Assign:
            os << s.name << " = ";
            renderExpr(os, s.value);
            os << ";\n";
            break;
          case FuzzStmt::Kind::IndexAssign:
            os << s.name << "[";
            renderExpr(os, s.index);
            os << "] = ";
            renderExpr(os, s.value);
            os << ";\n";
            break;
          case FuzzStmt::Kind::If:
            os << "if (";
            renderExpr(os, s.value);
            os << ") {\n";
            renderStmts(os, s.body, indent + 1);
            os << pad << "}";
            if (!s.elseBody.empty()) {
                os << " else {\n";
                renderStmts(os, s.elseBody, indent + 1);
                os << pad << "}";
            }
            os << "\n";
            break;
          case FuzzStmt::Kind::For:
            os << "for (var " << s.name << " = 0; " << s.name << " < "
               << s.trips << "; " << s.name << " = " << s.name
               << " + 1) {\n";
            renderStmts(os, s.body, indent + 1);
            os << pad << "}\n";
            break;
          case FuzzStmt::Kind::Switch:
            os << "switch (";
            renderExpr(os, s.value);
            os << ") {\n";
            for (std::size_t c = 0; c < s.cases.size(); ++c) {
                os << pad << "case " << c << ": {\n";
                renderStmts(os, s.cases[c], indent + 1);
                os << pad << "}\n";
            }
            os << pad << "}\n";
            break;
          case FuzzStmt::Kind::Return:
            os << "return ";
            renderExpr(os, s.value);
            os << ";\n";
            break;
          case FuzzStmt::Kind::Break:
            os << "break;\n";
            break;
          case FuzzStmt::Kind::Continue:
            os << "continue;\n";
            break;
        }
    }
}

// --------------------------------------------------------- generator

/** Expression/statement builder with a scope stack. */
class Gen
{
  public:
    Gen(Rng &rng, const GenConfig &cfg) : rng(rng), cfg(cfg) {}

    FuzzProgram
    program(std::uint64_t seed)
    {
        FuzzProgram prog;
        prog.seed = seed;
        prog.arrays.emplace_back("d", cfg.arrayWords);
        prog.arrays.emplace_back("out", cfg.arrayWords);
        arrays = {"d", "out"};

        for (unsigned i = 0; i < cfg.numLibFuncs; ++i)
            prog.funcs.push_back(libFunc(i));
        for (unsigned i = 0; i < cfg.numFuncs; ++i)
            prog.funcs.push_back(helper(prog, i));
        prog.funcs.push_back(mainFunc(prog));
        return prog;
    }

  private:
    Rng &rng;
    const GenConfig &cfg;
    std::vector<std::string> arrays;
    /** Variables in scope, innermost last.  Loop counters are tagged
     *  so pattern conditions can find one. */
    struct ScopeVar
    {
        std::string name;
        bool isCounter;
    };
    std::vector<ScopeVar> scope;
    unsigned nameCounter = 0;
    /** Worst-case dynamic op cost of each finished function. */
    std::unordered_map<std::string, std::uint64_t> funcCost;
    /** Product of the enclosing loops' trip counts at the current
     *  generation point (times main's loop for main items). */
    std::uint64_t loopFactor = 1;

    std::uint64_t
    exprCost(const FuzzExpr &e) const
    {
        std::uint64_t c = 1;
        for (const FuzzExpr &kid : e.kids)
            c += exprCost(kid);
        if (e.kind == FuzzExpr::Kind::Call) {
            const auto it = funcCost.find(e.name);
            c += it != funcCost.end() ? it->second : 1;
        }
        return c;
    }

    /** Worst-case dynamic op cost of a statement list (all branch
     *  sides taken, every loop running its full trip count). */
    std::uint64_t
    stmtsCost(const std::vector<FuzzStmt> &stmts) const
    {
        std::uint64_t c = 0;
        for (const FuzzStmt &s : stmts) {
            switch (s.kind) {
              case FuzzStmt::Kind::VarDecl:
              case FuzzStmt::Kind::Assign:
              case FuzzStmt::Kind::Return:
                c += 1 + exprCost(s.value);
                break;
              case FuzzStmt::Kind::IndexAssign:
                c += 1 + exprCost(s.value) + exprCost(s.index);
                break;
              case FuzzStmt::Kind::If:
                c += 1 + exprCost(s.value) + stmtsCost(s.body) +
                     stmtsCost(s.elseBody);
                break;
              case FuzzStmt::Kind::For:
                c += 2 + std::uint64_t(s.trips) *
                             (stmtsCost(s.body) + 3);
                break;
              case FuzzStmt::Kind::Switch:
                c += 1 + exprCost(s.value);
                for (const auto &body : s.cases)
                    c += stmtsCost(body);
                break;
              case FuzzStmt::Kind::Break:
              case FuzzStmt::Kind::Continue:
                c += 1;
                break;
            }
        }
        return c;
    }

    std::string
    freshName(const char *stem)
    {
        return std::string(stem) + std::to_string(nameCounter++);
    }

    const std::string &
    randomArray()
    {
        return arrays[rng.nextBelow(arrays.size())];
    }

    /** A variable currently in scope (there is always at least one). */
    const std::string &
    randomVar()
    {
        BSISA_ASSERT(!scope.empty());
        return scope[rng.nextBelow(scope.size())].name;
    }

    /** An assignment target: any scoped variable EXCEPT the loop
     *  counters, which must stay monotonic for termination. */
    const std::string &
    randomAssignable()
    {
        std::vector<const std::string *> ok;
        for (const ScopeVar &v : scope)
            if (!v.isCounter)
                ok.push_back(&v.name);
        BSISA_ASSERT(!ok.empty());
        return *ok[rng.nextBelow(ok.size())];
    }

    /** The innermost loop counter, or empty when outside any loop. */
    std::string
    innerCounter() const
    {
        for (auto it = scope.rbegin(); it != scope.rend(); ++it)
            if (it->isCounter)
                return it->name;
        return {};
    }

    static FuzzExpr
    lit(std::int64_t v)
    {
        FuzzExpr e;
        e.kind = FuzzExpr::Kind::IntLit;
        e.value = v;
        return e;
    }

    static FuzzExpr
    var(const std::string &name)
    {
        FuzzExpr e;
        e.kind = FuzzExpr::Kind::VarRef;
        e.name = name;
        return e;
    }

    static FuzzExpr
    bin(const char *op, FuzzExpr lhs, FuzzExpr rhs)
    {
        FuzzExpr e;
        e.kind = FuzzExpr::Kind::Binary;
        e.op = op;
        e.kids.push_back(std::move(lhs));
        e.kids.push_back(std::move(rhs));
        return e;
    }

    /** name[(expr) & (arrayWords - 1)] — arrayWords is a power of 2. */
    FuzzExpr
    indexed(const std::string &array, FuzzExpr idx)
    {
        FuzzExpr e;
        e.kind = FuzzExpr::Kind::Index;
        e.name = array;
        e.kids.push_back(
            bin("&", std::move(idx), lit(cfg.arrayWords - 1)));
        return e;
    }

    /** A small operand: literal, scoped variable, or array load. */
    FuzzExpr
    operand(unsigned depth)
    {
        const double roll = rng.nextReal();
        if (roll < 0.30 || depth >= 3)
            return lit(rng.nextRange(-64, 255));
        if (roll < 0.75)
            return var(randomVar());
        return indexed(randomArray(), operand(depth + 1));
    }

    /** A compute expression of bounded depth over the scope. */
    FuzzExpr
    compute(unsigned depth)
    {
        static const char *const kOps[] = {
            "+", "+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%",
        };
        if (depth >= 2 || rng.chance(0.35))
            return operand(depth);
        const char *op = kOps[rng.nextBelow(std::size(kOps))];
        FuzzExpr e = bin(op, compute(depth + 1), compute(depth + 1));
        // Keep shift counts architecturally interesting but small so
        // shifted values stay nonzero often enough to steer branches.
        if (e.op == "<<" || e.op == ">>")
            e.kids[1] = bin("&", std::move(e.kids[1]), lit(7));
        return e;
    }

    /**
     * A branch condition in one of the paper's three flavours:
     * pattern (loop-counter arithmetic), biased (skewed data
     * threshold), or random (data parity).
     */
    FuzzExpr
    condition()
    {
        const double roll = rng.nextReal();
        const std::string counter = innerCounter();
        if (roll < cfg.fracPattern && !counter.empty()) {
            // Pattern: (i & m) < k over the innermost loop counter.
            const std::int64_t m = 1 + std::int64_t(rng.nextBelow(7));
            const std::int64_t k = 1 + std::int64_t(
                rng.nextBelow(std::uint64_t(m) + 1));
            return bin("<", bin("&", var(counter), lit(m)), lit(k));
        }
        if (roll < cfg.fracPattern + cfg.fracRandom) {
            // Random: parity of mixed array data.
            return bin("&", indexed("d", compute(1)), lit(1));
        }
        // Biased: array bytes are uniform in [0, 255], so a threshold
        // at 256 * p is taken with probability ~p.
        const std::int64_t thresh =
            std::int64_t(256.0 * cfg.biasedP);
        return bin("<", indexed("d", compute(1)), lit(thresh));
    }

    /** Straight-line compute burst writing scoped vars and arrays. */
    void
    burst(std::vector<FuzzStmt> &out)
    {
        const unsigned n = rng.sizeDraw(cfg.burstMeanOps, 8);
        for (unsigned i = 0; i < n; ++i) {
            FuzzStmt s;
            if (rng.chance(0.25)) {
                s.kind = FuzzStmt::Kind::IndexAssign;
                s.name = randomArray();
                s.index = bin("&", compute(1),
                              lit(cfg.arrayWords - 1));
                s.value = compute(0);
            } else {
                s.kind = FuzzStmt::Kind::Assign;
                s.name = randomAssignable();
                s.value = compute(0);
            }
            out.push_back(std::move(s));
        }
    }

    /** A call to an earlier function (DAG: no recursion).  Callees
     *  are gated on cost x loop factor so the program's worst-case
     *  dynamic op count stays bounded. */
    bool
    call(const FuzzProgram &prog, std::vector<FuzzStmt> &out)
    {
        const std::uint64_t budget =
            cfg.callBudgetOps / std::max<std::uint64_t>(loopFactor, 1);
        std::vector<const FuzzFunc *> eligible;
        for (const FuzzFunc &f : prog.funcs) {
            const auto it = funcCost.find(f.name);
            if (it != funcCost.end() && it->second <= budget)
                eligible.push_back(&f);
        }
        if (eligible.empty())
            return false;
        const FuzzFunc &callee =
            *eligible[rng.nextBelow(eligible.size())];
        FuzzExpr e;
        e.kind = FuzzExpr::Kind::Call;
        e.name = callee.name;
        for (std::size_t i = 0; i < callee.params.size(); ++i)
            e.kids.push_back(operand(1));
        FuzzStmt s;
        s.kind = FuzzStmt::Kind::Assign;
        s.name = randomAssignable();
        s.value = std::move(e);
        out.push_back(std::move(s));
        return true;
    }

    /** One statement group (burst / if / loop / switch / call). */
    void
    item(const FuzzProgram &prog, std::vector<FuzzStmt> &out,
         unsigned depth)
    {
        const double roll = rng.nextReal();
        double acc = cfg.branchDensity;
        if (roll < acc && depth < cfg.maxDepth) {
            FuzzStmt s;
            s.kind = FuzzStmt::Kind::If;
            s.value = condition();
            block(prog, s.body, depth + 1, 2);
            if (rng.chance(0.7))
                block(prog, s.elseBody, depth + 1, 2);
            out.push_back(std::move(s));
            return;
        }
        acc += cfg.loopDensity;
        if (roll < acc && depth < cfg.maxDepth) {
            FuzzStmt s;
            s.kind = FuzzStmt::Kind::For;
            s.name = freshName("k");
            s.trips = 1 + std::int64_t(rng.nextBelow(cfg.maxLoopTrip));
            scope.push_back({s.name, true});
            loopFactor *= std::uint64_t(s.trips);
            block(prog, s.body, depth + 1, 2);
            loopFactor /= std::uint64_t(s.trips);
            if (rng.chance(0.15)) {
                FuzzStmt brk;
                brk.kind = FuzzStmt::Kind::If;
                brk.value = condition();
                FuzzStmt leave;
                leave.kind = rng.chance(0.5)
                                 ? FuzzStmt::Kind::Break
                                 : FuzzStmt::Kind::Continue;
                brk.body.push_back(std::move(leave));
                s.body.push_back(std::move(brk));
            }
            scope.pop_back();
            out.push_back(std::move(s));
            return;
        }
        acc += cfg.switchDensity;
        if (roll < acc && depth < cfg.maxDepth) {
            FuzzStmt s;
            s.kind = FuzzStmt::Kind::Switch;
            s.value = compute(1);
            const unsigned ncases = 2 + unsigned(rng.nextBelow(3));
            s.cases.resize(ncases);
            for (auto &body : s.cases)
                block(prog, body, depth + 1, 1);
            out.push_back(std::move(s));
            return;
        }
        acc += cfg.callDensity;
        if (roll < acc && call(prog, out))
            return;
        burst(out);
    }

    /** A block of up to @p maxItems statement groups. */
    void
    block(const FuzzProgram &prog, std::vector<FuzzStmt> &out,
          unsigned depth, unsigned maxItems)
    {
        const unsigned n = 1 + unsigned(rng.nextBelow(maxItems));
        for (unsigned i = 0; i < n; ++i)
            item(prog, out, depth);
        if (out.empty())
            burst(out);
    }

    /** Library helper: small, branchy, parameter-only (condition 5
     *  forbids enlarging these, exercising that path). */
    FuzzFunc
    libFunc(unsigned idx)
    {
        FuzzFunc f;
        f.isLibrary = true;
        f.name = "lib" + std::to_string(idx);
        f.params = {"a", "b"};
        scope = {{"a", false}, {"b", false}};

        FuzzStmt cond;
        cond.kind = FuzzStmt::Kind::If;
        cond.value = bin("&", var("a"), lit(1));
        FuzzStmt r0;
        r0.kind = FuzzStmt::Kind::Return;
        r0.value = compute(1);
        cond.body.push_back(std::move(r0));
        f.body.push_back(std::move(cond));

        FuzzStmt r1;
        r1.kind = FuzzStmt::Kind::Return;
        r1.value = compute(1);
        f.body.push_back(std::move(r1));
        scope.clear();
        funcCost[f.name] = stmtsCost(f.body) + 2;
        return f;
    }

    FuzzFunc
    helper(const FuzzProgram &prog, unsigned idx)
    {
        FuzzFunc f;
        f.name = "fn" + std::to_string(idx);
        f.params = {"x", "i"};
        scope = {{"x", false}, {"i", false}};

        FuzzStmt t;
        t.kind = FuzzStmt::Kind::VarDecl;
        t.name = freshName("t");
        t.value = compute(1);
        scope.push_back({t.name, false});
        f.body.push_back(std::move(t));

        for (unsigned i = 0; i < cfg.itemsPerFunc; ++i)
            item(prog, f.body, 0);

        FuzzStmt ret;
        ret.kind = FuzzStmt::Kind::Return;
        ret.value = compute(0);
        f.body.push_back(std::move(ret));
        scope.clear();
        funcCost[f.name] = stmtsCost(f.body) + 2;
        return f;
    }

    FuzzFunc
    mainFunc(const FuzzProgram &prog)
    {
        FuzzFunc f;
        f.name = "main";
        scope.clear();

        // Deterministic data seeding: d[i] = mix(i) & 255, out[i] = 0.
        // Knuth's multiplicative constant spreads low bits into the
        // byte we keep, giving roughly uniform branch data.
        {
            FuzzStmt seedLoop;
            seedLoop.kind = FuzzStmt::Kind::For;
            seedLoop.name = "si";
            seedLoop.trips = cfg.arrayWords;
            FuzzStmt fill;
            fill.kind = FuzzStmt::Kind::IndexAssign;
            fill.name = "d";
            fill.index = var("si");
            fill.value =
                bin("&",
                    bin(">>",
                        bin("*", var("si"),
                            lit(std::int64_t(2654435761))),
                        lit(11)),
                    lit(255));
            seedLoop.body.push_back(std::move(fill));
            f.body.push_back(std::move(seedLoop));
        }

        FuzzStmt acc;
        acc.kind = FuzzStmt::Kind::VarDecl;
        acc.name = "acc";
        acc.value = lit(0);
        f.body.push_back(std::move(acc));
        scope.push_back({"acc", false});

        FuzzStmt loop;
        loop.kind = FuzzStmt::Kind::For;
        loop.name = "i";
        loop.trips = cfg.mainTrips;
        scope.push_back({"i", true});
        loopFactor = cfg.mainTrips;
        for (unsigned i = 0; i < cfg.itemsPerFunc; ++i)
            item(prog, loop.body, 0);
        loopFactor = 1;
        // Keep acc bounded and data-dependent.
        FuzzStmt fold;
        fold.kind = FuzzStmt::Kind::Assign;
        fold.name = "acc";
        fold.value = bin("&", bin("+", var("acc"), compute(1)),
                         lit(0xffffff));
        loop.body.push_back(std::move(fold));
        scope.pop_back();
        f.body.push_back(std::move(loop));

        FuzzStmt ret;
        ret.kind = FuzzStmt::Kind::Return;
        ret.value = var("acc");
        f.body.push_back(std::move(ret));
        scope.clear();
        return f;
    }
};

} // namespace

std::string
FuzzProgram::render() const
{
    std::ostringstream os;
    os << "// bsisa-fuzz seed=" << seed << "\n";
    for (const auto &[name, words] : arrays)
        os << "var " << name << "[" << words << "];\n";
    for (const FuzzFunc &f : funcs) {
        if (f.isLibrary)
            os << "library ";
        os << "fn " << f.name << "(";
        for (std::size_t i = 0; i < f.params.size(); ++i) {
            if (i)
                os << ", ";
            os << f.params[i];
        }
        os << ") {\n";
        renderStmts(os, f.body, 1);
        os << "}\n";
    }
    return os.str();
}

unsigned
FuzzProgram::renderedLines() const
{
    const std::string src = render();
    unsigned lines = 0;
    for (char c : src)
        if (c == '\n')
            ++lines;
    return lines;
}

GenConfig
genProfile(const std::string &name)
{
    GenConfig cfg;
    if (name.empty() || name == "default")
        return cfg;
    if (name == "call-dense") {
        cfg.numFuncs = 5;
        cfg.numLibFuncs = 2;
        cfg.callDensity = 0.45;
        cfg.branchDensity = 0.20;
        return cfg;
    }
    if (name == "fault-heavy") {
        // Unpredictable branches everywhere: merged traps fault
        // constantly under a random variant policy.
        cfg.branchDensity = 0.55;
        cfg.fracPattern = 0.05;
        cfg.fracRandom = 0.70;
        cfg.itemsPerFunc = 6;
        return cfg;
    }
    if (name == "deep-loops") {
        cfg.maxDepth = 4;
        cfg.loopDensity = 0.50;
        cfg.branchDensity = 0.15;
        cfg.maxLoopTrip = 4;
        cfg.mainTrips = 6;
        return cfg;
    }
    if (name == "wide-blocks") {
        // Long straight bursts push basic blocks across the 16-op
        // issue width, exercising splitOversizedBlocks boundaries.
        cfg.burstMeanOps = 14.0;
        cfg.branchDensity = 0.12;
        cfg.loopDensity = 0.08;
        cfg.switchDensity = 0.0;
        cfg.itemsPerFunc = 4;
        return cfg;
    }
    fatal("unknown fuzz profile '", name, "'");
}

const std::vector<std::string> &
genProfileNames()
{
    static const std::vector<std::string> names = {
        "default", "call-dense", "fault-heavy", "deep-loops",
        "wide-blocks",
    };
    return names;
}

FuzzProgram
generateProgram(std::uint64_t seed, const GenConfig &config)
{
    Rng rng(seed ^ 0xf022bbcd1234fee1ULL);
    Gen gen(rng, config);
    return gen.program(seed);
}

} // namespace fuzz
} // namespace bsisa
