/**
 * @file
 * Seeded random BlockC program generator for differential fuzzing.
 *
 * Programs are built as a small structural AST (FuzzProgram) rather
 * than as text so the shrinker (fuzz/shrink.hh) can delete functions
 * and statements and shrink constants while keeping the program
 * well-formed; render() serializes to BlockC source accepted by the
 * frontend.
 *
 * Every generated program is valid and terminating by construction:
 *   - names are unique and declared before use (a scope stack tracks
 *     the variables visible at each generation point);
 *   - all loops are counted 'for' loops with constant trip counts
 *     (break/continue only shorten them);
 *   - the call graph is a DAG: a function may only call functions
 *     generated before it, so there is no recursion;
 *   - global arrays are seeded by a deterministic mixing loop at the
 *     top of main, so a .blockc file replays with no data sidecar.
 *
 * Branch conditions come in the three flavours of workloads/synth.hh:
 * pattern (loop-counter derived, predictable), biased (data compare
 * against a skewed threshold), and random (data parity).
 */

#ifndef BSISA_FUZZ_GEN_HH
#define BSISA_FUZZ_GEN_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bsisa
{

class Rng;

namespace fuzz
{

/** Expression tree; rendered to BlockC concrete syntax. */
struct FuzzExpr
{
    enum class Kind : unsigned char
    {
        IntLit,  //!< value
        VarRef,  //!< name
        Index,   //!< name[kids[0]]
        Unary,   //!< op kids[0]
        Binary,  //!< kids[0] op kids[1]
        Call,    //!< name(kids...)
    };

    Kind kind = Kind::IntLit;
    std::int64_t value = 0;
    std::string name;
    /** Operator token ("+", "<<", "&&", "!", ...). */
    std::string op;
    std::vector<FuzzExpr> kids;
};

/** Statement tree; rendered to BlockC concrete syntax. */
struct FuzzStmt
{
    enum class Kind : unsigned char
    {
        VarDecl,      //!< var name = value;
        Assign,       //!< name = value;
        IndexAssign,  //!< name[index] = value;
        If,           //!< if (value) { body } else { elseBody }
        For,          //!< for (var name = 0; name < trips; ...) body
        Switch,       //!< switch (value) { case i: { cases[i] } }
        Return,       //!< return value;
        Break,
        Continue,
    };

    Kind kind = Kind::Assign;
    std::string name;
    FuzzExpr value;
    FuzzExpr index;
    std::int64_t trips = 0;  //!< For: constant trip count
    std::vector<FuzzStmt> body;
    std::vector<FuzzStmt> elseBody;
    std::vector<std::vector<FuzzStmt>> cases;
};

struct FuzzFunc
{
    std::string name;
    bool isLibrary = false;
    std::vector<std::string> params;
    std::vector<FuzzStmt> body;
};

/** One generated program, structurally editable and renderable. */
struct FuzzProgram
{
    /** Global arrays (name, word count); seeded in main's preamble. */
    std::vector<std::pair<std::string, unsigned>> arrays;
    /** main is always the last function; callees precede callers. */
    std::vector<FuzzFunc> funcs;
    /** Seed the generator used (stamped into a header comment). */
    std::uint64_t seed = 0;

    /** Serialize to BlockC source text. */
    std::string render() const;

    /** Source line count of the rendered form (reproducer metric). */
    unsigned renderedLines() const;
};

/** Shape knobs; defaults give a broad general-purpose mix. */
struct GenConfig
{
    unsigned numFuncs = 3;        //!< helpers in addition to main
    unsigned numLibFuncs = 1;     //!< library (never-enlarged) helpers
    unsigned itemsPerFunc = 5;    //!< statement groups per body
    unsigned maxDepth = 2;        //!< nesting depth of if/for/switch
    unsigned maxLoopTrip = 6;     //!< trip counts in [1, maxLoopTrip]
    unsigned arrayWords = 32;     //!< words per global array
    unsigned mainTrips = 12;      //!< main loop trip count
    double branchDensity = 0.30;  //!< P(item is an if/else)
    double loopDensity = 0.15;    //!< P(item is a counted loop)
    double callDensity = 0.20;    //!< P(item is a call)
    double switchDensity = 0.08;  //!< P(item is a switch)
    double burstMeanOps = 3.0;    //!< compute ops per straight burst
    /** Branch-flavour mix (rest is biased). */
    double fracPattern = 0.35;
    double fracRandom = 0.25;
    /** Taken-probability of biased conditions. */
    double biasedP = 0.85;
    /** Call-site budget: a callee is eligible only when its
     *  worst-case dynamic cost times the call site's enclosing loop
     *  trip product stays under this, which bounds the whole
     *  program's worst-case op count (the call DAG would otherwise
     *  blow up exponentially). */
    std::uint64_t callBudgetOps = 50000;
};

/** Named shape presets covering the oracle classes. */
GenConfig genProfile(const std::string &name);

/** The preset names accepted by genProfile (CLI help, corpus tags). */
const std::vector<std::string> &genProfileNames();

/** Generate a program; deterministic function of (seed, config). */
FuzzProgram generateProgram(std::uint64_t seed, const GenConfig &config);

} // namespace fuzz
} // namespace bsisa

#endif // BSISA_FUZZ_GEN_HH
