/**
 * @file
 * Fuzzing run loop implementation.
 */

#include "fuzz/harness.hh"

#include <ostream>

#include "frontend/compile.hh"
#include "fuzz/corpus.hh"
#include "fuzz/gen.hh"
#include "fuzz/shrink.hh"

namespace bsisa
{
namespace fuzz
{

namespace
{

/** Expectation sidecar for a reproducer (zeroed when the program no
 *  longer compiles — the failure itself is then the compile error). */
Expectation
reproExpectation(const std::string &source, const OracleOptions &oracle)
{
    const CompileResult compiled = compileBlockC(source);
    if (!compiled.ok)
        return {};
    return computeExpectation(compiled.module, oracle.limits);
}

} // namespace

FuzzReport
fuzzRun(const FuzzOptions &options, std::ostream &log)
{
    const std::vector<std::string> profiles =
        options.profile.empty()
            ? genProfileNames()
            : std::vector<std::string>{options.profile};

    FuzzReport report;
    for (unsigned i = 0; i < options.runs; ++i) {
        const std::uint64_t seed = options.seed + i;
        const std::string &profileName = profiles[i % profiles.size()];
        const FuzzProgram program =
            generateProgram(seed, genProfile(profileName));

        const OracleResult r =
            checkProgram(program.render(), options.mask, options.oracle);
        ++report.runsExecuted;
        if ((i + 1) % 50 == 0) {
            log << "fuzz: " << (i + 1) << "/" << options.runs
                << " runs, " << report.failures.size()
                << " failures\n";
        }
        if (r.ok)
            continue;

        FuzzFailure f;
        f.seed = seed;
        f.profile = profileName;
        f.oracle = r.oracle;
        f.detail = r.detail;
        f.linesBefore = program.renderedLines();
        f.linesAfter = f.linesBefore;
        log << "fuzz: seed " << seed << " profile " << profileName
            << " FAILED [" << r.oracle << "] " << r.detail << "\n";

        FuzzProgram minimal = program;
        if (options.minimize) {
            // Shrink against the failing oracle only, with the
            // expensive thread fan-out check disabled.  A candidate
            // must fail the SAME oracle: collapsing a semantic
            // divergence into a compile error or a non-halting
            // program would not be a reproducer.
            const unsigned failMask = parseOracleMask(r.oracle);
            OracleOptions shrinkOracle = options.oracle;
            shrinkOracle.checkParallel = false;
            const FailPredicate pred =
                [&](const FuzzProgram &candidate) {
                    const OracleResult res = checkProgram(
                        candidate.render(), failMask, shrinkOracle);
                    return !res.ok && res.oracle == r.oracle;
                };
            ShrinkStats stats;
            minimal = shrink(program, pred, options.shrinkEvals,
                             &stats);
            f.linesAfter = minimal.renderedLines();
            log << "fuzz: shrunk seed " << seed << " from "
                << stats.linesBefore << " to " << stats.linesAfter
                << " lines (" << stats.candidatesTried
                << " candidates)\n";
        }

        if (!options.reproDir.empty()) {
            const std::string source = minimal.render();
            const std::string name =
                "repro-seed" + std::to_string(seed);
            if (writeCorpusEntry(
                    options.reproDir, name, source,
                    reproExpectation(source, options.oracle))) {
                f.reproName = name;
                log << "fuzz: reproducer written to "
                    << options.reproDir << "/" << name << ".blockc\n";
            } else {
                log << "fuzz: FAILED to write reproducer to "
                    << options.reproDir << "\n";
            }
        }

        report.failures.push_back(f);
        if (options.maxFailures &&
            report.failures.size() >= options.maxFailures)
            break;
    }

    log << "fuzz: " << report.runsExecuted << " runs, "
        << report.failures.size() << " failures\n";
    return report;
}

} // namespace fuzz
} // namespace bsisa
