/**
 * @file
 * The fuzzing run loop: generate, check, shrink, report.
 *
 * One fuzzRun() executes a seed range through the selected oracles,
 * rotating the generator shape profiles so every oracle class (call
 * density, fault pressure, loop depth, block-size boundary) appears
 * in every few runs.  On a failure the program is shrunk against the
 * failing oracle and written to the reproducer directory as a corpus
 * entry (corpus.hh), ready to be replayed or promoted into
 * tests/data/fuzz_corpus/.
 */

#ifndef BSISA_FUZZ_HARNESS_HH
#define BSISA_FUZZ_HARNESS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/oracle.hh"

namespace bsisa
{
namespace fuzz
{

struct FuzzOptions
{
    std::uint64_t seed = 1;      //!< first seed of the range
    unsigned runs = 100;         //!< seeds checked: [seed, seed+runs)
    unsigned mask = oracleAll;   //!< oracles to run
    /** Shrink failing programs before writing the reproducer. */
    bool minimize = false;
    unsigned shrinkEvals = 600;  //!< shrink predicate budget
    /** Restrict to one generator profile; empty rotates them all. */
    std::string profile;
    /** Where reproducers are written; empty disables writing. */
    std::string reproDir;
    /** Stop after this many failures (0: never stop early). */
    unsigned maxFailures = 1;
    OracleOptions oracle;
};

/** One failure found by a fuzz run. */
struct FuzzFailure
{
    std::uint64_t seed = 0;
    std::string profile;
    std::string oracle;  //!< failing oracle name
    std::string detail;
    unsigned linesBefore = 0;  //!< rendered size pre-shrink
    unsigned linesAfter = 0;   //!< == linesBefore when not minimized
    std::string reproName;     //!< corpus entry name, if written
};

struct FuzzReport
{
    unsigned runsExecuted = 0;
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/** Execute a fuzzing run; progress and failures go to @p log. */
FuzzReport fuzzRun(const FuzzOptions &options, std::ostream &log);

} // namespace fuzz
} // namespace bsisa

#endif // BSISA_FUZZ_HARNESS_HH
