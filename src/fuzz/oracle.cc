/**
 * @file
 * Differential oracle implementation.
 *
 * Everything here is comparison plumbing: run the same program down
 * two execution paths that the codebase promises are equivalent, and
 * turn any disagreement into a precise OracleResult::detail string
 * (the shrinker's predicate re-runs the oracle, so failure text is
 * also the reproducer's label).
 */

#include "fuzz/oracle.hh"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "codegen/layout.hh"
#include "core/enlarge.hh"
#include "exp/runner.hh"
#include "frontend/compile.hh"
#include "cache/trace_cache.hh"
#include "sim/bsa_interp.hh"
#include "sim/bsa_source.hh"
#include "sim/conv_source.hh"
#include "sim/ooo/ooo.hh"
#include "sim/trace.hh"
#include "sim/trace_store.hh"
#include "support/parallel.hh"

namespace bsisa
{
namespace fuzz
{

unsigned
parseOracleMask(const std::string &spec)
{
    unsigned mask = 0;
    std::stringstream ss(spec);
    std::string part;
    while (std::getline(ss, part, ',')) {
        if (part == "interp")
            mask |= oracleInterp;
        else if (part == "enlarge")
            mask |= oracleEnlarge;
        else if (part == "models")
            mask |= oracleModels;
        else if (part == "lockstep")
            mask |= oracleLockstep;
        else if (part == "ooo")
            mask |= oracleOoo;
        else if (part == "all")
            mask |= oracleAll;
        else
            return 0;
    }
    return mask;
}

InjectedBug
parseInjectedBug(const std::string &name)
{
    if (name == "skip-fault-suppression")
        return InjectedBug::SkipFaultSuppression;
    if (name == "flip-fault-polarity")
        return InjectedBug::FlipFaultPolarity;
    return InjectedBug::None;
}

namespace
{

/** Architectural reference state from one conventional execution. */
struct Golden
{
    bool halted = false;
    std::uint64_t exit = 0;
    std::uint64_t memChecksum = 0;
    std::uint64_t dataChecksum = 0;
    std::uint64_t dynOps = 0;
    std::uint64_t dynBlocks = 0;
};

Golden
runGolden(const Module &module, Interp::Limits limits)
{
    Interp interp(module, limits);
    interp.run();
    return {interp.halted(),    interp.exitValue(),
            interp.memChecksum(), interp.dataChecksum(),
            interp.dynOps(),    interp.dynBlocks()};
}

OracleResult
fail(const char *oracle, const std::string &detail)
{
    OracleResult r;
    r.ok = false;
    r.oracle = oracle;
    r.detail = detail;
    return r;
}

/** Mutate an enlarged module the way a buggy compiler would. */
void
applyInjectedBug(BsaModule &bsa, InjectedBug bug)
{
    if (bug == InjectedBug::None)
        return;
    for (AtomicBlock &blk : bsa.blocks) {
        for (Operation &op : blk.ops) {
            if (op.op != Opcode::Fault)
                continue;
            if (bug == InjectedBug::SkipFaultSuppression)
                op = makeNop();
            else if (bug == InjectedBug::FlipFaultPolarity)
                op.imm = op.imm ? 0 : 1;
        }
        if (bug == InjectedBug::SkipFaultSuppression)
            blk.numFaults = 0;
    }
}

// --------------------------------------------------- interp oracle

OracleResult
checkInterp(const Module &module, const ExecTrace &trace,
            const Golden &golden, const OracleOptions &options)
{
    // Live interpretation must produce the captured stream event for
    // event, including the committed-store address stream.
    Interp live(module, options.limits);
    BlockEvent ev;
    std::size_t i = 0;
    while (live.step(ev)) {
        if (i >= trace.eventCount) {
            return fail("interp",
                        "live stream longer than capture (event " +
                            std::to_string(i) + ")");
        }
        const TraceEvent &te = trace.events[i];
        const bool same =
            te.func == ev.func && te.block == ev.block &&
            te.exit == ev.exit && te.taken == ev.taken &&
            te.nextFunc == ev.nextFunc && te.nextBlock == ev.nextBlock &&
            te.memCount == ev.memCount;
        if (!same) {
            return fail("interp", "live/capture event mismatch at " +
                                      std::to_string(i));
        }
        for (std::uint32_t a = 0; a < ev.memCount; ++a) {
            if (trace.memAddrs[te.memBegin + a] != ev.memAddrs[a]) {
                return fail("interp",
                            "mem address stream mismatch at event " +
                                std::to_string(i));
            }
        }
        ++i;
    }
    if (i != trace.eventCount) {
        return fail("interp", "live stream shorter than capture: " +
                                  std::to_string(i) + " vs " +
                                  std::to_string(trace.eventCount));
    }
    if (live.dynOps() != trace.dynOps ||
        live.dynBlocks() != trace.dynBlocks) {
        return fail("interp", "dynamic op/block count drifted between "
                              "runs of the same program");
    }
    if (live.exitValue() != golden.exit ||
        live.memChecksum() != golden.memChecksum) {
        return fail("interp", "interpreter is nondeterministic: "
                              "exit/checksum differ across runs");
    }

    // Trace-store round trip: encode, reopen via mmap, bit-compare.
    TraceKey key;
    key.moduleDigest = moduleDigest(module);
    key.maxOps = options.limits.maxOps;
    key.maxBlocks = options.limits.maxBlocks;

    namespace fs = std::filesystem;
    fs::path dir = options.scratchDir.empty()
                       ? fs::temp_directory_path() /
                             ("bsisa-fuzz-" + std::to_string(getpid()))
                       : fs::path(options.scratchDir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path path = dir / key.fileName();
    {
        const std::vector<std::uint8_t> bytes = encodeTrace(trace, key);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            return fail("interp", "could not write trace round-trip "
                                  "scratch file " + path.string());
        }
    }
    ExecTrace rt;
    const TraceOpenStatus status = openTraceFile(path.string(), key, rt);
    OracleResult result;
    if (status != TraceOpenStatus::Ok) {
        result = fail("interp",
                      std::string("trace round trip rejected: ") +
                          traceOpenStatusName(status));
    } else if (rt.eventCount != trace.eventCount ||
               rt.memAddrCount != trace.memAddrCount ||
               rt.dynOps != trace.dynOps ||
               rt.dynBlocks != trace.dynBlocks) {
        result = fail("interp", "trace round trip changed counts");
    } else {
        for (std::size_t e = 0; e < trace.eventCount && result.ok; ++e) {
            const TraceEvent &a = trace.events[e];
            const TraceEvent &b = rt.events[e];
            if (a.func != b.func || a.block != b.block ||
                a.nextFunc != b.nextFunc || a.nextBlock != b.nextBlock ||
                a.memBegin != b.memBegin || a.memCount != b.memCount ||
                a.exit != b.exit || a.taken != b.taken) {
                result = fail("interp",
                              "trace round trip changed event " +
                                  std::to_string(e));
            }
        }
        for (std::size_t a = 0; a < trace.memAddrCount && result.ok; ++a)
            if (trace.memAddrs[a] != rt.memAddrs[a])
                result = fail("interp", "trace round trip changed the "
                                        "address pool");
    }
    fs::remove(path, ec);
    return result;
}

// -------------------------------------------------- enlarge oracle

/** One point of the termination-condition matrix. */
struct EnlargeCase
{
    const char *name;
    EnlargeConfig cfg;
    bool useProfile = false;
    /** Re-split the module at this op count first (condition-1
     *  precondition when cfg.maxOps is below the compile-time split). */
    unsigned splitOps = 0;
};

std::vector<EnlargeCase>
enlargeMatrix()
{
    std::vector<EnlargeCase> cases;
    EnlargeConfig cfg;
    cases.push_back({"default", cfg, false, 0});

    cfg = {};
    cfg.maxFaults = 1;
    cases.push_back({"maxFaults=1", cfg, false, 0});

    cfg = {};
    cfg.maxFaults = 4;
    cases.push_back({"maxFaults=4", cfg, false, 0});

    cfg = {};
    cfg.maxOps = 8;
    cases.push_back({"maxOps=8", cfg, false, 8});

    cfg = {};
    cfg.mergeAcrossBackEdges = true;
    cfg.enlargeLibraryFunctions = true;
    cases.push_back({"backedges+lib", cfg, false, 0});

    cfg = {};
    cfg.enabled = false;
    cases.push_back({"disabled", cfg, false, 0});

    cfg = {};
    cfg.minMergeBias = 0.8;
    cases.push_back({"minMergeBias=0.8", cfg, true, 0});
    return cases;
}

/** All-or-nothing: an op budget expiring inside an enlarged block
 *  must leave exactly the state of stopping at the same block
 *  boundary by block count. */
OracleResult
checkAllOrNothing(const BsaModule &bsa, std::uint64_t policySeed,
                  bool randomPolicy)
{
    auto makePolicy = [&] {
        return randomPolicy ? randomVariantPolicy(policySeed)
                            : firstVariantPolicy();
    };

    BsaInterp full(bsa, makePolicy());
    full.run();
    const std::uint64_t total =
        full.committedOps() + full.suppressedOps();
    if (total < 4)
        return {};

    for (const std::uint64_t budget : {total / 3, (2 * total) / 3}) {
        if (budget == 0)
            continue;
        BsaInterp::Limits la;
        la.maxOps = budget;
        BsaInterp a(bsa, makePolicy(), la);
        a.run();
        if (!a.halted() &&
            a.committedOps() + a.suppressedOps() < budget) {
            return fail("enlarge",
                        "op budget " + std::to_string(budget) +
                            " stopped early without halting");
        }

        BsaInterp::Limits lb;
        lb.maxBlocks = a.committedBlocks() + a.suppressedBlocks();
        BsaInterp b(bsa, makePolicy(), lb);
        b.run();
        const bool same =
            a.committedOps() == b.committedOps() &&
            a.suppressedOps() == b.suppressedOps() &&
            a.committedBlocks() == b.committedBlocks() &&
            a.suppressedBlocks() == b.suppressedBlocks() &&
            a.halted() == b.halted() &&
            a.exitValue() == b.exitValue() &&
            a.memChecksum() == b.memChecksum();
        if (!same) {
            return fail("enlarge",
                        "op budget " + std::to_string(budget) +
                            " is not all-or-nothing: state differs "
                            "from the equivalent block-count stop");
        }
    }
    return {};
}

OracleResult
checkEnlarge(const Module &module, const ExecTrace &trace,
             const Golden &golden, const OracleOptions &options)
{
    const ProfileData profile = profileFromTrace(trace);

    for (const EnlargeCase &c : enlargeMatrix()) {
        // Condition 1 requires every source block to fit; re-split a
        // copy when the case shrinks the block size below the
        // compile-time split width.
        Module resplit;
        const Module *m = &module;
        if (c.splitOps) {
            resplit = module;
            splitOversizedBlocks(resplit, c.splitOps);
            m = &resplit;
        }
        const Golden want = c.splitOps ? runGolden(*m, options.limits)
                                       : golden;
        if (c.splitOps && (want.exit != golden.exit ||
                           want.memChecksum != golden.memChecksum ||
                           want.halted != golden.halted)) {
            return fail("enlarge", std::string(c.name) +
                                       ": splitOversizedBlocks changed "
                                       "architectural state");
        }

        BsaModule bsa = enlargeModule(
            *m, c.cfg, c.useProfile ? &profile : nullptr);
        applyInjectedBug(bsa, options.inject);

        // Suppressed wrong-variant work inflates the BSA op count, so
        // give the budget headroom over the conventional run.
        BsaInterp::Limits lim;
        lim.maxOps = options.limits.maxOps * 8;

        for (unsigned p = 0; p <= options.adversarialSeeds; ++p) {
            const bool random = p > 0;
            const std::uint64_t seed =
                0x5eedc0de00000000ULL + 7919 * p;
            VariantPolicy policy = random ? randomVariantPolicy(seed)
                                          : firstVariantPolicy();
            BsaInterp interp(bsa, std::move(policy), lim);
            interp.run();

            std::ostringstream tag;
            tag << c.name << "/"
                << (random ? "random" : "first")
                << (random ? std::to_string(p) : "");
            if (!interp.halted()) {
                return fail("enlarge",
                            tag.str() + ": BSA execution did not halt "
                            "(conventional run did)");
            }
            if (interp.exitValue() != want.exit) {
                return fail("enlarge",
                            tag.str() + ": exit value diverged: " +
                                std::to_string(interp.exitValue()) +
                                " vs " + std::to_string(want.exit));
            }
            if (interp.memChecksum() != want.memChecksum) {
                return fail("enlarge",
                            tag.str() + ": memory checksum diverged");
            }
            if (interp.committedOps() > want.dynOps) {
                return fail("enlarge",
                            tag.str() + ": committed more ops than "
                            "the conventional execution");
            }
            if (!c.cfg.enabled &&
                (interp.committedOps() != want.dynOps ||
                 interp.committedBlocks() != want.dynBlocks)) {
                return fail("enlarge",
                            tag.str() + ": degenerate enlargement "
                            "changed the dynamic op/block counts");
            }
        }

        if (std::string(c.name) == "default") {
            OracleResult r = checkAllOrNothing(bsa, 0, false);
            if (r.ok)
                r = checkAllOrNothing(bsa, 0x0bad5eed, true);
            if (!r.ok)
                return r;
        }
    }
    return {};
}

// --------------------------------------------------- models oracle

bool
sameSim(const SimResult &a, const SimResult &b)
{
    return a.cycles == b.cycles && a.retiredOps == b.retiredOps &&
           a.retiredUnits == b.retiredUnits &&
           a.wrongPathOps == b.wrongPathOps &&
           a.predictions == b.predictions &&
           a.mispredicts == b.mispredicts &&
           a.trapMispredicts == b.trapMispredicts &&
           a.faultMispredicts == b.faultMispredicts &&
           a.cascadeHops == b.cascadeHops &&
           a.stallRedirect == b.stallRedirect &&
           a.stallWindow == b.stallWindow &&
           a.stallIcache == b.stallIcache &&
           a.peakWindowUnits == b.peakWindowUnits &&
           a.peakWindowOps == b.peakWindowOps &&
           a.icache.accesses == b.icache.accesses &&
           a.icache.misses == b.icache.misses &&
           a.dcache.accesses == b.dcache.accesses &&
           a.dcache.misses == b.dcache.misses;
}

/** The invariants every SimResult must satisfy, any machine. */
OracleResult
checkSimInvariants(const SimResult &r, const MachineConfig &machine,
                   const char *what)
{
    auto bad = [&](const std::string &msg) {
        return fail("models", std::string(what) + ": " + msg);
    };
    if (r.retiredUnits == 0 || r.cycles < r.retiredUnits)
        return bad("fewer cycles than retired units");
    if (r.retiredOps < r.retiredUnits)
        return bad("retired fewer ops than units");
    if (r.mispredicts > r.predictions)
        return bad("more mispredicts than predictions");
    if (r.mispredicts != r.trapMispredicts + r.faultMispredicts)
        return bad("mispredict breakdown does not sum");
    if (r.peakWindowUnits > machine.windowUnits)
        return bad("window held more than windowUnits blocks");
    if (r.peakWindowOps > machine.windowOps)
        return bad("window held more than windowOps operations");
    if (r.stallRedirect + r.stallWindow + r.stallIcache > r.cycles)
        return bad("stall cycles exceed total cycles");
    if (r.icache.misses > r.icache.accesses ||
        r.dcache.misses > r.dcache.accesses)
        return bad("cache misses exceed accesses");
    return {};
}

OracleResult
checkModels(const Module &module, const ExecTrace &trace,
            const OracleOptions &options)
{
    const MachineConfig machine;

    // Conventional: replay == live, deterministic, exact accounting.
    const SimResult conv = runConventional(module, machine, trace);
    OracleResult r = checkSimInvariants(conv, machine, "conv");
    if (!r.ok)
        return r;
    if (conv.retiredOps != trace.dynOps)
        return fail("models", "conv retired " +
                                  std::to_string(conv.retiredOps) +
                                  " ops, functional execution ran " +
                                  std::to_string(trace.dynOps));
    if (conv.retiredUnits != trace.eventCount)
        return fail("models", "conv retired-unit count diverged from "
                              "the committed block stream");
    if (!sameSim(conv, runConventional(module, machine, trace)))
        return fail("models", "conv rerun on the same trace differs");
    if (!sameSim(conv, runConventional(module, machine,
                                       options.limits)))
        return fail("models", "conv live interpretation differs from "
                              "trace replay");

    // Block-structured machine on the default enlargement.
    const BsaModule bsa = enlargeModule(module, EnlargeConfig{});
    const SimResult bs = runBlockStructured(bsa, machine, trace);
    r = checkSimInvariants(bs, machine, "bsa");
    if (!r.ok)
        return r;
    if (bs.retiredOps > trace.dynOps ||
        bs.retiredOps + trace.eventCount < trace.dynOps)
        return fail("models", "bsa retired-op count outside the "
                              "merge-deletion envelope");
    if (bs.retiredUnits > trace.eventCount)
        return fail("models", "bsa retired more units than the "
                              "conventional block stream");
    if (!sameSim(bs, runBlockStructured(bsa, machine, trace)))
        return fail("models", "bsa rerun on the same trace differs");

    // Trace-cache machine.
    const TraceCacheConfig tcConfig;
    const TraceCacheResult tc =
        runTraceCache(module, machine, tcConfig, trace);
    r = checkSimInvariants(tc.sim, machine, "tcache");
    if (!r.ok)
        return r;
    if (tc.sim.retiredOps != trace.dynOps)
        return fail("models", "tcache retired-op count diverged from "
                              "the functional execution");

    if (!options.checkParallel)
        return {};

    // A config grid fanned across BSISA_JOBS workers must be
    // byte-identical to the serial run (each point owns its state).
    std::vector<MachineConfig> grid;
    for (const unsigned width : {8u, 16u}) {
        for (const bool perfect : {false, true}) {
            MachineConfig m;
            m.issueWidth = width;
            m.perfectPrediction = perfect;
            grid.push_back(m);
            m.icache.sizeBytes = 16 * 1024;
            grid.push_back(m);
        }
    }
    auto runGrid = [&](const char *jobs) {
        setenv("BSISA_JOBS", jobs, 1);
        std::vector<SimResult> out(grid.size() * 2);
        parallelFor(grid.size() * 2, [&](std::size_t i) {
            const MachineConfig &m = grid[i / 2];
            out[i] = (i & 1)
                         ? runBlockStructured(bsa, m, trace)
                         : runConventional(module, m, trace);
        });
        return out;
    };
    const char *oldJobs = getenv("BSISA_JOBS");
    const std::string saved = oldJobs ? oldJobs : "";
    const std::vector<SimResult> serial = runGrid("1");
    const std::vector<SimResult> fanned = runGrid("3");
    if (oldJobs)
        setenv("BSISA_JOBS", saved.c_str(), 1);
    else
        unsetenv("BSISA_JOBS");
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (!sameSim(serial[i], fanned[i])) {
            return fail("models",
                        "grid point " + std::to_string(i) +
                            " differs between BSISA_JOBS=1 and =3");
        }
    }
    return {};
}

// ------------------------------------------------- lockstep oracle

/** Mixed-knob config grid: every lane disagrees with its neighbors
 *  on at least one of issue width, window geometry, predictor, cache
 *  size, or perfect prediction, so lockstep lanes genuinely diverge
 *  (redirects resolve at different cycles, windows fill at different
 *  rates) and any cross-lane state bleed shows up as a result diff. */
std::vector<MachineConfig>
lockstepGrid()
{
    std::vector<MachineConfig> grid;
    MachineConfig m;
    grid.push_back(m);
    m = MachineConfig{};
    m.issueWidth = 4;
    grid.push_back(m);
    m = MachineConfig{};
    m.perfectPrediction = true;
    grid.push_back(m);
    m = MachineConfig{};
    m.icache.sizeBytes = 4 * 1024;
    m.predictor.historyBits = 4;
    m.predictor.phtBits = 10;
    grid.push_back(m);
    m = MachineConfig{};
    m.windowUnits = 4;
    m.windowOps = 64;
    m.redirectPenalty = 5;
    grid.push_back(m);
    m = MachineConfig{};
    m.predictor.scheme = PredictorScheme::PAs;
    m.dcache.sizeBytes = 1024;
    m.frontendDepth = 6;
    grid.push_back(m);
    return grid;
}

OracleResult
checkLockstep(const Module &module, const ExecTrace &trace,
              const OracleOptions &options)
{
    (void)options;
    const std::vector<MachineConfig> grid = lockstepGrid();

    // Conventional machine: full batch and a partial (odd-size)
    // batch against independent replays.
    std::vector<SimResult> seq(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        seq[i] = runConventional(module, grid[i], trace);
    const std::vector<SimResult> batched =
        runConventionalBatch(module, grid, trace);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!sameSim(seq[i], batched[i])) {
            return fail("lockstep",
                        "conv lane " + std::to_string(i) +
                            " differs from independent replay");
        }
    }
    const std::vector<MachineConfig> odd(grid.begin(),
                                         grid.begin() + 3);
    const std::vector<SimResult> oddBatch =
        runConventionalBatch(module, odd, trace);
    for (std::size_t i = 0; i < odd.size(); ++i) {
        if (!sameSim(seq[i], oddBatch[i])) {
            return fail("lockstep",
                        "conv partial-batch lane " +
                            std::to_string(i) + " differs");
        }
    }

    // Block-structured machine on the default enlargement.
    const BsaModule bsa = enlargeModule(module, EnlargeConfig{});
    std::vector<SimResult> bseq(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        bseq[i] = runBlockStructured(bsa, grid[i], trace);
    const std::vector<SimResult> bbatch =
        runBlockStructuredBatch(bsa, grid, trace);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!sameSim(bseq[i], bbatch[i])) {
            return fail("lockstep",
                        "bsa lane " + std::to_string(i) +
                            " differs from independent replay");
        }
    }
    // Reversed lane order: the walk must not depend on lane layout.
    std::vector<MachineConfig> rev(grid.rbegin(), grid.rend());
    const std::vector<SimResult> rbatch =
        runBlockStructuredBatch(bsa, rev, trace);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!sameSim(bseq[grid.size() - 1 - i], rbatch[i])) {
            return fail("lockstep",
                        "bsa reversed lane " + std::to_string(i) +
                            " differs from independent replay");
        }
    }

    // Fetch-fusion differential: the decoupled drivers (default,
    // computed above) against the interleaved per-group reference
    // structure — the cross-group batch fusion and the recorded
    // outcome streams must not change any lane's results.
    ::setenv("BSISA_FORCE_PER_GROUP", "1", 1);
    const std::vector<SimResult> convPerGroup =
        runConventionalBatch(module, grid, trace);
    const std::vector<SimResult> bsaPerGroup =
        runBlockStructuredBatch(bsa, grid, trace);
    ::unsetenv("BSISA_FORCE_PER_GROUP");
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!sameSim(batched[i], convPerGroup[i])) {
            return fail("fetchfusion",
                        "conv lane " + std::to_string(i) +
                            " differs between fused and per-group");
        }
        if (!sameSim(bbatch[i], bsaPerGroup[i])) {
            return fail("fetchfusion",
                        "bsa lane " + std::to_string(i) +
                            " differs between fused and per-group");
        }
    }

    // Trace-cache machine: two cache geometries per machine config.
    std::vector<MachineConfig> tcMachines{grid[0], grid[0], grid[3]};
    TraceCacheConfig small;
    small.entries = 16;
    std::vector<TraceCacheConfig> tcConfigs{TraceCacheConfig{}, small,
                                            TraceCacheConfig{}};
    std::vector<TraceCacheResult> tcSeq(tcMachines.size());
    for (std::size_t i = 0; i < tcMachines.size(); ++i)
        tcSeq[i] =
            runTraceCache(module, tcMachines[i], tcConfigs[i], trace);
    const std::vector<TraceCacheResult> tcBatch =
        runTraceCacheBatch(module, tcMachines, tcConfigs, trace);
    for (std::size_t i = 0; i < tcMachines.size(); ++i) {
        if (!sameSim(tcSeq[i].sim, tcBatch[i].sim) ||
            tcSeq[i].traceHits != tcBatch[i].traceHits ||
            tcSeq[i].traceMisses != tcBatch[i].traceMisses) {
            return fail("lockstep",
                        "tcache lane " + std::to_string(i) +
                            " differs from independent replay");
        }
    }
    return {};
}

// ------------------------------------------------------ ooo oracle

/** Structural invariants of one simulateOoO() run.  The OoO backend
 *  reports ROB occupancy through peakWindow*, so the abstract window
 *  bounds do not apply; the bounds here are the configured ROB/LSQ
 *  capacities plus the telemetry violation counters, which a correct
 *  backend never increments (ROB within capacity, in-order commit, no
 *  load forwards from a younger store). */
OracleResult
checkOooInvariants(const SimResult &r, const OooTelemetry &tel,
                   const MachineConfig &machine, const char *what)
{
    auto bad = [&](const std::string &msg) {
        return fail("ooo", std::string(what) + ": " + msg);
    };
    if (r.retiredUnits == 0 || r.cycles < r.retiredUnits)
        return bad("fewer cycles than retired units");
    if (r.retiredOps < r.retiredUnits)
        return bad("retired fewer ops than units");
    if (r.mispredicts > r.predictions)
        return bad("more mispredicts than predictions");
    if (r.mispredicts != r.trapMispredicts + r.faultMispredicts)
        return bad("mispredict breakdown does not sum");
    if (r.peakWindowOps > machine.ooo.robOps ||
        tel.peakRobOps > machine.ooo.robOps)
        return bad("ROB held more ops than robOps");
    if (tel.peakLsq > machine.ooo.lsqEntries)
        return bad("LSQ held more entries than lsqEntries");
    if (tel.robOverflows)
        return bad("ROB overflow recorded");
    if (tel.commitOrderViolations)
        return bad("out-of-order commit recorded");
    if (tel.youngerForwards)
        return bad("load forwarded from a younger store");
    if (tel.checkpointsRestored > tel.checkpointsTaken)
        return bad("more checkpoints restored than taken");
    if (r.stallRedirect + r.stallWindow + r.stallIcache > r.cycles)
        return bad("stall cycles exceed total cycles");
    if (r.icache.misses > r.icache.accesses ||
        r.dcache.misses > r.dcache.accesses)
        return bad("cache misses exceed accesses");
    return {};
}

OracleResult
checkOoo(const Module &module, const ExecTrace &trace,
         const OracleOptions &options)
{
    (void)options;
    const MachineConfig abstractM;
    MachineConfig oooM;
    oooM.timingModel = TimingModel::Ooo;

    // Conventional machine: exact committed-op accounting, the
    // span-retention digest, and determinism.
    const ConvLayout layout(module);
    OooTelemetry tel;
    SimResult conv;
    {
        ConvFetchSource source(module, layout, oooM, trace);
        conv = simulateOoO(source, oooM, &tel);
    }
    OracleResult r = checkOooInvariants(conv, tel, oooM, "conv");
    if (!r.ok)
        return r;
    if (conv.retiredOps != trace.dynOps)
        return fail("ooo", "conv committed " +
                               std::to_string(conv.retiredOps) +
                               " ops, functional execution ran " +
                               std::to_string(trace.dynOps));
    if (conv.retiredUnits != trace.eventCount)
        return fail("ooo", "conv committed-unit count diverged from "
                           "the committed block stream");
    {
        // Commit order == emit order under in-order commit, so the
        // digest folded at ROB drain (from spans retained across many
        // next() calls) must equal the emit-time fold on a fresh walk.
        ConvFetchSource ref(module, layout, oooM, trace);
        if (tel.commitDigest != fetchStreamDigest(ref))
            return fail("ooo", "conv commit-order digest differs from "
                               "the emit-time fetch-stream digest");
    }
    {
        OooTelemetry again;
        ConvFetchSource source(module, layout, oooM, trace);
        if (!sameSim(conv, simulateOoO(source, oooM, &again)) ||
            again.commitDigest != tel.commitDigest)
            return fail("ooo", "conv rerun on the same trace differs");
    }
    // The runner must dispatch timing_model=ooo to this backend.
    if (!sameSim(conv, runConventional(module, oooM, trace)))
        return fail("ooo", "runner dispatch differs from direct "
                           "simulateOoO");
    // Same committed stream as the abstract model; only the cycle
    // accounting may (and on real streams does) differ.
    const SimResult abstractConv =
        runConventional(module, abstractM, trace);
    if (abstractConv.retiredOps != conv.retiredOps ||
        abstractConv.retiredUnits != conv.retiredUnits)
        return fail("ooo", "abstract and ooo committed streams differ");

    // Block-structured machine on the default enlargement.
    const BsaModule bsa = enlargeModule(module, EnlargeConfig{});
    OooTelemetry btel;
    SimResult bs;
    {
        BsaFetchSource source(bsa, oooM, trace);
        bs = simulateOoO(source, oooM, &btel);
    }
    r = checkOooInvariants(bs, btel, oooM, "bsa");
    if (!r.ok)
        return r;
    if (bs.retiredOps > trace.dynOps ||
        bs.retiredOps + trace.eventCount < trace.dynOps)
        return fail("ooo", "bsa committed-op count outside the "
                           "merge-deletion envelope");
    {
        BsaFetchSource ref(bsa, oooM, trace);
        if (btel.commitDigest != fetchStreamDigest(ref))
            return fail("ooo", "bsa commit-order digest differs from "
                               "the emit-time fetch-stream digest");
    }
    if (!sameSim(bs, runBlockStructured(bsa, oooM, trace)))
        return fail("ooo", "bsa rerun on the same trace differs");

    // Trace-cache machine through the runner dispatch.
    const TraceCacheConfig tcConfig;
    const TraceCacheResult tc =
        runTraceCache(module, oooM, tcConfig, trace);
    if (tc.sim.retiredOps != trace.dynOps)
        return fail("ooo", "tcache committed-op count diverged from "
                           "the functional execution");
    if (!sameSim(tc.sim,
                 runTraceCache(module, oooM, tcConfig, trace).sim))
        return fail("ooo", "tcache rerun on the same trace differs");

    // A mixed abstract/ooo grid through the batch entry points must
    // equal the per-config path (the lane partition in exp/runner.cc
    // peels OoO lanes out of the lockstep walk and scatters results
    // back by lane index).
    std::vector<MachineConfig> mixed{abstractM, oooM, abstractM, oooM};
    mixed[2].issueWidth = 8;
    mixed[3].ooo.robOps = 64;
    mixed[3].ooo.lsqEntries = 8;
    mixed[3].ooo.rsPerClass = 6;
    std::vector<SimResult> seq(mixed.size());
    for (std::size_t i = 0; i < mixed.size(); ++i)
        seq[i] = runConventional(module, mixed[i], trace);
    const std::vector<SimResult> batch =
        runConventionalBatch(module, mixed, trace);
    for (std::size_t i = 0; i < mixed.size(); ++i) {
        if (!sameSim(seq[i], batch[i])) {
            return fail("ooo", "mixed conv batch lane " +
                                   std::to_string(i) +
                                   " differs from per-config run");
        }
    }
    std::vector<SimResult> bseq(mixed.size());
    for (std::size_t i = 0; i < mixed.size(); ++i)
        bseq[i] = runBlockStructured(bsa, mixed[i], trace);
    const std::vector<SimResult> bbatch =
        runBlockStructuredBatch(bsa, mixed, trace);
    for (std::size_t i = 0; i < mixed.size(); ++i) {
        if (!sameSim(bseq[i], bbatch[i])) {
            return fail("ooo", "mixed bsa batch lane " +
                                   std::to_string(i) +
                                   " differs from per-config run");
        }
    }

    // Tiny-geometry stress: every structural bound pinching at once
    // must still commit the exact functional stream.
    MachineConfig tiny = oooM;
    tiny.ooo.robOps = 24;
    tiny.ooo.physRegs = 40;
    tiny.ooo.rsPerClass = 2;
    tiny.ooo.lsqEntries = 4;
    tiny.ooo.commitWidth = 2;
    OooTelemetry ttel;
    SimResult ts;
    {
        ConvFetchSource source(module, layout, tiny, trace);
        ts = simulateOoO(source, tiny, &ttel);
    }
    r = checkOooInvariants(ts, ttel, tiny, "tiny");
    if (!r.ok)
        return r;
    if (ts.retiredOps != trace.dynOps ||
        ttel.commitDigest != tel.commitDigest)
        return fail("ooo", "tiny-geometry run changed the committed "
                           "stream");
    return {};
}

} // namespace

OracleResult
checkProgram(const std::string &source, unsigned mask,
             const OracleOptions &options)
{
    const CompileResult compiled = compileBlockC(source);
    if (!compiled.ok)
        return fail("frontend", "compile error: " + compiled.errors);
    const Module &module = compiled.module;

    const Golden golden = runGolden(module, options.limits);
    if (!golden.halted) {
        return fail("interp",
                    "program did not halt within " +
                        std::to_string(options.limits.maxOps) + " ops");
    }

    const ExecTrace trace = captureTrace(module, options.limits);

    OracleResult r;
    if (mask & oracleInterp) {
        r = checkInterp(module, trace, golden, options);
        if (!r.ok)
            return r;
    }
    if (mask & oracleEnlarge) {
        r = checkEnlarge(module, trace, golden, options);
        if (!r.ok)
            return r;
    }
    if (mask & oracleModels) {
        r = checkModels(module, trace, options);
        if (!r.ok)
            return r;
    }
    if (mask & oracleLockstep) {
        r = checkLockstep(module, trace, options);
        if (!r.ok)
            return r;
    }
    if (mask & oracleOoo) {
        r = checkOoo(module, trace, options);
        if (!r.ok)
            return r;
    }
    return r;
}

} // namespace fuzz
} // namespace bsisa
