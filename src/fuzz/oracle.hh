/**
 * @file
 * Differential oracles for the fuzzing harness.
 *
 * Each oracle compiles nothing itself — it takes a BlockC source
 * string, compiles it once, and checks one equivalence class:
 *
 *   interp  — the three execution paths produce the same committed
 *             stream and architectural state: live Interp, ExecTrace
 *             replay, and a trace-store encode/mmap round trip.
 *   enlarge — block enlargement is semantics-preserving: conventional
 *             vs BsaInterp final state matches under every
 *             EnlargeConfig termination-condition setting, under
 *             first and adversarial-random variant policies (the
 *             fault-op suppression paths), and a budget expiring
 *             inside an enlarged block never commits a partial block
 *             (all-or-nothing).
 *   models  — the cycle-level simulators uphold their invariants on
 *             all three machines (retired-op accounting, prediction
 *             accounting, window occupancy bounds, cycle lower
 *             bounds), replay is bit-identical to live interpretation,
 *             results are deterministic across reruns, and a config
 *             grid fanned across BSISA_JOBS worker counts is
 *             byte-identical to the serial run.
 *   lockstep — batched multi-config simulation (sim/lockstep.hh) is
 *             bit-identical to independent per-config replay on all
 *             three machines, for full batches, partial batches, and
 *             odd lane orders.
 *   ooo     — the out-of-order backend (sim/ooo) commits the same
 *             architectural stream as the interpreter: committed-op
 *             counts match the functional execution, the commit-order
 *             digest equals the emit-time fetch-stream digest (the
 *             span-retention proof), its structural invariants hold
 *             (ROB within capacity, in-order commit, no load forwards
 *             from a younger store), results are deterministic across
 *             reruns, and a mixed abstract/ooo batch equals the
 *             per-config path.
 *
 * A bug can be injected deliberately (fault-injection testing of the
 * harness itself): the enlarged module is mutated after enlargement
 * the way a buggy compiler would emit it.
 */

#ifndef BSISA_FUZZ_ORACLE_HH
#define BSISA_FUZZ_ORACLE_HH

#include <cstdint>
#include <string>

#include "sim/interp.hh"

namespace bsisa
{
namespace fuzz
{

/** Which oracles to run; bitmask. */
enum OracleMask : unsigned
{
    oracleInterp = 1u << 0,
    oracleEnlarge = 1u << 1,
    oracleModels = 1u << 2,
    oracleLockstep = 1u << 3,
    oracleOoo = 1u << 4,
    oracleAll = oracleInterp | oracleEnlarge | oracleModels |
                oracleLockstep | oracleOoo,
};

/** Parse "interp|enlarge|models|lockstep|ooo|all" (comma-separated
 *  allowed); returns 0 on an unrecognized name. */
unsigned parseOracleMask(const std::string &spec);

/** Deliberate defects for harness self-tests (--inject). */
enum class InjectedBug
{
    None,
    /** Delete every fault operation from the enlarged module, as if
     *  the compiler forgot fault-op suppression: wrong variants then
     *  commit garbage instead of redirecting. */
    SkipFaultSuppression,
    /** Invert every fault's firing polarity. */
    FlipFaultPolarity,
};

InjectedBug parseInjectedBug(const std::string &name);

struct OracleOptions
{
    /** Functional op budget per program execution. */
    Interp::Limits limits;
    /** Random variant policies tried per enlargement config. */
    unsigned adversarialSeeds = 2;
    /** Scratch directory for trace-store round trips (empty: use a
     *  process-unique directory under the system temp dir). */
    std::string scratchDir;
    InjectedBug inject = InjectedBug::None;
    /** Run the BSISA_JOBS fan-out cross-check in the models oracle
     *  (spawns threads; off for minimal shrink re-runs). */
    bool checkParallel = true;

    OracleOptions() { limits.maxOps = 1u << 20; }
};

/** Outcome of one oracle run over one program. */
struct OracleResult
{
    bool ok = true;
    /** Which oracle failed ("interp", "enlarge", "models"), or
     *  "frontend" when the program did not compile.  The shrinker
     *  keys on this name, so a reproducer can never degrade from a
     *  semantic divergence into a mere compile error. */
    std::string oracle;
    /** Human-readable failure description. */
    std::string detail;
};

/** Run the selected oracles over BlockC source; stops at the first
 *  failing oracle.  A program that fails to compile fails "frontend";
 *  one that does not halt within the op budget fails "interp". */
OracleResult checkProgram(const std::string &source, unsigned mask,
                          const OracleOptions &options);

} // namespace fuzz
} // namespace bsisa

#endif // BSISA_FUZZ_ORACLE_HH
