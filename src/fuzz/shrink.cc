/**
 * @file
 * Greedy structural shrinker implementation.
 *
 * All passes operate on value copies of the FuzzProgram: a candidate
 * mutation is built, evaluated, and either adopted (it still fails)
 * or discarded.  Statement addressing uses a flat path enumeration so
 * a pass survives the mutations it applies mid-walk.
 */

#include "fuzz/shrink.hh"

#include <cstdlib>

namespace bsisa
{
namespace fuzz
{

namespace
{

/** Shared evaluation-budget state for one shrink run. */
struct Budget
{
    const FailPredicate &pred;
    unsigned remaining;
    ShrinkStats stats;

    bool
    fails(const FuzzProgram &candidate)
    {
        if (remaining == 0)
            return false;
        --remaining;
        ++stats.candidatesTried;
        const bool failed = pred(candidate);
        if (failed)
            ++stats.candidatesFailed;
        return failed;
    }
};

// ------------------------------------------------- pass 1: functions

/** Replace calls to @p victim with their first argument (or 1). */
void
stripCallsExpr(FuzzExpr &e, const std::string &victim)
{
    for (FuzzExpr &kid : e.kids)
        stripCallsExpr(kid, victim);
    if (e.kind == FuzzExpr::Kind::Call && e.name == victim) {
        if (!e.kids.empty()) {
            FuzzExpr keep = std::move(e.kids.front());
            e = std::move(keep);
        } else {
            e = FuzzExpr{};
            e.kind = FuzzExpr::Kind::IntLit;
            e.value = 1;
        }
    }
}

void
stripCallsStmts(std::vector<FuzzStmt> &stmts, const std::string &victim)
{
    for (FuzzStmt &s : stmts) {
        stripCallsExpr(s.value, victim);
        stripCallsExpr(s.index, victim);
        stripCallsStmts(s.body, victim);
        stripCallsStmts(s.elseBody, victim);
        for (auto &body : s.cases)
            stripCallsStmts(body, victim);
    }
}

bool
dropFunctions(FuzzProgram &prog, Budget &budget)
{
    bool any = false;
    // main is always last and never dropped.
    for (std::size_t i = 0; i + 1 < prog.funcs.size();) {
        FuzzProgram candidate = prog;
        const std::string victim = candidate.funcs[i].name;
        candidate.funcs.erase(candidate.funcs.begin() + i);
        for (FuzzFunc &f : candidate.funcs)
            stripCallsStmts(f.body, victim);
        if (budget.fails(candidate)) {
            prog = std::move(candidate);
            any = true;
        } else {
            ++i;
        }
    }
    return any;
}

// ------------------------------------------------ pass 2: statements

/** All mutable statement lists of a program, pre-order. */
void
collectLists(std::vector<FuzzStmt> &stmts,
             std::vector<std::vector<FuzzStmt> *> &out)
{
    out.push_back(&stmts);
    for (FuzzStmt &s : stmts) {
        if (!s.body.empty())
            collectLists(s.body, out);
        if (!s.elseBody.empty())
            collectLists(s.elseBody, out);
        for (auto &body : s.cases)
            if (!body.empty())
                collectLists(body, out);
    }
}

/** Would removing this statement orphan the function's return path?
 *  Returns are preserved so the program always stays well-formed. */
bool
isProtected(const FuzzStmt &s)
{
    return s.kind == FuzzStmt::Kind::Return ||
           s.kind == FuzzStmt::Kind::VarDecl;
}

bool
dropStatements(FuzzProgram &prog, Budget &budget)
{
    bool any = false;
    for (bool progress = true; progress;) {
        progress = false;
        // Re-enumerate addresses after every accepted mutation: the
        // (list index, statement index) pairs shift underneath us.
        for (std::size_t fi = 0;
             !progress && fi < prog.funcs.size(); ++fi) {
            std::vector<std::vector<FuzzStmt> *> lists;
            collectLists(prog.funcs[fi].body, lists);
            // The !progress guards come first: once a candidate is
            // adopted, prog has been move-assigned and every pointer
            // in `lists` dangles — the conditions must short-circuit
            // before touching them.
            for (std::size_t li = 0;
                 !progress && li < lists.size(); ++li) {
                for (std::size_t si = 0;
                     !progress && si < lists[li]->size(); ++si) {
                    const FuzzStmt &victim = (*lists[li])[si];
                    if (isProtected(victim))
                        continue;

                    // Try plain deletion first, then body hoisting
                    // for compound statements (keeps failures that
                    // live inside the body reachable).
                    std::vector<std::vector<FuzzStmt>> variants;
                    variants.emplace_back();  // delete
                    if (victim.kind == FuzzStmt::Kind::If) {
                        variants.push_back(victim.body);
                        if (!victim.elseBody.empty())
                            variants.push_back(victim.elseBody);
                    } else if (victim.kind == FuzzStmt::Kind::For) {
                        variants.push_back(victim.body);
                    } else if (victim.kind == FuzzStmt::Kind::Switch &&
                               !victim.cases.empty()) {
                        variants.push_back(victim.cases.front());
                    }

                    for (auto &replacement : variants) {
                        // Hoisted bodies may carry break/continue out
                        // of their loop; skip those candidates.
                        bool hoistable = true;
                        for (const FuzzStmt &h : replacement)
                            if (h.kind == FuzzStmt::Kind::Break ||
                                h.kind == FuzzStmt::Kind::Continue)
                                hoistable = false;
                        if (!hoistable && victim.kind ==
                                              FuzzStmt::Kind::For)
                            continue;

                        FuzzProgram candidate = prog;
                        std::vector<std::vector<FuzzStmt> *> clists;
                        collectLists(candidate.funcs[fi].body, clists);
                        auto &list = *clists[li];
                        list.erase(list.begin() + si);
                        list.insert(list.begin() + si,
                                    replacement.begin(),
                                    replacement.end());
                        if (budget.fails(candidate)) {
                            prog = std::move(candidate);
                            progress = true;
                            any = true;
                            break;
                        }
                    }
                }
            }
        }
        if (budget.remaining == 0)
            break;
    }
    return any;
}

// ------------------------------------------------- pass 3: constants

void
collectLiterals(FuzzExpr &e, std::vector<FuzzExpr *> &out)
{
    if (e.kind == FuzzExpr::Kind::IntLit)
        out.push_back(&e);
    for (FuzzExpr &kid : e.kids)
        collectLiterals(kid, out);
}

void
collectStmtExprs(std::vector<FuzzStmt> &stmts,
                 std::vector<FuzzExpr *> &lits,
                 std::vector<FuzzStmt *> &loops)
{
    for (FuzzStmt &s : stmts) {
        collectLiterals(s.value, lits);
        collectLiterals(s.index, lits);
        if (s.kind == FuzzStmt::Kind::For && s.trips > 1)
            loops.push_back(&s);
        collectStmtExprs(s.body, lits, loops);
        collectStmtExprs(s.elseBody, lits, loops);
        for (auto &body : s.cases)
            collectStmtExprs(body, lits, loops);
    }
}

bool
shrinkConstants(FuzzProgram &prog, Budget &budget)
{
    bool any = false;
    // Index-addressed like the statement pass: the k-th literal (or
    // loop) of the program is stable across value-only mutations.
    auto apply = [&](auto &&mutate) {
        for (bool progress = true; progress;) {
            progress = false;
            std::vector<FuzzExpr *> lits;
            std::vector<FuzzStmt *> loops;
            for (FuzzFunc &f : prog.funcs)
                collectStmtExprs(f.body, lits, loops);
            if (mutate(prog, lits, loops)) {
                progress = true;
                any = true;
            }
            if (budget.remaining == 0)
                break;
        }
    };

    apply([&](FuzzProgram &p, std::vector<FuzzExpr *> &lits,
              std::vector<FuzzStmt *> &loops) {
        (void)loops;
        for (std::size_t k = 0; k < lits.size(); ++k) {
            const std::int64_t v = lits[k]->value;
            for (std::int64_t smaller :
                 {std::int64_t(0), std::int64_t(1), v / 2}) {
                if (smaller == v || std::llabs(smaller) >=
                                        std::llabs(v ? v : 1))
                    continue;
                FuzzProgram candidate = p;
                std::vector<FuzzExpr *> clits;
                std::vector<FuzzStmt *> cloops;
                for (FuzzFunc &f : candidate.funcs)
                    collectStmtExprs(f.body, clits, cloops);
                clits[k]->value = smaller;
                if (budget.fails(candidate)) {
                    p = std::move(candidate);
                    return true;
                }
            }
        }
        return false;
    });

    apply([&](FuzzProgram &p, std::vector<FuzzExpr *> &lits,
              std::vector<FuzzStmt *> &loops) {
        (void)lits;
        for (std::size_t k = 0; k < loops.size(); ++k) {
            for (std::int64_t trips :
                 {std::int64_t(1), loops[k]->trips / 2}) {
                if (trips >= loops[k]->trips || trips < 1)
                    continue;
                FuzzProgram candidate = p;
                std::vector<FuzzExpr *> clits;
                std::vector<FuzzStmt *> cloops;
                for (FuzzFunc &f : candidate.funcs)
                    collectStmtExprs(f.body, clits, cloops);
                cloops[k]->trips = trips;
                if (budget.fails(candidate)) {
                    p = std::move(candidate);
                    return true;
                }
            }
        }
        return false;
    });
    return any;
}

} // namespace

FuzzProgram
shrink(const FuzzProgram &program, const FailPredicate &stillFails,
       unsigned maxEvals, ShrinkStats *stats)
{
    FuzzProgram best = program;
    Budget budget{stillFails, maxEvals, {}};
    budget.stats.linesBefore = program.renderedLines();

    for (bool progress = true; progress && budget.remaining;) {
        progress = false;
        progress |= dropFunctions(best, budget);
        progress |= dropStatements(best, budget);
        progress |= shrinkConstants(best, budget);
    }

    budget.stats.linesAfter = best.renderedLines();
    if (stats)
        *stats = budget.stats;
    return best;
}

} // namespace fuzz
} // namespace bsisa
