/**
 * @file
 * Reproducer shrinking for the differential fuzzing harness.
 *
 * Given a failing FuzzProgram and a predicate that re-runs the failed
 * oracle, shrink() greedily minimizes the program while preserving
 * failure, in three ordered passes:
 *   1. drop functions — calls to a dropped function are replaced by
 *      their first argument (or the literal 1), keeping the program
 *      well-formed;
 *   2. drop statements — each statement is deleted, or a compound
 *      statement (if/for/switch) is replaced by one of its bodies;
 *   3. shrink constants — integer literals step toward 0, and loop
 *      trip counts toward 1.
 * Passes repeat to a fixpoint under an evaluation budget, so shrink
 * cost is bounded even for pathological predicates.  The result is
 * guaranteed to still satisfy the predicate (the original is returned
 * unchanged if nothing smaller fails).
 */

#ifndef BSISA_FUZZ_SHRINK_HH
#define BSISA_FUZZ_SHRINK_HH

#include <functional>

#include "fuzz/gen.hh"

namespace bsisa
{
namespace fuzz
{

/** Re-runs the failing oracle; true when @p candidate still fails. */
using FailPredicate = std::function<bool(const FuzzProgram &)>;

struct ShrinkStats
{
    unsigned candidatesTried = 0;
    unsigned candidatesFailed = 0;  //!< still-failing (accepted) steps
    unsigned linesBefore = 0;
    unsigned linesAfter = 0;
};

/**
 * Minimize @p program under @p stillFails.
 *
 * @param program     A program for which stillFails(program) is true.
 * @param stillFails  The failure predicate (oracle re-run).
 * @param maxEvals    Budget on predicate evaluations.
 * @param stats       Optional out-param for shrink statistics.
 */
FuzzProgram shrink(const FuzzProgram &program,
                   const FailPredicate &stillFails,
                   unsigned maxEvals = 2000,
                   ShrinkStats *stats = nullptr);

} // namespace fuzz
} // namespace bsisa

#endif // BSISA_FUZZ_SHRINK_HH
