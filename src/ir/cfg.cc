/**
 * @file
 * CFG utility implementation.
 */

#include "ir/cfg.hh"

#include <algorithm>

#include "support/logging.hh"

namespace bsisa
{

std::vector<BlockId>
blockSuccessors(const Function &func, BlockId block)
{
    BSISA_ASSERT(block < func.blocks.size());
    const Block &b = func.blocks[block];
    BSISA_ASSERT(b.sealed(), "block ", block, " of ", func.name,
                 " lacks a terminator");
    const Operation &t = b.terminator();

    std::vector<BlockId> succs;
    switch (t.op) {
      case Opcode::Jmp:
        succs.push_back(t.target0);
        break;
      case Opcode::Trap:
        succs.push_back(t.target0);
        if (t.target1 != t.target0)
            succs.push_back(t.target1);
        break;
      case Opcode::Call:
        succs.push_back(t.target0);
        break;
      case Opcode::IJmp: {
        BSISA_ASSERT(static_cast<std::size_t>(t.imm) <
                     func.jumpTables.size());
        for (BlockId target : func.jumpTables[t.imm]) {
            if (std::find(succs.begin(), succs.end(), target) ==
                succs.end()) {
                succs.push_back(target);
            }
        }
        break;
      }
      case Opcode::Ret:
      case Opcode::Halt:
        break;
      default:
        panic("non-terminator ", opcodeName(t.op), " ends block");
    }
    return succs;
}

std::vector<std::vector<BlockId>>
blockPredecessors(const Function &func)
{
    std::vector<std::vector<BlockId>> preds(func.blocks.size());
    for (BlockId b = 0; b < func.blocks.size(); ++b)
        for (BlockId s : blockSuccessors(func, b))
            preds[s].push_back(b);
    return preds;
}

namespace
{

void
postOrderVisit(const Function &func, BlockId block,
               std::vector<bool> &seen, std::vector<BlockId> &order)
{
    seen[block] = true;
    for (BlockId s : blockSuccessors(func, block))
        if (!seen[s])
            postOrderVisit(func, s, seen, order);
    order.push_back(block);
}

} // namespace

std::vector<BlockId>
reversePostOrder(const Function &func)
{
    std::vector<bool> seen(func.blocks.size(), false);
    std::vector<BlockId> order;
    if (!func.blocks.empty())
        postOrderVisit(func, 0, seen, order);
    std::reverse(order.begin(), order.end());
    return order;
}

std::vector<bool>
reachableBlocks(const Function &func)
{
    std::vector<bool> seen(func.blocks.size(), false);
    std::vector<BlockId> order;
    if (!func.blocks.empty())
        postOrderVisit(func, 0, seen, order);
    return seen;
}

} // namespace bsisa
