/**
 * @file
 * Control-flow-graph utilities over a Function: successor/predecessor
 * computation, reverse post-order, and reachability.  The view is
 * intra-procedural: a Call's successor is its continuation block.
 */

#ifndef BSISA_IR_CFG_HH
#define BSISA_IR_CFG_HH

#include <vector>

#include "ir/module.hh"

namespace bsisa
{

/** Successor block ids of @p block within @p func (deduplicated,
 *  stable order: taken/first target before fall-through/second). */
std::vector<BlockId> blockSuccessors(const Function &func, BlockId block);

/** Predecessor lists for every block of @p func. */
std::vector<std::vector<BlockId>> blockPredecessors(const Function &func);

/** Blocks in reverse post-order from the entry; unreachable blocks are
 *  omitted. */
std::vector<BlockId> reversePostOrder(const Function &func);

/** Per-block reachability from the entry. */
std::vector<bool> reachableBlocks(const Function &func);

} // namespace bsisa

#endif // BSISA_IR_CFG_HH
