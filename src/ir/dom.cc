/**
 * @file
 * Cooper-Harvey-Kennedy dominator computation.
 */

#include "ir/dom.hh"

#include "ir/cfg.hh"
#include "support/logging.hh"

namespace bsisa
{

DomInfo::DomInfo(const Function &func)
    : idoms(func.blocks.size(), invalidId),
      loopHeaders(func.blocks.size(), false),
      rpoIndex(func.blocks.size(), ~0u)
{
    const std::vector<BlockId> rpo = reversePostOrder(func);
    for (unsigned i = 0; i < rpo.size(); ++i)
        rpoIndex[rpo[i]] = i;

    const auto preds = blockPredecessors(func);

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = idoms[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = idoms[b];
        }
        return a;
    };

    if (rpo.empty())
        return;
    idoms[rpo[0]] = rpo[0];

    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned i = 1; i < rpo.size(); ++i) {
            const BlockId b = rpo[i];
            BlockId new_idom = invalidId;
            for (BlockId p : preds[b]) {
                if (idoms[p] == invalidId)
                    continue;  // unprocessed or unreachable
                new_idom = (new_idom == invalidId) ? p
                                                   : intersect(p, new_idom);
            }
            BSISA_ASSERT(new_idom != invalidId,
                         "reachable block with no processed predecessor");
            if (idoms[b] != new_idom) {
                idoms[b] = new_idom;
                changed = true;
            }
        }
    }

    // Natural loop headers: targets of back edges.
    for (BlockId b = 0; b < func.blocks.size(); ++b) {
        if (!reachable(b))
            continue;
        for (BlockId s : blockSuccessors(func, b))
            if (dominates(s, b))
                loopHeaders[s] = true;
    }
}

bool
DomInfo::dominates(BlockId a, BlockId b) const
{
    if (!reachable(a) || !reachable(b))
        return false;
    // Walk b's idom chain upward; a dominates b iff we meet a.
    BlockId cur = b;
    for (;;) {
        if (cur == a)
            return true;
        const BlockId up = idoms[cur];
        if (up == cur)
            return false;  // reached the entry
        cur = up;
    }
}

BlockId
DomInfo::idom(BlockId block) const
{
    return idoms[block];
}

bool
DomInfo::isBackEdge(BlockId from, BlockId to) const
{
    return reachable(from) && dominates(to, from);
}

bool
DomInfo::isLoopHeader(BlockId block) const
{
    return loopHeaders[block];
}

bool
DomInfo::reachable(BlockId block) const
{
    return block < idoms.size() && idoms[block] != invalidId;
}

} // namespace bsisa
