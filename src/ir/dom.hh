/**
 * @file
 * Dominator tree and natural-loop detection.
 *
 * Block enlargement's termination condition 4 ("separate loop
 * iterations are not combined") is implemented as: never merge across a
 * back edge, where a back edge u->v is an edge whose target dominates
 * its source.  Dominators are computed with the Cooper-Harvey-Kennedy
 * iterative algorithm over the reverse post-order.
 */

#ifndef BSISA_IR_DOM_HH
#define BSISA_IR_DOM_HH

#include <vector>

#include "ir/module.hh"

namespace bsisa
{

/** Dominator information for one function. */
class DomInfo
{
  public:
    /** Compute dominators (and back-edge/loop-header facts) for
     *  @p func. */
    explicit DomInfo(const Function &func);

    /** True iff @p a dominates @p b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

    /** Immediate dominator of @p block; the entry returns itself.
     *  Unreachable blocks return invalidId. */
    BlockId idom(BlockId block) const;

    /** True iff the edge from->to is a back edge of a natural loop. */
    bool isBackEdge(BlockId from, BlockId to) const;

    /** True iff @p block is a natural-loop header. */
    bool isLoopHeader(BlockId block) const;

    /** True iff @p block is reachable from the entry. */
    bool reachable(BlockId block) const;

  private:
    std::vector<BlockId> idoms;
    std::vector<bool> loopHeaders;
    std::vector<unsigned> rpoIndex;
};

} // namespace bsisa

#endif // BSISA_IR_DOM_HH
