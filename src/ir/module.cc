/**
 * @file
 * Module implementation.
 */

#include "ir/module.hh"

namespace bsisa
{

std::size_t
Function::numOps() const
{
    std::size_t n = 0;
    for (const auto &b : blocks)
        n += b.ops.size();
    return n;
}

Function &
Module::addFunction(const std::string &name)
{
    Function f;
    f.id = static_cast<FuncId>(functions.size());
    f.name = name;
    functions.push_back(std::move(f));
    return functions.back();
}

Function *
Module::findFunction(const std::string &name)
{
    for (auto &f : functions)
        if (f.name == name)
            return &f;
    return nullptr;
}

const Function *
Module::findFunction(const std::string &name) const
{
    for (const auto &f : functions)
        if (f.name == name)
            return &f;
    return nullptr;
}

std::size_t
Module::numOps() const
{
    std::size_t n = 0;
    for (const auto &f : functions)
        n += f.numOps();
    return n;
}

} // namespace bsisa
