/**
 * @file
 * The compiler's program representation: a Module of Functions, each a
 * control-flow graph of Blocks of Operations.
 *
 * The same representation is used before register allocation (virtual
 * registers numbered from firstVirtualReg) and after (architectural
 * registers only); Function::numVirtualRegs distinguishes the two.
 * This is also the executable form of the *conventional* ISA: the
 * functional interpreter and the timing model run it directly.
 */

#ifndef BSISA_IR_MODULE_HH
#define BSISA_IR_MODULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/operation.hh"

namespace bsisa
{

/**
 * A basic block: a non-empty operation sequence whose last operation is
 * the unique terminator.
 */
struct Block
{
    std::vector<Operation> ops;

    /** The terminating operation; the block must be sealed. */
    const Operation &terminator() const { return ops.back(); }
    Operation &terminator() { return ops.back(); }

    /** True once the block ends in a terminator. */
    bool
    sealed() const
    {
        return !ops.empty() && ops.back().terminates();
    }

    /** Operation count including the terminator. */
    std::size_t size() const { return ops.size(); }
};

/**
 * A function: blocks[0] is the entry.  Functions marked as library code
 * are exempt from block enlargement (termination condition 5).
 */
struct Function
{
    FuncId id = invalidId;
    std::string name;
    std::vector<Block> blocks;

    /** Total register name space; numArchRegs once allocated. */
    RegNum numVirtualRegs = numArchRegs;

    /** Frame bytes reserved on entry (spill slots + local arrays). */
    std::uint32_t frameSize = 0;

    /** Library code is never enlarged (termination condition 5). */
    bool isLibrary = false;

    /** Jump tables for IJmp operations; entries are block ids. */
    std::vector<std::vector<BlockId>> jumpTables;

    /** Allocate a fresh virtual register. */
    RegNum newReg() { return numVirtualRegs++; }

    /** Append an empty block, returning its id. */
    BlockId
    newBlock()
    {
        blocks.emplace_back();
        return static_cast<BlockId>(blocks.size() - 1);
    }

    /** Static operation count over all blocks. */
    std::size_t numOps() const;
};

/**
 * A whole program plus its initialized global data segment.
 *
 * Global data is an array of 64-bit words starting at dataBase in the
 * simulated address space; the front end and the workload generator
 * allocate from it linearly.
 */
struct Module
{
    std::vector<Function> functions;
    FuncId mainFunc = invalidId;

    std::vector<std::uint64_t> data;
    static constexpr std::uint64_t dataBase = 0x100000;
    static constexpr std::uint64_t stackBase = 0x10000000;

    /** Append a named function, returning a reference to it. */
    Function &addFunction(const std::string &name);

    /** Function lookup by name; null when absent. */
    Function *findFunction(const std::string &name);
    const Function *findFunction(const std::string &name) const;

    /** Reserve @p words of global data, returning the byte address. */
    std::uint64_t
    allocData(std::size_t words)
    {
        const std::uint64_t addr = dataBase + data.size() * 8;
        data.resize(data.size() + words, 0);
        return addr;
    }

    /** Static operation count over all functions. */
    std::size_t numOps() const;
};

} // namespace bsisa

#endif // BSISA_IR_MODULE_HH
