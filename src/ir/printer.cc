/**
 * @file
 * IR printing implementation.
 */

#include "ir/printer.hh"

namespace bsisa
{

void
printFunction(std::ostream &os, const Function &func)
{
    os << "func " << func.name << " (f" << func.id << ")";
    if (func.isLibrary)
        os << " [library]";
    os << " vregs=" << func.numVirtualRegs
       << " frame=" << func.frameSize << "\n";
    for (BlockId b = 0; b < func.blocks.size(); ++b) {
        os << "  B" << b << ":\n";
        for (const auto &op : func.blocks[b].ops)
            os << "    " << op.toString() << "\n";
    }
    for (std::size_t t = 0; t < func.jumpTables.size(); ++t) {
        os << "  table " << t << ":";
        for (BlockId target : func.jumpTables[t])
            os << " B" << target;
        os << "\n";
    }
}

void
printModule(std::ostream &os, const Module &module)
{
    os << "module: " << module.functions.size() << " functions, "
       << module.data.size() << " data words, main=f" << module.mainFunc
       << "\n";
    for (const auto &f : module.functions)
        printFunction(os, f);
}

} // namespace bsisa
