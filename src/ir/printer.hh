/**
 * @file
 * Textual dumps of IR modules and functions.
 */

#ifndef BSISA_IR_PRINTER_HH
#define BSISA_IR_PRINTER_HH

#include <ostream>

#include "ir/module.hh"

namespace bsisa
{

/** Print one function with block labels. */
void printFunction(std::ostream &os, const Function &func);

/** Print every function of the module. */
void printModule(std::ostream &os, const Module &module);

} // namespace bsisa

#endif // BSISA_IR_PRINTER_HH
