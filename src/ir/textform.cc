/**
 * @file
 * Textual IR serializer and assembler.
 */

#include "ir/textform.hh"

#include <cctype>
#include <map>
#include <sstream>

#include "support/logging.hh"

namespace bsisa
{

void
serializeModule(std::ostream &os, const Module &module)
{
    os << "module main=f" << module.mainFunc << "\n";
    os << "data " << module.data.size() << "\n";
    for (std::size_t i = 0; i < module.data.size(); ++i)
        if (module.data[i] != 0)
            os << i << " " << module.data[i] << "\n";
    os << "end\n";
    for (const Function &fn : module.functions) {
        os << "func " << fn.name << " id=" << fn.id
           << " library=" << (fn.isLibrary ? 1 : 0)
           << " vregs=" << fn.numVirtualRegs
           << " frame=" << fn.frameSize << "\n";
        for (const Block &blk : fn.blocks) {
            os << "block\n";
            for (const Operation &op : blk.ops)
                os << "  " << op.toString() << "\n";
            os << "endblock\n";
        }
        for (const auto &table : fn.jumpTables) {
            os << "table";
            for (BlockId target : table)
                os << " B" << target;
            os << "\n";
        }
        os << "endfunc\n";
    }
}

std::string
moduleToText(const Module &module)
{
    std::ostringstream os;
    serializeModule(os, module);
    return os.str();
}

namespace
{

/** Tokenizer for operation lines: splits on spaces, commas, and
 *  brackets, keeping bracket/paren tokens out entirely. */
std::vector<std::string>
opTokens(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string cur;
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
            c == '[' || c == ']' || c == '(' || c == ')') {
            if (!cur.empty()) {
                tokens.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        tokens.push_back(cur);
    return tokens;
}

bool
parseReg(const std::string &tok, RegNum &out)
{
    if (tok.size() < 2 || tok[0] != 'r')
        return false;
    char *end = nullptr;
    out = static_cast<RegNum>(
        std::strtoul(tok.c_str() + 1, &end, 10));
    return end && *end == '\0';
}

bool
parseImm(const std::string &tok, std::int64_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = static_cast<std::int64_t>(
        std::strtoll(tok.c_str(), &end, 10));
    return end && *end == '\0';
}

bool
parsePrefixed(const std::string &tok, char prefix, std::uint32_t &out)
{
    if (tok.size() < 2 || tok[0] != prefix)
        return false;
    char *end = nullptr;
    out = static_cast<std::uint32_t>(
        std::strtoul(tok.c_str() + 1, &end, 10));
    return end && *end == '\0';
}

bool
parseBlockRef(const std::string &tok, std::uint32_t &out)
{
    return parsePrefixed(tok, 'B', out);
}

const std::map<std::string, Opcode> &
mnemonicMap()
{
    static const std::map<std::string, Opcode> map = [] {
        std::map<std::string, Opcode> m;
        for (int i = 0; i <= static_cast<int>(Opcode::Halt); ++i) {
            const Opcode op = static_cast<Opcode>(i);
            m[opcodeName(op)] = op;
        }
        return m;
    }();
    return map;
}

} // namespace

bool
parseOperationText(const std::string &line, Operation &out,
                   std::string &error)
{
    const auto tokens = opTokens(line);
    if (tokens.empty()) {
        error = "empty operation";
        return false;
    }
    const auto it = mnemonicMap().find(tokens[0]);
    if (it == mnemonicMap().end()) {
        error = "unknown mnemonic '" + tokens[0] + "'";
        return false;
    }
    const Opcode op = it->second;
    out = Operation{};
    out.op = op;

    auto fail = [&](const char *what) {
        error = std::string("bad ") + what + " in '" + line + "'";
        return false;
    };

    switch (op) {
      case Opcode::Nop:
      case Opcode::Ret:
      case Opcode::Halt:
        return true;
      case Opcode::MovI:
        if (tokens.size() != 3 || !parseReg(tokens[1], out.dst) ||
            !parseImm(tokens[2], out.imm)) {
            return fail("movi operands");
        }
        return true;
      case Opcode::Mov:
      case Opcode::FCvt:
        if (tokens.size() != 3 || !parseReg(tokens[1], out.dst) ||
            !parseReg(tokens[2], out.src1)) {
            return fail("unary operands");
        }
        return true;
      case Opcode::AddI:
      case Opcode::AndI:
      case Opcode::CmpEqI:
      case Opcode::CmpLtI:
      case Opcode::ShlI:
      case Opcode::ShrI:
        if (tokens.size() != 4 || !parseReg(tokens[1], out.dst) ||
            !parseReg(tokens[2], out.src1) ||
            !parseImm(tokens[3], out.imm)) {
            return fail("immediate operands");
        }
        return true;
      case Opcode::Ld:
        // ld rD, [rB + imm]
        if (tokens.size() != 5 || !parseReg(tokens[1], out.dst) ||
            !parseReg(tokens[2], out.src1) || tokens[3] != "+" ||
            !parseImm(tokens[4], out.imm)) {
            return fail("load operands");
        }
        return true;
      case Opcode::St:
        // st [rB + imm], rV
        if (tokens.size() != 5 || !parseReg(tokens[1], out.src1) ||
            tokens[2] != "+" || !parseImm(tokens[3], out.imm) ||
            !parseReg(tokens[4], out.src2)) {
            return fail("store operands");
        }
        return true;
      case Opcode::Jmp:
        if (tokens.size() != 2 || !parseBlockRef(tokens[1], out.target0))
            return fail("jump target");
        return true;
      case Opcode::Trap: {
        // trap rC, Bt, Bf (succBits k)
        if (tokens.size() != 6 || !parseReg(tokens[1], out.src1) ||
            !parseBlockRef(tokens[2], out.target0) ||
            !parseBlockRef(tokens[3], out.target1) ||
            tokens[4] != "succBits") {
            return fail("trap operands");
        }
        std::int64_t bits;
        if (!parseImm(tokens[5], bits) || bits < 0 || bits > 3)
            return fail("trap succBits");
        out.succBits = static_cast<std::uint8_t>(bits);
        return true;
      }
      case Opcode::Fault: {
        std::uint32_t target;
        const bool inverted = tokens.size() == 4 && tokens[3] == "inv";
        if ((tokens.size() != 3 && !inverted) ||
            !parseReg(tokens[1], out.src1) || tokens[2][0] != 'A' ||
            !parsePrefixed(tokens[2].substr(1), 'B', target)) {
            return fail("fault operands");
        }
        out.target0 = target;
        out.imm = inverted ? 1 : 0;
        return true;
      }
      case Opcode::Call: {
        // call fN, cont BN
        std::uint32_t callee;
        if (tokens.size() != 4 || !parsePrefixed(tokens[1], 'f', callee)
            || tokens[2] != "cont" ||
            !parseBlockRef(tokens[3], out.target0)) {
            return fail("call operands");
        }
        out.callee = callee;
        return true;
      }
      case Opcode::IJmp:
        // ijmp rS, table T
        if (tokens.size() != 4 || !parseReg(tokens[1], out.src1) ||
            tokens[2] != "table" || !parseImm(tokens[3], out.imm)) {
            return fail("ijmp operands");
        }
        return true;
      default:
        // Plain three-register form.
        if (tokens.size() != 4 || !parseReg(tokens[1], out.dst) ||
            !parseReg(tokens[2], out.src1) ||
            !parseReg(tokens[3], out.src2)) {
            return fail("register operands");
        }
        return true;
    }
}

ParseModuleResult
parseModuleText(const std::string &text)
{
    ParseModuleResult result;
    std::istringstream is(text);
    std::string line;
    unsigned line_no = 0;

    auto fail = [&](const std::string &msg) {
        result.error = "line " + std::to_string(line_no) + ": " + msg;
        return result;
    };
    auto next_line = [&](std::string &out) {
        while (std::getline(is, out)) {
            ++line_no;
            // Trim leading whitespace and skip blanks/comments.
            std::size_t start = out.find_first_not_of(" \t");
            if (start == std::string::npos)
                continue;
            out = out.substr(start);
            if (out[0] == '#')
                continue;
            return true;
        }
        return false;
    };

    if (!next_line(line) || line.rfind("module main=f", 0) != 0)
        return fail("expected 'module main=fN'");
    result.module.mainFunc = static_cast<FuncId>(
        std::strtoul(line.c_str() + 13, nullptr, 10));

    if (!next_line(line) || line.rfind("data ", 0) != 0)
        return fail("expected 'data N'");
    const std::size_t words =
        std::strtoull(line.c_str() + 5, nullptr, 10);
    result.module.allocData(words);
    for (;;) {
        if (!next_line(line))
            return fail("unterminated data section");
        if (line == "end")
            break;
        std::istringstream ls(line);
        std::size_t index;
        std::uint64_t value;
        if (!(ls >> index >> value) || index >= words)
            return fail("bad data entry '" + line + "'");
        result.module.data[index] = value;
    }

    while (next_line(line)) {
        if (line.rfind("func ", 0) != 0)
            return fail("expected 'func', got '" + line + "'");
        std::istringstream ls(line.substr(5));
        std::string name, id_kv, lib_kv, vregs_kv, frame_kv;
        if (!(ls >> name >> id_kv >> lib_kv >> vregs_kv >> frame_kv))
            return fail("bad func header");
        Function &fn = result.module.addFunction(name);
        auto kv = [&](const std::string &s,
                      const char *key) -> std::int64_t {
            const std::string prefix = std::string(key) + "=";
            if (s.rfind(prefix, 0) != 0)
                return -1;
            return std::strtoll(s.c_str() + prefix.size(), nullptr, 10);
        };
        if (kv(id_kv, "id") != fn.id)
            return fail("function id mismatch (must be sequential)");
        fn.isLibrary = kv(lib_kv, "library") == 1;
        fn.numVirtualRegs =
            static_cast<RegNum>(kv(vregs_kv, "vregs"));
        fn.frameSize = static_cast<std::uint32_t>(kv(frame_kv, "frame"));

        for (;;) {
            if (!next_line(line))
                return fail("unterminated function");
            if (line == "endfunc")
                break;
            if (line == "block") {
                const BlockId b = fn.newBlock();
                for (;;) {
                    if (!next_line(line))
                        return fail("unterminated block");
                    if (line == "endblock")
                        break;
                    Operation op;
                    std::string err;
                    if (!parseOperationText(line, op, err))
                        return fail(err);
                    fn.blocks[b].ops.push_back(op);
                }
            } else if (line.rfind("table", 0) == 0) {
                std::istringstream ts(line.substr(5));
                std::vector<BlockId> table;
                std::string tok;
                while (ts >> tok) {
                    std::uint32_t target;
                    if (!parseBlockRef(tok, target))
                        return fail("bad table entry '" + tok + "'");
                    table.push_back(target);
                }
                fn.jumpTables.push_back(std::move(table));
            } else {
                return fail("unexpected line '" + line + "'");
            }
        }
    }

    result.ok = true;
    return result;
}

} // namespace bsisa
