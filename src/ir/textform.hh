/**
 * @file
 * Textual IR serialization: a complete, parseable text form of a
 * Module (the printer's operation syntax plus structural markers and
 * the data segment), and the assembler that reads it back.
 *
 * Round-tripping enables textual test fixtures, diffing compiler
 * stages, and shipping compiled programs between tools without a
 * binary format:
 *
 *   module main=f0
 *   data 16
 *   3 42          # word index, value (zero words omitted)
 *   end
 *   func main id=0 library=0 vregs=32 frame=8
 *   block
 *     movi r12, 7
 *     trap r12, B1, B2 (succBits 1)
 *   endblock
 *   ...
 *   table B1 B2
 *   endfunc
 */

#ifndef BSISA_IR_TEXTFORM_HH
#define BSISA_IR_TEXTFORM_HH

#include <ostream>
#include <string>

#include "ir/module.hh"

namespace bsisa
{

/** Serialize @p module completely (structure + data). */
void serializeModule(std::ostream &os, const Module &module);

/** Convenience: serialize to a string. */
std::string moduleToText(const Module &module);

/** Parse result of the assembler. */
struct ParseModuleResult
{
    bool ok = false;
    Module module;
    std::string error;  //!< first problem, with a line number
};

/** Parse the text form back into a Module. */
ParseModuleResult parseModuleText(const std::string &text);

/** Parse one operation in Operation::toString() syntax. */
bool parseOperationText(const std::string &line, Operation &out,
                        std::string &error);

} // namespace bsisa

#endif // BSISA_IR_TEXTFORM_HH
