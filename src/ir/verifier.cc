/**
 * @file
 * Module verification implementation.
 */

#include "ir/verifier.hh"

#include <sstream>

#include "support/logging.hh"

namespace bsisa
{

namespace
{

void
verifyFunction(const Module &module, const Function &func,
               std::vector<std::string> &problems)
{
    auto report = [&](BlockId b, const std::string &msg) {
        std::ostringstream os;
        os << "function '" << func.name << "' block " << b << ": " << msg;
        problems.push_back(os.str());
    };

    if (func.blocks.empty()) {
        report(0, "function has no blocks");
        return;
    }

    const auto check_target = [&](BlockId b, std::uint32_t target,
                                  const char *what) {
        if (target >= func.blocks.size())
            report(b, std::string(what) + " target out of range");
    };

    for (BlockId b = 0; b < func.blocks.size(); ++b) {
        const Block &blk = func.blocks[b];
        if (blk.ops.empty()) {
            report(b, "empty block");
            continue;
        }
        if (!blk.sealed()) {
            report(b, "block does not end in a terminator");
            continue;
        }
        for (std::size_t i = 0; i < blk.ops.size(); ++i) {
            const Operation &op = blk.ops[i];
            if (op.terminates() && i + 1 != blk.ops.size()) {
                report(b, "terminator in block interior at op " +
                              std::to_string(i));
            }
            if (hasDest(op.op)) {
                if (op.dst >= func.numVirtualRegs)
                    report(b, "dest register out of range: " +
                                  op.toString());
                if (op.dst == regZero)
                    report(b, "write to hardwired zero register: " +
                                  op.toString());
            }
            const unsigned nsrc = numSources(op.op);
            if (nsrc >= 1 && op.src1 >= func.numVirtualRegs)
                report(b, "src1 register out of range: " + op.toString());
            if (nsrc >= 2 && op.src2 >= func.numVirtualRegs)
                report(b, "src2 register out of range: " + op.toString());

            switch (op.op) {
              case Opcode::Jmp:
                check_target(b, op.target0, "jmp");
                break;
              case Opcode::Trap:
                check_target(b, op.target0, "trap taken");
                check_target(b, op.target1, "trap not-taken");
                break;
              case Opcode::Call:
                if (op.callee >= module.functions.size())
                    report(b, "call to unknown function");
                check_target(b, op.target0, "call continuation");
                break;
              case Opcode::IJmp: {
                const auto table = static_cast<std::size_t>(op.imm);
                if (table >= func.jumpTables.size()) {
                    report(b, "ijmp references missing jump table");
                } else if (func.jumpTables[table].empty()) {
                    report(b, "ijmp jump table is empty");
                } else {
                    for (BlockId t : func.jumpTables[table])
                        check_target(b, t, "ijmp");
                }
                break;
              }
              case Opcode::Fault:
                report(b, "fault operation in pre-enlargement IR");
                break;
              default:
                break;
            }
        }
    }
}

} // namespace

std::vector<std::string>
verifyModule(const Module &module)
{
    std::vector<std::string> problems;
    if (module.functions.empty()) {
        problems.push_back("module has no functions");
        return problems;
    }
    if (module.mainFunc >= module.functions.size()) {
        problems.push_back("module has no valid main function");
        return problems;
    }
    for (const auto &f : module.functions)
        verifyFunction(module, f, problems);
    // NOTE: main is not required to contain a halt: a program whose
    // main provably loops forever (e.g. a server loop cut off by the
    // simulator's op budget) legitimately has its halt eliminated as
    // unreachable code.
    return problems;
}

void
verifyModuleOrDie(const Module &module, const char *when)
{
    const auto problems = verifyModule(module);
    if (!problems.empty())
        fatal("module verification failed ", when, ": ", problems.front(),
              " (", problems.size(), " problems total)");
}

} // namespace bsisa
