/**
 * @file
 * Structural verification of Modules.
 *
 * The verifier is run after each compiler pass in tests and guards the
 * invariants the interpreter and the timing model rely on: sealed
 * blocks, in-range targets, register numbers within the declared name
 * space, valid call graph, and a Halt-terminated main.
 */

#ifndef BSISA_IR_VERIFIER_HH
#define BSISA_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace bsisa
{

/** Verify @p module; returns a list of problems (empty = valid). */
std::vector<std::string> verifyModule(const Module &module);

/** Verify and fatal() with the first problem if invalid. */
void verifyModuleOrDie(const Module &module, const char *when);

} // namespace bsisa

#endif // BSISA_IR_VERIFIER_HH
