/**
 * @file
 * Block-local constant folding and propagation.
 *
 * Tracks registers holding known constants within a block (seeded by
 * MovI), folds fully-constant pure operations into MovI, rewrites
 * reg+constant adds into AddI forms, and turns constant-condition
 * traps into jumps.
 */

#include <bit>
#include <unordered_map>

#include "opt/passes.hh"
#include "regalloc/liveness.hh"

namespace bsisa
{

namespace
{

/** Evaluate a pure binary op on constants; mirrors the interpreter. */
bool
evalPure(const Operation &op, std::uint64_t a, std::uint64_t b,
         std::uint64_t &out)
{
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    switch (op.op) {
      case Opcode::Mov: out = a; return true;
      case Opcode::Add: out = a + b; return true;
      case Opcode::AddI: out = a + static_cast<std::uint64_t>(op.imm);
        return true;
      case Opcode::Sub: out = a - b; return true;
      case Opcode::And: out = a & b; return true;
      case Opcode::AndI: out = a & static_cast<std::uint64_t>(op.imm);
        return true;
      case Opcode::Or: out = a | b; return true;
      case Opcode::Xor: out = a ^ b; return true;
      case Opcode::CmpEq: out = a == b; return true;
      case Opcode::CmpEqI:
        out = a == static_cast<std::uint64_t>(op.imm);
        return true;
      case Opcode::CmpNe: out = a != b; return true;
      case Opcode::CmpLt: out = sa < sb; return true;
      case Opcode::CmpLtI: out = sa < op.imm; return true;
      case Opcode::CmpLe: out = sa <= sb; return true;
      case Opcode::Shl: out = a << (b & 63); return true;
      case Opcode::ShlI: out = a << (op.imm & 63); return true;
      case Opcode::Shr: out = a >> (b & 63); return true;
      case Opcode::ShrI: out = a >> (op.imm & 63); return true;
      case Opcode::BitTest: out = (a >> (b & 63)) & 1; return true;
      case Opcode::Mul: out = a * b; return true;
      case Opcode::Div:
        if (sb == 0) {
            out = 0;
        } else if (sa == INT64_MIN && sb == -1) {
            out = static_cast<std::uint64_t>(INT64_MIN);
        } else {
            out = static_cast<std::uint64_t>(sa / sb);
        }
        return true;
      case Opcode::Rem:
        if (sb == 0) {
            out = a;
        } else if (sa == INT64_MIN && sb == -1) {
            out = 0;
        } else {
            out = static_cast<std::uint64_t>(sa % sb);
        }
        return true;
      default:
        return false;  // FP folding is skipped: keep bit-exactness
                       // decisions out of the mid-end
    }
}

} // namespace

unsigned
constantFold(Function &func)
{
    unsigned folded = 0;
    for (Block &blk : func.blocks) {
        std::unordered_map<RegNum, std::uint64_t> constants;
        for (Operation &op : blk.ops) {
            // Fold the trap condition if known.
            if (op.op == Opcode::Trap) {
                const auto it = constants.find(op.src1);
                if (it != constants.end() && op.src1 != regZero) {
                    const BlockId target =
                        it->second != 0 ? op.target0 : op.target1;
                    op = makeJmp(target);
                    ++folded;
                }
                continue;
            }
            if (op.op == Opcode::Trap || !hasDest(op.op)) {
                continue;
            }

            if (op.op == Opcode::MovI) {
                constants[op.dst] = static_cast<std::uint64_t>(op.imm);
                continue;
            }

            const unsigned nsrc = numSources(op.op);
            std::uint64_t a = 0, b = 0;
            bool a_known = false, b_known = false;
            if (nsrc >= 1) {
                if (op.src1 == regZero) {
                    a = 0;
                    a_known = true;
                } else if (const auto it = constants.find(op.src1);
                           it != constants.end()) {
                    a = it->second;
                    a_known = true;
                }
            }
            if (nsrc >= 2) {
                if (op.src2 == regZero) {
                    b = 0;
                    b_known = true;
                } else if (const auto it = constants.find(op.src2);
                           it != constants.end()) {
                    b = it->second;
                    b_known = true;
                }
            }

            std::uint64_t result;
            if ((nsrc == 0 || a_known) && (nsrc < 2 || b_known) &&
                op.op != Opcode::Ld && evalPure(op, a, b, result)) {
                op = makeMovI(op.dst, static_cast<std::int64_t>(result));
                constants[op.dst] = result;
                ++folded;
                continue;
            }

            // Strength reduction: reg (op) const -> immediate form.
            if (nsrc == 2 && b_known && !a_known) {
                const std::int64_t imm = static_cast<std::int64_t>(b);
                Opcode new_op = op.op;
                switch (op.op) {
                  case Opcode::Add: new_op = Opcode::AddI; break;
                  case Opcode::Sub: new_op = Opcode::AddI; break;
                  case Opcode::And: new_op = Opcode::AndI; break;
                  case Opcode::CmpEq: new_op = Opcode::CmpEqI; break;
                  case Opcode::CmpLt: new_op = Opcode::CmpLtI; break;
                  case Opcode::Shl: new_op = Opcode::ShlI; break;
                  case Opcode::Shr: new_op = Opcode::ShrI; break;
                  default: break;
                }
                const bool negatable =
                    op.op != Opcode::Sub || imm != INT64_MIN;
                if (new_op != op.op && negatable) {
                    const std::int64_t value =
                        op.op == Opcode::Sub ? -imm : imm;
                    op = makeBinI(new_op, op.dst, op.src1, value);
                    ++folded;
                }
            }

            // The destination no longer holds a known constant.
            constants.erase(op.dst);
        }
    }
    return folded;
}

} // namespace bsisa
