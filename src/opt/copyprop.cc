/**
 * @file
 * Block-local copy propagation.
 *
 * After "mov dst, src", later reads of dst are rewritten to src until
 * either register is redefined.  Copies through chains resolve to the
 * oldest still-valid source.
 */

#include <unordered_map>

#include "opt/passes.hh"
#include "regalloc/liveness.hh"

namespace bsisa
{

unsigned
copyPropagate(Function &func)
{
    unsigned rewritten = 0;
    for (Block &blk : func.blocks) {
        // copyOf[r] = the register r currently mirrors.
        std::unordered_map<RegNum, RegNum> copy_of;

        auto resolve = [&](RegNum r) {
            const auto it = copy_of.find(r);
            return it == copy_of.end() ? r : it->second;
        };
        auto invalidate = [&](RegNum r) {
            copy_of.erase(r);
            for (auto it = copy_of.begin(); it != copy_of.end();) {
                if (it->second == r)
                    it = copy_of.erase(it);
                else
                    ++it;
            }
        };

        for (Operation &op : blk.ops) {
            const unsigned nsrc = numSources(op.op);
            if (nsrc >= 1) {
                const RegNum r = resolve(op.src1);
                if (r != op.src1) {
                    op.src1 = r;
                    ++rewritten;
                }
            }
            if (nsrc >= 2) {
                const RegNum r = resolve(op.src2);
                if (r != op.src2) {
                    op.src2 = r;
                    ++rewritten;
                }
            }

            const RegNum def = opDef(op);
            if (def == invalidId)
                continue;
            invalidate(def);
            if (op.op == Opcode::Mov && op.src1 != def)
                copy_of[def] = op.src1;
        }
    }
    return rewritten;
}

} // namespace bsisa
