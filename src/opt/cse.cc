/**
 * @file
 * Block-local common-subexpression elimination.
 *
 * Pure operations with identical opcode/operands/immediate reuse the
 * earlier result through a Mov (copy propagation and DCE then clean
 * up).  Loads participate until any store or call invalidates memory;
 * we make no aliasing claims, so invalidation is total.
 */

#include <map>
#include <tuple>

#include "opt/passes.hh"
#include "regalloc/liveness.hh"

namespace bsisa
{

namespace
{

using ExprKey =
    std::tuple<Opcode, RegNum, RegNum, std::int64_t, unsigned /*epoch*/>;

bool
cseEligible(const Operation &op)
{
    if (!hasDest(op.op))
        return false;
    switch (op.op) {
      case Opcode::MovI:  // handled by constant folding
      case Opcode::Mov:   // handled by copy propagation
        return false;
      default:
        return true;
    }
}

} // namespace

unsigned
localCSE(Function &func)
{
    unsigned replaced = 0;
    for (Block &blk : func.blocks) {
        // Value side carries the version the holder register had when
        // the expression was recorded; a later redefinition of the
        // holder makes the entry unusable.
        std::map<ExprKey, std::pair<RegNum, unsigned>> available;
        // Version counter per register: bumping it invalidates every
        // expression that read the old value.
        std::map<RegNum, unsigned> version;
        unsigned mem_epoch = 0;

        auto ver = [&](RegNum r) {
            const auto it = version.find(r);
            return it == version.end() ? 0u : it->second;
        };

        for (Operation &op : blk.ops) {
            if (op.op == Opcode::St || op.op == Opcode::Call) {
                ++mem_epoch;
            }
            if (!cseEligible(op)) {
                if (const RegNum def = opDef(op); def != invalidId)
                    ++version[def];
                continue;
            }

            const unsigned nsrc = numSources(op.op);
            // Key mixes source-register versions so stale entries never
            // match, and the memory epoch for loads.
            const unsigned key_epoch =
                (op.op == Opcode::Ld ? mem_epoch * 0x10000 : 0) +
                (nsrc >= 1 ? ver(op.src1) : 0) * 0x100 +
                (nsrc >= 2 ? ver(op.src2) : 0);
            const ExprKey key{op.op, nsrc >= 1 ? op.src1 : 0,
                              nsrc >= 2 ? op.src2 : 0, op.imm, key_epoch};

            const auto it = available.find(key);
            if (it != available.end() && it->second.first != op.dst &&
                ver(it->second.first) == it->second.second) {
                op = makeMov(op.dst, it->second.first);
                ++version[op.dst];
                ++replaced;
                continue;
            }
            const unsigned new_ver = ++version[op.dst];
            available[key] = {op.dst, new_ver};
        }
    }
    return replaced;
}

} // namespace bsisa
