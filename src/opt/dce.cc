/**
 * @file
 * Global dead-code elimination.
 *
 * Uses liveness to delete pure operations whose destination is dead at
 * their program point.  Stores, calls, faults, and terminators are
 * never deleted.
 */

#include "opt/passes.hh"
#include "regalloc/liveness.hh"

namespace bsisa
{

namespace
{

bool
hasSideEffects(const Operation &op)
{
    switch (op.op) {
      case Opcode::St:
      case Opcode::Fault:
        return true;
      default:
        return op.terminates();
    }
}

} // namespace

unsigned
deadCodeElim(Function &func)
{
    const Liveness live = computeLiveness(func);
    unsigned removed = 0;
    std::vector<RegNum> uses;

    for (BlockId b = 0; b < func.blocks.size(); ++b) {
        Block &blk = func.blocks[b];
        RegSet alive = live.liveOut[b];
        // Backward walk marking dead pure definitions.
        std::vector<bool> dead(blk.ops.size(), false);
        for (std::size_t i = blk.ops.size(); i-- > 0;) {
            const Operation &op = blk.ops[i];
            const RegNum def = opDef(op);
            const bool def_live = def != invalidId && alive.contains(def);
            if (!hasSideEffects(op) && def != invalidId && !def_live) {
                dead[i] = true;
                continue;
            }
            if (def != invalidId)
                alive.erase(def);
            uses.clear();
            opUses(op, uses);
            for (RegNum u : uses)
                alive.insert(u);
        }

        std::vector<Operation> kept;
        kept.reserve(blk.ops.size());
        for (std::size_t i = 0; i < blk.ops.size(); ++i) {
            if (dead[i])
                ++removed;
            else
                kept.push_back(blk.ops[i]);
        }
        blk.ops = std::move(kept);
    }
    return removed;
}

} // namespace bsisa
