/**
 * @file
 * Inliner implementation.
 *
 * Leaf-only inlining per round (a callee is eligible only when it
 * contains no calls itself), repeated for a bounded number of rounds
 * so call chains flatten bottom-up; this sidesteps recursion analysis
 * entirely, because self-recursion requires a call.
 */

#include "opt/inliner.hh"

#include "support/logging.hh"

namespace bsisa
{

namespace
{

bool
isLeaf(const Function &fn)
{
    for (const Block &blk : fn.blocks)
        for (const Operation &op : blk.ops)
            if (op.op == Opcode::Call || op.op == Opcode::Halt)
                return false;
    return true;
}

/** Clone @p callee's body into @p caller; returns the entry block id
 *  of the clone.  Returns within the callee become jumps to
 *  @p continuation. */
BlockId
cloneInto(Function &caller, const Function &callee,
          BlockId continuation)
{
    BSISA_ASSERT(callee.frameSize == 0,
                 "inlining requires pre-RA IR (no frames yet)");
    const BlockId block_offset =
        static_cast<BlockId>(caller.blocks.size());
    const std::uint32_t table_offset =
        static_cast<std::uint32_t>(caller.jumpTables.size());
    // Virtual registers shift into the caller's fresh name space;
    // architectural registers (the ABI wiring) pass through.
    const RegNum reg_base = caller.numVirtualRegs;
    auto remap_reg = [&](RegNum r) {
        return r < firstVirtualReg
                   ? r
                   : reg_base + (r - firstVirtualReg);
    };
    caller.numVirtualRegs +=
        callee.numVirtualRegs - firstVirtualReg;

    for (const auto &table : callee.jumpTables) {
        std::vector<BlockId> remapped;
        for (BlockId target : table)
            remapped.push_back(target + block_offset);
        caller.jumpTables.push_back(std::move(remapped));
    }

    for (const Block &src : callee.blocks) {
        const BlockId b = caller.newBlock();
        for (Operation op : src.ops) {
            if (hasDest(op.op))
                op.dst = remap_reg(op.dst);
            const unsigned nsrc = numSources(op.op);
            if (nsrc >= 1)
                op.src1 = remap_reg(op.src1);
            if (nsrc >= 2)
                op.src2 = remap_reg(op.src2);
            switch (op.op) {
              case Opcode::Jmp:
                op.target0 += block_offset;
                break;
              case Opcode::Trap:
                op.target0 += block_offset;
                op.target1 += block_offset;
                break;
              case Opcode::IJmp:
                op.imm += table_offset;
                break;
              case Opcode::Ret:
                // The return value is already in regRet; fall through
                // to the call's continuation.
                op = makeJmp(continuation);
                break;
              case Opcode::Call:
              case Opcode::Halt:
                panic("ineligible callee slipped through");
              default:
                break;
            }
            caller.blocks[b].ops.push_back(op);
        }
    }
    return block_offset;
}

} // namespace

InlineStats
inlineCalls(Module &module, const InlineOptions &options)
{
    InlineStats stats;

    std::vector<std::size_t> initial_ops;
    for (const Function &fn : module.functions)
        initial_ops.push_back(fn.numOps());

    for (unsigned round = 0; round < options.maxRounds; ++round) {
        // Eligibility is computed per round so freshly flattened
        // functions become leaves for the next round.
        std::vector<bool> eligible(module.functions.size());
        for (FuncId f = 0; f < module.functions.size(); ++f) {
            const Function &fn = module.functions[f];
            eligible[f] = !fn.isLibrary && isLeaf(fn) &&
                          fn.numOps() <= options.maxCalleeOps;
        }

        unsigned inlined_this_round = 0;
        for (FuncId f = 0; f < module.functions.size(); ++f) {
            Function &caller = module.functions[f];
            const std::size_t budget = static_cast<std::size_t>(
                double(initial_ops[f]) * options.growthLimit);
            for (BlockId b = 0; b < caller.blocks.size(); ++b) {
                if (caller.numOps() > budget)
                    break;
                const Operation term = caller.blocks[b].terminator();
                if (term.op != Opcode::Call || !eligible[term.callee] ||
                    term.callee == f) {
                    continue;
                }
                const BlockId entry = cloneInto(
                    caller, module.functions[term.callee],
                    term.target0);
                caller.blocks[b].terminator() = makeJmp(entry);
                ++inlined_this_round;
            }
        }
        stats.callsInlined += inlined_this_round;
        ++stats.rounds;
        if (inlined_this_round == 0)
            break;
    }
    return stats;
}

} // namespace bsisa
