/**
 * @file
 * Function inlining — the paper's section-6 future-work item:
 * "Inlining can increase the fetch bandwidth used by eliminating
 * procedure calls and returns, allowing the block enlargement
 * optimization to combine blocks that previously could not be
 * combined" (enlargement condition 3 stops at every call).
 *
 * The pass runs on pre-register-allocation IR.  A call site is inlined
 * when the callee is small enough, not a library function, and not
 * (transitively) recursive.  The callee's blocks are cloned into the
 * caller with virtual registers and block ids remapped; its returns
 * become jumps to the call's continuation.  Argument and result wiring
 * rides the existing ABI copies (args staged in r4..r11 immediately
 * before the call, result read from r4 immediately after), which the
 * front end and the workload generator both guarantee.
 */

#ifndef BSISA_OPT_INLINER_HH
#define BSISA_OPT_INLINER_HH

#include "ir/module.hh"

namespace bsisa
{

struct InlineOptions
{
    /** Only callees with at most this many operations are inlined. */
    unsigned maxCalleeOps = 24;
    /** Repeat passes so call chains flatten (bounded). */
    unsigned maxRounds = 3;
    /** Cap on a function's growth, as a multiple of its initial size. */
    double growthLimit = 8.0;
};

struct InlineStats
{
    unsigned callsInlined = 0;
    unsigned rounds = 0;
};

/** Inline eligible call sites across @p module (pre-RA IR only). */
InlineStats inlineCalls(Module &module, const InlineOptions &options);

} // namespace bsisa

#endif // BSISA_OPT_INLINER_HH
