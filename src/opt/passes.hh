/**
 * @file
 * Mid-end optimization passes.
 *
 * The paper's compiler applies "the standard set of optimizations" in
 * the Intel Reference C Compiler before the block-structured back end;
 * this is our equivalent: local constant folding/propagation, local
 * copy propagation, local common-subexpression elimination, global
 * dead-code elimination, and CFG simplification.  All passes preserve
 * the functional semantics checked by the interpreter-equivalence
 * property tests.
 */

#ifndef BSISA_OPT_PASSES_HH
#define BSISA_OPT_PASSES_HH

#include "ir/module.hh"

namespace bsisa
{

/** Per-pass change counts, for tests and reporting. */
struct OptStats
{
    unsigned folded = 0;       //!< ops simplified by constant folding
    unsigned copiesProp = 0;   //!< uses rewritten by copy propagation
    unsigned cseReplaced = 0;  //!< ops replaced by CSE
    unsigned deadRemoved = 0;  //!< ops removed by DCE
    unsigned blocksRemoved = 0;   //!< unreachable/empty blocks removed
    unsigned blocksMerged = 0;    //!< straight-line chains spliced
    unsigned branchesSimplified = 0;  //!< constant traps rewritten
};

/** Fold constant expressions; block-local value tracking. */
unsigned constantFold(Function &func);

/** Propagate Mov sources into later uses; block-local. */
unsigned copyPropagate(Function &func);

/** Eliminate recomputed pure expressions; block-local. */
unsigned localCSE(Function &func);

/** Remove operations whose results are never used (global liveness). */
unsigned deadCodeElim(Function &func);

/**
 * CFG cleanup: fold constant traps, thread jump-only blocks, merge
 * single-predecessor straight-line chains, and drop unreachable
 * blocks.  Returns blocks removed + merged + branches simplified.
 */
OptStats simplifyCFG(Function &func);

/** Run the full pipeline to a fixpoint (bounded); aggregates stats. */
OptStats optimizeFunction(Function &func);

/** Optimize every function of @p module. */
OptStats optimizeModule(Module &module);

} // namespace bsisa

#endif // BSISA_OPT_PASSES_HH
