/**
 * @file
 * CFG simplification: constant-branch folding, jump threading,
 * straight-line merging, and unreachable-block removal.
 */

#include "opt/passes.hh"

#include "ir/cfg.hh"
#include "support/logging.hh"

namespace bsisa
{

namespace
{

/** True for a block containing only "jmp". */
bool
isTrivialJump(const Block &blk)
{
    return blk.ops.size() == 1 && blk.ops[0].op == Opcode::Jmp;
}

/** Follow chains of trivial jumps (with a cycle guard). */
BlockId
threadTarget(const Function &func, BlockId start)
{
    BlockId cur = start;
    for (unsigned hops = 0; hops < func.blocks.size(); ++hops) {
        const Block &blk = func.blocks[cur];
        if (!blk.sealed() || !isTrivialJump(blk))
            return cur;
        const BlockId next = blk.ops[0].target0;
        if (next == cur)
            return cur;  // self-loop; leave it
        cur = next;
    }
    return cur;
}

} // namespace

OptStats
simplifyCFG(Function &func)
{
    OptStats stats;

    // 1. Degenerate traps become jumps.
    for (Block &blk : func.blocks) {
        if (!blk.ops.empty() && blk.terminator().op == Opcode::Trap &&
            blk.terminator().target0 == blk.terminator().target1) {
            blk.terminator() = makeJmp(blk.terminator().target0);
            ++stats.branchesSimplified;
        }
    }

    // 2. Jump threading: retarget every edge through trivial-jump
    //    blocks.
    auto rewrite_targets = [&](auto &&rewrite) {
        for (Block &blk : func.blocks) {
            if (blk.ops.empty())
                continue;
            Operation &t = blk.terminator();
            switch (t.op) {
              case Opcode::Jmp:
              case Opcode::Call:
                t.target0 = rewrite(t.target0);
                break;
              case Opcode::Trap:
                t.target0 = rewrite(t.target0);
                t.target1 = rewrite(t.target1);
                break;
              default:
                break;
            }
        }
        for (auto &table : func.jumpTables)
            for (BlockId &target : table)
                target = rewrite(target);
    };

    rewrite_targets([&](BlockId b) { return threadTarget(func, b); });

    // 3. Merge single-predecessor straight-line successors.
    bool merged_any = true;
    while (merged_any) {
        merged_any = false;
        const auto preds = blockPredecessors(func);
        for (BlockId b = 0; b < func.blocks.size(); ++b) {
            Block &blk = func.blocks[b];
            if (blk.ops.empty() || blk.terminator().op != Opcode::Jmp)
                continue;
            const BlockId succ = blk.terminator().target0;
            if (succ == b || succ == 0)
                continue;
            if (preds[succ].size() != 1)
                continue;
            // Also refuse if succ appears in a jump table (the table
            // edge is not reflected in single-pred splicing).
            bool in_table = false;
            for (const auto &table : func.jumpTables)
                for (BlockId target : table)
                    if (target == succ)
                        in_table = true;
            if (in_table)
                continue;
            // Splice.
            blk.ops.pop_back();
            Block &victim = func.blocks[succ];
            blk.ops.insert(blk.ops.end(), victim.ops.begin(),
                           victim.ops.end());
            victim.ops.clear();
            // Edge-free placeholder terminator: the block is now
            // unreachable and must not re-enter the merge analysis.
            victim.ops.push_back(makeRet());
            ++stats.blocksMerged;
            merged_any = true;
            break;  // predecessor lists are stale; recompute
        }
    }

    // 4. Drop unreachable blocks and renumber.
    const auto reachable = reachableBlocks(func);
    std::vector<BlockId> renumber(func.blocks.size(), invalidId);
    std::vector<Block> kept;
    for (BlockId b = 0; b < func.blocks.size(); ++b) {
        if (reachable[b]) {
            renumber[b] = static_cast<BlockId>(kept.size());
            kept.push_back(std::move(func.blocks[b]));
        } else {
            ++stats.blocksRemoved;
        }
    }
    func.blocks = std::move(kept);
    rewrite_targets([&](BlockId b) {
        // Unreachable targets can only appear inside unreachable
        // blocks or stale jump tables; park them at the entry.
        return renumber[b] == invalidId ? 0 : renumber[b];
    });

    return stats;
}

OptStats
optimizeFunction(Function &func)
{
    OptStats total;
    for (unsigned round = 0; round < 4; ++round) {
        const unsigned folded = constantFold(func);
        const unsigned copies = copyPropagate(func);
        const unsigned cse = localCSE(func);
        const unsigned dead = deadCodeElim(func);
        total.folded += folded;
        total.copiesProp += copies;
        total.cseReplaced += cse;
        total.deadRemoved += dead;
        unsigned changes = folded + copies + cse + dead;
        const OptStats cfg = simplifyCFG(func);
        total.blocksRemoved += cfg.blocksRemoved;
        total.blocksMerged += cfg.blocksMerged;
        total.branchesSimplified += cfg.branchesSimplified;
        changes += cfg.blocksRemoved + cfg.blocksMerged +
                   cfg.branchesSimplified;
        if (changes == 0)
            break;
    }
    return total;
}

OptStats
optimizeModule(Module &module)
{
    OptStats total;
    for (Function &f : module.functions) {
        const OptStats s = optimizeFunction(f);
        total.folded += s.folded;
        total.copiesProp += s.copiesProp;
        total.cseReplaced += s.cseReplaced;
        total.deadRemoved += s.deadRemoved;
        total.blocksRemoved += s.blocksRemoved;
        total.blocksMerged += s.blocksMerged;
        total.branchesSimplified += s.branchesSimplified;
    }
    return total;
}

} // namespace bsisa
