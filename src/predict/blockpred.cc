/**
 * @file
 * Block predictor implementation.
 */

#include "predict/blockpred.hh"

#include "support/bitutil.hh"
#include "support/logging.hh"

namespace bsisa
{

namespace
{

bool
usesPerAddressHistory(PredictorScheme scheme)
{
    return scheme == PredictorScheme::PAg ||
           scheme == PredictorScheme::PAs;
}

bool
usesAddressHashing(PredictorScheme scheme)
{
    return scheme == PredictorScheme::GAs ||
           scheme == PredictorScheme::PAs;
}

} // namespace

BlockPredictor::BlockPredictor(const PredictorConfig &config)
    : cfg(config), historyMask(lowMask(config.historyBits)),
      histories(usesPerAddressHistory(config.scheme)
                    ? config.historyEntries
                    : 1,
                0),
      pht(std::size_t(1) << config.phtBits), btb(config.btbEntries),
      btbSetMask(config.btbEntries / config.btbAssoc - 1)
{
    BSISA_ASSERT(isPowerOfTwo(cfg.btbEntries));
    BSISA_ASSERT(cfg.btbEntries % cfg.btbAssoc == 0);
    BSISA_ASSERT(isPowerOfTwo(cfg.btbEntries / cfg.btbAssoc));
    BSISA_ASSERT(isPowerOfTwo(cfg.historyEntries));
    ras.reserve(4096);
}

std::uint64_t &
BlockPredictor::historyFor(std::uint64_t pc)
{
    if (histories.size() == 1)
        return histories[0];
    return histories[(pc >> 2) & (histories.size() - 1)];
}

std::uint64_t
BlockPredictor::historyFor(std::uint64_t pc) const
{
    if (histories.size() == 1)
        return histories[0];
    return histories[(pc >> 2) & (histories.size() - 1)];
}

std::size_t
BlockPredictor::phtIndex(std::uint64_t pc) const
{
    const std::uint64_t hist = historyFor(pc);
    if (usesAddressHashing(cfg.scheme))
        return ((pc >> 2) ^ hist) & lowMask(cfg.phtBits);
    return hist & lowMask(cfg.phtBits);
}

BlockPredictor::Prediction
BlockPredictor::predict(std::uint64_t pc) const
{
    const PhtEntry &entry = pht[phtIndex(pc)];
    Prediction p;
    p.trapTaken = entry.trap.predictTaken();
    p.variantBits = (entry.variant1.predictTaken() ? 2u : 0u) |
                    (entry.variant0.predictTaken() ? 1u : 0u);
    return p;
}

BlockPredictor::Probe
BlockPredictor::probe(std::uint64_t pc) const
{
    Probe r;
    r.pred = predict(pc);
    if (const BtbEntry *entry = lookup(pc)) {
        r.btb.succ = entry->succ.data();
        r.btb.lastSucc = entry->lastSucc;
        r.btb.knownMask = entry->knownMask;
    }
    return r;
}

void
BlockPredictor::update(std::uint64_t pc, const Prediction &actual,
                       unsigned succBits, unsigned succIndex)
{
    PhtEntry &entry = pht[phtIndex(pc)];
    entry.trap.train(actual.trapTaken);
    entry.variant1.train((actual.variantBits & 2) != 0);
    entry.variant0.train((actual.variantBits & 1) != 0);
    // Shift in exactly succBits history bits (modification 3).
    if (succBits > 0) {
        std::uint64_t &hist = historyFor(pc);
        hist = ((hist << succBits) | (succIndex & lowMask(succBits))) &
               historyMask;
    }
}

const BlockPredictor::BtbEntry *
BlockPredictor::lookup(std::uint64_t pc) const
{
    const std::size_t set = (pc >> 2) & btbSetMask;
    const BtbEntry *base = &btb[set * cfg.btbAssoc];
    for (unsigned w = 0; w < cfg.btbAssoc; ++w)
        if (base[w].valid && base[w].tag == pc)
            return &base[w];
    return nullptr;
}

BlockPredictor::BtbEntry &
BlockPredictor::lookupOrAllocate(std::uint64_t pc)
{
    const std::size_t set = (pc >> 2) & btbSetMask;
    BtbEntry *base = &btb[set * cfg.btbAssoc];
    ++btbClock;
    BtbEntry *victim = base;
    for (unsigned w = 0; w < cfg.btbAssoc; ++w) {
        BtbEntry &entry = base[w];
        if (entry.valid && entry.tag == pc) {
            entry.lastUse = btbClock;
            return entry;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }
    *victim = BtbEntry{};
    victim->valid = true;
    victim->tag = pc;
    victim->lastUse = btbClock;
    return *victim;
}

std::uint64_t
BlockPredictor::successor(std::uint64_t pc, unsigned slot) const
{
    BSISA_ASSERT(slot < btbSuccessorSlots);
    const BtbEntry *entry = lookup(pc);
    if (!entry || !(entry->knownMask & (1u << slot)))
        return ~0ull;
    return entry->succ[slot];
}

std::uint64_t
BlockPredictor::lastSuccessor(std::uint64_t pc) const
{
    const BtbEntry *entry = lookup(pc);
    return entry ? entry->lastSucc : ~0ull;
}

bool
BlockPredictor::hasEntry(std::uint64_t pc) const
{
    return lookup(pc) != nullptr;
}

void
BlockPredictor::install(std::uint64_t pc, unsigned slot,
                        std::uint64_t token)
{
    BSISA_ASSERT(slot < btbSuccessorSlots);
    BtbEntry &entry = lookupOrAllocate(pc);
    entry.succ[slot] = token;
    entry.knownMask |= 1u << slot;
    entry.lastSucc = token;
}

void
BlockPredictor::pushReturn(std::uint64_t token)
{
    if (ras.size() < 4096)
        ras.push_back(token);
}

std::uint64_t
BlockPredictor::popReturn()
{
    if (ras.empty())
        return ~0ull;
    const std::uint64_t token = ras.back();
    ras.pop_back();
    return token;
}

} // namespace bsisa
