/**
 * @file
 * The block-structured ISA successor predictor (section 4.3).
 *
 * This is the paper's three-way modification of the Two-Level Adaptive
 * Branch Predictor:
 *
 *   1. BTB entries are widened to hold all (up to eight) control-flow
 *      successors of an atomic block.  The trap's two explicit targets
 *      are installed on first encounter; the remaining slots fill in
 *      as fault mispredictions reveal them.
 *   2. Each PHT entry holds three 2-bit counters producing a 3-bit
 *      prediction: one bit for the trap direction and two bits
 *      selecting the successor's enlarged variant (equivalently,
 *      predicting the fault operations of the next block).
 *   3. The branch history register shifts by a VARIABLE number of bits
 *      each prediction: the log2 of the block's successor count,
 *      carried by the trap operation, so blocks with few successors do
 *      not flush useful history.
 */

#ifndef BSISA_PREDICT_BLOCKPRED_HH
#define BSISA_PREDICT_BLOCKPRED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "predict/twolevel.hh"
#include "support/sat_counter.hh"

namespace bsisa
{

/** Successor slots per BTB entry (8 = 2 faults + trap, section 4.2). */
constexpr unsigned btbSuccessorSlots = 8;

class BlockPredictor
{
  public:
    explicit BlockPredictor(const PredictorConfig &config);

    /** A 3-bit structural prediction. */
    struct Prediction
    {
        bool trapTaken = false;
        unsigned variantBits = 0;  //!< 2 bits selecting the variant
    };

    /** Predict the successor-selection bits for the block at @p pc. */
    Prediction predict(std::uint64_t pc) const;

    /**
     * Const view of one BTB entry's successor state, captured by
     * probe().  The slot tokens alias predictor storage: the view is
     * valid until the next install(), so read it before training.
     */
    struct BtbView
    {
        const std::uint64_t *succ = nullptr;  //!< slot tokens | null
        std::uint64_t lastSucc = ~0ull;       //!< ~0 when absent
        std::uint8_t knownMask = 0;

        /** Token in @p slot, or ~0 when the entry/slot is unknown. */
        std::uint64_t
        successor(unsigned slot) const
        {
            return (knownMask >> slot) & 1u ? succ[slot] : ~0ull;
        }
    };

    /** Everything probed by the fetch-outcome capture pre-pass. */
    struct Probe
    {
        Prediction pred;
        BtbView btb;
    };

    /**
     * Const-safe combined lookup: the 3-bit prediction plus the BTB
     * entry view for @p pc in one PHT index and one BTB set probe.
     * predict() + successor() + lastSuccessor() walk the same BTB set
     * once per query; the capture pre-pass issues them back to back
     * per fetch step, so the fused probe halves its table traffic.
     */
    Probe probe(std::uint64_t pc) const;

    /**
     * Train the three counters and shift the history register.
     *
     * @param pc Block address.
     * @param actual Actual selection bits.
     * @param succBits History bits to shift (the trap operation's
     *                 successor-count log, section 4.1).
     * @param succIndex Index of the actual successor within the
     *                  block's successor set (the value shifted in).
     */
    void update(std::uint64_t pc, const Prediction &actual,
                unsigned succBits, unsigned succIndex);

    /**
     * BTB successor lookup: the token stored in slot @p slot of the
     * entry for @p pc, or ~0 when the entry or slot is unknown.
     */
    std::uint64_t successor(std::uint64_t pc, unsigned slot) const;

    /** Most recently observed successor for @p pc (~0 if none). */
    std::uint64_t lastSuccessor(std::uint64_t pc) const;

    /** True iff a BTB entry exists for @p pc. */
    bool hasEntry(std::uint64_t pc) const;

    /** Record the actual successor token in slot @p slot. */
    void install(std::uint64_t pc, unsigned slot, std::uint64_t token);

    /** Call/return stack for block-level return-head prediction. */
    void pushReturn(std::uint64_t token);
    std::uint64_t popReturn();

    const PredictorConfig &config() const { return cfg; }

  private:
    PredictorConfig cfg;
    std::uint64_t historyMask;
    /** One entry for global schemes, historyEntries for PA*. */
    std::vector<std::uint64_t> histories;

    std::uint64_t &historyFor(std::uint64_t pc);
    std::uint64_t historyFor(std::uint64_t pc) const;

    struct PhtEntry
    {
        SatCounter trap{2, 1};
        SatCounter variant1{2, 0};
        SatCounter variant0{2, 0};
    };
    std::vector<PhtEntry> pht;

    struct BtbEntry
    {
        std::uint64_t tag = ~0ull;
        std::array<std::uint64_t, btbSuccessorSlots> succ;
        std::uint8_t knownMask = 0;
        std::uint64_t lastSucc = ~0ull;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;
    /** btbEntries / btbAssoc - 1 (set count asserted power of two),
     *  so set selection is a mask instead of a division. */
    std::uint64_t btbSetMask;
    std::uint64_t btbClock = 0;
    std::vector<std::uint64_t> ras;

    std::size_t phtIndex(std::uint64_t pc) const;
    const BtbEntry *lookup(std::uint64_t pc) const;
    BtbEntry &lookupOrAllocate(std::uint64_t pc);
};

} // namespace bsisa

#endif // BSISA_PREDICT_BLOCKPRED_HH
