/**
 * @file
 * Two-level predictor implementation.
 */

#include "predict/twolevel.hh"

#include "support/bitutil.hh"
#include "support/logging.hh"

namespace bsisa
{

const char *
predictorSchemeName(PredictorScheme scheme)
{
    switch (scheme) {
      case PredictorScheme::GAg: return "GAg";
      case PredictorScheme::GAs: return "GAs";
      case PredictorScheme::PAg: return "PAg";
      case PredictorScheme::PAs: return "PAs";
    }
    return "?";
}

namespace
{

bool
usesPerAddressHistory(PredictorScheme scheme)
{
    return scheme == PredictorScheme::PAg ||
           scheme == PredictorScheme::PAs;
}

bool
usesAddressHashing(PredictorScheme scheme)
{
    return scheme == PredictorScheme::GAs ||
           scheme == PredictorScheme::PAs;
}

} // namespace

TwoLevelPredictor::TwoLevelPredictor(const PredictorConfig &config)
    : cfg(config), historyMask(lowMask(config.historyBits)),
      histories(usesPerAddressHistory(config.scheme)
                    ? config.historyEntries
                    : 1,
                0),
      pht(std::size_t(1) << config.phtBits, SatCounter(2, 1)),
      btb(config.btbEntries),
      btbSetMask(config.btbEntries / config.btbAssoc - 1)
{
    BSISA_ASSERT(isPowerOfTwo(cfg.btbEntries));
    BSISA_ASSERT(cfg.btbEntries % cfg.btbAssoc == 0);
    BSISA_ASSERT(isPowerOfTwo(cfg.btbEntries / cfg.btbAssoc));
    BSISA_ASSERT(isPowerOfTwo(cfg.historyEntries));
    ras.reserve(4096);
}

std::uint64_t &
TwoLevelPredictor::historyFor(std::uint64_t pc)
{
    if (histories.size() == 1)
        return histories[0];
    return histories[(pc >> 2) & (histories.size() - 1)];
}

std::uint64_t
TwoLevelPredictor::historyFor(std::uint64_t pc) const
{
    if (histories.size() == 1)
        return histories[0];
    return histories[(pc >> 2) & (histories.size() - 1)];
}

std::size_t
TwoLevelPredictor::phtIndex(std::uint64_t pc) const
{
    const std::uint64_t mask = lowMask(cfg.phtBits);
    const std::uint64_t hist = historyFor(pc);
    if (usesAddressHashing(cfg.scheme))
        return ((pc >> 2) ^ hist) & mask;  // gshare-style
    return hist & mask;
}

bool
TwoLevelPredictor::predictTaken(std::uint64_t pc) const
{
    return pht[phtIndex(pc)].predictTaken();
}

bool
TwoLevelPredictor::predictTakenSpec(std::uint64_t pc,
                                    std::uint64_t &specHist) const
{
    const std::uint64_t mask = lowMask(cfg.phtBits);
    const std::size_t idx = usesAddressHashing(cfg.scheme)
                                ? ((pc >> 2) ^ specHist) & mask
                                : specHist & mask;
    const bool taken = pht[idx].predictTaken();
    specHist = ((specHist << 1) | (taken ? 1 : 0)) & historyMask;
    return taken;
}

bool
TwoLevelPredictor::usesGlobalHistory() const
{
    return !usesPerAddressHistory(cfg.scheme);
}

void
TwoLevelPredictor::update(std::uint64_t pc, bool taken)
{
    pht[phtIndex(pc)].train(taken);
    std::uint64_t &hist = historyFor(pc);
    hist = ((hist << 1) | (taken ? 1 : 0)) & historyMask;
}

const TwoLevelPredictor::BtbEntry *
TwoLevelPredictor::btbLookup(std::uint64_t pc) const
{
    const std::size_t set = (pc >> 2) & btbSetMask;
    const BtbEntry *base = &btb[set * cfg.btbAssoc];
    for (unsigned w = 0; w < cfg.btbAssoc; ++w)
        if (base[w].valid && base[w].tag == pc)
            return &base[w];
    return nullptr;
}

std::uint64_t
TwoLevelPredictor::predictTarget(std::uint64_t pc) const
{
    const BtbEntry *entry = btbLookup(pc);
    return entry ? entry->target : ~0ull;
}

void
TwoLevelPredictor::updateTarget(std::uint64_t pc, std::uint64_t target)
{
    const std::size_t set = (pc >> 2) & btbSetMask;
    BtbEntry *base = &btb[set * cfg.btbAssoc];
    ++btbClock;
    BtbEntry *victim = base;
    for (unsigned w = 0; w < cfg.btbAssoc; ++w) {
        BtbEntry &entry = base[w];
        if (entry.valid && entry.tag == pc) {
            entry.target = target;
            entry.lastUse = btbClock;
            return;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = btbClock;
}

void
TwoLevelPredictor::pushReturn(std::uint64_t token)
{
    if (ras.size() < 4096)
        ras.push_back(token);
}

std::uint64_t
TwoLevelPredictor::popReturn()
{
    if (ras.empty())
        return ~0ull;
    const std::uint64_t token = ras.back();
    ras.pop_back();
    return token;
}

} // namespace bsisa
