/**
 * @file
 * Two-Level Adaptive Branch Predictor (Yeh and Patt, MICRO-24 1991)
 * for the conventional machine: a global branch history register
 * indexing a pattern history table of 2-bit counters, plus a
 * set-associative BTB for taken targets and indirect jumps, plus a
 * return address stack.
 */

#ifndef BSISA_PREDICT_TWOLEVEL_HH
#define BSISA_PREDICT_TWOLEVEL_HH

#include <cstdint>
#include <vector>

#include "support/sat_counter.hh"

namespace bsisa
{

/**
 * Two-level scheme taxonomy (Yeh and Patt): the first letter selects
 * the history register source (Global or Per-address), the second how
 * the PHT is indexed (g = history only, s = history hashed with the
 * branch address).
 */
enum class PredictorScheme
{
    GAg,  //!< global history, history-indexed PHT
    GAs,  //!< global history, address-hashed PHT (gshare-style)
    PAg,  //!< per-address history, history-indexed PHT
    PAs,  //!< per-address history, address-hashed PHT
};

/** Shared predictor geometry. */
struct PredictorConfig
{
    PredictorScheme scheme = PredictorScheme::GAs;
    unsigned historyBits = 12;
    unsigned phtBits = 14;      //!< log2 of PHT entries
    /** History-table entries for the per-address schemes. */
    unsigned historyEntries = 1024;
    unsigned btbEntries = 2048;
    unsigned btbAssoc = 4;
    bool perfect = false;       //!< oracle mode
};

/** Scheme name for reports. */
const char *predictorSchemeName(PredictorScheme scheme);

/** Prediction statistics. */
struct PredictorStats
{
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    double
    accuracy() const
    {
        return lookups ? 1.0 - double(mispredicts) / double(lookups)
                       : 1.0;
    }
};

/**
 * Conventional two-level predictor.  The unit of prediction is a
 * branch PC; targets are opaque 64-bit tokens (the timing model uses
 * static block ids encoded as addresses).
 */
class TwoLevelPredictor
{
  public:
    explicit TwoLevelPredictor(const PredictorConfig &config);

    /** Predict the direction of the conditional branch at @p pc. */
    bool predictTaken(std::uint64_t pc) const;

    /**
     * Multiple-prediction support (trace caches need several
     * predictions per cycle): predict using @p specHist as the
     * history, then shift the PREDICTED bit into it.  Seed specHist
     * from speculativeHistory() and chain calls; when predictions are
     * right, indices line up with the later update()s exactly.
     */
    bool predictTakenSpec(std::uint64_t pc,
                          std::uint64_t &specHist) const;

    /** Starting point for a speculative-history chain at @p pc. */
    std::uint64_t
    speculativeHistory(std::uint64_t pc) const
    {
        return historyFor(pc);
    }

    /** True for GAg/GAs (one shared history register). */
    bool usesGlobalHistory() const;

    /** Train direction state and shift one history bit. */
    void update(std::uint64_t pc, bool taken);

    /** Predicted target token for @p pc, or ~0 on BTB miss. */
    std::uint64_t predictTarget(std::uint64_t pc) const;

    /** Install/refresh the target token for @p pc. */
    void updateTarget(std::uint64_t pc, std::uint64_t target);

    /** Call/return address stack (modelled as unbounded). */
    void pushReturn(std::uint64_t token);
    /** Pop; returns ~0 when empty. */
    std::uint64_t popReturn();

    const PredictorConfig &config() const { return cfg; }

  private:
    PredictorConfig cfg;
    std::uint64_t historyMask;
    /** One entry for global schemes, historyEntries for PA*. */
    std::vector<std::uint64_t> histories;
    std::vector<SatCounter> pht;

    std::uint64_t &historyFor(std::uint64_t pc);
    std::uint64_t historyFor(std::uint64_t pc) const;
    struct BtbEntry
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t target = ~0ull;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;
    /** btbEntries / btbAssoc - 1 (set count asserted power of two),
     *  so set selection is a mask instead of a division. */
    std::uint64_t btbSetMask;
    std::uint64_t btbClock = 0;
    std::vector<std::uint64_t> ras;

    std::size_t phtIndex(std::uint64_t pc) const;
    const BtbEntry *btbLookup(std::uint64_t pc) const;
};

} // namespace bsisa

#endif // BSISA_PREDICT_TWOLEVEL_HH
