/**
 * @file
 * Linear-scan register allocator implementation.
 */

#include "regalloc/linearscan.hh"

#include <algorithm>
#include <map>

#include "ir/cfg.hh"
#include "regalloc/liveness.hh"
#include "support/logging.hh"

namespace bsisa
{

namespace
{

constexpr RegNum firstPoolReg = firstAllocatableReg;     // r12
constexpr RegNum lastPoolReg = numArchRegs - 1;          // r31
constexpr unsigned poolSize = lastPoolReg - firstPoolReg + 1;

struct Interval
{
    RegNum vreg = invalidId;
    std::uint32_t start = ~0u;
    std::uint32_t end = 0;
    RegNum phys = invalidId;     //!< assigned register
    std::int32_t slot = -1;      //!< spill slot index, or -1
};

} // namespace

RegAllocStats
allocateRegisters(Function &func)
{
    RegAllocStats stats;
    if (func.numVirtualRegs <= numArchRegs) {
        func.numVirtualRegs = numArchRegs;
        return stats;
    }

    // ---------------------------------------------------------------
    // 1. Linearize and build live intervals.
    // ---------------------------------------------------------------
    const Liveness live = computeLiveness(func);

    // Linear position of each operation, blocks in layout order.
    std::vector<std::uint32_t> block_start(func.blocks.size());
    std::uint32_t pos = 0;
    for (BlockId b = 0; b < func.blocks.size(); ++b) {
        block_start[b] = pos;
        pos += static_cast<std::uint32_t>(func.blocks[b].ops.size());
    }
    const std::uint32_t total_ops = pos;

    std::map<RegNum, Interval> intervals;
    auto extend = [&](RegNum r, std::uint32_t p) {
        if (r < firstVirtualReg)
            return;
        Interval &iv = intervals[r];
        iv.vreg = r;
        iv.start = std::min(iv.start, p);
        iv.end = std::max(iv.end, p);
    };

    std::vector<RegNum> uses;
    for (BlockId b = 0; b < func.blocks.size(); ++b) {
        const std::uint32_t bs = block_start[b];
        const std::uint32_t be =
            bs + static_cast<std::uint32_t>(func.blocks[b].ops.size()) - 1;
        for (RegNum r = firstVirtualReg; r < func.numVirtualRegs; ++r) {
            if (live.liveIn[b].contains(r))
                extend(r, bs);
            if (live.liveOut[b].contains(r))
                extend(r, be);
        }
        std::uint32_t p = bs;
        for (const Operation &op : func.blocks[b].ops) {
            uses.clear();
            opUses(op, uses);
            for (RegNum u : uses)
                extend(u, p);
            if (const RegNum d = opDef(op); d != invalidId)
                extend(d, p);
            ++p;
        }
    }
    (void)total_ops;
    stats.intervals = static_cast<unsigned>(intervals.size());

    // ---------------------------------------------------------------
    // 2. Scan.
    // ---------------------------------------------------------------
    std::vector<Interval *> order;
    order.reserve(intervals.size());
    for (auto &[vreg, iv] : intervals)
        order.push_back(&iv);
    std::sort(order.begin(), order.end(),
              [](const Interval *a, const Interval *b) {
                  return a->start != b->start ? a->start < b->start
                                              : a->vreg < b->vreg;
              });

    std::vector<bool> reg_free(poolSize, true);
    std::vector<Interval *> active;  // sorted by increasing end
    std::int32_t next_slot = 0;

    auto expire = [&](std::uint32_t start) {
        while (!active.empty() && active.front()->end < start) {
            reg_free[active.front()->phys - firstPoolReg] = true;
            active.erase(active.begin());
        }
    };
    auto insert_active = [&](Interval *iv) {
        const auto it = std::lower_bound(
            active.begin(), active.end(), iv,
            [](const Interval *a, const Interval *b) {
                return a->end < b->end;
            });
        active.insert(it, iv);
    };

    for (Interval *iv : order) {
        expire(iv->start);
        // Find a free register.
        RegNum phys = invalidId;
        for (unsigned i = 0; i < poolSize; ++i) {
            if (reg_free[i]) {
                phys = firstPoolReg + i;
                break;
            }
        }
        if (phys != invalidId) {
            reg_free[phys - firstPoolReg] = false;
            iv->phys = phys;
            insert_active(iv);
            continue;
        }
        // Spill the interval that ends furthest away.
        Interval *victim = active.back();
        if (victim->end > iv->end) {
            iv->phys = victim->phys;
            victim->phys = invalidId;
            victim->slot = next_slot++;
            active.pop_back();
            insert_active(iv);
            ++stats.spilled;
        } else {
            iv->slot = next_slot++;
            ++stats.spilled;
        }
    }

    // ---------------------------------------------------------------
    // 3. Rewrite operations.
    // ---------------------------------------------------------------
    auto mapping = [&](RegNum r) -> const Interval * {
        if (r < firstVirtualReg)
            return nullptr;
        const auto it = intervals.find(r);
        BSISA_ASSERT(it != intervals.end(), "unmapped virtual register r",
                     r, " in ", func.name);
        return &it->second;
    };

    for (Block &blk : func.blocks) {
        std::vector<Operation> out;
        out.reserve(blk.ops.size());
        for (Operation op : blk.ops) {
            const unsigned nsrc = numSources(op.op);
            const RegNum orig_src1 = op.src1;
            const RegNum orig_src2 = op.src2;
            bool src1_reloaded = false;

            if (nsrc >= 1) {
                if (const Interval *iv = mapping(op.src1)) {
                    if (iv->phys != invalidId) {
                        op.src1 = iv->phys;
                    } else {
                        out.push_back(makeLd(regScratch0, regSp,
                                             iv->slot * 8));
                        op.src1 = regScratch0;
                        src1_reloaded = true;
                        ++stats.spillOpsAdded;
                    }
                }
            }
            if (nsrc >= 2) {
                if (const Interval *iv = mapping(op.src2)) {
                    if (iv->phys != invalidId) {
                        op.src2 = iv->phys;
                    } else if (src1_reloaded && orig_src2 == orig_src1) {
                        // Same spilled register on both sides: reuse
                        // the first reload.
                        op.src2 = regScratch0;
                    } else {
                        out.push_back(makeLd(regScratch1, regSp,
                                             iv->slot * 8));
                        op.src2 = regScratch1;
                        ++stats.spillOpsAdded;
                    }
                }
            }
            if (hasDest(op.op)) {
                if (const Interval *iv = mapping(op.dst)) {
                    if (iv->phys != invalidId) {
                        op.dst = iv->phys;
                        out.push_back(op);
                    } else {
                        op.dst = regScratch0;
                        out.push_back(op);
                        out.push_back(makeSt(regSp, iv->slot * 8,
                                             regScratch0));
                        ++stats.spillOpsAdded;
                    }
                    continue;
                }
            }
            out.push_back(op);
        }
        blk.ops = std::move(out);
    }

    func.numVirtualRegs = numArchRegs;
    func.frameSize = static_cast<std::uint32_t>(next_slot) * 8;
    return stats;
}

RegAllocStats
allocateModule(Module &module)
{
    RegAllocStats total;
    for (Function &f : module.functions) {
        const RegAllocStats s = allocateRegisters(f);
        total.intervals += s.intervals;
        total.spilled += s.spilled;
        total.spillOpsAdded += s.spillOpsAdded;
    }
    return total;
}

} // namespace bsisa
