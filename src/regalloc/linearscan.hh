/**
 * @file
 * Linear-scan register allocation (Poletto-Sarkar style).
 *
 * Maps a function's virtual registers onto the allocatable subset of
 * the 32 architectural GPRs, spilling to stack-frame slots addressed
 * off the stack pointer.  Two architectural registers (r2, r3) are
 * reserved as spill scratches; ABI registers (r4-r11) and the stack
 * pointer are never allocated.
 */

#ifndef BSISA_REGALLOC_LINEARSCAN_HH
#define BSISA_REGALLOC_LINEARSCAN_HH

#include "ir/module.hh"

namespace bsisa
{

/** Allocation summary, for reporting and tests. */
struct RegAllocStats
{
    unsigned intervals = 0;    //!< virtual registers seen
    unsigned spilled = 0;      //!< intervals sent to the stack
    unsigned spillOpsAdded = 0;  //!< reload/store operations inserted
};

/** Scratch registers reserved for spill reloads. */
constexpr RegNum regScratch0 = 2;
constexpr RegNum regScratch1 = 3;

/**
 * Allocate registers for @p func in place.  On return the function
 * uses only architectural registers (numVirtualRegs == numArchRegs)
 * and frameSize covers its spill slots.
 */
RegAllocStats allocateRegisters(Function &func);

/** Allocate registers for every function of @p module. */
RegAllocStats allocateModule(Module &module);

} // namespace bsisa

#endif // BSISA_REGALLOC_LINEARSCAN_HH
