/**
 * @file
 * Liveness analysis implementation.
 */

#include "regalloc/liveness.hh"

#include "ir/cfg.hh"

namespace bsisa
{

void
opUses(const Operation &op, std::vector<RegNum> &uses)
{
    switch (op.op) {
      case Opcode::Call:
        // The callee's register window is initialized from every
        // architectural register, so they are all live into a call.
        for (RegNum r = 1; r < numArchRegs; ++r)
            uses.push_back(r);
        return;
      case Opcode::Ret:
        uses.push_back(regRet);
        return;
      case Opcode::Halt:
        // Keep the program's exit value observable.
        uses.push_back(regRet);
        return;
      default:
        break;
    }
    const unsigned n = numSources(op.op);
    if (n >= 1)
        uses.push_back(op.src1);
    if (n >= 2)
        uses.push_back(op.src2);
}

RegNum
opDef(const Operation &op)
{
    if (op.op == Opcode::Call)
        return regRet;  // the returned value is written back
    return hasDest(op.op) ? op.dst : invalidId;
}

Liveness
computeLiveness(const Function &func)
{
    const RegNum universe = func.numVirtualRegs;
    const std::size_t n = func.blocks.size();

    // Per-block gen (upward-exposed uses) and kill (defs).
    std::vector<RegSet> gen(n, RegSet(universe));
    std::vector<RegSet> kill(n, RegSet(universe));
    std::vector<RegNum> uses;
    for (std::size_t b = 0; b < n; ++b) {
        for (const Operation &op : func.blocks[b].ops) {
            uses.clear();
            opUses(op, uses);
            for (RegNum u : uses)
                if (u != regZero && !kill[b].contains(u))
                    gen[b].insert(u);
            const RegNum d = opDef(op);
            if (d != invalidId)
                kill[b].insert(d);
        }
    }

    std::vector<std::vector<BlockId>> succs(n);
    for (std::size_t b = 0; b < n; ++b)
        succs[b] = blockSuccessors(func, static_cast<BlockId>(b));

    Liveness live;
    live.liveIn.assign(n, RegSet(universe));
    live.liveOut.assign(n, RegSet(universe));

    // Iterate to fixpoint (reverse order converges fast on reducible
    // CFGs).
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = n; i-- > 0;) {
            const BlockId b = static_cast<BlockId>(i);
            for (BlockId s : succs[b])
                changed |= live.liveOut[b].unionWith(live.liveIn[s]);
            // liveIn = gen | (liveOut - kill).  liveIn only grows
            // across iterations, so assignment is monotone here.
            changed |= live.liveIn[b].assignTransfer(
                gen[b], live.liveOut[b], kill[b]);
        }
    }
    return live;
}

} // namespace bsisa
