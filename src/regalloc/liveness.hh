/**
 * @file
 * Per-function register liveness analysis.
 *
 * Classic backward dataflow over the CFG producing live-in/live-out
 * bit sets per block.  Registers are the union of architectural and
 * virtual numbers; dense bitsets keep the analysis cheap even for
 * functions with thousands of virtual registers.
 */

#ifndef BSISA_REGALLOC_LIVENESS_HH
#define BSISA_REGALLOC_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "ir/module.hh"

namespace bsisa
{

/** Dense register set. */
class RegSet
{
  public:
    explicit RegSet(RegNum universe = 0)
        : words((universe + 63) / 64, 0)
    {
    }

    void
    insert(RegNum r)
    {
        words[r >> 6] |= 1ULL << (r & 63);
    }

    void
    erase(RegNum r)
    {
        words[r >> 6] &= ~(1ULL << (r & 63));
    }

    bool
    contains(RegNum r) const
    {
        return (words[r >> 6] >> (r & 63)) & 1;
    }

    /** this |= other; returns true if this changed. */
    bool
    unionWith(const RegSet &other)
    {
        bool changed = false;
        for (std::size_t i = 0; i < words.size(); ++i) {
            const std::uint64_t merged = words[i] | other.words[i];
            if (merged != words[i]) {
                words[i] = merged;
                changed = true;
            }
        }
        return changed;
    }

    /** this = gen | (out & ~kill); returns true if this changed. */
    bool
    assignTransfer(const RegSet &gen, const RegSet &out, const RegSet &kill)
    {
        bool changed = false;
        for (std::size_t i = 0; i < words.size(); ++i) {
            const std::uint64_t v =
                gen.words[i] | (out.words[i] & ~kill.words[i]);
            if (v != words[i]) {
                words[i] = v;
                changed = true;
            }
        }
        return changed;
    }

    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (std::uint64_t w : words)
            n += static_cast<std::size_t>(__builtin_popcountll(w));
        return n;
    }

  private:
    std::vector<std::uint64_t> words;
};

/**
 * Register uses of @p op appended to @p uses.  A Call conservatively
 * reads every architectural register (the callee's window is copied
 * from them); a Ret reads the return-value register.
 */
void opUses(const Operation &op, std::vector<RegNum> &uses);

/** Defined register of @p op, or invalidId. */
RegNum opDef(const Operation &op);

/** Liveness result: one live-in and live-out set per block. */
struct Liveness
{
    std::vector<RegSet> liveIn;
    std::vector<RegSet> liveOut;
};

/** Compute liveness for @p func. */
Liveness computeLiveness(const Function &func);

} // namespace bsisa

#endif // BSISA_REGALLOC_LIVENESS_HH
