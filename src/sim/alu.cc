/**
 * @file
 * ALU semantics implementation.
 */

#include "sim/alu.hh"

#include <bit>
#include <climits>

namespace bsisa
{

namespace
{

std::int64_t
signedDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return 0;
    if (a == INT64_MIN && b == -1)
        return INT64_MIN;
    return a / b;
}

std::int64_t
signedRem(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return a;
    if (a == INT64_MIN && b == -1)
        return 0;
    return a % b;
}

std::uint64_t
fp(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
fp(std::uint64_t v)
{
    return std::bit_cast<double>(v);
}

} // namespace

bool
evalAluOp(const Operation &op, std::uint64_t s1, std::uint64_t s2,
          std::uint64_t &out)
{
    const auto i1 = static_cast<std::int64_t>(s1);
    const auto i2 = static_cast<std::int64_t>(s2);
    const auto uimm = static_cast<std::uint64_t>(op.imm);
    switch (op.op) {
      case Opcode::Nop: return false;
      case Opcode::MovI: out = uimm; return true;
      case Opcode::Mov: out = s1; return true;
      case Opcode::Add: out = s1 + s2; return true;
      case Opcode::AddI: out = s1 + uimm; return true;
      case Opcode::Sub: out = s1 - s2; return true;
      case Opcode::And: out = s1 & s2; return true;
      case Opcode::AndI: out = s1 & uimm; return true;
      case Opcode::Or: out = s1 | s2; return true;
      case Opcode::Xor: out = s1 ^ s2; return true;
      case Opcode::CmpEq: out = s1 == s2; return true;
      case Opcode::CmpEqI: out = s1 == uimm; return true;
      case Opcode::CmpNe: out = s1 != s2; return true;
      case Opcode::CmpLt: out = i1 < i2; return true;
      case Opcode::CmpLtI: out = i1 < op.imm; return true;
      case Opcode::CmpLe: out = i1 <= i2; return true;
      case Opcode::Shl: out = s1 << (s2 & 63); return true;
      case Opcode::ShlI: out = s1 << (op.imm & 63); return true;
      case Opcode::Shr: out = s1 >> (s2 & 63); return true;
      case Opcode::ShrI: out = s1 >> (op.imm & 63); return true;
      case Opcode::BitTest: out = (s1 >> (s2 & 63)) & 1; return true;
      case Opcode::Mul: out = s1 * s2; return true;
      case Opcode::Div:
        out = static_cast<std::uint64_t>(signedDiv(i1, i2));
        return true;
      case Opcode::Rem:
        out = static_cast<std::uint64_t>(signedRem(i1, i2));
        return true;
      case Opcode::FAdd: out = fp(fp(s1) + fp(s2)); return true;
      case Opcode::FSub: out = fp(fp(s1) - fp(s2)); return true;
      case Opcode::FMul: out = fp(fp(s1) * fp(s2)); return true;
      case Opcode::FDiv:
        out = fp(fp(s2) == 0.0 ? 0.0 : fp(s1) / fp(s2));
        return true;
      case Opcode::FCvt:
        out = fp(static_cast<double>(i1));
        return true;
      default:
        return false;
    }
}

} // namespace bsisa
