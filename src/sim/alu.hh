/**
 * @file
 * Single source of truth for ALU operation semantics.
 *
 * The conventional interpreter, the block-structured interpreter, and
 * the constant folder all evaluate operations through this function so
 * their semantics can never drift apart.
 */

#ifndef BSISA_SIM_ALU_HH
#define BSISA_SIM_ALU_HH

#include <cstdint>

#include "arch/operation.hh"

namespace bsisa
{

/**
 * Evaluate a register-to-register/immediate computational operation.
 *
 * @param op The operation (imm is read for immediate forms).
 * @param s1 Value of src1 (ignored when unused).
 * @param s2 Value of src2 (ignored when unused).
 * @param out Result on success.
 * @retval true op is a pure computational op and was evaluated.
 * @retval false op is a memory, control, or fault operation.
 */
bool evalAluOp(const Operation &op, std::uint64_t s1, std::uint64_t s2,
               std::uint64_t &out);

} // namespace bsisa

#endif // BSISA_SIM_ALU_HH
