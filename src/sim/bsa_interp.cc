/**
 * @file
 * Block-structured interpreter implementation.
 */

#include "sim/bsa_interp.hh"

#include <memory>

#include "sim/alu.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace bsisa
{

VariantPolicy
firstVariantPolicy()
{
    return [](const BsaModule &, FuncId, const HeadTrie &trie) {
        return trie.emitted.front();
    };
}

VariantPolicy
randomVariantPolicy(std::uint64_t seed)
{
    auto rng = std::make_shared<Rng>(seed);
    return [rng](const BsaModule &, FuncId, const HeadTrie &trie) {
        return trie.emitted[rng->nextBelow(trie.emitted.size())];
    };
}

BsaInterp::BsaInterp(const BsaModule &bsa_mod, VariantPolicy pol,
                     Limits lim)
    : bsa(bsa_mod), module(*bsa_mod.src), policy(std::move(pol)),
      limits(lim)
{
    mem.init(Module::dataBase, module.data);

    const Function &main_fn = module.functions[module.mainFunc];
    Frame f;
    f.func = module.mainFunc;
    f.retTo = invalidId;
    f.regs.assign(numArchRegs, 0);
    f.regs[regSp] = Module::stackBase - main_fn.frameSize;
    frames.push_back(std::move(f));

    curBlock = fetchHead(module.mainFunc, 0);
}

AtomicBlockId
BsaInterp::fetchHead(FuncId func, BlockId head)
{
    const HeadTrie &trie = bsa.trie(func, head);
    const int node = policy(bsa, func, trie);
    BSISA_ASSERT(trie.nodes[node].block != invalidId,
                 "policy chose a pass-through node");
    return trie.nodes[node].block;
}

std::uint64_t
BsaInterp::exitValue() const
{
    return frames.front().regs[regRet];
}

bool
BsaInterp::step()
{
    if (isHalted || nCommittedOps + nSuppressedOps >= limits.maxOps ||
        nCommittedBlocks + nSuppressedBlocks >= limits.maxBlocks) {
        return false;
    }

    const AtomicBlock &blk = bsa.blocks[curBlock];
    Frame &frame = frames.back();
    BSISA_ASSERT(blk.func == frame.func,
                 "fetched block from the wrong function");

    // Speculation buffers: register shadow + store buffer.
    std::vector<std::uint64_t> shadow = frame.regs;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> stores;

    auto read_reg = [&](RegNum r) {
        return r == regZero ? 0 : shadow[r];
    };
    auto read_mem = [&](std::uint64_t addr) -> std::uint64_t {
        for (auto it = stores.rbegin(); it != stores.rend(); ++it)
            if (it->first == (addr & ~7ULL))
                return it->second;
        return mem.readSpec(addr);
    };

    std::uint64_t exec_ops = 0;
    for (const Operation &op : blk.ops) {
        ++exec_ops;
        const unsigned nsrc = numSources(op.op);
        const std::uint64_t s1 = nsrc >= 1 ? read_reg(op.src1) : 0;
        const std::uint64_t s2 = nsrc >= 2 ? read_reg(op.src2) : 0;

        std::uint64_t result;
        if (evalAluOp(op, s1, s2, result)) {
            shadow[op.dst] = result;
            continue;
        }

        switch (op.op) {
          case Opcode::Nop:
            break;
          case Opcode::Ld:
            shadow[op.dst] =
                read_mem(s1 + static_cast<std::uint64_t>(op.imm));
            break;
          case Opcode::St:
            stores.emplace_back(
                (s1 + static_cast<std::uint64_t>(op.imm)) & ~7ULL, s2);
            break;
          case Opcode::Fault: {
            const bool inverted = op.imm != 0;
            const bool fires = inverted ? s1 == 0 : s1 != 0;
            if (fires) {
                // Suppress: discard all buffered state, redirect.
                nSuppressedOps += exec_ops;
                ++nSuppressedBlocks;
                curBlock = op.target0;
                BSISA_ASSERT(bsa.blocks[curBlock].func == frame.func);
                return true;
            }
            break;
          }
          case Opcode::Jmp:
          case Opcode::Trap:
          case Opcode::IJmp:
          case Opcode::Call:
          case Opcode::Ret:
          case Opcode::Halt: {
            // Terminator reached: the block commits.
            frame.regs = shadow;
            for (const auto &[addr, value] : stores)
                mem.write(addr, value);
            nCommittedOps += exec_ops;
            ++nCommittedBlocks;

            switch (op.op) {
              case Opcode::Jmp:
                curBlock = fetchHead(frame.func, op.target0);
                break;
              case Opcode::Trap:
                curBlock = fetchHead(frame.func,
                                     s1 != 0 ? op.target0 : op.target1);
                break;
              case Opcode::IJmp: {
                const auto &table =
                    module.functions[frame.func].jumpTables[op.imm];
                curBlock =
                    fetchHead(frame.func, table[s1 % table.size()]);
                break;
              }
              case Opcode::Call: {
                const Function &callee = module.functions[op.callee];
                Frame nf;
                nf.func = op.callee;
                nf.retTo = op.target0;
                nf.regs.assign(numArchRegs, 0);
                for (RegNum r = 0; r < numArchRegs; ++r)
                    nf.regs[r] = frame.regs[r];
                nf.regs[regSp] -= callee.frameSize;
                if (frames.size() >= 100000)
                    fatal("call stack overflow (runaway recursion?)");
                frames.push_back(std::move(nf));
                curBlock = fetchHead(op.callee, 0);
                break;
              }
              case Opcode::Ret: {
                BSISA_ASSERT(frames.size() > 1);
                const std::uint64_t ret_val = frame.regs[regRet];
                const BlockId ret_to = frame.retTo;
                frames.pop_back();
                frames.back().regs[regRet] = ret_val;
                curBlock = fetchHead(frames.back().func, ret_to);
                break;
              }
              case Opcode::Halt:
                isHalted = true;
                break;
              default:
                break;
            }
            return true;
          }
          default:
            panic("unhandled opcode ", opcodeName(op.op),
                  " in atomic block");
        }
    }
    panic("atomic block fell off the end without a terminator");
}

void
BsaInterp::run()
{
    while (step()) {
    }
}

} // namespace bsisa
