/**
 * @file
 * Functional interpreter for block-structured ISA programs.
 *
 * Executes a BsaModule with the architectural atomic-block semantics:
 * every operation of a block executes into a speculation buffer; if
 * any fault operation's condition fires, the whole block is suppressed
 * (no architectural effect) and control redirects to the fault's
 * target; otherwise the block commits atomically.
 *
 * The *variant policy* models the fetch engine's freedom: whenever
 * control reaches an enlargement head, any emitted variant of that
 * head is a legal block to fetch (a wrong one will fault its way to
 * the right one).  The equivalence property test runs an adversarial
 * random policy and checks that the final architectural state matches
 * the conventional interpreter exactly.
 */

#ifndef BSISA_SIM_BSA_INTERP_HH
#define BSISA_SIM_BSA_INTERP_HH

#include <functional>

#include "core/bsa.hh"
#include "sim/interp.hh"
#include "sim/memory.hh"

namespace bsisa
{

/**
 * Picks which emitted variant to fetch for a head.
 * Receives the trie and must return one of trie.emitted's node
 * indices.
 */
using VariantPolicy =
    std::function<int(const BsaModule &, FuncId, const HeadTrie &)>;

/** Always fetch the deepest variant consistent with nothing (the
 *  first emitted node = shallowest in construction order is NOT used;
 *  this policy picks variant 0 deterministically). */
VariantPolicy firstVariantPolicy();

/** Random variant selection from a deterministic seed. */
VariantPolicy randomVariantPolicy(std::uint64_t seed);

class BsaInterp
{
  public:
    struct Limits
    {
        std::uint64_t maxOps = 1ull << 62;
        std::uint64_t maxBlocks = 1ull << 62;
    };

    BsaInterp(const BsaModule &bsa, VariantPolicy policy, Limits limits);
    BsaInterp(const BsaModule &bsa, VariantPolicy policy)
        : BsaInterp(bsa, std::move(policy), Limits())
    {
    }

    /**
     * Execute one fetched atomic block (commit or suppress).
     * @retval false the program halted or hit a limit.
     */
    bool step();

    /** Run to completion or limit. */
    void run();

    bool halted() const { return isHalted; }

    /** Committed (architecturally executed) operations. */
    std::uint64_t committedOps() const { return nCommittedOps; }
    /** Operations executed then suppressed by faults. */
    std::uint64_t suppressedOps() const { return nSuppressedOps; }
    /** Blocks committed. */
    std::uint64_t committedBlocks() const { return nCommittedBlocks; }
    /** Blocks suppressed by a firing fault. */
    std::uint64_t suppressedBlocks() const { return nSuppressedBlocks; }

    std::uint64_t exitValue() const;
    std::uint64_t memChecksum() const { return mem.checksum(); }

    /** Global-data-only checksum (see Interp::dataChecksum). */
    std::uint64_t
    dataChecksum() const
    {
        return mem.checksumRange(
            Module::dataBase, Module::dataBase + module.data.size() * 8);
    }

  private:
    struct Frame
    {
        FuncId func;
        BlockId retTo;
        std::vector<std::uint64_t> regs;
    };

    const BsaModule &bsa;
    const Module &module;
    VariantPolicy policy;
    Limits limits;
    Memory mem;
    std::vector<Frame> frames;
    AtomicBlockId curBlock;
    bool isHalted = false;
    std::uint64_t nCommittedOps = 0;
    std::uint64_t nSuppressedOps = 0;
    std::uint64_t nCommittedBlocks = 0;
    std::uint64_t nSuppressedBlocks = 0;

    /** Fetch the policy-chosen variant of (func, head). */
    AtomicBlockId fetchHead(FuncId func, BlockId head);
};

} // namespace bsisa

#endif // BSISA_SIM_BSA_INTERP_HH
