/**
 * @file
 * Block-structured fetch source implementation.
 */

#include "sim/bsa_source.hh"

#include <bit>

#include "support/logging.hh"

namespace bsisa
{

namespace
{

std::uint64_t
headToken(FuncId func, BlockId block)
{
    return (std::uint64_t(func) << 32) | block;
}

} // namespace

BsaFetchSource::BsaFetchSource(const BsaModule &bsa_mod,
                               const MachineConfig &config,
                               Interp::Limits limits)
    : BsaFetchSource(bsa_mod, config,
                     std::make_unique<InterpEventSource>(*bsa_mod.src,
                                                         limits),
                     nullptr)
{
}

BsaFetchSource::BsaFetchSource(const BsaModule &bsa_mod,
                               const MachineConfig &config,
                               const ExecTrace &trace)
    : BsaFetchSource(bsa_mod, config,
                     std::make_unique<TraceReplaySource>(trace),
                     nullptr)
{
}

BsaFetchSource::BsaFetchSource(const BsaModule &bsa_mod,
                               const MachineConfig &config,
                               const ExecTrace &trace,
                               const DecodedProgram &sharedDecoded)
    : BsaFetchSource(bsa_mod, config,
                     std::make_unique<TraceReplaySource>(trace),
                     &sharedDecoded)
{
}

BsaFetchSource::BsaFetchSource(const BsaModule &bsa_mod,
                               const MachineConfig &config,
                               std::unique_ptr<EventSource> source,
                               const DecodedProgram *sharedDecoded)
    : bsa(bsa_mod), module(*bsa_mod.src),
      ownedDecoded(sharedDecoded ? DecodedProgram()
                                 : DecodedProgram::forBsa(bsa_mod)),
      decoded(sharedDecoded ? sharedDecoded : &ownedDecoded),
      perfect(config.perfectPrediction), predictor(config.predictor),
      stream(std::move(source))
{
    refill();
}

void
BsaFetchSource::refill()
{
    while (!streamDone && events.size() < lookahead) {
        BlockEvent ev;
        if (stream->next(ev))
            events.push_back(ev);
        else
            streamDone = true;
    }
}

int
BsaFetchSource::maximalVariant(FuncId func, BlockId head,
                               unsigned &eventsUsed) const
{
    const HeadTrie &trie = bsa.trie(func, head);
    const Function &fn = module.functions[func];
    int node = 0;
    unsigned i = 0;
    BSISA_ASSERT(!events.empty() && events[0].block == head &&
                 events[0].func == func);

    for (;;) {
        const TrieNode &tn = trie.nodes[node];
        const Operation &term = fn.blocks[tn.bb].terminator();
        int child = -1;
        if (term.op == Opcode::Jmp) {
            child = tn.childThru;
        } else if (term.op == Opcode::Trap && i < events.size()) {
            child = events[i].taken ? tn.childTaken : tn.childNotTaken;
        }
        if (child == -1 || i + 1 >= events.size()) {
            // Stop here; if the walk was cut short by a truncated
            // event stream the node may be pass-through, so fall to
            // its default emitted descendant.
            int stop = node;
            while (trie.nodes[stop].block == invalidId) {
                const TrieNode &cur = trie.nodes[stop];
                stop = cur.childThru != -1        ? cur.childThru
                       : cur.childNotTaken != -1 ? cur.childNotTaken
                                                 : cur.childTaken;
                BSISA_ASSERT(stop != -1);
            }
            const AtomicBlock &blk = bsa.blocks[trie.nodes[stop].block];
            eventsUsed = static_cast<unsigned>(std::min<std::size_t>(
                blk.bbs.size(), events.size()));
            return stop;
        }
        node = child;
        ++i;
    }
}

bool
BsaFetchSource::compatible(AtomicBlockId block, FuncId func,
                           BlockId head) const
{
    if (block == invalidId)
        return false;
    const AtomicBlock &blk = bsa.blocks[block];
    if (blk.func != func || blk.bbs.front() != head)
        return false;
    if (blk.bbs.size() > events.size())
        return false;
    for (std::size_t i = 0; i < blk.bbs.size(); ++i) {
        const BlockEvent &ev = events[i];
        if (ev.func != func || ev.block != blk.bbs[i])
            return false;
        if (i + 1 < blk.bbs.size() &&
            (ev.nextFunc != func || ev.nextBlock != blk.bbs[i + 1])) {
            return false;
        }
    }
    return true;
}

unsigned
BsaFetchSource::variantIndex(const HeadTrie &trie, AtomicBlockId block)
{
    for (unsigned v = 0; v < trie.emitted.size(); ++v)
        if (trie.nodes[trie.emitted[v]].block == block)
            return v;
    panic("block is not a variant of this trie");
}

void
BsaFetchSource::predictSuccessor(AtomicBlockId committed,
                                 const BlockEvent &lastEvent)
{
    const AtomicBlock &blk = bsa.blocks[committed];
    const DecodedUnit &du = decoded->unit(committed);
    pendingRedirect = RedirectInfo{};
    predictedNext = invalidId;

    if (lastEvent.exit == ExitKind::Halt || events.empty())
        return;

    const FuncId next_func = lastEvent.nextFunc;
    const BlockId next_head = lastEvent.nextBlock;
    BSISA_ASSERT(events[0].func == next_func &&
                 events[0].block == next_head);

    const HeadTrie &next_trie = bsa.trie(next_func, next_head);
    unsigned used = 0;
    const int max_node = maximalVariant(next_func, next_head, used);
    const AtomicBlockId s_max = next_trie.nodes[max_node].block;

    if (perfect) {
        predictedNext = s_max;
        return;
    }

    const std::uint64_t pc = blk.addr;
    const Operation &term = blk.terminator();

    // Canonical successor slot layout: taken-side variants first.
    auto side_variants = [&](BlockId target) -> const HeadTrie * {
        return bsa.findTrie(blk.func, target);
    };
    auto slot_of = [&](bool taken_side, unsigned variant) -> unsigned {
        unsigned slot = variant;
        if (term.op == Opcode::Trap && !taken_side) {
            const HeadTrie *t0 = side_variants(term.target0);
            slot += t0 ? static_cast<unsigned>(t0->emitted.size()) : 0;
        }
        return slot & (btbSuccessorSlots - 1);
    };

    // ----------------------------------------------------- predict
    // One combined const probe (PHT + BTB view) serves the whole
    // predict phase; it stays valid until install() below.
    AtomicBlockId candidate = invalidId;
    const BlockPredictor::Probe pr = predictor.probe(pc);
    const BlockPredictor::Prediction &pred = pr.pred;
    switch (term.op) {
      case Opcode::Trap: {
        const BlockId target =
            pred.trapTaken ? term.target0 : term.target1;
        if (const HeadTrie *trie = side_variants(target)) {
            const unsigned nvar =
                static_cast<unsigned>(trie->emitted.size());
            const unsigned variant = std::min(pred.variantBits,
                                              nvar - 1);
            const AtomicBlockId structural =
                trie->nodes[trie->emitted[variant]].block;
            const unsigned slot = slot_of(pred.trapTaken, variant);
            if (pr.btb.successor(slot) == structural)
                candidate = structural;
            else if (pr.btb.lastSucc != ~0ull)
                candidate =
                    static_cast<AtomicBlockId>(pr.btb.lastSucc);
        }
        break;
      }
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret: {
        FuncId hf = next_func;
        BlockId hb = next_head;
        if (term.op == Opcode::Ret) {
            // The return address stack provides the head.
            const std::uint64_t token = predictor.popReturn();
            if (token == ~0ull)
                break;
            hf = static_cast<FuncId>(token >> 32);
            hb = static_cast<BlockId>(token & 0xffffffff);
        } else if (term.op == Opcode::Call) {
            hf = term.callee;
            hb = 0;
        } else {
            hb = term.target0;
        }
        if (const HeadTrie *trie = bsa.findTrie(hf, hb)) {
            const unsigned nvar =
                static_cast<unsigned>(trie->emitted.size());
            const unsigned variant = std::min(pred.variantBits,
                                              nvar - 1);
            const AtomicBlockId structural =
                trie->nodes[trie->emitted[variant]].block;
            const unsigned slot = variant & (btbSuccessorSlots - 1);
            if (pr.btb.successor(slot) == structural)
                candidate = structural;
            else if (pr.btb.lastSucc != ~0ull)
                candidate =
                    static_cast<AtomicBlockId>(pr.btb.lastSucc);
        }
        break;
      }
      case Opcode::IJmp: {
        if (pr.btb.lastSucc != ~0ull)
            candidate = static_cast<AtomicBlockId>(pr.btb.lastSucc);
        break;
      }
      default:
        break;
    }
    if (term.op == Opcode::Call)
        predictor.pushReturn(headToken(blk.func, term.target0));

    // ------------------------------------------------------- train
    const unsigned actual_variant = variantIndex(next_trie, s_max);
    BlockPredictor::Prediction actual;
    actual.trapTaken =
        term.op == Opcode::Trap ? lastEvent.taken : false;
    actual.variantBits = actual_variant;
    unsigned succ_index = actual_variant;
    if (term.op == Opcode::Trap)
        succ_index = slot_of(lastEvent.taken, actual_variant);
    predictor.update(pc, actual, blk.succBits, succ_index);
    predictor.install(pc, succ_index & (btbSuccessorSlots - 1), s_max);

    // ---------------------------------------------------- classify
    bool counted = blk.succBits > 0 || term.op == Opcode::IJmp;
    if (counted)
        ++nPredictions;

    if (candidate != invalidId &&
        compatible(candidate, next_func, next_head)) {
        predictedNext = candidate;  // commits (possibly shallow)
        return;
    }

    // Misprediction.
    if (!counted)
        ++nPredictions;  // cold-BTB misses on single-successor blocks
    pendingRedirect.mispredicted = true;
    const bool same_head =
        candidate != invalidId &&
        bsa.blocks[candidate].func == next_func &&
        bsa.blocks[candidate].bbs.front() == next_head;

    if (!same_head) {
        // Wrong head (trap direction / indirect target / cold BTB):
        // resolved by this block's terminator.
        ++nTrapMiss;
        pendingRedirect.resolveInWrongBlock = false;
        pendingRedirect.resolveOpIdx = du.opCount - 1;
        if (candidate != invalidId) {
            const AtomicBlock &wrong = bsa.blocks[candidate];
            const DecodedUnit &wdu = decoded->unit(candidate);
            pendingRedirect.wrongOps = decoded->ops(wdu);
            pendingRedirect.wrongOpCount = wdu.opCount;
            pendingRedirect.wrongPc = wrong.addr;
            pendingRedirect.wrongBytes = wdu.sizeBytes;
        }
        predictedNext = s_max;
        return;
    }

    // Same head, wrong variant: a fault inside the wrong block fires.
    ++nFaultMiss;
    pendingRedirect.isFault = true;
    pendingRedirect.resolveInWrongBlock = true;

    // Walk the fault-target cascade until a compatible block.
    AtomicBlockId wrong_id = candidate;
    unsigned hops = 0;
    for (;;) {
        const DecodedUnit &wdu = decoded->unit(wrong_id);
        const DecodedFault *wfaults = decoded->faults(wdu);
        // Find the first divergent merge edge by comparing the
        // decoded direction mask with the actual stream; thru edges
        // cannot diverge, so trapMask walks only the fault edges.
        bool diverged = false;
        unsigned resolve_op = wdu.opCount - 1;
        AtomicBlockId fault_target = invalidId;
        unsigned dir_idx = 0;
        for (std::uint64_t m = wdu.trapMask; m;
             m &= m - 1, ++dir_idx) {
            const unsigned i =
                static_cast<unsigned>(std::countr_zero(m));
            if (i >= events.size())
                break;  // truncated stream at the program tail
            const bool actual_dir = events[i].taken;
            const bool merged_dir = (wdu.dirMask >> dir_idx) & 1;
            if (actual_dir != merged_dir) {
                diverged = true;
                resolve_op = wfaults[dir_idx].opIdx;
                fault_target = wfaults[dir_idx].target;
                break;
            }
        }
        if (!diverged) {
            if (hops == 0) {
                // No divergent fault exists (possible only when the
                // event stream is truncated at the program tail):
                // resolve at the previous terminator instead.
                pendingRedirect.resolveInWrongBlock = false;
                pendingRedirect.resolveOpIdx = du.opCount - 1;
            }
            // The cascade landed on a compatible block.
            break;
        }
        if (hops == 0) {
            // The first wrong block is the one the pipeline issues.
            pendingRedirect.resolveOpIdx = resolve_op;
            pendingRedirect.wrongOps = decoded->ops(wdu);
            pendingRedirect.wrongOpCount = wdu.opCount;
            pendingRedirect.wrongPc = bsa.blocks[wrong_id].addr;
            pendingRedirect.wrongBytes = wdu.sizeBytes;
        }
        ++hops;
        ++nCascadeHops;
        wrong_id = fault_target;
        if (hops > 8) {
            wrong_id = s_max;
            break;
        }
    }
    pendingRedirect.extraHops = hops > 0 ? hops - 1 : 0;
    // The cascade-final compatible block; next() falls back to the
    // maximal variant if the stream was truncated underneath us.
    predictedNext = wrong_id;
}

bool
BsaFetchSource::next(TimingUnit &unit)
{
    refill();
    if (events.empty())
        return false;

    const FuncId func = events[0].func;
    const BlockId head = events[0].block;

    AtomicBlockId committed;
    if (predictedNext != invalidId &&
        compatible(predictedNext, func, head)) {
        committed = predictedNext;
    } else {
        unsigned used = 0;
        const int node = maximalVariant(func, head, used);
        committed = bsa.trie(func, head).nodes[node].block;
    }

    const AtomicBlock &blk = bsa.blocks[committed];
    const DecodedUnit &du = decoded->unit(committed);
    unit.pc = blk.addr;
    unit.bytes = du.sizeBytes;
    unit.ops = decoded->ops(du);
    unit.opCount = du.opCount;
    unit.redirect = pendingRedirect;

    // Gather the block's memory addresses.  Replayed events slice one
    // shared pool in stream order, so consecutive spans are adjacent
    // and the whole block is a single zero-copy span; live-interp
    // events rotate through separate buffers and fall back to a copy.
    const std::size_t consume =
        std::min<std::size_t>(blk.bbs.size(), events.size());
    bool adjacent = true;
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < consume; ++i) {
        const BlockEvent &ev = events[i];
        if (i > 0 &&
            events[0].memAddrs + total != ev.memAddrs) {
            adjacent = false;
            break;
        }
        total += ev.memCount;
    }
    if (adjacent) {
        unit.memAddrs = events.front().memAddrs;
        unit.memCount = total;
    } else {
        emitMemAddrs.clear();
        for (std::size_t i = 0; i < consume; ++i) {
            const BlockEvent &ev = events[i];
            emitMemAddrs.insert(emitMemAddrs.end(), ev.memAddrs,
                                ev.memAddrs + ev.memCount);
        }
        unit.memAddrs = emitMemAddrs.data();
        unit.memCount =
            static_cast<std::uint32_t>(emitMemAddrs.size());
    }

    // Consume the block's events (spans stay valid per the
    // EventSource stability contract).
    BlockEvent last;
    for (std::size_t i = 0; i < consume; ++i) {
        if (i + 1 == consume)
            last = events.front();
        events.pop_front();
    }

    refill();
    predictSuccessor(committed, last);
    return true;
}

} // namespace bsisa
