/**
 * @file
 * Fetch source for the block-structured machine.
 *
 * Walks the committed basic-block stream (from the functional
 * interpreter) and groups it into atomic blocks by descending each
 * enlargement head's variant trie along the *actual* branch
 * directions.  The block successor predictor chooses which variant the
 * machine fetches; a compatible (prefix) choice commits directly —
 * possibly a shallower block than the maximal one, wasting fetch
 * bandwidth but costing no squash — while an incompatible choice is a
 * misprediction whose resolving operation is either the previous
 * block's trap (wrong direction / wrong head) or the first divergent
 * fault inside the wrongly fetched block (wrong variant, the costly
 * case the paper highlights: good work is discarded and re-executed).
 */

#ifndef BSISA_SIM_BSA_SOURCE_HH
#define BSISA_SIM_BSA_SOURCE_HH

#include <memory>

#include "codegen/layout.hh"
#include "core/bsa.hh"
#include "predict/blockpred.hh"
#include "sim/event_ring.hh"
#include "sim/fetch_source.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace bsisa
{

class BsaFetchSource : public FetchSource
{
  public:
    /** Drive a private functional interpreter. */
    BsaFetchSource(const BsaModule &bsa, const MachineConfig &config,
                   Interp::Limits limits);

    /** Replay a captured trace (shared across timing configs). */
    BsaFetchSource(const BsaModule &bsa, const MachineConfig &config,
                   const ExecTrace &trace);

    /** Replay sharing a pre-built decode: lockstep batches build the
     *  DecodedProgram once and hand it to every lane's source, so a
     *  batch holds exactly one copy of the static metadata. */
    BsaFetchSource(const BsaModule &bsa, const MachineConfig &config,
                   const ExecTrace &trace,
                   const DecodedProgram &sharedDecoded);

    bool next(TimingUnit &unit) override;

    std::uint64_t predictions() const override { return nPredictions; }
    std::uint64_t mispredicts() const override
    {
        return nTrapMiss + nFaultMiss;
    }
    std::uint64_t trapMispredicts() const override { return nTrapMiss; }
    std::uint64_t faultMispredicts() const override
    {
        return nFaultMiss;
    }
    std::uint64_t cascadeHops() const override { return nCascadeHops; }

  private:
    /** Common tail of the public constructors; @p sharedDecoded is
     *  null when this source should build (and own) its decode. */
    BsaFetchSource(const BsaModule &bsa, const MachineConfig &config,
                   std::unique_ptr<EventSource> source,
                   const DecodedProgram *sharedDecoded);

    /** Lookahead depth (ring capacity); must stay below the
     *  EventSource span-stability window. */
    static constexpr std::size_t lookahead = 64;
    static_assert(lookahead < eventSpanStability);

    const BsaModule &bsa;
    const Module &module;
    /** Per-op metadata and merge masks: owned when standalone
     *  (decoded points at ownedDecoded), borrowed when batched. */
    DecodedProgram ownedDecoded;
    const DecodedProgram *decoded;
    bool perfect;
    BlockPredictor predictor;
    std::unique_ptr<EventSource> stream;

    /** Lookahead of committed basic-block events (fixed ring: the
     *  refill/consume cycle never touches the allocator). */
    EventRing<BlockEvent, lookahead> events;
    bool streamDone = false;

    /** Successor block the predictor chose for the upcoming head
     *  (invalidId on the first unit / after Halt). */
    AtomicBlockId predictedNext = invalidId;

    /** Redirect info describing how the upcoming unit gets fetched. */
    RedirectInfo pendingRedirect;

    /** Fallback storage for the emitted unit's memory addresses, used
     *  only when the consumed events' spans are not adjacent in their
     *  pool (live-interp runs; replayed traces are always adjacent and
     *  stream through zero-copy). */
    std::vector<std::uint64_t> emitMemAddrs;

    std::uint64_t nPredictions = 0;
    std::uint64_t nTrapMiss = 0;
    std::uint64_t nFaultMiss = 0;
    std::uint64_t nCascadeHops = 0;

    void refill();

    /**
     * Greedy maximal walk of (func, head)'s trie against the actual
     * directions in the lookahead buffer.
     * @return emitted trie node index; eventsUsed is the number of
     *         buffered events the variant covers.
     */
    int maximalVariant(FuncId func, BlockId head,
                       unsigned &eventsUsed) const;

    /** True iff @p block's merge path matches the buffered events
     *  (i.e. fetching it would commit without any fault firing). */
    bool compatible(AtomicBlockId block, FuncId func,
                    BlockId head) const;

    /** Index of @p block within @p trie's emitted list. */
    static unsigned variantIndex(const HeadTrie &trie,
                                 AtomicBlockId block);

    /** Predict the successor of the just-emitted block and set up
     *  predictedNext/pendingRedirect for the next unit. */
    void predictSuccessor(AtomicBlockId committed,
                          const BlockEvent &lastEvent);
};

} // namespace bsisa

#endif // BSISA_SIM_BSA_SOURCE_HH
