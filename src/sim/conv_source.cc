/**
 * @file
 * Conventional fetch source implementation.
 */

#include "sim/conv_source.hh"

#include "support/logging.hh"

namespace bsisa
{

namespace
{

/** Opaque token for predictor targets: (func, block). */
std::uint64_t
blockToken(FuncId func, BlockId block)
{
    return (std::uint64_t(func) << 32) | block;
}

} // namespace

ConvFetchSource::ConvFetchSource(const Module &mod,
                                 const ConvLayout &lay,
                                 const MachineConfig &config,
                                 Interp::Limits limits)
    : ConvFetchSource(mod, lay, config,
                      std::make_unique<InterpEventSource>(mod, limits),
                      nullptr)
{
}

ConvFetchSource::ConvFetchSource(const Module &mod,
                                 const ConvLayout &lay,
                                 const MachineConfig &config,
                                 const ExecTrace &trace)
    : ConvFetchSource(mod, lay, config,
                      std::make_unique<TraceReplaySource>(trace),
                      nullptr)
{
}

ConvFetchSource::ConvFetchSource(const Module &mod,
                                 const ConvLayout &lay,
                                 const MachineConfig &config,
                                 const ExecTrace &trace,
                                 const DecodedProgram &sharedDecoded)
    : ConvFetchSource(mod, lay, config,
                      std::make_unique<TraceReplaySource>(trace),
                      &sharedDecoded)
{
}

ConvFetchSource::ConvFetchSource(const Module &mod,
                                 const ConvLayout &lay,
                                 const MachineConfig &config,
                                 std::unique_ptr<EventSource> source,
                                 const DecodedProgram *sharedDecoded)
    : module(mod), layout(lay),
      ownedDecoded(sharedDecoded ? DecodedProgram()
                                 : DecodedProgram::forModule(mod)),
      decoded(sharedDecoded ? sharedDecoded : &ownedDecoded),
      pred(mod, lay, *decoded, config), events(std::move(source))
{
    curValid = events->next(cur);
    nextValid = curValid && events->next(nextEv);
}

void
ConvFetchSource::advance()
{
    std::swap(cur, nextEv);
    curValid = nextValid;
    nextValid = curValid && events->next(nextEv);
}

void
ConvPredictor::predictSuccessor(FuncId func, BlockId block,
                                ExitKind exit, bool taken,
                                FuncId nextFunc, BlockId nextBlock)
{
    pendingRedirect = RedirectInfo{};
    if (perfect)
        return;

    const Function &fn = module.functions[func];
    const std::uint64_t pc = layout.addrOf(func, block);
    const Operation &term = fn.blocks[block].terminator();
    const unsigned last_op_idx =
        decoded.unit(func, block).opCount - 1;

    switch (exit) {
      case ExitKind::Trap: {
        ++nPredictions;
        const bool predicted = predictor.predictTaken(pc);
        predictor.update(pc, taken);
        if (predicted != taken) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
            pendingRedirect.resolveInWrongBlock = false;
            pendingRedirect.resolveOpIdx = last_op_idx;
            // The wrongly fetched block is the predicted direction's
            // target.
            const BlockId wrong =
                predicted ? term.target0 : term.target1;
            const DecodedUnit &wdu = decoded.unit(func, wrong);
            pendingRedirect.wrongOps = decoded.ops(wdu);
            pendingRedirect.wrongOpCount = wdu.opCount;
            pendingRedirect.wrongPc = layout.addrOf(func, wrong);
            pendingRedirect.wrongBytes = layout.bytesOf(func, wrong);
        }
        break;
      }
      case ExitKind::IJump: {
        ++nPredictions;
        const std::uint64_t actual = blockToken(nextFunc, nextBlock);
        const std::uint64_t predicted = predictor.predictTarget(pc);
        predictor.updateTarget(pc, actual);
        if (predicted != actual) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
            pendingRedirect.resolveOpIdx = last_op_idx;
            if (predicted != ~0ull) {
                const auto wrong_func =
                    static_cast<FuncId>(predicted >> 32);
                const auto wrong_block =
                    static_cast<BlockId>(predicted & 0xffffffff);
                const DecodedUnit &wdu =
                    decoded.unit(wrong_func, wrong_block);
                pendingRedirect.wrongOps = decoded.ops(wdu);
                pendingRedirect.wrongOpCount = wdu.opCount;
                pendingRedirect.wrongPc =
                    layout.addrOf(wrong_func, wrong_block);
                pendingRedirect.wrongBytes =
                    layout.bytesOf(wrong_func, wrong_block);
            }
        }
        break;
      }
      case ExitKind::Call:
        // Push the continuation; the callee entry is decodable.
        predictor.pushReturn(blockToken(func, term.target0));
        break;
      case ExitKind::Ret: {
        ++nPredictions;
        const std::uint64_t actual = blockToken(nextFunc, nextBlock);
        const std::uint64_t predicted = predictor.popReturn();
        if (predicted != actual) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
            pendingRedirect.resolveOpIdx = last_op_idx;
        }
        break;
      }
      case ExitKind::Jump:
      case ExitKind::Halt:
        break;  // targets are decodable; never mispredicted
    }
}

void
ConvPredictor::captureOutcomes(const ExecTrace &trace,
                               FetchOutcomeStream &out)
{
    // The fused conventional driver compares redirect steps against
    // truncated positions, so the stream length must fit the 32-bit
    // step indices (the BSA driver asserts the same bound).
    BSISA_ASSERT(trace.eventCount <= 0xffffffffull,
                 "redirect step indices are 32-bit");
    // Exact upper bound (at most one redirect per event), reserved up
    // front so the capture loop is allocation-free: the lockstep
    // steady state performs a length-independent number of heap
    // allocations (tests/test_decoded.cc).  Oracle predictors never
    // redirect and skip the reservation entirely.
    if (!perfect) {
        out.redirects.reserve(trace.eventCount);
        out.redirectStep.reserve(trace.eventCount);
    }
    for (std::size_t pos = 0; pos < trace.eventCount; ++pos) {
        const TraceEvent &e = trace.events[pos];
        if (pendingRedirect.mispredicted) {
            out.redirects.push_back(pendingRedirect);
            out.redirectStep.push_back(
                static_cast<std::uint32_t>(pos));
        }
        predictSuccessor(e.func, e.block, e.exit, e.taken, e.nextFunc,
                         e.nextBlock);
    }
    out.nPredictions = nPredictions;
    out.nTrapMiss = nMispredicts;
}

bool
ConvFetchSource::next(TimingUnit &unit)
{
    if (!curValid)
        return false;

    unit.pc = layout.addrOf(cur.func, cur.block);
    unit.bytes = layout.bytesOf(cur.func, cur.block);
    const DecodedUnit &du = decoded->unit(cur.func, cur.block);
    unit.ops = decoded->ops(du);
    unit.opCount = du.opCount;
    // Zero-copy: cur's span stays valid until the source advances
    // past the lookahead, well after the pipeline consumes the unit.
    unit.memAddrs = cur.memAddrs;
    unit.memCount = cur.memCount;
    unit.redirect = pred.pending();

    // Predict this unit's successor; the result describes how the
    // NEXT unit gets fetched.
    pred.predictSuccessor(cur.func, cur.block, cur.exit, cur.taken,
                          cur.nextFunc, cur.nextBlock);
    advance();
    return true;
}

} // namespace bsisa
