/**
 * @file
 * Conventional fetch source implementation.
 */

#include "sim/conv_source.hh"

#include "support/logging.hh"

namespace bsisa
{

namespace
{

/** Opaque token for predictor targets: (func, block). */
std::uint64_t
blockToken(FuncId func, BlockId block)
{
    return (std::uint64_t(func) << 32) | block;
}

} // namespace

ConvFetchSource::ConvFetchSource(const Module &mod,
                                 const ConvLayout &lay,
                                 const MachineConfig &config,
                                 Interp::Limits limits)
    : ConvFetchSource(mod, lay, config,
                      std::make_unique<InterpEventSource>(mod, limits))
{
}

ConvFetchSource::ConvFetchSource(const Module &mod,
                                 const ConvLayout &lay,
                                 const MachineConfig &config,
                                 const ExecTrace &trace)
    : ConvFetchSource(mod, lay, config,
                      std::make_unique<TraceReplaySource>(trace))
{
}

ConvFetchSource::ConvFetchSource(const Module &mod,
                                 const ConvLayout &lay,
                                 const MachineConfig &config,
                                 std::unique_ptr<EventSource> source)
    : module(mod), layout(lay),
      decoded(DecodedProgram::forModule(mod)),
      perfect(config.perfectPrediction),
      predictor(config.predictor), events(std::move(source))
{
    curValid = events->next(cur);
    nextValid = curValid && events->next(nextEv);
}

void
ConvFetchSource::advance()
{
    std::swap(cur, nextEv);
    curValid = nextValid;
    nextValid = curValid && events->next(nextEv);
}

void
ConvFetchSource::predictSuccessor()
{
    pendingRedirect = RedirectInfo{};
    if (perfect)
        return;

    const Function &fn = module.functions[cur.func];
    const std::uint64_t pc = layout.addrOf(cur.func, cur.block);
    const Operation &term = fn.blocks[cur.block].terminator();
    const unsigned last_op_idx =
        decoded.unit(cur.func, cur.block).opCount - 1;

    switch (cur.exit) {
      case ExitKind::Trap: {
        ++nPredictions;
        const bool predicted = predictor.predictTaken(pc);
        predictor.update(pc, cur.taken);
        if (predicted != cur.taken) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
            pendingRedirect.resolveInWrongBlock = false;
            pendingRedirect.resolveOpIdx = last_op_idx;
            // The wrongly fetched block is the predicted direction's
            // target.
            const BlockId wrong =
                predicted ? term.target0 : term.target1;
            const DecodedUnit &wdu = decoded.unit(cur.func, wrong);
            pendingRedirect.wrongOps = decoded.ops(wdu);
            pendingRedirect.wrongOpCount = wdu.opCount;
            pendingRedirect.wrongPc = layout.addrOf(cur.func, wrong);
            pendingRedirect.wrongBytes =
                layout.bytesOf(cur.func, wrong);
        }
        break;
      }
      case ExitKind::IJump: {
        ++nPredictions;
        const std::uint64_t actual =
            blockToken(cur.nextFunc, cur.nextBlock);
        const std::uint64_t predicted = predictor.predictTarget(pc);
        predictor.updateTarget(pc, actual);
        if (predicted != actual) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
            pendingRedirect.resolveOpIdx = last_op_idx;
            if (predicted != ~0ull) {
                const auto wrong_func =
                    static_cast<FuncId>(predicted >> 32);
                const auto wrong_block =
                    static_cast<BlockId>(predicted & 0xffffffff);
                const DecodedUnit &wdu =
                    decoded.unit(wrong_func, wrong_block);
                pendingRedirect.wrongOps = decoded.ops(wdu);
                pendingRedirect.wrongOpCount = wdu.opCount;
                pendingRedirect.wrongPc =
                    layout.addrOf(wrong_func, wrong_block);
                pendingRedirect.wrongBytes =
                    layout.bytesOf(wrong_func, wrong_block);
            }
        }
        break;
      }
      case ExitKind::Call:
        // Push the continuation; the callee entry is decodable.
        predictor.pushReturn(blockToken(cur.func, term.target0));
        break;
      case ExitKind::Ret: {
        ++nPredictions;
        const std::uint64_t actual =
            blockToken(cur.nextFunc, cur.nextBlock);
        const std::uint64_t predicted = predictor.popReturn();
        if (predicted != actual) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
            pendingRedirect.resolveOpIdx = last_op_idx;
        }
        break;
      }
      case ExitKind::Jump:
      case ExitKind::Halt:
        break;  // targets are decodable; never mispredicted
    }
}

bool
ConvFetchSource::next(TimingUnit &unit)
{
    if (!curValid)
        return false;

    unit.pc = layout.addrOf(cur.func, cur.block);
    unit.bytes = layout.bytesOf(cur.func, cur.block);
    const DecodedUnit &du = decoded.unit(cur.func, cur.block);
    unit.ops = decoded.ops(du);
    unit.opCount = du.opCount;
    // Zero-copy: cur's span stays valid until the source advances
    // past the lookahead, well after the pipeline consumes the unit.
    unit.memAddrs = cur.memAddrs;
    unit.memCount = cur.memCount;
    unit.redirect = pendingRedirect;

    // Predict this unit's successor; the result describes how the
    // NEXT unit gets fetched.
    predictSuccessor();
    advance();
    return true;
}

} // namespace bsisa
