/**
 * @file
 * Fetch source for the conventional machine: one basic block per
 * cycle, a classic two-level adaptive predictor for trap directions,
 * BTB-predicted indirect jumps, and a return address stack.
 */

#ifndef BSISA_SIM_CONV_SOURCE_HH
#define BSISA_SIM_CONV_SOURCE_HH

#include <memory>

#include "codegen/layout.hh"
#include "predict/twolevel.hh"
#include "sim/fetch_source.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace bsisa
{

class ConvFetchSource : public FetchSource
{
  public:
    /** Drive a private functional interpreter. */
    ConvFetchSource(const Module &module, const ConvLayout &layout,
                    const MachineConfig &config, Interp::Limits limits);

    /** Replay a captured trace (shared across timing configs). */
    ConvFetchSource(const Module &module, const ConvLayout &layout,
                    const MachineConfig &config, const ExecTrace &trace);

    bool next(TimingUnit &unit) override;

    std::uint64_t predictions() const override { return nPredictions; }
    std::uint64_t mispredicts() const override { return nMispredicts; }
    std::uint64_t trapMispredicts() const override
    {
        return nMispredicts;
    }
    std::uint64_t faultMispredicts() const override { return 0; }
    std::uint64_t cascadeHops() const override { return 0; }

  private:
    /** Common tail of both public constructors. */
    ConvFetchSource(const Module &module, const ConvLayout &layout,
                    const MachineConfig &config,
                    std::unique_ptr<EventSource> source);

    const Module &module;
    const ConvLayout &layout;
    /** Per-op metadata decoded once at construction. */
    DecodedProgram decoded;
    bool perfect;
    TwoLevelPredictor predictor;
    std::unique_ptr<EventSource> events;

    /** Double-buffered events: current and lookahead.  Each event's
     *  memAddrs span outlives the lookahead (EventSource span
     *  contract), so the emitted unit aliases cur's span directly. */
    BlockEvent cur, nextEv;
    bool curValid = false;
    bool nextValid = false;

    /** Redirect info computed while predicting cur's successor. */
    RedirectInfo pendingRedirect;

    std::uint64_t nPredictions = 0;
    std::uint64_t nMispredicts = 0;

    void advance();
    /** Predict cur's successor, filling pendingRedirect for the NEXT
     *  unit and training the predictor. */
    void predictSuccessor();
};

} // namespace bsisa

#endif // BSISA_SIM_CONV_SOURCE_HH
