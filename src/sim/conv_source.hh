/**
 * @file
 * Fetch source for the conventional machine: one basic block per
 * cycle, a classic two-level adaptive predictor for trap directions,
 * BTB-predicted indirect jumps, and a return address stack.
 */

#ifndef BSISA_SIM_CONV_SOURCE_HH
#define BSISA_SIM_CONV_SOURCE_HH

#include <memory>

#include "codegen/layout.hh"
#include "predict/twolevel.hh"
#include "sim/fetch_outcome.hh"
#include "sim/fetch_source.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace bsisa
{

/**
 * The conventional machine's prediction state for one config: the
 * two-level trap predictor, BTB, and return stack, plus the redirect
 * info describing how the *next* unit gets fetched.
 *
 * Factored out of ConvFetchSource so the lockstep batch driver
 * (sim/lockstep.cc) can walk the shared trace once and advance one
 * ConvPredictor per lane — the only config-dependent piece of the
 * conventional fetch path.
 */
class ConvPredictor
{
  public:
    ConvPredictor(const Module &module, const ConvLayout &layout,
                  const DecodedProgram &decoded,
                  const MachineConfig &config)
        : module(module), layout(layout), decoded(decoded),
          perfect(config.perfectPrediction),
          predictor(config.predictor)
    {
    }

    /** Predict the successor of the event just emitted, training the
     *  predictor and filling pending() for the NEXT unit. */
    void predictSuccessor(FuncId func, BlockId block, ExitKind exit,
                          bool taken, FuncId nextFunc,
                          BlockId nextBlock);

    /**
     * Decoupled fetch-outcome pre-pass: run this predictor over the
     * whole committed stream of @p trace in one sweep, recording the
     * sparse redirect outcomes into @p out (redirects[i] applies to
     * the unit fetched at trace position redirectStep[i]).  The
     * conventional machine's units ARE the trace events, so no
     * per-step records are stored — a timing walk reconstructs each
     * unit from the event and gathers its lane's redirect by cursor.
     * Identical call sequence to the interleaved driver (pending()
     * read before predictSuccessor() per event), so the trained
     * predictor state and the statistics are bit-identical.
     */
    void captureOutcomes(const ExecTrace &trace,
                         FetchOutcomeStream &out);

    /** Redirect info for the unit about to be fetched. */
    const RedirectInfo &pending() const { return pendingRedirect; }

    std::uint64_t predictions() const { return nPredictions; }
    std::uint64_t mispredicts() const { return nMispredicts; }

  private:
    const Module &module;
    const ConvLayout &layout;
    const DecodedProgram &decoded;
    bool perfect;
    TwoLevelPredictor predictor;
    RedirectInfo pendingRedirect;
    std::uint64_t nPredictions = 0;
    std::uint64_t nMispredicts = 0;
};

class ConvFetchSource : public FetchSource
{
  public:
    /** Drive a private functional interpreter. */
    ConvFetchSource(const Module &module, const ConvLayout &layout,
                    const MachineConfig &config, Interp::Limits limits);

    /** Replay a captured trace (shared across timing configs). */
    ConvFetchSource(const Module &module, const ConvLayout &layout,
                    const MachineConfig &config, const ExecTrace &trace);

    /** Replay sharing a pre-built decode: lockstep batches build the
     *  DecodedProgram once and hand it to every lane's source, so a
     *  batch holds exactly one copy of the static metadata. */
    ConvFetchSource(const Module &module, const ConvLayout &layout,
                    const MachineConfig &config, const ExecTrace &trace,
                    const DecodedProgram &sharedDecoded);

    bool next(TimingUnit &unit) override;

    std::uint64_t predictions() const override
    {
        return pred.predictions();
    }
    std::uint64_t mispredicts() const override
    {
        return pred.mispredicts();
    }
    std::uint64_t trapMispredicts() const override
    {
        return pred.mispredicts();
    }
    std::uint64_t faultMispredicts() const override { return 0; }
    std::uint64_t cascadeHops() const override { return 0; }

  private:
    /** Common tail of the public constructors; @p sharedDecoded is
     *  null when this source should build (and own) its decode. */
    ConvFetchSource(const Module &module, const ConvLayout &layout,
                    const MachineConfig &config,
                    std::unique_ptr<EventSource> source,
                    const DecodedProgram *sharedDecoded);

    const Module &module;
    const ConvLayout &layout;
    /** Per-op metadata: owned when standalone (decoded points at
     *  ownedDecoded), borrowed when batched (ownedDecoded empty). */
    DecodedProgram ownedDecoded;
    const DecodedProgram *decoded;
    ConvPredictor pred;
    std::unique_ptr<EventSource> events;

    /** Double-buffered events: current and lookahead.  Each event's
     *  memAddrs span outlives the lookahead (EventSource span
     *  contract), so the emitted unit aliases cur's span directly. */
    BlockEvent cur, nextEv;
    bool curValid = false;
    bool nextValid = false;

    void advance();
};

} // namespace bsisa

#endif // BSISA_SIM_CONV_SOURCE_HH
