/**
 * @file
 * Decode-layer implementation.
 */

#include "sim/decoded.hh"

#include "support/logging.hh"

namespace bsisa
{

namespace
{

DecodedOp
decodeOp(const Operation &op)
{
    DecodedOp d;
    const unsigned nsrc = numSources(op.op);
    d.srcCount = static_cast<std::uint8_t>(nsrc);
    if (nsrc >= 1) {
        BSISA_ASSERT(op.src1 < numArchRegs);
        d.src1 = static_cast<std::uint8_t>(op.src1);
    }
    if (nsrc >= 2) {
        BSISA_ASSERT(op.src2 < numArchRegs);
        d.src2 = static_cast<std::uint8_t>(op.src2);
    }
    if (hasDest(op.op)) {
        // The dump-slot convention needs dst to be a real register:
        // regZero writes are verifier errors, and anything >= the
        // architectural count never reaches a timing model.
        BSISA_ASSERT(op.dst != regZero && op.dst < numArchRegs);
        d.dst = static_cast<std::uint8_t>(op.dst);
    }
    const unsigned latency = op.latency();
    BSISA_ASSERT(latency > 0 && latency < 256);
    d.latency = static_cast<std::uint8_t>(latency);
    if (op.op == Opcode::Ld)
        d.flags = opIsMem | opIsLoad;
    else if (op.op == Opcode::St)
        d.flags = opIsMem;
    else if (op.op == Opcode::Fault)
        d.flags = opIsFault;
    return d;
}

} // namespace

void
DecodedProgram::appendUnit(const std::vector<Operation> &ops)
{
    DecodedUnit u;
    u.opBegin = static_cast<std::uint32_t>(opPool.size());
    u.opCount = static_cast<std::uint32_t>(ops.size());
    u.faultBegin = static_cast<std::uint32_t>(faultPool.size());
    u.sizeBytes = u.opCount * opBytes;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        opPool.push_back(decodeOp(ops[i]));
        if (ops[i].op == Opcode::Fault) {
            faultPool.push_back(
                {static_cast<std::uint32_t>(i), ops[i].target0});
            ++u.faultCount;
        }
    }
    units.push_back(u);
}

DecodedProgram
DecodedProgram::forModule(const Module &module)
{
    DecodedProgram p;
    p.funcBase.reserve(module.functions.size());
    for (const Function &fn : module.functions) {
        p.funcBase.push_back(static_cast<std::uint32_t>(p.units.size()));
        for (const Block &blk : fn.blocks)
            p.appendUnit(blk.ops);
    }
    return p;
}

DecodedProgram
DecodedProgram::forBsa(const BsaModule &bsa)
{
    BSISA_ASSERT(bsa.src);
    const Module &src = *bsa.src;
    DecodedProgram p;
    for (const AtomicBlock &blk : bsa.blocks) {
        p.appendUnit(blk.ops);
        DecodedUnit &u = p.units.back();

        // Merge-edge masks: position i covers the edge between
        // constituent blocks i and i+1.  The terminators live in the
        // SOURCE program (the enlargement replaced them).
        BSISA_ASSERT(blk.bbs.size() <= 64,
                     "merge path too deep for a 64-bit mask");
        const Function &fn = src.functions[blk.func];
        unsigned trap_rank = 0;
        for (std::size_t i = 0; i + 1 < blk.bbs.size(); ++i) {
            const Operation &term = fn.blocks[blk.bbs[i]].terminator();
            if (term.op != Opcode::Trap)
                continue;  // thru edge
            u.trapMask |= std::uint64_t(1) << i;
            if (blk.dirs[trap_rank])
                u.dirMask |= std::uint64_t(1) << trap_rank;
            ++trap_rank;
        }
        // Fault ops correspond 1:1, in order, with trap merge edges.
        BSISA_ASSERT(trap_rank == u.faultCount);
        BSISA_ASSERT(trap_rank == blk.dirs.size());
        BSISA_ASSERT(u.faultCount == blk.numFaults);
        BSISA_ASSERT(u.sizeBytes == blk.sizeBytes());
    }
    return p;
}

} // namespace bsisa
