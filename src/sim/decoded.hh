/**
 * @file
 * Pre-decoded program metadata for the timing models.
 *
 * The cycle-level pipeline only ever needs a few bits per operation —
 * which registers it reads and writes, its Table-1 latency, and
 * whether it is a memory access or a fault — yet the seed code
 * re-derived all of them (numSources/hasDest/opcodeClass switches) for
 * every *dynamic* instance of every operation.  A DecodedProgram
 * computes them once per *static* operation when the fetch source is
 * built, packing each op into a 6-byte record inside one flat pool the
 * scheduling loops walk linearly.
 *
 * Register conventions remove the per-op branches from the scheduler:
 *   - absent sources decode to regZero, whose ready time is pinned at
 *     0 (no operation may write it), so reading it is a no-op in the
 *     max() chain;
 *   - absent destinations decode to regDump, one slot past the
 *     architectural registers; scoreboards are sized numArchRegs + 1
 *     and the dump slot is never read.
 *
 * Per fetch unit (basic block or atomic block) a DecodedUnit caches
 * the op slice, the byte footprint, and — for atomic blocks — the
 * ordered fault-operation list plus two bitmasks over merge positions
 * (trapMask: which constituent blocks ended in a trap in the source
 * program; dirMask: the merged direction of each such trap) so the
 * fault-mispredict cascade in the BSA fetch source never rescans
 * operations or re-resolves source-program terminators.
 */

#ifndef BSISA_SIM_DECODED_HH
#define BSISA_SIM_DECODED_HH

#include <cstdint>
#include <vector>

#include "core/bsa.hh"
#include "ir/module.hh"

namespace bsisa
{

/** Scoreboard slot for operations without a destination register. */
constexpr RegNum regDump = numArchRegs;

/** DecodedOp::flags bits. */
enum : std::uint8_t
{
    opIsMem = 1u << 0,    //!< Ld or St
    opIsLoad = 1u << 1,   //!< Ld (dcache misses extend the latency)
    opIsFault = 1u << 2,  //!< interior fault operation
};

/** One pre-decoded operation (see file comment for conventions). */
struct DecodedOp
{
    std::uint8_t src1 = regZero;  //!< regZero when not read
    std::uint8_t src2 = regZero;  //!< regZero when not read
    std::uint8_t dst = regDump;   //!< regDump when not written
    std::uint8_t srcCount = 0;    //!< register sources (0..2)
    std::uint8_t latency = 1;     //!< Table-1 execution latency
    std::uint8_t flags = 0;
};

/** One fault operation of an atomic block, in program order. */
struct DecodedFault
{
    std::uint32_t opIdx = 0;           //!< index within the unit's ops
    AtomicBlockId target = invalidId;  //!< redirect target when fired
};

/** Per-fetch-unit slice descriptors into the program's pools. */
struct DecodedUnit
{
    std::uint32_t opBegin = 0;
    std::uint32_t opCount = 0;
    std::uint32_t faultBegin = 0;
    std::uint32_t faultCount = 0;
    /** Code bytes (opCount * opBytes, cached). */
    std::uint32_t sizeBytes = 0;
    /** Bit i set: constituent block i ends in a Trap in the source
     *  program (a fault merge edge; thru edges contribute no bit). */
    std::uint64_t trapMask = 0;
    /** Bit k set: the k-th trap merge took the taken direction
     *  (AtomicBlock::dirs as a mask; bits indexed by trap rank). */
    std::uint64_t dirMask = 0;
};

/**
 * All decoded units of one program form.  Conventional modules index
 * units by (function, block); block-structured modules by
 * AtomicBlockId.  Pools are immutable after construction, so pointers
 * into them stay valid for the program's lifetime and may be handed
 * to the pipeline without copying.
 */
class DecodedProgram
{
  public:
    /** Decode every basic block of @p module. */
    static DecodedProgram forModule(const Module &module);

    /** Decode every atomic block of @p bsa (and its merge masks). */
    static DecodedProgram forBsa(const BsaModule &bsa);

    /** Unit of atomic block @p id (BSA form). */
    const DecodedUnit &
    unit(AtomicBlockId id) const
    {
        return units[id];
    }

    /** Unit of (func, block) (conventional form). */
    const DecodedUnit &
    unit(FuncId func, BlockId block) const
    {
        return units[funcBase[func] + block];
    }

    const DecodedOp *
    ops(const DecodedUnit &u) const
    {
        return opPool.data() + u.opBegin;
    }

    const DecodedFault *
    faults(const DecodedUnit &u) const
    {
        return faultPool.data() + u.faultBegin;
    }

  private:
    void appendUnit(const std::vector<Operation> &ops);

    std::vector<DecodedOp> opPool;
    std::vector<DecodedFault> faultPool;
    std::vector<DecodedUnit> units;
    /** Conventional form: units index of each function's block 0. */
    std::vector<std::uint32_t> funcBase;
};

} // namespace bsisa

#endif // BSISA_SIM_DECODED_HH
