/**
 * @file
 * Fixed-capacity ring buffer for the fetch sources' committed-event
 * lookahead.  Replaces the std::deque buffers, whose chunked storage
 * allocates and frees on the steady-state hot path.  Capacity is a
 * compile-time power of two sized above the source's lookahead depth,
 * so push/pop never touch the allocator; overflow is a logic error and
 * asserts.
 */

#ifndef BSISA_SIM_EVENT_RING_HH
#define BSISA_SIM_EVENT_RING_HH

#include <array>
#include <cstddef>

#include "support/logging.hh"

namespace bsisa
{

template <typename T, std::size_t N>
class EventRing
{
    static_assert((N & (N - 1)) == 0, "capacity must be a power of two");

  public:
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    T &
    operator[](std::size_t i)
    {
        BSISA_ASSERT(i < count);
        return buf[(head + i) & (N - 1)];
    }

    const T &
    operator[](std::size_t i) const
    {
        BSISA_ASSERT(i < count);
        return buf[(head + i) & (N - 1)];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }

    void
    push_back(const T &v)
    {
        BSISA_ASSERT(count < N, "event ring overflow");
        buf[(head + count) & (N - 1)] = v;
        ++count;
    }

    /** Re-queue at the front (defensive paths only). */
    void
    push_front(const T &v)
    {
        BSISA_ASSERT(count < N, "event ring overflow");
        head = (head + N - 1) & (N - 1);
        buf[head] = v;
        ++count;
    }

    void
    pop_front()
    {
        BSISA_ASSERT(count > 0);
        head = (head + 1) & (N - 1);
        --count;
    }

  private:
    std::array<T, N> buf{};
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace bsisa

#endif // BSISA_SIM_EVENT_RING_HH
