/**
 * @file
 * Decoupled fetch-outcome streams for the lockstep sweep engine.
 *
 * Prediction is purely stream-driven: predictors train on committed
 * outcomes, never on timing, so a prediction group's entire fetch side
 * — which block commits at each stream position, whether the fetch was
 * redirected, and where the unit's committed memory addresses live —
 * is a pure function of (predictor identity, stream position).  The
 * lockstep drivers exploit this by running the predictor/fetch side of
 * each distinct predictor configuration exactly ONCE over the trace in
 * a pre-pass, recording one compact FetchOutcomeRecord per fetch step
 * into a FetchOutcomeStream, and then driving the timing lanes off the
 * recorded outcomes as plain data.  Because the timing phase no longer
 * interleaves with prediction, lanes from *different* prediction
 * groups whose streams coincide at a position can step as one
 * full-width op-major batch — the per-lane redirect rows are gathered
 * from the groups' streams instead of queried live (the exact analogue
 * of the shared committed-order dcache stream of PR 5).
 *
 * Records are indexed by fetch step; redirects are sparse (mispredicts
 * only) and stored side-by-side with the step index they attach to, so
 * a clean-running group costs 16 bytes per fetch step and nothing per
 * redirect.  RedirectInfo's wrong-path pointers reference the shared
 * DecodedProgram, which outlives the engine, so storing them is safe;
 * non-adjacent committed address spans (rare) are gathered into the
 * stream's own side pool instead of a transient per-step buffer.
 */

#ifndef BSISA_SIM_FETCH_OUTCOME_HH
#define BSISA_SIM_FETCH_OUTCOME_HH

#include <cstdint>
#include <vector>

#include "sim/fetch_source.hh"

namespace bsisa
{

/**
 * One fetch step of a prediction group: the committed unit identity
 * and its memory span.  `committed` is an AtomicBlockId for the
 * block-structured driver; the conventional driver's units are the
 * trace events themselves, so it stores no per-step records at all
 * (only the sparse redirects below).
 */
struct FetchOutcomeRecord
{
    std::uint32_t pos;        //!< stream position the unit starts at
    std::uint32_t committed;  //!< committed block id (driver-defined)
    std::uint32_t memOffset;  //!< span start (pool, or sideMem below)
    std::uint32_t memCount : 31;
    std::uint32_t sideMem : 1;  //!< memOffset indexes sideMem
};

/**
 * The memoized fetch-outcome stream of one predictor identity: the
 * per-step records, the sparse redirect list (redirects[i] applies to
 * fetch step redirectStep[i]; both ascend), the gathered side pool for
 * non-adjacent spans, and the fetch-side statistics the lanes report.
 */
struct FetchOutcomeStream
{
    std::vector<FetchOutcomeRecord> steps;
    std::vector<RedirectInfo> redirects;      //!< mispredicts only
    std::vector<std::uint32_t> redirectStep;  //!< parallel step index
    std::vector<std::uint64_t> sideMem;       //!< non-adjacent spans

    std::uint64_t nPredictions = 0;
    std::uint64_t nTrapMiss = 0;
    std::uint64_t nFaultMiss = 0;
    std::uint64_t nCascadeHops = 0;
};

/**
 * Instrumentation of the most recent lockstep run on this thread
 * (filled by lockstepConventional / lockstepBlockStructured): group
 * and batching shape, memoization effectiveness, and the wall-clock
 * split between the fetch pre-pass and the timing kernel.  Intended
 * for tests (memo hit-rate and fused-width asserts) and for the
 * per-phase throughput numbers in BENCH_PR8.json; not part of any
 * result contract.
 */
struct LockstepFetchStats
{
    std::uint64_t groups = 0;        //!< prediction groups
    std::uint64_t lanes = 0;         //!< lanes after dedup
    std::uint64_t fetchSteps = 0;    //!< records produced (all groups)
    std::uint64_t timingBatches = 0; //!< stepBatch calls issued
    std::uint64_t timingLaneSteps = 0;  //!< sum of batch widths
    std::uint64_t maxBatchLanes = 0;    //!< widest batch issued
    std::uint64_t memoLookups = 0;   //!< per-position memo queries
    std::uint64_t memoComputes = 0;  //!< queries that had to compute
    bool fused = false;              //!< cross-group fusion active
    double fetchSeconds = 0.0;       //!< pre-pass wall clock
    double timingSeconds = 0.0;      //!< timing-walk wall clock
};

/** Stats of the latest lockstep replay run on the calling thread. */
const LockstepFetchStats &lockstepLastFetchStats();

/** Mutable access for the drivers (thread-local storage). */
LockstepFetchStats &lockstepFetchStatsSlot();

} // namespace bsisa

#endif // BSISA_SIM_FETCH_OUTCOME_HH
