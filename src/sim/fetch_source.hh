/**
 * @file
 * The interface between the ISA-specific fetch/prediction logic and
 * the shared cycle-level pipeline core.
 *
 * A FetchSource walks the committed execution (driven by the
 * functional interpreter) one fetch unit at a time — a basic block on
 * the conventional machine, an atomic block on the block-structured
 * machine — performing branch/successor prediction as it goes.  Each
 * emitted TimingUnit carries the unit's pre-decoded static code, its
 * dynamic memory addresses, and a description of how the unit came to
 * be fetched (cleanly, or after a resolved misprediction, including
 * the wrongly fetched block whose operations consumed machine
 * resources).
 *
 * Span lifetime: the decoded-op pointers reference the source's
 * DecodedProgram pools and outlive the source; the memAddrs span
 * references either the replayed trace's shared address pool or a
 * stable per-source emit buffer, and is valid until the next next()
 * call — exactly the window in which the pipeline consumes the unit.
 */

#ifndef BSISA_SIM_FETCH_SOURCE_HH
#define BSISA_SIM_FETCH_SOURCE_HH

#include <cstdint>

#include "sim/decoded.hh"

namespace bsisa
{

/** How a unit's fetch was delayed by a misprediction. */
struct RedirectInfo
{
    bool mispredicted = false;
    /** True when the resolving operation is inside the WRONG block (a
     *  fault); false when it is the previous unit's terminator. */
    bool resolveInWrongBlock = false;
    /** Index of the resolving operation within its block. */
    unsigned resolveOpIdx = 0;
    /** The wrongly fetched block (null for cold misses). */
    const DecodedOp *wrongOps = nullptr;
    std::uint32_t wrongOpCount = 0;
    std::uint64_t wrongPc = 0;
    std::uint32_t wrongBytes = 0;
    /** Additional fault-cascade redirects beyond the first. */
    unsigned extraHops = 0;
    /** Classification: fault (variant) vs trap (direction) miss. */
    bool isFault = false;
};

/** One committed fetch unit plus its fetch-path history. */
struct TimingUnit
{
    std::uint64_t pc = 0;
    std::uint32_t bytes = 0;
    /** True when the unit was supplied by a side structure (trace
     *  cache) and must not touch the instruction cache. */
    bool skipIcache = false;
    const DecodedOp *ops = nullptr;
    std::uint32_t opCount = 0;
    /** Ld/St addresses in operation order (correct path only). */
    const std::uint64_t *memAddrs = nullptr;
    std::uint32_t memCount = 0;
    RedirectInfo redirect;
};

class FetchSource
{
  public:
    virtual ~FetchSource() = default;

    /** Produce the next committed unit; false at end of program. */
    virtual bool next(TimingUnit &unit) = 0;

    /** Successor predictions made so far. */
    virtual std::uint64_t predictions() const = 0;
    virtual std::uint64_t mispredicts() const = 0;
    virtual std::uint64_t trapMispredicts() const = 0;
    virtual std::uint64_t faultMispredicts() const = 0;
    virtual std::uint64_t cascadeHops() const = 0;
};

} // namespace bsisa

#endif // BSISA_SIM_FETCH_SOURCE_HH
