/**
 * @file
 * Functional interpreter implementation.
 */

#include "sim/interp.hh"

#include <atomic>

#include "sim/alu.hh"
#include "support/logging.hh"

namespace bsisa
{

namespace
{

std::atomic<std::uint64_t> interpCount{0};

} // namespace

std::uint64_t
interpInvocations()
{
    return interpCount.load(std::memory_order_relaxed);
}

Interp::Interp(const Module &mod, Limits lim)
    : module(mod), limits(lim)
{
    interpCount.fetch_add(1, std::memory_order_relaxed);
    BSISA_ASSERT(mod.mainFunc < mod.functions.size());
    mem.init(Module::dataBase, mod.data);

    const Function &main_fn = module.functions[module.mainFunc];
    Frame f;
    f.func = module.mainFunc;
    f.retTo = invalidId;
    f.regs.assign(std::max<RegNum>(main_fn.numVirtualRegs, numArchRegs), 0);
    f.regs[regSp] = Module::stackBase - main_fn.frameSize;
    frames.push_back(std::move(f));
}

std::uint64_t
Interp::readReg(const Frame &f, RegNum r) const
{
    if (r == regZero)
        return 0;
    BSISA_ASSERT(r < f.regs.size(), "register r", r, " out of range");
    return f.regs[r];
}

void
Interp::writeReg(Frame &f, RegNum r, std::uint64_t v)
{
    BSISA_ASSERT(r != regZero && r < f.regs.size());
    f.regs[r] = v;
}

std::uint64_t
Interp::exitValue() const
{
    BSISA_ASSERT(!frames.empty());
    return frames.front().regs[regRet];
}

bool
Interp::step(BlockEvent &ev)
{
    if (isHalted || ops >= limits.maxOps || blocks >= limits.maxBlocks)
        return false;

    Frame &frame = frames.back();
    const Function &fn = module.functions[frame.func];
    BSISA_ASSERT(curBlock < fn.blocks.size());
    const Block &blk = fn.blocks[curBlock];
    BSISA_ASSERT(blk.sealed());

    ev.func = frame.func;
    ev.block = curBlock;
    ev.taken = false;
    memBuf.clear();

    for (const Operation &op : blk.ops) {
        ++ops;

        const unsigned nsrc = numSources(op.op);
        const std::uint64_t s1 = nsrc >= 1 ? readReg(frame, op.src1) : 0;
        const std::uint64_t s2 = nsrc >= 2 ? readReg(frame, op.src2) : 0;

        std::uint64_t result;
        if (evalAluOp(op, s1, s2, result)) {
            writeReg(frame, op.dst, result);
            continue;
        }

        switch (op.op) {
          case Opcode::Nop:
            break;
          case Opcode::Ld: {
            const std::uint64_t addr =
                s1 + static_cast<std::uint64_t>(op.imm);
            memBuf.push_back(addr);
            writeReg(frame, op.dst, mem.read(addr));
            break;
          }
          case Opcode::St: {
            const std::uint64_t addr =
                s1 + static_cast<std::uint64_t>(op.imm);
            memBuf.push_back(addr);
            mem.write(addr, s2);
            break;
          }
          case Opcode::Fault:
            panic("fault operation reached the conventional interpreter");
          case Opcode::Jmp:
            ev.exit = ExitKind::Jump;
            ev.nextFunc = frame.func;
            ev.nextBlock = op.target0;
            break;
          case Opcode::Trap: {
            const bool taken = s1 != 0;
            ev.exit = ExitKind::Trap;
            ev.taken = taken;
            ev.nextFunc = frame.func;
            ev.nextBlock = taken ? op.target0 : op.target1;
            break;
          }
          case Opcode::IJmp: {
            const auto &table = fn.jumpTables[op.imm];
            BSISA_ASSERT(!table.empty());
            ev.exit = ExitKind::IJump;
            ev.nextFunc = frame.func;
            ev.nextBlock = table[s1 % table.size()];
            break;
          }
          case Opcode::Call: {
            const Function &callee = module.functions[op.callee];
            ev.exit = ExitKind::Call;
            ev.nextFunc = op.callee;
            ev.nextBlock = 0;

            Frame nf;
            nf.func = op.callee;
            nf.retTo = op.target0;
            nf.regs.assign(
                std::max<RegNum>(callee.numVirtualRegs, numArchRegs), 0);
            for (RegNum r = 0; r < numArchRegs; ++r)
                nf.regs[r] = frame.regs[r];
            nf.regs[regSp] -= callee.frameSize;
            if (frames.size() >= 100000)
                fatal("call stack overflow (runaway recursion?)");
            frames.push_back(std::move(nf));
            break;
          }
          case Opcode::Ret: {
            BSISA_ASSERT(frames.size() > 1,
                         "ret from the bottom frame; main must halt");
            ev.exit = ExitKind::Ret;
            const std::uint64_t ret_val = frame.regs[regRet];
            const BlockId ret_to = frame.retTo;
            frames.pop_back();
            frames.back().regs[regRet] = ret_val;
            ev.nextFunc = frames.back().func;
            ev.nextBlock = ret_to;
            break;
          }
          case Opcode::Halt:
            ev.exit = ExitKind::Halt;
            ev.nextFunc = invalidId;
            ev.nextBlock = invalidId;
            isHalted = true;
            break;
          default:
            panic("unhandled opcode ", opcodeName(op.op));
        }
        // 'frame' may dangle after Call/Ret; both are terminators so
        // the loop ends here anyway.
        if (op.op == Opcode::Call || op.op == Opcode::Ret)
            break;
    }

    ev.memAddrs = memBuf.data();
    ev.memCount = static_cast<std::uint32_t>(memBuf.size());

    ++blocks;
    if (!isHalted)
        curBlock = ev.nextBlock;
    return true;
}

void
Interp::run()
{
    BlockEvent ev;
    while (step(ev)) {
    }
}

} // namespace bsisa
