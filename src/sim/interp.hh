/**
 * @file
 * Functional interpreter for the conventional ISA.
 *
 * Executes a Module block-by-block at architectural level, producing
 * the committed dynamic basic-block stream that drives both timing
 * models (see DESIGN.md section 5: the committed path is the same for
 * both ISAs, so one functional execution serves both).
 *
 * Call semantics are register-windowed (see arch/reg.hh): the callee
 * starts with a copy of the caller's low 32 registers, its frame is
 * allocated by bumping the window's stack pointer by Function::
 * frameSize, and on return the return-value register is copied back.
 */

#ifndef BSISA_SIM_INTERP_HH
#define BSISA_SIM_INTERP_HH

#include <cstdint>
#include <vector>

#include "ir/module.hh"
#include "sim/memory.hh"

namespace bsisa
{

/** What a block's terminator did; drives trace mapping. */
enum class ExitKind : unsigned char
{
    Jump,   //!< unconditional intra-function edge
    Trap,   //!< two-way conditional; 'taken' says which way
    Call,   //!< entered a callee
    IJump,  //!< indirect jump through a table
    Ret,    //!< returned to the caller
    Halt,   //!< program finished
};

/**
 * One committed basic-block execution.
 *
 * A trivially copyable value: the Ld/St addresses are carried as a
 * read-only span into storage owned by the producing EventSource (the
 * trace pool on replay, a reuse ring on live interpretation), not as
 * a per-event vector.  See EventSource for the span lifetime contract.
 */
struct BlockEvent
{
    FuncId func = invalidId;
    BlockId block = invalidId;
    ExitKind exit = ExitKind::Halt;
    bool taken = false;          //!< Trap direction (true = target0)
    FuncId nextFunc = invalidId;  //!< block that executes next
    BlockId nextBlock = invalidId;
    /** Addresses touched by Ld/St operations, in op order. */
    const std::uint64_t *memAddrs = nullptr;
    std::uint32_t memCount = 0;
};

/**
 * Version of the functional execution semantics.  Baked into trace
 * store entries (sim/trace_store.hh): bump it whenever a change to the
 * interpreter (or to anything upstream that alters the committed
 * stream for an unchanged module) invalidates previously captured
 * traces.
 */
constexpr std::uint32_t interpVersion = 1;

/** Number of live Interp instances constructed process-wide.  A warm
 *  trace store replays everything from disk, so suite drivers can
 *  assert that no functional execution happened at all. */
std::uint64_t interpInvocations();

/**
 * Pull-based functional execution of a Module.
 */
class Interp
{
  public:
    /** Execution limits; the interpreter stops cleanly at a block
     *  boundary once maxOps is reached. */
    struct Limits
    {
        std::uint64_t maxOps = 1ull << 62;
        std::uint64_t maxBlocks = 1ull << 62;
    };

    Interp(const Module &module, Limits limits);
    explicit Interp(const Module &module) : Interp(module, Limits()) {}

    /**
     * Execute the next basic block.
     *
     * @param ev Filled with the committed event.  The event's memAddrs
     *           span points into a buffer owned by this interpreter
     *           and is overwritten by the next step() call; callers
     *           needing longer-lived addresses must copy (see
     *           InterpEventSource for the buffered variant).
     * @retval true a block was executed.
     * @retval false the program halted or a limit was reached.
     */
    bool step(BlockEvent &ev);

    /** Run to completion (or limit), discarding events. */
    void run();

    /** True once a Halt retired. */
    bool halted() const { return isHalted; }

    /** Dynamic operation count so far. */
    std::uint64_t dynOps() const { return ops; }

    /** Dynamic block count so far. */
    std::uint64_t dynBlocks() const { return blocks; }

    /** Value of the return register in the bottom frame. */
    std::uint64_t exitValue() const;

    /** Checksum over all touched memory; used by equivalence tests. */
    std::uint64_t memChecksum() const { return mem.checksum(); }

    /**
     * Checksum over the global-data region only (excludes the stack,
     * whose leftover spill slots differ across compilation variants).
     */
    std::uint64_t
    dataChecksum() const
    {
        return mem.checksumRange(
            Module::dataBase, Module::dataBase + module.data.size() * 8);
    }

    /** Direct access to simulated memory (tests). */
    Memory &memory() { return mem; }

  private:
    struct Frame
    {
        FuncId func;
        BlockId retTo;   //!< continuation block in the *caller*
        std::vector<std::uint64_t> regs;
    };

    const Module &module;
    Limits limits;
    Memory mem;
    std::vector<Frame> frames;
    /** Backing storage for the last step()'s memAddrs span. */
    std::vector<std::uint64_t> memBuf;
    BlockId curBlock = 0;
    bool isHalted = false;
    std::uint64_t ops = 0;
    std::uint64_t blocks = 0;

    std::uint64_t readReg(const Frame &f, RegNum r) const;
    void writeReg(Frame &f, RegNum r, std::uint64_t v);
};

} // namespace bsisa

#endif // BSISA_SIM_INTERP_HH
