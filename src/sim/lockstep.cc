/**
 * @file
 * Lockstep sweep engine implementation.
 *
 * LanePipelines is the single source of the pipeline arithmetic: the
 * per-lane phase helpers below are the scheduling model, the
 * one-unit-one-lane stepOneLane() (which simulatePipeline also
 * drives) is a thin composition of them, and the op-major
 * opMajorChunk() performs the same per-lane operations in the same
 * per-lane order — only the cross-lane interleaving differs, and
 * lanes never interact, so the sequential, lane-major, and op-major
 * paths are bit-identical by construction.  The lockstep drivers
 * differ only in how much of the fetch translation they compute once
 * per stream position instead of once per (position, config):
 *
 *   - conventional: unit boundaries are config-independent (one basic
 *     block per event), so the driver decodes each event into a unit
 *     exactly once and advances every lane over it while it is hot;
 *     one ConvPredictor runs per prediction group, not per lane —
 *     and runs in a decoupled pre-pass (ConvPredictor::
 *     captureOutcomes) that records each group's sparse redirect
 *     stream before any timing work, so the timing walk is a pure
 *     data-consumer loop;
 *   - block-structured: the maximal-variant trie walk, its variant
 *     index and stream compatibility, the consumed event count, and
 *     the unit's pooled address span all depend only on the stream
 *     position — one memo entry captures them for every group; a
 *     group's predictor may commit a shallower compatible variant, in
 *     which case that group commits its own (rare) shallow unit and
 *     its cursor drifts until it re-meets the others at a head
 *     boundary.  The whole fetch side runs as a pre-pass too
 *     (LockstepBsa::captureStep), recording one FetchOutcomeRecord
 *     per fetch step into each group's FetchOutcomeStream; the timing
 *     walk then advances the streams by MINIMUM POSITION, so lanes of
 *     different prediction groups whose streams coincide at a
 *     position fuse into one full-width op-major batch (per-lane
 *     redirects gathered from the streams);
 *   - trace cache: unit boundaries depend on per-config cache
 *     contents, so lanes round-robin one unit each (sharing only the
 *     read-only decode and trace).
 *
 * Two further layers of sharing apply to both replay drivers.
 * Prediction is purely stream-driven (predictors train on committed
 * outcomes, never on timing), so lanes with identical predictor
 * geometry — and all oracle-prediction lanes, which never touch a
 * predictor — form prediction groups that share one predictor state
 * and one redirect stream.  Both replay drivers lay each group's
 * member lanes out contiguously (groupLanes below), so a group
 * advances as one op-major stepBatch over register-major lane rows.
 * And because wrong-path loads never touch the dcache, the
 * committed-order dcache hit/miss stream is a pure function of
 * (trace, dcache geometry): LanePipelines precomputes it once per
 * distinct geometry and every lane reads outcome bits instead of
 * running its own cache model.  Effectively identical configs (oracle
 * rows swept across predictor geometry) collapse to one lane whose
 * result is replicated on return.
 */

#include "sim/lockstep.hh"

#include <algorithm>
#include <bit>
#include <chrono>

#include "predict/blockpred.hh"
#include "sim/conv_source.hh"
#include "sim/fetch_outcome.hh"
#include "sim/tc_source.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/simd_dispatch.hh"

namespace bsisa
{

// ------------------------------------------------- fetch-phase stats

namespace
{

thread_local LockstepFetchStats tlsFetchStats;

double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Ceiling on the bytes the fused drivers may commit to retained
 *  fetch-outcome streams (worst case, reserved before any work so the
 *  capture walk stays allocation-free — tests/test_decoded.cc pins a
 *  length-independent allocation count, which rules out growing the
 *  stream vectors on demand).  Sweeps whose worst case exceeds the
 *  budget fall back to the interleaved per-group driver, which streams
 *  in O(1) memory exactly like the engine before the decoupling.
 *  BSISA_CAPTURE_BUDGET overrides the default (bytes; 0 = unlimited). */
std::uint64_t
captureBudgetBytes()
{
    const std::uint64_t v =
        envU64("BSISA_CAPTURE_BUDGET", 512ull << 20);
    return v == 0 ? ~std::uint64_t(0) : v;
}

/** Worst-case retained bytes of one group's redirect stream: one
 *  RedirectInfo plus one step index per trace event. */
constexpr std::uint64_t redirectBytesPerEvent =
    sizeof(RedirectInfo) + sizeof(std::uint32_t);

} // namespace

const LockstepFetchStats &
lockstepLastFetchStats()
{
    return tlsFetchStats;
}

LockstepFetchStats &
lockstepFetchStatsSlot()
{
    return tlsFetchStats;
}

// ------------------------------------------------------ LanePipelines

LanePipelines::LanePipelines(const MachineConfig *cfgs,
                             std::size_t laneCount)
    : configs(cfgs, cfgs + laneCount), lanes(laneCount),
      results(laneCount), stride(laneStride(laneCount)),
      forceLaneMajor(envSet("BSISA_FORCE_LANE_MAJOR"))
{
    slots.reserve(laneCount);
    icaches.reserve(laneCount);
    dcaches.reserve(laneCount);
    l2Lat.reserve(laneCount);
    inflightBase.reserve(laneCount + 1);
    std::uint32_t base = 0;
    for (std::size_t l = 0; l < laneCount; ++l) {
        slots.emplace_back(configs[l].issueWidth);
        icaches.emplace_back(configs[l].icache);
        dcaches.emplace_back(configs[l].dcache);
        l2Lat.push_back(configs[l].l2Latency);
        inflightBase.push_back(base);
        base += configs[l].windowUnits + 1;
        prevRows = std::max<std::size_t>(prevRows,
                                         configs[l].windowOps);
    }
    inflightBase.push_back(base);
    inflightPool.resize(base);
    regReady.assign(laneRegs * stride, 0);
    wrongReady.assign(laneRegs * stride, 0);
    wrongStamp.assign(laneRegs * stride, 0);
    prevDone.assign(prevRows * stride, 0);
    scrEarliest.assign(chunkLanes, 0);
    scrUnitDone.assign(chunkLanes, 0);
    icacheLeaderOf.assign(laneCount, -1);
    icacheEcho.resize(laneCount);
    stepSeq.assign(laneCount, 0);
}

void
LanePipelines::shareIcache(std::size_t leader, std::size_t follower)
{
    BSISA_ASSERT(leader != follower);
    BSISA_ASSERT(icacheLeaderOf[leader] < 0,
                 "icache leader must not itself be a follower");
    BSISA_ASSERT(leader < follower,
                 "leader must step before its follower: batches step "
                 "lanes in ascending order");
    const CacheConfig &a = configs[leader].icache;
    const CacheConfig &b = configs[follower].icache;
    BSISA_ASSERT(a.sizeBytes == b.sizeBytes && a.assoc == b.assoc &&
                     a.lineBytes == b.lineBytes &&
                     a.perfect == b.perfect,
                 "icache sharing requires identical geometry");
    icacheLeaderOf[follower] = static_cast<std::int32_t>(leader);
}

void
LanePipelines::shareDcachePool(const std::uint64_t *addrs,
                               std::size_t count)
{
    dcachePool = addrs;
    dcachePoolCount = count;
    dcacheStreamOf.assign(configs.size(), -1);
    dcacheCursor.assign(configs.size(), 0);
    dcacheStreams.clear();

    // One precomputed pool walk per distinct dcache geometry.
    std::vector<std::size_t> owner;  // lane that introduced a stream
    for (std::size_t l = 0; l < configs.size(); ++l) {
        const CacheConfig &cfg = configs[l].dcache;
        std::int32_t stream = -1;
        for (std::size_t s = 0; s < owner.size(); ++s) {
            const CacheConfig &other = configs[owner[s]].dcache;
            if (cfg.sizeBytes == other.sizeBytes &&
                cfg.assoc == other.assoc &&
                cfg.lineBytes == other.lineBytes &&
                cfg.perfect == other.perfect) {
                stream = static_cast<std::int32_t>(s);
                break;
            }
        }
        if (stream < 0) {
            stream = static_cast<std::int32_t>(dcacheStreams.size());
            owner.push_back(l);
            DcacheStream &ds = dcacheStreams.emplace_back(
                DcacheStream{Cache(cfg), {}});
            ds.hit.resize(count);
            for (std::size_t i = 0; i < count; ++i)
                ds.hit[i] = ds.cache.access(addrs[i]) ? 1 : 0;
        }
        dcacheStreamOf[l] = stream;
    }
}

void
LanePipelines::privatizeDcache(std::size_t lane)
{
    const std::int32_t ds = dcacheStreamOf[lane];
    BSISA_ASSERT(ds >= 0);
    if (dcacheCursor[lane] == dcachePoolCount) {
        // Pool fully consumed: adopt the stream's final state and
        // statistics wholesale.
        dcaches[lane] = dcacheStreams[ds].cache;
    } else {
        // The lane left the shared order early (possible only for
        // unit shapes no current driver produces): replay its exact
        // prefix so the fork point is still bit-identical.
        dcaches[lane] = Cache(configs[lane].dcache);
        for (std::size_t i = 0; i < dcacheCursor[lane]; ++i)
            dcaches[lane].access(dcachePool[i]);
    }
    dcacheStreamOf[lane] = -1;
}

std::uint64_t
LanePipelines::scheduleWrongPath(std::size_t lane, const DecodedOp *ops,
                                 std::uint32_t n, unsigned mustRunIdx,
                                 std::uint64_t fetchCycle,
                                 std::uint64_t squashCutoff)
{
    LaneState &st = lanes[lane];
    IssueSlots &sl = slots[lane];
    // Register-major rows: slot r of this lane is r * stride in.
    const std::uint64_t *rr = regReady.data() + lane;
    std::uint64_t *wr = wrongReady.data() + lane;
    std::uint64_t *ws = wrongStamp.data() + lane;

    const std::uint64_t gen = ++st.wrongGen;
    const std::uint64_t earliest =
        fetchCycle + configs[lane].frontendDepth;
    std::uint64_t resolve = earliest;

    // Absent sources decode to regZero, which is never stamped (no op
    // writes it) and whose committed ready time is pinned at 0 — so
    // both sources can be read unconditionally.
    auto ready_of = [&](RegNum r) -> std::uint64_t {
        return ws[r * stride] == gen ? wr[r * stride] : rr[r * stride];
    };

    for (std::uint32_t i = 0; i < n; ++i) {
        const DecodedOp &op = ops[i];
        const std::uint64_t ready =
            std::max({earliest, ready_of(op.src1), ready_of(op.src2)});

        if (i > mustRunIdx && ready > squashCutoff)
            continue;  // squashed before it could issue

        const std::uint64_t start = sl.allocate(ready);
        if (i > mustRunIdx && start > squashCutoff)
            continue;
        ++results[lane].wrongPathOps;
        // Wrong-path loads are modelled as L1 hits: their addresses
        // are speculative garbage we do not track.
        const std::uint64_t done = start + op.latency;
        wr[op.dst * stride] = done;
        ws[op.dst * stride] = gen;
        if (i == mustRunIdx)
            resolve = done;
    }
    return resolve;
}

std::uint64_t
LanePipelines::fetchPhase(std::size_t lane, const TimingUnit &unit,
                          const RedirectInfo &redirect)
{
    BSISA_ASSERT(unit.ops && unit.opCount > 0);
    const MachineConfig &cfg = configs[lane];
    LaneState &st = lanes[lane];
    SimResult &res = results[lane];
    Cache &icache = icaches[lane];
    const std::int32_t icl = icacheLeaderOf[lane];
    ++stepSeq[lane];

    std::uint64_t fetch = st.lastFetch + 1;
    const std::uint64_t fetch_base = fetch;

    if (redirect.mispredicted) {
        std::uint64_t resolve;
        if (redirect.resolveInWrongBlock) {
            // A fault in the wrong block resolves the mispredict;
            // its ops must be issued to find out.
            BSISA_ASSERT(redirect.wrongOps);
            // The wrong block was fetched in place of this one.
            if (icl < 0)
                icache.accessRange(redirect.wrongPc,
                                   redirect.wrongBytes);
            resolve = scheduleWrongPath(lane, redirect.wrongOps,
                                        redirect.wrongOpCount,
                                        redirect.resolveOpIdx, fetch,
                                        ~0ull);
        } else {
            // The previous unit's terminator resolves it.
            resolve =
                st.prevCount == 0
                    ? fetch
                    : prevRow(redirect.resolveOpIdx)[lane];
            if (redirect.wrongOps) {
                if (icl < 0)
                    icache.accessRange(redirect.wrongPc,
                                       redirect.wrongBytes);
                scheduleWrongPath(lane, redirect.wrongOps,
                                  redirect.wrongOpCount, 0, fetch,
                                  resolve);
            }
        }
        std::uint64_t redirected = resolve + 1 + cfg.redirectPenalty;
        redirected += std::uint64_t(redirect.extraHops) *
                      (cfg.redirectPenalty + 1);
        fetch = std::max(fetch, redirected);
    }
    res.stallRedirect += fetch - fetch_base;
    const std::uint64_t fetch_after_redirect = fetch;

    // Window occupancy: wait for room.
    Inflight *ring = inflightOf(lane);
    const std::uint32_t cap = inflightBase[lane + 1] -
                              inflightBase[lane];
    auto ring_size = [&]() -> std::uint32_t {
        return st.inflightTail >= st.inflightHead
                   ? st.inflightTail - st.inflightHead
                   : st.inflightTail + cap - st.inflightHead;
    };
    while (st.inflightHead != st.inflightTail &&
           ring[st.inflightHead].retire <= fetch) {
        st.inflightOps -= ring[st.inflightHead].ops;
        if (++st.inflightHead == cap)
            st.inflightHead = 0;
    }
    const unsigned unit_ops = unit.opCount;
    while (ring_size() >= cfg.windowUnits ||
           st.inflightOps + unit_ops > cfg.windowOps) {
        BSISA_ASSERT(st.inflightHead != st.inflightTail,
                     "unit larger than the whole window");
        fetch = std::max(fetch, ring[st.inflightHead].retire);
        st.inflightOps -= ring[st.inflightHead].ops;
        if (++st.inflightHead == cap)
            st.inflightHead = 0;
    }

    res.stallWindow += fetch - fetch_after_redirect;

    // Instruction cache: any missing line stalls the fetch for one
    // L2 round trip (lines fill in parallel from the perfect L2).
    unsigned missing = 0;
    if (icl >= 0) {
        BSISA_ASSERT(icacheEcho[icl].seq == stepSeq[lane],
                     "icache follower out of lockstep");
        missing = icacheEcho[icl].unitMissing;
    } else {
        if (!unit.skipIcache)
            missing = icache.accessRange(unit.pc, unit.bytes);
        icacheEcho[lane].seq = stepSeq[lane];
        icacheEcho[lane].unitMissing = missing;
    }
    if (missing > 0) {
        fetch += cfg.l2Latency;
        res.stallIcache += cfg.l2Latency;
    }

    st.lastFetch = fetch;
    slots[lane].advanceTo(fetch);

    // The schedule phase writes prevDone[0..opCount); mark the count
    // now that the redirect above has read the previous unit's times.
    BSISA_ASSERT(unit.opCount <= prevRows,
                 "unit larger than the whole window");
    st.prevCount = unit.opCount;
    return fetch + cfg.frontendDepth;
}

void
LanePipelines::retirePhase(std::size_t lane, std::uint32_t unitOps,
                           std::uint64_t unitDone)
{
    LaneState &st = lanes[lane];
    SimResult &res = results[lane];

    const std::uint64_t retire =
        std::max(unitDone + 1, st.lastRetire + 1);
    st.lastRetire = retire;

    Inflight *ring = inflightOf(lane);
    const std::uint32_t cap = inflightBase[lane + 1] -
                              inflightBase[lane];
    ring[st.inflightTail] = {retire, unitOps};
    if (++st.inflightTail == cap)
        st.inflightTail = 0;
    BSISA_ASSERT(st.inflightTail != st.inflightHead,
                 "inflight ring overflow");
    st.inflightOps += unitOps;

    const std::uint32_t size = st.inflightTail >= st.inflightHead
                                   ? st.inflightTail - st.inflightHead
                                   : st.inflightTail + cap -
                                         st.inflightHead;
    res.peakWindowUnits =
        std::max<std::uint64_t>(res.peakWindowUnits, size);
    res.peakWindowOps =
        std::max<std::uint64_t>(res.peakWindowOps, st.inflightOps);

    res.retiredOps += unitOps;
    res.retiredUnits += 1;
    res.cycles = std::max(res.cycles, retire);
}

void
LanePipelines::stepOneLane(std::size_t lane, const TimingUnit &unit,
                           const RedirectInfo &redirect)
{
    const std::uint64_t earliest = fetchPhase(lane, unit, redirect);
    const MachineConfig &cfg = configs[lane];
    IssueSlots &sl = slots[lane];
    Cache &dcache = dcaches[lane];
    // Register-major rows: slot r of this lane is r * stride in (for
    // the one-lane pipeline stride is 1 and this is a dense array).
    std::uint64_t *rr = regReady.data() + lane;
    std::uint64_t *pd = prevDone.data() + lane;

    std::uint64_t unit_done = earliest;
    std::uint32_t mem_idx = 0;

    for (std::uint32_t i = 0; i < unit.opCount; ++i) {
        const DecodedOp &op = unit.ops[i];
        const std::uint64_t ready = std::max(
            {earliest, rr[op.src1 * stride], rr[op.src2 * stride]});

        const std::uint64_t start = sl.allocate(ready);
        unsigned latency = op.latency;
        if (op.flags & opIsMem) {
            bool hit;
            const std::int32_t ds = dcacheStreamOf.empty()
                                        ? -1
                                        : dcacheStreamOf[lane];
            if (ds >= 0 && mem_idx < unit.memCount) {
                hit = dcacheStreams[ds].hit[dcacheCursor[lane]++] != 0;
            } else {
                if (ds >= 0)
                    privatizeDcache(lane);
                const std::uint64_t addr =
                    mem_idx < unit.memCount ? unit.memAddrs[mem_idx]
                                            : 0;
                hit = dcache.access(addr);
            }
            ++mem_idx;
            if (!hit && (op.flags & opIsLoad))
                latency += cfg.l2Latency;
        }
        const std::uint64_t done = start + latency;
        pd[std::size_t(i) * stride] = done;
        rr[op.dst * stride] = done;
        unit_done = std::max(unit_done, done);
    }

    retirePhase(lane, unit.opCount, unit_done);
}

void
LanePipelines::step(std::size_t lane, const TimingUnit &unit)
{
    stepOneLane(lane, unit, unit.redirect);
}

std::uint64_t
LanePipelines::memAccessMask(std::size_t first, std::size_t n,
                             const TimingUnit &unit,
                             std::uint32_t memIdx)
{
    // Same per-lane resolution as stepOneLane's mem-op branch, for
    // one op across the batch: stores access the cache too, only
    // loads take the miss penalty (the caller applies it).
    std::uint64_t miss = 0;
    const bool in_pool = memIdx < unit.memCount;
    const std::uint64_t addr = in_pool ? unit.memAddrs[memIdx] : 0;
    for (std::size_t l = 0; l < n; ++l) {
        const std::size_t lane = first + l;
        const std::int32_t ds =
            dcacheStreamOf.empty() ? -1 : dcacheStreamOf[lane];
        bool hit;
        if (ds >= 0 && in_pool) {
            hit = dcacheStreams[ds].hit[dcacheCursor[lane]++] != 0;
        } else {
            if (ds >= 0)
                privatizeDcache(lane);
            hit = dcaches[lane].access(addr);
        }
        miss |= std::uint64_t(!hit) << l;
    }
    return miss;
}

void
LanePipelines::opMajorChunk(std::size_t first, std::size_t n,
                            const TimingUnit &unit,
                            const RedirectInfo *redirects)
{
    BSISA_ASSERT(n >= 1 && n <= chunkLanes);
    std::uint64_t *earliest = scrEarliest.data();
    std::uint64_t *unit_done = scrUnitDone.data();

    // Fetch phases run in ascending lane order (icache followers echo
    // their lower-indexed leader's outcome).
    for (std::size_t l = 0; l < n; ++l) {
        earliest[l] = fetchPhase(
            first + l, unit,
            redirects ? redirects[l] : unit.redirect);
        unit_done[l] = earliest[l];
    }

    // Resolve every memory op's cache outcome up front into one lane
    // bitmask per mem op.  Cache state never depends on scheduling,
    // and per-lane access order is preserved, so hoisting the cache
    // walk out of the scheduling loop is behavior-preserving — and it
    // leaves the kernel branchless.
    std::uint32_t n_mem = 0;
    for (std::uint32_t i = 0; i < unit.opCount; ++i)
        n_mem += (unit.ops[i].flags & opIsMem) ? 1 : 0;
    if (scrMiss.size() < n_mem)
        scrMiss.resize(n_mem);
    if (n_mem > 0) {
        // Batched lanes usually share one dcache stream at the same
        // cursor (same geometry, same units consumed since
        // construction), and mem op m of this unit reads stream byte
        // cursor + m on every lane.  One byte read then serves the
        // whole batch: broadcast miss to all lanes, advance every
        // cursor by the unit's mem-op count.
        bool uniform = n_mem <= unit.memCount &&
                       !dcacheStreamOf.empty();
        std::int32_t ds0 = -1;
        if (uniform) {
            ds0 = dcacheStreamOf[first];
            uniform = ds0 >= 0;
            for (std::size_t l = 1; uniform && l < n; ++l) {
                uniform = dcacheStreamOf[first + l] == ds0 &&
                          dcacheCursor[first + l] ==
                              dcacheCursor[first];
            }
        }
        if (uniform) {
            const std::uint64_t full =
                n >= 64 ? ~std::uint64_t(0)
                        : (std::uint64_t(1) << n) - 1;
            const std::uint8_t *hit =
                dcacheStreams[ds0].hit.data() + dcacheCursor[first];
            for (std::uint32_t m = 0; m < n_mem; ++m)
                scrMiss[m] = hit[m] ? 0 : full;
            for (std::size_t l = 0; l < n; ++l)
                dcacheCursor[first + l] += n_mem;
        } else {
            for (std::uint32_t m = 0; m < n_mem; ++m)
                scrMiss[m] = memAccessMask(first, n, unit, m);
        }
    }

    // The whole op walk is one kernel call (scalar or SIMD).
    StepOpsCtx ctx;
    ctx.ops = unit.ops;
    ctx.opCount = unit.opCount;
    ctx.missMasks = scrMiss.data();
    ctx.slots = slots.data() + first;
    ctx.regBase = regReady.data() + first;
    ctx.prevBase = prevDone.data() + first;
    ctx.l2Lat = l2Lat.data() + first;
    ctx.earliest = earliest;
    ctx.unitDone = unit_done;
    ctx.stride = stride;
    ctx.n = n;
    simdKernels().stepOps(ctx);

    for (std::size_t l = 0; l < n; ++l)
        retirePhase(first + l, unit.opCount, unit_done[l]);
}

void
LanePipelines::stepBatch(std::size_t first, std::size_t count,
                         const TimingUnit &unit,
                         const RedirectInfo *redirects)
{
    BSISA_ASSERT(first + count <= lanes.size());
    LockstepFetchStats &fs = lockstepFetchStatsSlot();
    ++fs.timingBatches;
    fs.timingLaneSteps += count;
    if (count > fs.maxBatchLanes)
        fs.maxBatchLanes = count;
    if (forceLaneMajor || count == 1) {
        for (std::size_t l = 0; l < count; ++l) {
            stepOneLane(first + l, unit,
                        redirects ? redirects[l] : unit.redirect);
        }
        return;
    }
    // The per-op dcache miss mask is one word wide, so op-major
    // passes advance at most chunkLanes lanes at a time.  Ascending
    // chunk order keeps icache leaders ahead of their followers.
    for (std::size_t base = 0; base < count; base += chunkLanes) {
        opMajorChunk(first + base,
                     std::min<std::size_t>(chunkLanes, count - base),
                     unit, redirects ? redirects + base : nullptr);
    }
}

SimResult
LanePipelines::takeResult(std::size_t lane) const
{
    SimResult result = results[lane];
    const std::int32_t icl = icacheLeaderOf[lane];
    result.icache =
        icaches[icl >= 0 ? std::size_t(icl) : lane].stats();
    const std::int32_t ds =
        dcacheStreamOf.empty() ? -1 : dcacheStreamOf[lane];
    if (ds >= 0) {
        // Still on the shared stream: the lane's statistics are the
        // outcome counts of the pool prefix it consumed.
        const DcacheStream &stream = dcacheStreams[ds];
        CacheStats stats;
        stats.accesses = dcacheCursor[lane];
        for (std::size_t i = 0; i < dcacheCursor[lane]; ++i)
            stats.misses += stream.hit[i] ? 0 : 1;
        result.dcache = stats;
    } else {
        result.dcache = dcaches[lane].stats();
    }
    return result;
}

void
fillSourceStats(SimResult &result, const FetchSource &source)
{
    result.predictions = source.predictions();
    result.mispredicts = source.mispredicts();
    result.trapMispredicts = source.trapMispredicts();
    result.faultMispredicts = source.faultMispredicts();
    result.cascadeHops = source.cascadeHops();
}

// ------------------------------------------- config structure probes

namespace
{

bool
sameCacheConfig(const CacheConfig &a, const CacheConfig &b)
{
    return a.sizeBytes == b.sizeBytes && a.assoc == b.assoc &&
           a.lineBytes == b.lineBytes && a.perfect == b.perfect;
}

bool
samePredictorConfig(const PredictorConfig &a, const PredictorConfig &b)
{
    return a.scheme == b.scheme && a.historyBits == b.historyBits &&
           a.phtBits == b.phtBits &&
           a.historyEntries == b.historyEntries &&
           a.btbEntries == b.btbEntries && a.btbAssoc == b.btbAssoc &&
           a.perfect == b.perfect;
}

/** Same prediction *state* evolution: identical predictor geometry,
 *  or both oracle (perfect prediction never touches the predictor, so
 *  its geometry is dead configuration). */
bool
samePredictionState(const MachineConfig &a, const MachineConfig &b)
{
    if (a.perfectPrediction != b.perfectPrediction)
        return false;
    return a.perfectPrediction ||
           samePredictorConfig(a.predictor, b.predictor);
}

/** Effectively identical machines produce bit-identical SimResults on
 *  the same stream, so a sweep grid that contains them (oracle rows
 *  swept over predictor geometry do this by construction) needs only
 *  one lane per equivalence class. */
bool
sameEffectiveConfig(const MachineConfig &a, const MachineConfig &b)
{
    return a.issueWidth == b.issueWidth &&
           a.windowOps == b.windowOps &&
           a.windowUnits == b.windowUnits &&
           a.frontendDepth == b.frontendDepth &&
           a.redirectPenalty == b.redirectPenalty &&
           a.l2Latency == b.l2Latency &&
           sameCacheConfig(a.icache, b.icache) &&
           sameCacheConfig(a.dcache, b.dcache) &&
           samePredictionState(a, b);
}

/** Collapse @p machines to its effective-config equivalence classes;
 *  @p uniqueOf maps each input index to its class representative's
 *  index in the returned vector. */
std::vector<MachineConfig>
dedupConfigs(const std::vector<MachineConfig> &machines,
             std::vector<std::size_t> &uniqueOf)
{
    std::vector<MachineConfig> unique;
    uniqueOf.resize(machines.size());
    for (std::size_t i = 0; i < machines.size(); ++i) {
        std::size_t found = unique.size();
        for (std::size_t u = 0; u < unique.size(); ++u) {
            if (sameEffectiveConfig(machines[i], unique[u])) {
                found = u;
                break;
            }
        }
        if (found == unique.size())
            unique.push_back(machines[i]);
        uniqueOf[i] = found;
    }
    return unique;
}

/** Partition lanes into prediction groups (shared predictor state);
 *  each group lists the lanes whose prediction evolution is
 *  identical, leader first, in input order. */
std::vector<std::vector<std::size_t>>
predictionGroups(const std::vector<MachineConfig> &machines)
{
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t l = 0; l < machines.size(); ++l) {
        bool placed = false;
        for (auto &group : groups) {
            if (samePredictionState(machines[l],
                                    machines[group.front()])) {
                group.push_back(l);
                placed = true;
                break;
            }
        }
        if (!placed)
            groups.push_back({l});
    }
    return groups;
}

/**
 * Group-contiguous lane layout: the input configs permuted so that
 * each prediction group occupies one contiguous ascending lane range
 * (the shape stepBatch consumes), plus the map back.
 *
 * Lanes never interact inside LanePipelines, so relabelling them
 * cannot change any per-config result; within a group the members
 * keep their input order, so leader choices (predictor seed, icache
 * leader) are unchanged too.
 */
struct GroupedLanes
{
    std::vector<MachineConfig> ordered;   //!< group-contiguous configs
    std::vector<std::size_t> posOf;       //!< input lane -> ordered lane
    std::vector<std::vector<std::size_t>> groups;  //!< ordered-lane ids
};

GroupedLanes
groupLanes(const std::vector<MachineConfig> &machines)
{
    GroupedLanes g;
    g.posOf.resize(machines.size());
    g.ordered.reserve(machines.size());
    for (const auto &members : predictionGroups(machines)) {
        std::vector<std::size_t> lanes;
        lanes.reserve(members.size());
        for (const std::size_t l : members) {
            g.posOf[l] = g.ordered.size();
            lanes.push_back(g.ordered.size());
            g.ordered.push_back(machines[l]);
        }
        g.groups.push_back(std::move(lanes));
    }
    return g;
}

/** Within one prediction group every lane fetches the same units and
 *  the same wrong paths in the same step order, so lanes sharing an
 *  icache geometry share one cache model: the group's first such lane
 *  leads, later ones echo its per-step outcome. */
void
shareGroupIcaches(LanePipelines &pipes,
                  const std::vector<MachineConfig> &configs,
                  const std::vector<std::size_t> &group)
{
    for (std::size_t i = 1; i < group.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            if (sameCacheConfig(configs[group[i]].icache,
                                configs[group[j]].icache)) {
                pipes.shareIcache(group[j], group[i]);
                break;
            }
        }
    }
}

} // namespace

// ----------------------------------------------------- conventional

std::vector<SimResult>
lockstepConventional(const Module &module, const ConvLayout &layout,
                     const DecodedProgram &decoded,
                     const std::vector<MachineConfig> &machines,
                     const ExecTrace &trace)
{
    const std::size_t total = machines.size();
    std::vector<SimResult> out(total);
    if (total == 0)
        return out;

    std::vector<std::size_t> uniqueOf;
    const std::vector<MachineConfig> unique =
        dedupConfigs(machines, uniqueOf);
    const GroupedLanes grouped = groupLanes(unique);
    const std::size_t n = grouped.ordered.size();

    LanePipelines pipes(grouped.ordered.data(), n);
    pipes.shareDcachePool(trace.memAddrs, trace.memAddrCount);

    // Prediction is purely stream-driven, so one ConvPredictor serves
    // every lane of a prediction group.
    std::vector<ConvPredictor> preds;
    preds.reserve(grouped.groups.size());
    for (const auto &group : grouped.groups) {
        preds.emplace_back(module, layout, decoded,
                           grouped.ordered[group.front()]);
        shareGroupIcaches(pipes, grouped.ordered, group);
    }

    const std::size_t ngroups = grouped.groups.size();
    LockstepFetchStats &fs = lockstepFetchStatsSlot();
    fs = LockstepFetchStats{};
    fs.groups = ngroups;
    fs.lanes = n;
    // Conventional units are the trace events themselves, so the
    // fused pre-pass retains only the sparse redirect streams — but
    // their reservations are worst-case (every event a mispredict).
    // Fall back to the interleaved O(1)-memory driver when that
    // commitment would blow the capture budget.
    std::uint64_t captureBytes = 0;
    for (const auto &group : grouped.groups) {
        if (!grouped.ordered[group.front()].perfectPrediction)
            captureBytes += redirectBytesPerEvent * trace.eventCount;
    }
    fs.fused = !envSet("BSISA_FORCE_PER_GROUP") &&
               captureBytes <= captureBudgetBytes();

    // One basic block per event on every lane: walk the trace once,
    // decode each event into a unit once, and advance every lane over
    // the hot unit.  Only the redirect differs per group — it is the
    // group predictor's verdict on the previous event — so the whole
    // machine population advances as ONE op-major batch per event,
    // with each lane taking its group's redirect (prediction never
    // reads pipeline state, so collecting every group's verdict
    // before stepping is order-equivalent to interleaving).
    //
    // By default the predictors run in a decoupled pre-pass
    // (captureOutcomes) recording each group's sparse redirect stream,
    // and the timing walk consumes the recorded outcomes by cursor —
    // no predictor work interleaves with the kernel loop.
    // BSISA_FORCE_PER_GROUP — or a worst-case redirect reservation
    // past the capture budget — selects the interleaved reference
    // structure instead (the PR 7 baseline; bit-identical because the
    // pre-pass replays the exact pending()/predictSuccessor sequence).
    TimingUnit unit;
    std::vector<RedirectInfo> laneRedirects(n);
    auto buildUnit = [&](const TraceEvent &e) {
        unit.pc = layout.addrOf(e.func, e.block);
        unit.bytes = layout.bytesOf(e.func, e.block);
        const DecodedUnit &du = decoded.unit(e.func, e.block);
        unit.ops = decoded.ops(du);
        unit.opCount = du.opCount;
        unit.memAddrs = trace.memAddrs + e.memBegin;
        unit.memCount = e.memCount;
    };
    if (!fs.fused) {
        for (std::size_t pos = 0; pos < trace.eventCount; ++pos) {
            const TraceEvent &e = trace.events[pos];
            buildUnit(e);
            for (std::size_t g = 0; g < ngroups; ++g) {
                const RedirectInfo rd = preds[g].pending();
                for (const std::size_t l : grouped.groups[g])
                    laneRedirects[l] = rd;
            }
            pipes.stepBatch(0, n, unit, laneRedirects.data());
            for (std::size_t g = 0; g < ngroups; ++g) {
                preds[g].predictSuccessor(e.func, e.block, e.exit,
                                          e.taken, e.nextFunc,
                                          e.nextBlock);
            }
        }
    } else {
        using Clock = std::chrono::steady_clock;
        const auto t0 = Clock::now();
        std::vector<FetchOutcomeStream> streams(ngroups);
        for (std::size_t g = 0; g < ngroups; ++g)
            preds[g].captureOutcomes(trace, streams[g]);
        const auto t1 = Clock::now();
        fs.fetchSteps = trace.eventCount * ngroups;

        std::vector<std::size_t> rcur(ngroups, 0);
        for (std::size_t pos = 0; pos < trace.eventCount; ++pos) {
            const TraceEvent &e = trace.events[pos];
            buildUnit(e);
            // Most events redirect no group at all; those step with
            // the unit's default (clear) redirect and skip the
            // per-lane gather entirely — a fast path the interleaved
            // structure cannot take, because it must re-read every
            // group's live pending() each event.
            bool any = false;
            for (std::size_t g = 0; g < ngroups; ++g) {
                const FetchOutcomeStream &st = streams[g];
                if (rcur[g] < st.redirectStep.size() &&
                    st.redirectStep[rcur[g]] ==
                        static_cast<std::uint32_t>(pos)) {
                    any = true;
                    break;
                }
            }
            if (any) {
                for (std::size_t g = 0; g < ngroups; ++g) {
                    RedirectInfo rd{};
                    const FetchOutcomeStream &st = streams[g];
                    if (rcur[g] < st.redirectStep.size() &&
                        st.redirectStep[rcur[g]] ==
                            static_cast<std::uint32_t>(pos))
                        rd = st.redirects[rcur[g]++];
                    for (const std::size_t l : grouped.groups[g])
                        laneRedirects[l] = rd;
                }
                pipes.stepBatch(0, n, unit, laneRedirects.data());
            } else {
                pipes.stepBatch(0, n, unit);
            }
        }
        const auto t2 = Clock::now();
        fs.fetchSeconds = secondsBetween(t0, t1);
        fs.timingSeconds = secondsBetween(t1, t2);
    }

    std::vector<SimResult> laneOut(n);
    for (std::size_t g = 0; g < grouped.groups.size(); ++g) {
        for (const std::size_t l : grouped.groups[g]) {
            laneOut[l] = pipes.takeResult(l);
            laneOut[l].predictions = preds[g].predictions();
            laneOut[l].mispredicts = preds[g].mispredicts();
            laneOut[l].trapMispredicts = preds[g].mispredicts();
            laneOut[l].faultMispredicts = 0;
            laneOut[l].cascadeHops = 0;
        }
    }
    for (std::size_t i = 0; i < total; ++i)
        out[i] = laneOut[grouped.posOf[uniqueOf[i]]];
    return out;
}

// ------------------------------------------------- block-structured

namespace
{

std::uint64_t
headToken(FuncId func, BlockId block)
{
    return (std::uint64_t(func) << 32) | block;
}

/**
 * The shared-translation BSA lockstep walk.
 *
 * Transcribes BsaFetchSource over direct trace indexing: a group's
 * "lookahead buffer" is the window [pos, pos + min(64, remaining)) of
 * the shared event array, so the EventRing's truncated-tail semantics
 * are reproduced exactly while the whole config-independent
 * translation at a stream position — a pure function of that position
 * — is computed once and memoised for every group (PosMemo), and the
 * per-block successor-trie lookups the predictor path needs are
 * hoisted out of the hash tables into one flat table (BlockAux) at
 * construction.  Prediction itself is stream-driven — the predictor
 * trains on committed outcomes, never on timing — so the whole fetch
 * side runs once per prediction group and only the member lanes'
 * pipelines are per config; the caller lays each group's lanes out
 * contiguously (groupLanes), so a group steps as one op-major batch.
 *
 * The fetch and timing sides are decoupled (PR 8): captureStep runs
 * one group's predictor/fetch walk one unit forward, appending a
 * FetchOutcomeRecord (and sparse redirect) to the group's stream; the
 * default driver (runFused) first runs every group's capture to
 * completion, then walks the recorded streams by minimum position so
 * groups whose streams coincide at a position — committing the same
 * block — FUSE into one full-width stepBatch with per-lane redirects
 * gathered from the streams.  BSISA_FORCE_PER_GROUP — or a worst-case
 * stream reservation past the capture budget (captureBudgetBytes) —
 * selects the interleaved one-unit-per-group-per-round reference (the
 * PR 7 structure) instead, which streams in O(1) memory.
 */
class LockstepBsa
{
  public:
    LockstepBsa(const BsaModule &bsaModule,
                const DecodedProgram &decodedProgram,
                const std::vector<MachineConfig> &machineConfigs,
                const ExecTrace &execTrace)
        : bsa(bsaModule), module(*bsaModule.src),
          decoded(decodedProgram), machines(machineConfigs),
          trace(execTrace), memo(execTrace.eventCount)
    {
        BSISA_ASSERT(execTrace.eventCount <= 0xffffffffull &&
                         execTrace.memAddrCount <= 0xffffffffull,
                     "FetchOutcomeRecord fields are 32-bit");
        for (const auto &members : predictionGroups(machines)) {
            // stepBatch consumes contiguous lane ranges; the driver
            // below hands us group-contiguous configs (groupLanes).
            for (std::size_t i = 1; i < members.size(); ++i) {
                BSISA_ASSERT(members[i] == members[i - 1] + 1,
                             "prediction groups must be contiguous");
            }
            groups.emplace_back(machines[members.front()], members);
        }
        // The fused walk retains every group's full stream; its worst
        // case — one record per event, every event a mispredict, every
        // span gathered into the side pool — is committed up front by
        // the reservations below (exact upper bounds, so the capture
        // walk is allocation-free: the lockstep steady state performs
        // a length-independent number of heap allocations,
        // tests/test_decoded.cc).  When that commitment would blow the
        // capture budget, fall back to the per-group driver, which
        // streams one record at a time in O(1) memory (the PR 7
        // profile).  Oracle groups never redirect.
        std::uint64_t captureBytes = 0;
        for (const Group &group : groups) {
            captureBytes +=
                sizeof(FetchOutcomeRecord) * trace.eventCount;
            if (!group.perfect)
                captureBytes += redirectBytesPerEvent * trace.eventCount;
            captureBytes +=
                sizeof(std::uint64_t) * trace.memAddrCount;
        }
        fused = !envSet("BSISA_FORCE_PER_GROUP") &&
                captureBytes <= captureBudgetBytes();
        if (fused) {
            for (Group &group : groups) {
                group.stream.steps.reserve(trace.eventCount);
                if (!group.perfect) {
                    group.stream.redirects.reserve(trace.eventCount);
                    group.stream.redirectStep.reserve(
                        trace.eventCount);
                }
            }
        }
        buildBlockAux();
    }

    std::vector<SimResult> run();

  private:
    /** Matches BsaFetchSource::lookahead (EventRing capacity). */
    static constexpr std::size_t lookahead = 64;

    /** One prediction group: the shared fetch-side state of every
     *  lane whose prediction evolution is identical. */
    struct Group
    {
        Group(const MachineConfig &config,
              std::vector<std::size_t> members)
            : perfect(config.perfectPrediction),
              predictor(config.predictor), lanes(std::move(members))
        {
        }

        bool perfect;
        BlockPredictor predictor;
        std::vector<std::size_t> lanes;  //!< member lane indices
        std::size_t pos = 0;  //!< next unconsumed event
        AtomicBlockId predictedNext = invalidId;
        RedirectInfo pendingRedirect;
        /** The group's recorded fetch outcomes (see captureStep).
         *  Non-adjacent address spans gather into stream.sideMem, the
         *  persistent replacement for the old per-step emit buffer. */
        FetchOutcomeStream stream;

        std::uint64_t nPredictions = 0;
        std::uint64_t nTrapMiss = 0;
        std::uint64_t nFaultMiss = 0;
        std::uint64_t nCascadeHops = 0;
        std::uint64_t nFetchSteps = 0;  //!< records captured in total

        bool done = false;
    };

    /**
     * The config-independent translation of one stream position,
     * computed lazily on first touch and shared by every lane whose
     * cursor passes the position.
     */
    struct PosMemo
    {
        const HeadTrie *trie = nullptr;  //!< head trie at the position
        AtomicBlockId smax = invalidId;  //!< maximal-variant block
        std::uint32_t varIdx = 0;        //!< smax's canonical variant
        std::uint32_t memCount = 0;      //!< pooled span length (smax)
        std::uint8_t consume = 0;        //!< events smax consumes
        bool adjacent = false;  //!< span is one contiguous pool slice
        bool compatMax = false; //!< smax passes the stream-compat check
        bool computed = false;
    };

    /** Successor tries of one atomic block's terminator, hoisted out
     *  of the per-(func, head) hash maps.  For Trap terminators
     *  takenTrie/notTakenTrie are the two direction targets and
     *  notTakenSlotBase is the taken side's variant count (the
     *  canonical successor-slot layout puts taken-side variants
     *  first); for Jmp/Call, takenTrie is the sole decodable target. */
    struct BlockAux
    {
        const HeadTrie *takenTrie = nullptr;
        const HeadTrie *notTakenTrie = nullptr;
        unsigned notTakenSlotBase = 0;
    };

    /** Ring-equivalent window size at stream position @p pos. */
    std::size_t
    availAt(std::size_t pos) const
    {
        return std::min<std::size_t>(lookahead,
                                     trace.eventCount - pos);
    }

    const TraceEvent &
    ev(const Group &group, std::size_t i) const
    {
        return trace.events[group.pos + i];
    }

    void buildBlockAux();
    const PosMemo &memoAt(std::size_t pos);
    int maximalVariantUncached(std::size_t pos) const;
    bool compatibleAt(std::size_t pos, AtomicBlockId block,
                      FuncId func, BlockId head) const;
    static unsigned variantIndex(const HeadTrie &trie,
                                 AtomicBlockId block);
    void predictSuccessor(Group &group, AtomicBlockId committed,
                          const TraceEvent &lastEvent);

    /** Advance @p group's fetch side one unit: choose the commit,
     *  record its FetchOutcomeRecord (and sparse redirect) into the
     *  group's stream, consume the events, train the predictor.
     *  Returns false when the stream is exhausted. */
    bool captureStep(Group &group);

    /** Reconstruct the TimingUnit described by @p rec (redirect left
     *  cleared; the drivers gather redirects per lane). */
    void buildUnit(const Group &group, const FetchOutcomeRecord &rec,
                   TimingUnit &unit) const;

    /** Interleaved reference driver (PR 7 structure): one unit per
     *  group per round, each group stepping alone. */
    void runPerGroup(LanePipelines &pipes);

    /** Decoupled driver: capture every group's stream to completion,
     *  then walk the streams by minimum position, fusing coincident
     *  groups into full-width batches. */
    void runFused(LanePipelines &pipes);

    const BsaModule &bsa;
    const Module &module;
    const DecodedProgram &decoded;
    const std::vector<MachineConfig> &machines;
    const ExecTrace &trace;
    std::vector<Group> groups;
    /** Decoupled fused driver selected (full streams retained); false
     *  streams the per-group reference in O(1) memory — forced by
     *  BSISA_FORCE_PER_GROUP or a capture-budget overflow. */
    bool fused = true;

    /** Shared per-position translation memo (lazily filled). */
    std::vector<PosMemo> memo;
    std::uint64_t memoLookups = 0;   //!< memoAt calls
    std::uint64_t memoComputes = 0;  //!< calls that filled an entry
    /** Per-atomic-block successor tries, indexed by AtomicBlockId. */
    std::vector<BlockAux> blockAux;
};

void
LockstepBsa::buildBlockAux()
{
    blockAux.resize(bsa.blocks.size());
    for (std::size_t b = 0; b < bsa.blocks.size(); ++b) {
        const AtomicBlock &blk = bsa.blocks[b];
        const Operation &term = blk.terminator();
        BlockAux &aux = blockAux[b];
        switch (term.op) {
          case Opcode::Trap:
            aux.takenTrie = bsa.findTrie(blk.func, term.target0);
            aux.notTakenTrie = bsa.findTrie(blk.func, term.target1);
            aux.notTakenSlotBase =
                aux.takenTrie ? static_cast<unsigned>(
                                    aux.takenTrie->emitted.size())
                              : 0;
            break;
          case Opcode::Jmp:
            // An intra-function jump: the successor head is
            // term.target0 in the block's own function.
            aux.takenTrie = bsa.findTrie(blk.func, term.target0);
            break;
          case Opcode::Call:
            aux.takenTrie = bsa.findTrie(term.callee, 0);
            break;
          default:
            break;  // Ret/IJmp targets are dynamic; Halt has none
        }
    }
}

const LockstepBsa::PosMemo &
LockstepBsa::memoAt(std::size_t pos)
{
    ++memoLookups;
    PosMemo &pm = memo[pos];
    if (pm.computed)
        return pm;
    ++memoComputes;

    const TraceEvent *evs = trace.events + pos;
    const std::size_t size = availAt(pos);
    pm.trie = &bsa.trie(evs[0].func, evs[0].block);
    const int node = maximalVariantUncached(pos);
    pm.smax = pm.trie->nodes[node].block;
    pm.varIdx = variantIndex(*pm.trie, pm.smax);
    pm.compatMax =
        compatibleAt(pos, pm.smax, evs[0].func, evs[0].block);

    // The maximal commit's event consumption and pooled address span.
    // Replayed events slice one shared pool in stream order, so
    // consecutive spans are usually adjacent and the whole unit is a
    // single zero-copy span into the trace pool.
    const AtomicBlock &blk = bsa.blocks[pm.smax];
    const std::size_t consume =
        std::min<std::size_t>(blk.bbs.size(), size);
    pm.consume = static_cast<std::uint8_t>(consume);
    bool adjacent = true;
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < consume; ++i) {
        const TraceEvent &e = evs[i];
        if (i > 0 && evs[0].memBegin + total != e.memBegin) {
            adjacent = false;
            break;
        }
        total += e.memCount;
    }
    pm.adjacent = adjacent;
    pm.memCount = total;
    pm.computed = true;
    return pm;
}

int
LockstepBsa::maximalVariantUncached(std::size_t pos) const
{
    const std::size_t size =
        std::min<std::size_t>(lookahead, trace.eventCount - pos);
    const TraceEvent *evs = trace.events + pos;
    const FuncId func = evs[0].func;
    const BlockId head = evs[0].block;
    const HeadTrie &trie = bsa.trie(func, head);
    const Function &fn = module.functions[func];
    int node = 0;
    unsigned i = 0;

    for (;;) {
        const TrieNode &tn = trie.nodes[node];
        const Operation &term = fn.blocks[tn.bb].terminator();
        int child = -1;
        if (term.op == Opcode::Jmp) {
            child = tn.childThru;
        } else if (term.op == Opcode::Trap && i < size) {
            child = evs[i].taken ? tn.childTaken : tn.childNotTaken;
        }
        if (child == -1 || i + 1 >= size) {
            // Stop here; if the walk was cut short by a truncated
            // event stream the node may be pass-through, so fall to
            // its default emitted descendant.
            int stop = node;
            while (trie.nodes[stop].block == invalidId) {
                const TrieNode &cur = trie.nodes[stop];
                stop = cur.childThru != -1        ? cur.childThru
                       : cur.childNotTaken != -1 ? cur.childNotTaken
                                                 : cur.childTaken;
                BSISA_ASSERT(stop != -1);
            }
            return stop;
        }
        node = child;
        ++i;
    }
}

bool
LockstepBsa::compatibleAt(std::size_t pos, AtomicBlockId block,
                          FuncId func, BlockId head) const
{
    if (block == invalidId)
        return false;
    const AtomicBlock &blk = bsa.blocks[block];
    if (blk.func != func || blk.bbs.front() != head)
        return false;
    if (blk.bbs.size() > availAt(pos))
        return false;
    const TraceEvent *evs = trace.events + pos;
    for (std::size_t i = 0; i < blk.bbs.size(); ++i) {
        const TraceEvent &e = evs[i];
        if (e.func != func || e.block != blk.bbs[i])
            return false;
        if (i + 1 < blk.bbs.size() &&
            (e.nextFunc != func || e.nextBlock != blk.bbs[i + 1])) {
            return false;
        }
    }
    return true;
}

unsigned
LockstepBsa::variantIndex(const HeadTrie &trie, AtomicBlockId block)
{
    for (unsigned v = 0; v < trie.emitted.size(); ++v)
        if (trie.nodes[trie.emitted[v]].block == block)
            return v;
    panic("block is not a variant of this trie");
}

void
LockstepBsa::predictSuccessor(Group &group, AtomicBlockId committed,
                              const TraceEvent &lastEvent)
{
    const AtomicBlock &blk = bsa.blocks[committed];
    const DecodedUnit &du = decoded.unit(committed);
    group.pendingRedirect = RedirectInfo{};
    group.predictedNext = invalidId;

    if (lastEvent.exit == ExitKind::Halt || availAt(group.pos) == 0)
        return;

    const FuncId next_func = lastEvent.nextFunc;
    const BlockId next_head = lastEvent.nextBlock;
    BSISA_ASSERT(ev(group, 0).func == next_func &&
                 ev(group, 0).block == next_head);

    const PosMemo &pm = memoAt(group.pos);
    const AtomicBlockId s_max = pm.smax;

    if (group.perfect) {
        group.predictedNext = s_max;
        return;
    }

    BlockPredictor &predictor = group.predictor;
    const std::uint64_t pc = blk.addr;
    const Operation &term = blk.terminator();
    const BlockAux &aux = blockAux[committed];

    // Canonical successor slot layout: taken-side variants first.
    auto slot_of = [&](bool taken_side, unsigned variant) -> unsigned {
        unsigned slot = variant;
        if (term.op == Opcode::Trap && !taken_side)
            slot += aux.notTakenSlotBase;
        return slot & (btbSuccessorSlots - 1);
    };

    // ----------------------------------------------------- predict
    // One combined PHT+BTB probe serves the whole predict section
    // (the capture pre-pass runs this per fetch step, so halving the
    // table traffic matters); the view stays valid until install()
    // below — popReturn only touches the return stack.
    AtomicBlockId candidate = invalidId;
    const BlockPredictor::Probe pr = predictor.probe(pc);
    const BlockPredictor::Prediction &pred = pr.pred;
    switch (term.op) {
      case Opcode::Trap: {
        const HeadTrie *trie =
            pred.trapTaken ? aux.takenTrie : aux.notTakenTrie;
        if (trie) {
            const unsigned nvar =
                static_cast<unsigned>(trie->emitted.size());
            const unsigned variant = std::min(pred.variantBits,
                                              nvar - 1);
            const AtomicBlockId structural =
                trie->nodes[trie->emitted[variant]].block;
            const unsigned slot = slot_of(pred.trapTaken, variant);
            if (pr.btb.successor(slot) == structural)
                candidate = structural;
            else if (pr.btb.lastSucc != ~0ull)
                candidate =
                    static_cast<AtomicBlockId>(pr.btb.lastSucc);
        }
        break;
      }
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret: {
        const HeadTrie *trie = aux.takenTrie;
        if (term.op == Opcode::Ret) {
            // The return address stack provides the head.
            const std::uint64_t token = predictor.popReturn();
            if (token == ~0ull)
                break;
            trie = bsa.findTrie(
                static_cast<FuncId>(token >> 32),
                static_cast<BlockId>(token & 0xffffffff));
        }
        if (trie) {
            const unsigned nvar =
                static_cast<unsigned>(trie->emitted.size());
            const unsigned variant = std::min(pred.variantBits,
                                              nvar - 1);
            const AtomicBlockId structural =
                trie->nodes[trie->emitted[variant]].block;
            const unsigned slot = variant & (btbSuccessorSlots - 1);
            if (pr.btb.successor(slot) == structural)
                candidate = structural;
            else if (pr.btb.lastSucc != ~0ull)
                candidate =
                    static_cast<AtomicBlockId>(pr.btb.lastSucc);
        }
        break;
      }
      case Opcode::IJmp: {
        if (pr.btb.lastSucc != ~0ull)
            candidate = static_cast<AtomicBlockId>(pr.btb.lastSucc);
        break;
      }
      default:
        break;
    }
    if (term.op == Opcode::Call)
        predictor.pushReturn(headToken(blk.func, term.target0));

    // ------------------------------------------------------- train
    const unsigned actual_variant = pm.varIdx;
    BlockPredictor::Prediction actual;
    actual.trapTaken =
        term.op == Opcode::Trap ? lastEvent.taken : false;
    actual.variantBits = actual_variant;
    unsigned succ_index = actual_variant;
    if (term.op == Opcode::Trap)
        succ_index = slot_of(lastEvent.taken, actual_variant);
    predictor.update(pc, actual, blk.succBits, succ_index);
    predictor.install(pc, succ_index & (btbSuccessorSlots - 1), s_max);

    // ---------------------------------------------------- classify
    bool counted = blk.succBits > 0 || term.op == Opcode::IJmp;
    if (counted)
        ++group.nPredictions;

    if (candidate != invalidId) {
        const bool compat =
            candidate == s_max
                ? pm.compatMax
                : compatibleAt(group.pos, candidate, next_func,
                               next_head);
        if (compat) {
            // Commits (possibly shallow).
            group.predictedNext = candidate;
            return;
        }
    }

    // Misprediction.
    if (!counted)
        ++group.nPredictions;  // cold-BTB misses on single-succ blocks
    group.pendingRedirect.mispredicted = true;
    const bool same_head =
        candidate != invalidId &&
        bsa.blocks[candidate].func == next_func &&
        bsa.blocks[candidate].bbs.front() == next_head;

    if (!same_head) {
        // Wrong head (trap direction / indirect target / cold BTB):
        // resolved by this block's terminator.
        ++group.nTrapMiss;
        group.pendingRedirect.resolveInWrongBlock = false;
        group.pendingRedirect.resolveOpIdx = du.opCount - 1;
        if (candidate != invalidId) {
            const AtomicBlock &wrong = bsa.blocks[candidate];
            const DecodedUnit &wdu = decoded.unit(candidate);
            group.pendingRedirect.wrongOps = decoded.ops(wdu);
            group.pendingRedirect.wrongOpCount = wdu.opCount;
            group.pendingRedirect.wrongPc = wrong.addr;
            group.pendingRedirect.wrongBytes = wdu.sizeBytes;
        }
        group.predictedNext = s_max;
        return;
    }

    // Same head, wrong variant: a fault inside the wrong block fires.
    ++group.nFaultMiss;
    group.pendingRedirect.isFault = true;
    group.pendingRedirect.resolveInWrongBlock = true;

    // Walk the fault-target cascade until a compatible block.
    AtomicBlockId wrong_id = candidate;
    unsigned hops = 0;
    for (;;) {
        const DecodedUnit &wdu = decoded.unit(wrong_id);
        const DecodedFault *wfaults = decoded.faults(wdu);
        // Find the first divergent merge edge by comparing the
        // decoded direction mask with the actual stream; thru edges
        // cannot diverge, so trapMask walks only the fault edges.
        bool diverged = false;
        unsigned resolve_op = wdu.opCount - 1;
        AtomicBlockId fault_target = invalidId;
        unsigned dir_idx = 0;
        for (std::uint64_t m = wdu.trapMask; m;
             m &= m - 1, ++dir_idx) {
            const unsigned i =
                static_cast<unsigned>(std::countr_zero(m));
            if (i >= availAt(group.pos))
                break;  // truncated stream at the program tail
            const bool actual_dir = ev(group, i).taken;
            const bool merged_dir = (wdu.dirMask >> dir_idx) & 1;
            if (actual_dir != merged_dir) {
                diverged = true;
                resolve_op = wfaults[dir_idx].opIdx;
                fault_target = wfaults[dir_idx].target;
                break;
            }
        }
        if (!diverged) {
            if (hops == 0) {
                // No divergent fault exists (possible only when the
                // event stream is truncated at the program tail):
                // resolve at the previous terminator instead.
                group.pendingRedirect.resolveInWrongBlock = false;
                group.pendingRedirect.resolveOpIdx = du.opCount - 1;
            }
            // The cascade landed on a compatible block.
            break;
        }
        if (hops == 0) {
            // The first wrong block is the one the pipeline issues.
            group.pendingRedirect.resolveOpIdx = resolve_op;
            group.pendingRedirect.wrongOps = decoded.ops(wdu);
            group.pendingRedirect.wrongOpCount = wdu.opCount;
            group.pendingRedirect.wrongPc = bsa.blocks[wrong_id].addr;
            group.pendingRedirect.wrongBytes = wdu.sizeBytes;
        }
        ++hops;
        ++group.nCascadeHops;
        wrong_id = fault_target;
        if (hops > 8) {
            wrong_id = s_max;
            break;
        }
    }
    group.pendingRedirect.extraHops = hops > 0 ? hops - 1 : 0;
    // The cascade-final compatible block; produceUnit falls back to
    // the maximal variant if the stream was truncated underneath us.
    group.predictedNext = wrong_id;
}

bool
LockstepBsa::captureStep(Group &group)
{
    if (group.pos >= trace.eventCount)
        return false;

    const PosMemo &pm = memoAt(group.pos);
    const TraceEvent &e0 = ev(group, 0);

    // A predicted maximal commit needs no re-check: either way the
    // commit is s_max.  Only shallower (or wrong-head) predictions
    // pay for a stream-compatibility walk.
    AtomicBlockId committed;
    if (group.predictedNext != invalidId &&
        group.predictedNext != pm.smax &&
        compatibleAt(group.pos, group.predictedNext, e0.func,
                     e0.block)) {
        committed = group.predictedNext;
    } else {
        committed = pm.smax;
    }

    FetchOutcomeStream &st = group.stream;
    if (!fused) {
        // Streaming mode: runPerGroup consumes each record as soon as
        // it is captured, so the stream only ever holds the newest one
        // (and its redirect/side span) — O(1) memory over any trace
        // length, like the engine before the decoupling.  clear()
        // keeps capacity, so the steady state stays allocation-free.
        st.steps.clear();
        st.redirects.clear();
        st.redirectStep.clear();
        st.sideMem.clear();
    }
    FetchOutcomeRecord rec;
    rec.pos = static_cast<std::uint32_t>(group.pos);
    rec.committed = committed;

    // Record the block's memory span; the gathering fallback for
    // non-adjacent spans mirrors BsaFetchSource for safety, appending
    // into the stream's persistent side pool.
    std::size_t consume;
    bool adjacent;
    std::uint32_t total;
    if (committed == pm.smax) {
        consume = pm.consume;
        adjacent = pm.adjacent;
        total = pm.memCount;
    } else {
        const AtomicBlock &blk = bsa.blocks[committed];
        consume = std::min<std::size_t>(blk.bbs.size(),
                                        availAt(group.pos));
        adjacent = true;
        total = 0;
        for (std::size_t i = 0; i < consume; ++i) {
            const TraceEvent &e = ev(group, i);
            if (i > 0 && e0.memBegin + total != e.memBegin) {
                adjacent = false;
                break;
            }
            total += e.memCount;
        }
    }
    if (adjacent) {
        rec.memOffset = static_cast<std::uint32_t>(e0.memBegin);
        rec.memCount = total;
        rec.sideMem = 0;
    } else {
        // First non-adjacent span in a fused (retaining) run: one
        // reservation covers the group's whole walk (each event's
        // span is gathered at most once, so the side pool never
        // exceeds the trace pool).  A streaming run clears the pool
        // every step, so its capacity only ever reaches the largest
        // single span.
        if (fused && st.sideMem.capacity() == 0)
            st.sideMem.reserve(trace.memAddrCount);
        rec.memOffset = static_cast<std::uint32_t>(st.sideMem.size());
        for (std::size_t i = 0; i < consume; ++i) {
            const TraceEvent &e = ev(group, i);
            st.sideMem.insert(st.sideMem.end(),
                              trace.memAddrs + e.memBegin,
                              trace.memAddrs + e.memBegin + e.memCount);
        }
        rec.memCount =
            static_cast<std::uint32_t>(st.sideMem.size()) -
            rec.memOffset;
        rec.sideMem = 1;
    }

    // The redirect recorded by the PREVIOUS step's prediction applies
    // to this unit's fetch; store it sparsely against this step.
    if (group.pendingRedirect.mispredicted) {
        st.redirectStep.push_back(
            static_cast<std::uint32_t>(st.steps.size()));
        st.redirects.push_back(group.pendingRedirect);
    }
    st.steps.push_back(rec);
    ++group.nFetchSteps;

    const TraceEvent &last = ev(group, consume - 1);
    group.pos += consume;
    predictSuccessor(group, committed, last);
    return true;
}

void
LockstepBsa::buildUnit(const Group &group,
                       const FetchOutcomeRecord &rec,
                       TimingUnit &unit) const
{
    const AtomicBlock &blk = bsa.blocks[rec.committed];
    const DecodedUnit &du = decoded.unit(rec.committed);
    unit.pc = blk.addr;
    unit.bytes = du.sizeBytes;
    unit.ops = decoded.ops(du);
    unit.opCount = du.opCount;
    unit.memAddrs = (rec.sideMem ? group.stream.sideMem.data()
                                 : trace.memAddrs) +
                    rec.memOffset;
    unit.memCount = rec.memCount;
    unit.redirect = RedirectInfo{};
}

void
LockstepBsa::runPerGroup(LanePipelines &pipes)
{
    // PR 7 reference structure: groups advance one unit per round, so
    // their cursors stay within a block length of each other and
    // every per-position memo entry is computed by the leading group
    // and reused hot by the rest — but each stepBatch is only one
    // group wide.  (Merging batches across groups by ROUND NUMBER was
    // tried and measured here: shallow commits make group cursors
    // random-walk apart, so same-round unit matches are <0.2%.
    // runFused merges by STREAM POSITION instead, which the decoupled
    // pre-pass makes exact.)
    TimingUnit unit{};
    for (;;) {
        bool any = false;
        for (Group &group : groups) {
            if (group.done)
                continue;
            if (!captureStep(group)) {
                group.done = true;
                continue;
            }
            const FetchOutcomeStream &st = group.stream;
            buildUnit(group, st.steps.back(), unit);
            if (!st.redirectStep.empty() &&
                st.redirectStep.back() == st.steps.size() - 1)
                unit.redirect = st.redirects.back();
            pipes.stepBatch(group.lanes.front(), group.lanes.size(),
                            unit);
            any = true;
        }
        if (!any)
            break;
    }
}

void
LockstepBsa::runFused(LanePipelines &pipes)
{
    using Clock = std::chrono::steady_clock;
    LockstepFetchStats &fs = lockstepFetchStatsSlot();

    // Phase A: the fetch-outcome pre-pass.  Each group's predictor
    // walk runs to completion, so every per-position memo entry is
    // computed once (by the first group to reach it) and served from
    // the memo to the rest.
    const auto t0 = Clock::now();
    for (Group &group : groups) {
        while (captureStep(group)) {
        }
    }
    const auto t1 = Clock::now();

    // Phase B: the timing walk consumes the streams as plain data by
    // MINIMUM POSITION: at each round the groups whose next record
    // sits at the minimum stream position are partitioned by
    // committed block, and each partition — adjacent groups form one
    // contiguous lane run — steps as one full-width batch with
    // per-lane redirects gathered from the streams.  Lanes never
    // interact and each lane still sees its own (unit, redirect)
    // sequence in stream order, so any such interleaving is
    // bit-identical to the per-group reference.
    const std::size_t ng = groups.size();
    std::vector<std::size_t> cur(ng, 0);   //!< next record per group
    std::vector<std::size_t> rcur(ng, 0);  //!< next redirect per group
    std::vector<RedirectInfo> laneRedirects(machines.size());
    constexpr std::size_t consumedMark = ~std::size_t(0);
    std::vector<std::size_t> atPos;
    atPos.reserve(ng);
    TimingUnit unit{};

    for (;;) {
        std::uint64_t minPos = ~std::uint64_t(0);
        for (std::size_t g = 0; g < ng; ++g) {
            if (cur[g] < groups[g].stream.steps.size())
                minPos = std::min<std::uint64_t>(
                    minPos, groups[g].stream.steps[cur[g]].pos);
        }
        if (minPos == ~std::uint64_t(0))
            break;
        atPos.clear();
        for (std::size_t g = 0; g < ng; ++g) {
            if (cur[g] < groups[g].stream.steps.size() &&
                groups[g].stream.steps[cur[g]].pos == minPos)
                atPos.push_back(g);
        }
        for (std::size_t i = 0; i < atPos.size(); ++i) {
            if (atPos[i] == consumedMark)
                continue;
            const std::size_t gl = atPos[i];  // partition leader
            const FetchOutcomeRecord lead =
                groups[gl].stream.steps[cur[gl]];
            buildUnit(groups[gl], lead, unit);
            std::size_t runFirst = 0;
            std::size_t runCount = 0;
            auto flush = [&]() {
                if (runCount == 0)
                    return;
                pipes.stepBatch(runFirst, runCount, unit,
                                laneRedirects.data() + runFirst);
                runCount = 0;
            };
            for (std::size_t j = i; j < atPos.size(); ++j) {
                const std::size_t g = atPos[j];
                if (g == consumedMark)
                    continue;
                Group &grp = groups[g];
                const FetchOutcomeRecord &r = grp.stream.steps[cur[g]];
                if (r.committed != lead.committed)
                    continue;
                // Same position, same block: the span content is
                // identical whichever group's storage backs it.
                BSISA_ASSERT(r.memCount == lead.memCount);
                RedirectInfo rd{};
                const FetchOutcomeStream &st = grp.stream;
                if (rcur[g] < st.redirectStep.size() &&
                    st.redirectStep[rcur[g]] == cur[g])
                    rd = st.redirects[rcur[g]++];
                for (const std::size_t lane : grp.lanes)
                    laneRedirects[lane] = rd;
                const std::size_t laneFirst = grp.lanes.front();
                if (runCount > 0 &&
                    laneFirst == runFirst + runCount) {
                    runCount += grp.lanes.size();
                } else {
                    flush();
                    runFirst = laneFirst;
                    runCount = grp.lanes.size();
                }
                ++cur[g];
                atPos[j] = consumedMark;
            }
            flush();
        }
    }
    const auto t2 = Clock::now();
    fs.fetchSeconds = secondsBetween(t0, t1);
    fs.timingSeconds = secondsBetween(t1, t2);
}

std::vector<SimResult>
LockstepBsa::run()
{
    const std::size_t n = machines.size();
    LanePipelines pipes(machines.data(), n);
    pipes.shareDcachePool(trace.memAddrs, trace.memAddrCount);
    for (const Group &group : groups)
        shareGroupIcaches(pipes, machines, group.lanes);

    LockstepFetchStats &fs = lockstepFetchStatsSlot();
    fs = LockstepFetchStats{};
    fs.groups = groups.size();
    fs.lanes = n;
    fs.fused = fused;

    if (fused)
        runFused(pipes);
    else
        runPerGroup(pipes);

    for (const Group &group : groups)
        fs.fetchSteps += group.nFetchSteps;
    fs.memoLookups = memoLookups;
    fs.memoComputes = memoComputes;

    std::vector<SimResult> out(n);
    for (const Group &group : groups) {
        for (const std::size_t l : group.lanes) {
            out[l] = pipes.takeResult(l);
            out[l].predictions = group.nPredictions;
            out[l].mispredicts = group.nTrapMiss + group.nFaultMiss;
            out[l].trapMispredicts = group.nTrapMiss;
            out[l].faultMispredicts = group.nFaultMiss;
            out[l].cascadeHops = group.nCascadeHops;
        }
    }
    return out;
}

} // namespace

std::vector<SimResult>
lockstepBlockStructured(const BsaModule &bsa,
                        const DecodedProgram &decoded,
                        const std::vector<MachineConfig> &machines,
                        const ExecTrace &trace)
{
    if (machines.empty())
        return {};
    std::vector<std::size_t> uniqueOf;
    const std::vector<MachineConfig> unique =
        dedupConfigs(machines, uniqueOf);
    const GroupedLanes grouped = groupLanes(unique);
    LockstepBsa engine(bsa, decoded, grouped.ordered, trace);
    const std::vector<SimResult> laneOut = engine.run();
    std::vector<SimResult> out(machines.size());
    for (std::size_t i = 0; i < machines.size(); ++i)
        out[i] = laneOut[grouped.posOf[uniqueOf[i]]];
    return out;
}

// -------------------------------------------------------- trace cache

std::vector<TraceCacheResult>
lockstepTraceCache(const Module &module, const ConvLayout &layout,
                   const DecodedProgram &decoded,
                   const std::vector<MachineConfig> &machines,
                   const std::vector<TraceCacheConfig> &tcConfigs,
                   const ExecTrace &trace)
{
    BSISA_ASSERT(machines.size() == tcConfigs.size());
    const std::size_t n = machines.size();
    std::vector<TraceCacheResult> out(n);
    if (n == 0)
        return out;

    LanePipelines pipes(machines.data(), n);
    std::vector<std::unique_ptr<TraceCacheFetchSource>> sources;
    sources.reserve(n);
    for (std::size_t l = 0; l < n; ++l) {
        sources.push_back(std::make_unique<TraceCacheFetchSource>(
            module, layout, machines[l], tcConfigs[l], trace,
            decoded));
    }

    // Trace-cache unit boundaries depend on per-config cache
    // contents, so lanes round-robin one unit per turn over the
    // shared read-only decode and trace.
    std::vector<bool> alive(n, true);
    TimingUnit unit;
    for (std::size_t remaining = n; remaining > 0;) {
        for (std::size_t l = 0; l < n; ++l) {
            if (!alive[l])
                continue;
            if (sources[l]->next(unit)) {
                pipes.step(l, unit);
            } else {
                alive[l] = false;
                --remaining;
            }
        }
    }

    for (std::size_t l = 0; l < n; ++l) {
        out[l].sim = pipes.takeResult(l);
        fillSourceStats(out[l].sim, *sources[l]);
        out[l].traceHits = sources[l]->traceHits();
        out[l].traceMisses = sources[l]->traceMisses();
    }
    return out;
}

} // namespace bsisa
