/**
 * @file
 * Lockstep multi-config simulation: one decoded program and one
 * replayed event stream drive N per-config machines at once.
 *
 * The paper's figures are config sweeps — dozens of (fetch model,
 * predictor, cache, window) points over the same eight benchmarks —
 * and each point's committed stream is identical.  Replaying the
 * shared trace once per *config* leaves two kinds of redundant work on
 * the table:
 *
 *   - config-independent translation: the conventional machine's fetch
 *     units are exactly the committed basic blocks, and the
 *     block-structured machine's maximal-variant trie walk depends
 *     only on (BsaModule, stream position) — never on the predictor or
 *     the caches; and
 *   - cold rewalks of the shared data: each per-config pass streams
 *     the multi-megabyte trace and the decoded-op pools through the
 *     host caches again, even though the bytes are identical.
 *
 * A lockstep batch fixes both.  The drivers walk the trace once,
 * compute each position's translation once (unit boundaries, decoded
 * slices, address spans, and — for the BSA — the maximal-variant trie
 * walk, memoised per position), and advance every config lane over the
 * still-hot unit before moving to the next event; only the genuinely
 * config-dependent work (prediction state, cache models, scheduling)
 * runs per lane.
 *
 * The fetch and timing sides are further DECOUPLED (sim/
 * fetch_outcome.hh): each prediction group's predictor/fetch walk
 * runs exactly once over the trace in a pre-pass, recording compact
 * per-step outcome records (and sparse redirects) into a
 * FetchOutcomeStream, and the timing walk consumes the recorded
 * streams as plain data.  Freed from interleaving with prediction,
 * the BSA timing walk advances the streams by minimum position and
 * fuses lanes of DIFFERENT prediction groups that commit the same
 * block at the same position into one full-width op-major batch.
 * BSISA_FORCE_PER_GROUP restores the interleaved one-group-at-a-time
 * structure (the PR 7 baseline and differential reference);
 * lockstepLastFetchStats() reports the batching shape, memo hit
 * rates, and the per-phase wall-clock split of the latest run.
 *
 * The per-lane scheduling itself runs *op-major*: a prediction
 * group's member lanes are contiguous, and stepBatch() advances all
 * of them one operation at a time over register-major SoA pools — one
 * lane row per scoreboard slot (sim/machine.hh layout constants), so
 * the operand-ready max and the completion-time writeback of each
 * operation are contiguous elementwise passes over lane rows, issued
 * through the support/simd_dispatch.hh kernel seam (AVX2 on x86-64,
 * scalar elsewhere, selected at runtime).  Only the issue-slot search
 * and the cache-outcome resolution remain per-lane scalar code, and
 * the dcache latency adjustment is branchless over a per-op lane miss
 * mask.  Read-only state (the DecodedProgram, the ConvLayout, the
 * BsaModule and its tries, the mmap-ed trace address pool) is shared
 * by reference across every lane, never duplicated per config.
 *
 * Bit-exactness contract: every lockstep driver produces SimResults
 * bit-identical to running the same configs one at a time through
 * simulatePipeline over a TraceReplaySource (the singleton path).
 * simulatePipeline itself is implemented as a one-lane LanePipelines
 * walk, and the op-major batched walk performs the same per-lane
 * arithmetic in the same per-lane order (lanes never interact, so the
 * cross-lane interleaving is free), so the sequential and batched
 * paths share one arithmetic.  The contract is enforced by
 * tests/test_lockstep.cc and the fuzz harness's `lockstep` oracle,
 * across every kernel implementation (BSISA_FORCE_SCALAR selects the
 * scalar kernels; BSISA_FORCE_LANE_MAJOR additionally forces the
 * pre-vectorization lane-at-a-time stepping, kept as the reference
 * and benchmark baseline).
 */

#ifndef BSISA_SIM_LOCKSTEP_HH
#define BSISA_SIM_LOCKSTEP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "codegen/layout.hh"
#include "core/bsa.hh"
#include "sim/fetch_outcome.hh"
#include "sim/fetch_source.hh"
#include "sim/machine.hh"
#include "sim/pipeline.hh"
#include "sim/trace.hh"
#include "support/aligned.hh"

namespace bsisa
{

struct TraceCacheConfig;

/**
 * Structure-of-arrays pipeline state for N config lanes.
 *
 * Each lane is one complete machine — issue slots, register
 * scoreboard, instruction window, icache/dcache, wrong-path rename
 * scoreboard, cycle counters.  Lanes never interact: any interleaving
 * of step()/stepBatch() calls across lanes produces the same per-lane
 * results, so batch drivers are free to advance lanes event-by-event
 * (sharing each hot unit) while simulatePipeline drives a single lane
 * to completion.
 *
 * Scoreboard pools (register-ready, wrong-path ready/stamp, previous
 * unit completion times) are register-major: row r holds slot r of
 * every lane, laneStride(laneCount) elements apart, 64-byte aligned
 * (sim/machine.hh).  stepBatch() advances a contiguous lane range
 * op-major over these rows; step() advances one lane with the same
 * arithmetic in lane-major order.
 */
class LanePipelines
{
  public:
    LanePipelines(const MachineConfig *configs, std::size_t laneCount);

    std::size_t laneCount() const { return lanes.size(); }

    /**
     * Share the committed-order dcache simulation across lanes.
     *
     * Wrong-path loads never touch the dcache (they are modelled as
     * L1 hits), and every replay lane's committed mem ops consume the
     * trace's address pool in stream order — so the hit/miss outcome
     * of pool access #i is a pure function of the dcache geometry,
     * not of the lane.  Replay drivers pass the pool here and lanes
     * with identical dcache configs then share one precomputed
     * hit/miss stream instead of running one cache model each.
     * Accesses past the pool (ops of a final unit truncated by the op
     * budget read address 0) and any out-of-order consumption fork
     * the lane an exact private cache, so results stay bit-identical
     * to the unshared path by construction.  Do not enable for
     * sources that can revisit or reorder pool addresses.
     */
    void shareDcachePool(const std::uint64_t *addrs, std::size_t count);

    /**
     * Declare @p follower's icache access stream identical to
     * @p leader's, so the follower reuses the leader's per-step
     * icache outcome instead of running its own cache model.
     *
     * Valid only when both lanes see the same units and the same
     * redirects in the same step order (same prediction group) and
     * their icache geometries match, and the caller must step the
     * leader before the follower in every round — both are asserted
     * per step via lockstep sequence numbers.  stepBatch() steps
     * lanes in ascending order, so a leader below its follower in the
     * same batch range always satisfies the ordering.
     */
    void shareIcache(std::size_t leader, std::size_t follower);

    /** Advance @p lane by its next fetch unit (lane-major loop). */
    void step(std::size_t lane, const TimingUnit &unit);

    /**
     * Advance the @p count lanes starting at @p first over the same
     * fetch unit, op-major: for each operation, all lanes' operand
     * resolution and completion writeback run as contiguous vector
     * passes over the lane rows (see class comment).  Bit-identical
     * to calling step() per lane.
     *
     * Lanes of one batch share the unit's translation but not
     * necessarily its redirect: @p redirects, when non-null, gives
     * lane first+l its own RedirectInfo (entry l), letting a driver
     * batch *across* prediction groups whose fetch streams happen to
     * coincide this step; when null every lane takes unit.redirect.
     */
    void stepBatch(std::size_t first, std::size_t count,
                   const TimingUnit &unit,
                   const RedirectInfo *redirects = nullptr);

    /** Pipeline-side result of @p lane (cycles, retired counts, stall
     *  breakdown, window high-water marks, cache stats).  Prediction
     *  statistics belong to the fetch side; the caller fills them. */
    SimResult takeResult(std::size_t lane) const;

  private:
    /** Per-lane POD counters, contiguous across lanes. */
    struct LaneState
    {
        std::uint64_t lastFetch = 0;
        std::uint64_t lastRetire = 0;
        std::uint64_t wrongGen = 0;
        /** prevDone entry count; 0 until the first unit commits. */
        std::uint32_t prevCount = 0;
        /** In-flight ring cursors (ring capacity windowUnits + 1). */
        std::uint32_t inflightHead = 0;
        std::uint32_t inflightTail = 0;
        std::uint32_t inflightOps = 0;
    };

    /** One in-flight unit: (retire cycle, op count). */
    struct Inflight
    {
        std::uint64_t retire = 0;
        std::uint32_t ops = 0;
    };

    /** Lanes advanced per op-major inner pass; bounded by the width
     *  of the per-op dcache miss mask. */
    static constexpr std::size_t chunkLanes = 64;

    // ------------------------------------------------- phase helpers
    /** Fetch phase: redirect resolution (incl. wrong-path issue),
     *  window-occupancy wait, icache access.  Returns the earliest
     *  schedule cycle (fetch + frontendDepth). */
    std::uint64_t fetchPhase(std::size_t lane, const TimingUnit &unit,
                             const RedirectInfo &redirect);

    /** Retire phase: window push, high-water marks, cycle count. */
    void retirePhase(std::size_t lane, std::uint32_t unitOps,
                     std::uint64_t unitDone);

    /** Wrong-path scheduling (see pipeline.cc's model comment). */
    std::uint64_t scheduleWrongPath(std::size_t lane,
                                    const DecodedOp *ops,
                                    std::uint32_t n,
                                    unsigned mustRunIdx,
                                    std::uint64_t fetchCycle,
                                    std::uint64_t squashCutoff);

    /** One lane's full step (fetch, per-op schedule, retire) in the
     *  pre-batching lane-major order; the batch-of-one path and the
     *  BSISA_FORCE_LANE_MAJOR reference baseline. */
    void stepOneLane(std::size_t lane, const TimingUnit &unit,
                     const RedirectInfo &redirect);

    /** Op-major walk of @p n <= chunkLanes lanes from @p first;
     *  @p redirects as in stepBatch (relative to @p first). */
    void opMajorChunk(std::size_t first, std::size_t n,
                      const TimingUnit &unit,
                      const RedirectInfo *redirects);

    /** Resolve mem-op @p memIdx of @p unit for @p n lanes from
     *  @p first — shared-stream outcome bits or private cache model
     *  per lane — and return the lane miss mask (bit l set: lane
     *  first+l missed). */
    std::uint64_t memAccessMask(std::size_t first, std::size_t n,
                                const TimingUnit &unit,
                                std::uint32_t memIdx);

    /** One distinct dcache geometry's precomputed pool walk: the
     *  per-access hit/miss stream plus the cache's final state (the
     *  seed for a lane's private tail fork). */
    struct DcacheStream
    {
        Cache cache;
        std::vector<std::uint8_t> hit;
    };

    /** Leave the shared dcache stream: seed the lane's private cache
     *  with the stream state at its cursor (final state when the pool
     *  is fully consumed, an exact prefix replay otherwise). */
    void privatizeDcache(std::size_t lane);

    /** Row of scoreboard slot @p r: element @p lane is that lane's
     *  value (register-major layout, stride elements per row). */
    std::uint64_t *regRow(RegNum r) { return regReady.data() + r * stride; }
    std::uint64_t *prevRow(std::size_t op)
    {
        return prevDone.data() + op * stride;
    }
    Inflight *inflightOf(std::size_t lane)
    {
        return inflightPool.data() + inflightBase[lane];
    }

    static constexpr std::size_t laneRegs = numArchRegs + 1;

    std::vector<MachineConfig> configs;
    std::vector<LaneState> lanes;
    std::vector<SimResult> results;
    std::vector<IssueSlots> slots;
    std::vector<Cache> icaches;
    std::vector<Cache> dcaches;

    /** Register-major scoreboard pools (see class comment): laneRegs
     *  (or prevRows) rows of stride lanes each, 64-byte aligned. */
    AlignedVec<std::uint64_t> regReady;     //!< laneRegs x stride
    AlignedVec<std::uint64_t> wrongReady;   //!< laneRegs x stride
    AlignedVec<std::uint64_t> wrongStamp;   //!< laneRegs x stride
    AlignedVec<std::uint64_t> prevDone;     //!< prevRows x stride
    std::vector<Inflight> inflightPool;
    std::vector<std::uint32_t> inflightBase;  //!< +capacity sentinel
    /** Lane-row stride (laneStride(laneCount), sim/machine.hh). */
    std::size_t stride = 0;
    /** prevDone row count (max windowOps across lanes). */
    std::size_t prevRows = 0;

    /** Per-lane dcache-miss latency penalty (branchless adjust). */
    std::vector<std::uint64_t> l2Lat;

    /** Op-major scratch: per-lane schedule floor and completion max
     *  of the current chunk, plus one lane miss-mask per mem op of
     *  the current unit (grown on demand). */
    AlignedVec<std::uint64_t> scrEarliest;
    AlignedVec<std::uint64_t> scrUnitDone;
    std::vector<std::uint64_t> scrMiss;

    /** BSISA_FORCE_LANE_MAJOR: route stepBatch through the per-lane
     *  reference loop (PR 5's structure), for baselining and as a
     *  differential oracle. */
    bool forceLaneMajor = false;

    /** Shared dcache streams (see shareDcachePool); empty when the
     *  per-lane cache models run privately. */
    std::vector<DcacheStream> dcacheStreams;
    std::vector<std::int32_t> dcacheStreamOf;  //!< lane -> stream | -1
    std::vector<std::size_t> dcacheCursor;     //!< per-lane pool index
    const std::uint64_t *dcachePool = nullptr;
    std::size_t dcachePoolCount = 0;

    /** Icache echoing (see shareIcache).  Every lane records the
     *  missing-line count of its latest unit fetch; followers read
     *  their leader's record instead of accessing a cache. */
    struct IcacheEcho
    {
        std::uint64_t seq = 0;       //!< step number of the record
        unsigned unitMissing = 0;    //!< missing lines of that fetch
    };
    std::vector<std::int32_t> icacheLeaderOf;  //!< lane -> leader | -1
    std::vector<IcacheEcho> icacheEcho;
    std::vector<std::uint64_t> stepSeq;        //!< per-lane step count
};

/**
 * Conventional machine: advance one lane per @p machines entry over
 * one shared replayed stream.  The committed fetch units of the
 * conventional machine are config-independent (one basic block per
 * event), so the driver walks the trace once, builds each unit once,
 * and advances every lane over it while it is hot.  Prediction is
 * purely stream-driven, so lanes whose prediction state is identical
 * (same predictor geometry, or oracle prediction — which ignores the
 * predictor entirely) share one ConvPredictor per group; each group's
 * lanes are laid out contiguously and advanced as one op-major
 * stepBatch; the committed-order dcache stream is shared per distinct
 * dcache geometry; icaches echo within a group; and effectively
 * identical configs collapse to one lane whose result is replicated.
 * Only per-lane pipeline state remains per config.
 */
std::vector<SimResult>
lockstepConventional(const Module &module, const ConvLayout &layout,
                     const DecodedProgram &decoded,
                     const std::vector<MachineConfig> &machines,
                     const ExecTrace &trace);

/**
 * Block-structured machine: N lanes over one shared replayed stream
 * and one shared BsaModule/DecodedProgram.  The entire
 * config-independent translation at each stream position — the
 * maximal-variant trie walk, its variant index and compatibility, the
 * consumed event count, and the unit's pooled address span — is
 * computed once per position and memoised across every lane.  The
 * block predictor is purely stream-driven, so the whole fetch side
 * (cursor, predictor, redirect construction, unit gathering) runs
 * once per *prediction group* — lanes with identical predictor
 * geometry, or all oracle-prediction lanes together — and every lane
 * of a group steps its pipeline over the group's unit as one
 * contiguous op-major stepBatch.  The committed-order dcache stream
 * is shared per distinct dcache geometry, and effectively identical
 * configs collapse to one lane.
 */
std::vector<SimResult>
lockstepBlockStructured(const BsaModule &bsa,
                        const DecodedProgram &decoded,
                        const std::vector<MachineConfig> &machines,
                        const ExecTrace &trace);

/**
 * Trace-cache machine: N lanes round-robin over one shared stream and
 * decoded program.  Trace-cache unit boundaries depend on per-config
 * cache contents, so lanes advance one unit each per round (shared
 * read-only state, per-lane everything else).
 */
std::vector<TraceCacheResult>
lockstepTraceCache(const Module &module, const ConvLayout &layout,
                   const DecodedProgram &decoded,
                   const std::vector<MachineConfig> &machines,
                   const std::vector<TraceCacheConfig> &tcConfigs,
                   const ExecTrace &trace);

/** Copy the fetch-side statistics of @p source into @p result. */
void fillSourceStats(SimResult &result, const FetchSource &source);

} // namespace bsisa

#endif // BSISA_SIM_LOCKSTEP_HH
