/**
 * @file
 * Machine configuration for the cycle-level timing models.
 *
 * Defaults reproduce the paper's processor (section 4.3): sixteen-wide
 * issue, one fetch unit (atomic block or basic block) per cycle, a
 * 32-block/512-operation instruction window, sixteen uniform pipelined
 * functional units with Table-1 latencies, a 16 KB L1 dcache and a
 * 64 KB 4-way L1 icache, both backed by perfect 6-cycle L2 caches.
 */

#ifndef BSISA_SIM_MACHINE_HH
#define BSISA_SIM_MACHINE_HH

#include <cstddef>

#include "cache/cache.hh"
#include "predict/twolevel.hh"

namespace bsisa
{

/**
 * SoA lane-pool layout constants (sim/lockstep.hh).
 *
 * Multi-lane pools are register-major: one row per scoreboard slot,
 * laneStride() elements long, indexed by lane.  Pool bases are
 * lanePoolAlign-aligned and strides are padded to a laneStrideMultiple
 * boundary, so every row is itself lanePoolAlign-aligned and a SIMD
 * kernel processing a row never straddles into the next one.  A
 * one-lane pipeline (the sequential simulatePipeline path) collapses
 * to stride 1 — the exact pre-batching layout, with no padding cost.
 */
constexpr std::size_t lanePoolAlign = 64;
constexpr std::size_t laneStrideMultiple =
    lanePoolAlign / sizeof(std::uint64_t);

/** Lane-row stride for @p laneCount lanes (see above). */
constexpr std::size_t
laneStride(std::size_t laneCount)
{
    return laneCount <= 1
               ? laneCount
               : (laneCount + laneStrideMultiple - 1) /
                     laneStrideMultiple * laneStrideMultiple;
}

/**
 * Which timing model consumes the fetch stream.
 *
 * Abstract is the paper's engine: uniform fully-pipelined FUs and a
 * flat instruction window (sim/pipeline.hh, sim/lockstep.hh).  Ooo is
 * the high-fidelity backend (sim/ooo/ooo.hh): ROB, RAT renaming with a
 * free list, per-class reservation stations, an LSQ with store-to-load
 * forwarding, and checkpoint recovery on redirects.  Both consume the
 * identical TimingUnit stream, so any fetch-side difference between
 * them is attributable to the backend alone.
 */
enum class TimingModel : std::uint8_t
{
    Abstract = 0,
    Ooo = 1,
};

/**
 * Structure sizes of the out-of-order backend.  Defaults are sized so
 * the 16-wide frontend is backend-limited but not starved: the ROB is
 * smaller than the abstract 512-op window, and rename/issue/commit
 * bandwidth is finite, so OoO IPC genuinely differs from the abstract
 * model on every non-trivial stream.
 */
struct OooParams
{
    /** Reorder-buffer capacity in operations (in-order commit). */
    unsigned robOps = 192;

    /** Physical register file size; must exceed numArchRegs + 1
     *  (the committed map pins one register per architectural slot
     *  plus the dump slot). */
    unsigned physRegs = 160;

    /** Reservation-station entries per functional-unit class. */
    unsigned rsPerClass = 24;

    /** Load/store-queue entries (loads and stores share the pool). */
    unsigned lsqEntries = 48;

    /** Operations committed per cycle from the ROB head. */
    unsigned commitWidth = 16;
};

struct MachineConfig
{
    /** Maximum operations issued per cycle and per fetch unit. */
    unsigned issueWidth = 16;

    /** Window capacity in operations (32 blocks x 16 ops). */
    unsigned windowOps = 512;

    /** Window capacity in fetch units (atomic blocks). */
    unsigned windowUnits = 32;

    /** Pipeline stages between fetch and earliest issue. */
    unsigned frontendDepth = 3;

    /** Extra bubbles after a resolved misprediction redirect. */
    unsigned redirectPenalty = 2;

    /** Perfect-L2 access latency (both icache and dcache sides). */
    unsigned l2Latency = 6;

    CacheConfig icache{64 * 1024, 4, 64, false};
    CacheConfig dcache{16 * 1024, 4, 64, false};

    PredictorConfig predictor;

    /** Oracle branch prediction (figure 4). */
    bool perfectPrediction = false;

    /** Which backend consumes the fetch stream (spec key
     *  `timing_model`); Ooo reads the sizes below. */
    TimingModel timingModel = TimingModel::Abstract;

    OooParams ooo;
};

/** Aggregate result of one timing simulation. */
struct SimResult
{
    std::uint64_t cycles = 0;
    std::uint64_t retiredOps = 0;
    std::uint64_t retiredUnits = 0;      //!< committed blocks
    std::uint64_t wrongPathOps = 0;      //!< issued then squashed
    std::uint64_t predictions = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t trapMispredicts = 0;   //!< wrong head (direction)
    std::uint64_t faultMispredicts = 0;  //!< wrong variant
    std::uint64_t cascadeHops = 0;       //!< extra fault redirects
    /** Fetch-stall cycle breakdown. */
    std::uint64_t stallRedirect = 0;  //!< waiting on mispredict resolve
    std::uint64_t stallWindow = 0;    //!< waiting for window space
    std::uint64_t stallIcache = 0;    //!< waiting on icache fills
    /** High-water marks of instruction-window occupancy; bounded by
     *  MachineConfig::windowUnits / windowOps by construction, and
     *  cross-checked by the differential fuzzing harness. */
    std::uint64_t peakWindowUnits = 0;
    std::uint64_t peakWindowOps = 0;
    CacheStats icache;
    CacheStats dcache;

    double
    ipc() const
    {
        return cycles ? double(retiredOps) / double(cycles) : 0.0;
    }

    /** Average retired block size (figure 5). */
    double
    avgBlockSize() const
    {
        return retiredUnits ? double(retiredOps) / double(retiredUnits)
                            : 0.0;
    }

    double
    branchAccuracy() const
    {
        return predictions
                   ? 1.0 - double(mispredicts) / double(predictions)
                   : 1.0;
    }
};

/** SimResult of the trace-cache-augmented machine, plus the trace
 *  cache's own hit statistics. */
struct TraceCacheResult
{
    SimResult sim;
    std::uint64_t traceHits = 0;
    std::uint64_t traceMisses = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = traceHits + traceMisses;
        return total ? double(traceHits) / double(total) : 0.0;
    }
};

} // namespace bsisa

#endif // BSISA_SIM_MACHINE_HH
