/**
 * @file
 * Sparse memory implementation.
 */

#include "sim/memory.hh"

#include "support/logging.hh"
#include "support/rng.hh"

namespace bsisa
{

void
Memory::checkAligned(std::uint64_t addr)
{
    if (addr & 7)
        fatal("unaligned memory access at 0x", std::hex, addr);
}

std::uint64_t
Memory::read(std::uint64_t addr) const
{
    checkAligned(addr);
    const auto it = pages.find(addr >> pageShift);
    if (it == pages.end())
        return 0;
    return it->second[(addr >> 3) & (pageWords - 1)];
}

void
Memory::write(std::uint64_t addr, std::uint64_t value)
{
    checkAligned(addr);
    auto &page = pages[addr >> pageShift];
    if (page.empty())
        page.assign(pageWords, 0);
    page[(addr >> 3) & (pageWords - 1)] = value;
}

void
Memory::init(std::uint64_t addr, const std::vector<std::uint64_t> &words)
{
    for (std::size_t i = 0; i < words.size(); ++i)
        write(addr + i * 8, words[i]);
}

std::uint64_t
Memory::checksumRange(std::uint64_t lo, std::uint64_t hi) const
{
    std::uint64_t sum = 0;
    for (const auto &[page_idx, words] : pages) {
        const std::uint64_t page_base = page_idx << pageShift;
        if (page_base + (std::uint64_t(pageWords) << 3) <= lo ||
            page_base >= hi) {
            continue;
        }
        for (unsigned i = 0; i < pageWords; ++i) {
            const std::uint64_t addr = page_base + (std::uint64_t(i) << 3);
            if (addr < lo || addr >= hi || words[i] == 0)
                continue;
            std::uint64_t h =
                (page_idx * pageWords + i) * 0x9e3779b97f4a7c15ULL;
            h ^= words[i] + 0x165667b19e3779f9ULL + (h << 6);
            std::uint64_t state = h;
            sum += splitmix64(state);
        }
    }
    return sum;
}

std::uint64_t
Memory::checksum() const
{
    // Sum of per-word hashes: order independent so the page-map
    // iteration order cannot leak into the result.
    std::uint64_t sum = 0;
    for (const auto &[page_idx, words] : pages) {
        for (unsigned i = 0; i < pageWords; ++i) {
            if (words[i] == 0)
                continue;
            std::uint64_t h =
                (page_idx * pageWords + i) * 0x9e3779b97f4a7c15ULL;
            h ^= words[i] + 0x165667b19e3779f9ULL + (h << 6);
            std::uint64_t state = h;
            sum += splitmix64(state);
        }
    }
    return sum;
}

} // namespace bsisa
