/**
 * @file
 * Sparse 64-bit-word memory for functional simulation.
 *
 * Pages of 512 words (4 KB) are allocated on first touch.  All accesses
 * are 8-byte aligned; the compiler only generates word-granular data.
 */

#ifndef BSISA_SIM_MEMORY_HH
#define BSISA_SIM_MEMORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace bsisa
{

class Memory
{
  public:
    /** Read the 64-bit word at @p addr (must be 8-byte aligned). */
    std::uint64_t read(std::uint64_t addr) const;

    /**
     * Speculative read: wrong-path code may compute arbitrary
     * addresses, so the access is silently aligned and unmapped pages
     * read as zero.
     */
    std::uint64_t
    readSpec(std::uint64_t addr) const
    {
        return read(addr & ~7ULL);
    }

    /** Write the 64-bit word at @p addr (must be 8-byte aligned). */
    void write(std::uint64_t addr, std::uint64_t value);

    /** Bulk-initialize words starting at @p addr. */
    void init(std::uint64_t addr, const std::vector<std::uint64_t> &words);

    /** Order-independent checksum over all nonzero words. */
    std::uint64_t checksum() const;

    /** Checksum restricted to addresses in [lo, hi). */
    std::uint64_t checksumRange(std::uint64_t lo, std::uint64_t hi) const;

  private:
    static constexpr unsigned pageWords = 512;
    static constexpr unsigned pageShift = 12;  // 4 KB pages

    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> pages;

    static void checkAligned(std::uint64_t addr);
};

} // namespace bsisa

#endif // BSISA_SIM_MEMORY_HH
