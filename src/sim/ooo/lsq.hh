/**
 * @file
 * Load/store queue: program-ordered ring of in-flight memory ops with
 * store-to-load forwarding and conservative alias handling.
 *
 * Every access is modelled as accessBytes wide.  A load searching the
 * queue walks older stores youngest-first and classifies the first
 * address conflict it finds:
 *
 *   Forward — identical address: the store's data feeds the load
 *             directly (the load never touches the dcache).
 *   Overlap — byte ranges intersect but the addresses differ (the
 *             classic partial-overlap case): forwarding would splice
 *             bytes from two sources, so the load conservatively
 *             waits for the store to leave the queue.
 *
 * Independently of conflicts, a load may not issue before every older
 * store's address is known (olderStoreAddrReady) — the conservative
 * alias discipline: with any older address unresolved, the conflict
 * classification itself would be speculative.
 *
 * Entries are pushed at dispatch, their commit cycle is stamped when
 * the owning unit commits (in program order, so commit stamps are
 * monotone along the ring), and capacity is reclaimed oldest-first.
 * The queue retains its own copy of each address: TimingUnit address
 * slices are only stable until the next fetch, and the whole point of
 * this structure is comparing addresses across fetches.
 */

#ifndef BSISA_SIM_OOO_LSQ_HH
#define BSISA_SIM_OOO_LSQ_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"

namespace bsisa
{

class LoadStoreQueue
{
  public:
    /** Modelled width of one memory access. */
    static constexpr std::uint64_t accessBytes = 8;

    /** Commit stamp of entries whose unit has not committed yet. */
    static constexpr std::uint64_t commitPending = ~0ull;

    struct Entry
    {
        std::uint64_t addr = 0;
        std::uint64_t addrReady = 0;  //!< issue cycle (address known)
        std::uint64_t dataReady = 0;  //!< store data available
        std::uint64_t commit = commitPending;
        std::uint64_t seq = 0;     //!< global program-order number
        bool isStore = false;
    };

    enum class ConflictKind
    {
        None,     //!< no older in-flight store touches the line
        Forward,  //!< exact match: forward store data
        Overlap,  //!< partial overlap: wait for the store to drain
    };

    struct Conflict
    {
        ConflictKind kind = ConflictKind::None;
        std::uint64_t dataReady = 0;  //!< Forward: store data cycle
        std::uint64_t drain = 0;      //!< Overlap: wait-until cycle
        std::uint64_t storeSeq = 0;   //!< conflicting store's seq
    };

    explicit LoadStoreQueue(unsigned entries) : cap(entries)
    {
        BSISA_ASSERT(entries >= 1);
        ring.resize(cap + 1);
    }

    std::size_t size() const
    {
        return tail >= head ? tail - head : tail + ring.size() - head;
    }

    bool full() const { return size() >= cap; }

    /** Oldest entry's commit cycle, or commitPending if the oldest
     *  entry belongs to a unit still being scheduled. */
    std::uint64_t oldestCommit() const
    {
        BSISA_ASSERT(head != tail, "oldestCommit on empty queue");
        return ring[head].commit;
    }

    /** Drop committed entries whose commit cycle is <= @p cycle. */
    void drainCommitted(std::uint64_t cycle)
    {
        while (head != tail && ring[head].commit != commitPending &&
               ring[head].commit <= cycle)
            head = next(head);
    }

    /** Drop the oldest entry unconditionally (capacity reclaim). */
    void popOldest()
    {
        BSISA_ASSERT(head != tail, "popOldest on empty queue");
        head = next(head);
    }

    std::uint64_t pushStore(std::uint64_t addr, std::uint64_t addrReady,
                            std::uint64_t dataReady)
    {
        return push(addr, addrReady, dataReady, true);
    }

    std::uint64_t pushLoad(std::uint64_t addr, std::uint64_t addrReady)
    {
        return push(addr, addrReady, addrReady, false);
    }

    /**
     * Latest address-ready cycle over all stores currently queued —
     * the conservative alias gate: a load dispatched now may not
     * issue before this cycle.
     */
    std::uint64_t olderStoreAddrReady() const
    {
        std::uint64_t gate = 0;
        for (std::size_t i = head; i != tail; i = next(i))
            if (ring[i].isStore && ring[i].addrReady > gate)
                gate = ring[i].addrReady;
        return gate;
    }

    /**
     * Classify the youngest older store conflicting with a load of
     * @p addr.  All queued entries are older than the load about to
     * be pushed, so the walk runs youngest-first from the tail; the
     * returned storeSeq lets callers verify no forward ever crosses
     * program order.
     */
    Conflict searchOlderStores(std::uint64_t addr) const
    {
        for (std::size_t i = tail; i != head;) {
            i = prev(i);
            const Entry &e = ring[i];
            if (!e.isStore)
                continue;
            const std::uint64_t lo = e.addr < addr ? e.addr : addr;
            const std::uint64_t hi = e.addr < addr ? addr : e.addr;
            if (hi - lo >= accessBytes)
                continue;
            Conflict c;
            c.storeSeq = e.seq;
            if (e.addr == addr) {
                c.kind = ConflictKind::Forward;
                c.dataReady = e.dataReady;
            } else {
                c.kind = ConflictKind::Overlap;
                // Wait for the store to leave the queue: its commit
                // if known, else the cycle both its address and data
                // are resolved (same-unit store, conservatively).
                c.drain = e.commit != commitPending ? e.commit
                                                    : e.dataReady;
            }
            return c;
        }
        return Conflict{};
    }

    /** Stamp every entry with seq >= @p fromSeq as committing at
     *  @p cycle.  Commit is in program order, so stamps only ever
     *  grow along the ring. */
    void stampCommit(std::uint64_t fromSeq, std::uint64_t cycle)
    {
        for (std::size_t i = tail; i != head;) {
            i = prev(i);
            if (ring[i].seq < fromSeq)
                break;
            BSISA_ASSERT(ring[i].commit == commitPending);
            ring[i].commit = cycle;
        }
    }

    /** Sequence number the next pushed entry will receive. */
    std::uint64_t nextSeq() const { return nextSeqNum; }

    /** Squash every entry with seq >= @p fromSeq (wrong path). */
    void squashFrom(std::uint64_t fromSeq)
    {
        while (tail != head && ring[prev(tail)].seq >= fromSeq)
            tail = prev(tail);
    }

  private:
    std::size_t next(std::size_t i) const
    {
        return i + 1 == ring.size() ? 0 : i + 1;
    }

    std::size_t prev(std::size_t i) const
    {
        return (i == 0 ? ring.size() : i) - 1;
    }

    std::uint64_t push(std::uint64_t addr, std::uint64_t addrReady,
                       std::uint64_t dataReady, bool isStore)
    {
        BSISA_ASSERT(!full(), "LSQ overflow");
        Entry &e = ring[tail];
        e.addr = addr;
        e.addrReady = addrReady;
        e.dataReady = dataReady;
        e.commit = commitPending;
        e.seq = nextSeqNum++;
        e.isStore = isStore;
        tail = next(tail);
        return e.seq;
    }

    unsigned cap;
    std::vector<Entry> ring;
    std::size_t head = 0;
    std::size_t tail = 0;
    std::uint64_t nextSeqNum = 0;
};

} // namespace bsisa

#endif // BSISA_SIM_OOO_LSQ_HH
