/**
 * @file
 * The out-of-order engine.
 *
 * Frontend discipline is deliberately identical to the abstract model
 * (sim/lockstep.cc): one unit fetched per cycle, the same icache
 * accessRange/miss-stall arithmetic, the same redirect-resolution
 * formula (resolve + 1 + redirectPenalty, plus redirectPenalty + 1
 * per cascade hop), and wrong-path loads modelled as L1 hits.  Any
 * IPC difference between the two models is therefore attributable to
 * the backend: finite rename registers, per-class reservation
 * stations and functional units, LSQ ordering constraints, and the
 * ROB's capacity and commit bandwidth in place of the flat window.
 *
 * The engine is analytic rather than cycle-stepped: ops are processed
 * in program order and every structural constraint is expressed as a
 * lower bound on the op's dispatch or issue cycle (a reservation
 * station frees at its op's issue, a ROB slot at its unit's commit, a
 * physical register the cycle after the mapping that evicted it
 * commits).  That keeps the model deterministic by construction —
 * identical (trace, config) pairs produce bit-identical results on
 * any build — and costs O(ops) like the abstract model.
 *
 * Two conventions keep the dcache stream well-defined: accesses are
 * performed in program order at scheduling time (commit-time store
 * release is modelled in the LSQ's timing, not in the cache state),
 * and a forwarded load skips the dcache entirely.
 */

#include "sim/ooo/ooo.hh"

#include <algorithm>

#include "cache/cache.hh"
#include "sim/lockstep.hh"
#include "sim/ooo/lsq.hh"
#include "sim/ooo/rat.hh"
#include "sim/pipeline.hh"
#include "support/digest.hh"
#include "support/logging.hh"

namespace bsisa
{

namespace
{

unsigned
classify(const DecodedOp &op)
{
    if (op.flags & opIsMem)
        return oooClsMem;
    if (op.latency >= 8)
        return oooClsDiv;
    if (op.latency >= 3)
        return oooClsMulFp;
    return oooClsAlu;
}

unsigned
fuWidth(unsigned cls, unsigned issueWidth)
{
    switch (cls) {
    case oooClsAlu:
        return std::max(1u, issueWidth / 2);
    case oooClsMem:
    case oooClsMulFp:
        return std::max(1u, issueWidth / 4);
    default:
        return std::max(1u, issueWidth / 16);
    }
}

/** Fold one unit's committed identity; shared by the engine's
 *  commit-order digest and the emit-time reference. */
void
foldUnit(Fnv1a64 &digest, std::uint64_t pc, std::uint32_t bytes,
         std::uint32_t opCount, const std::uint64_t *addrs,
         std::uint32_t memCount)
{
    digest.u64(pc).u64(bytes).u64(opCount).u64(memCount);
    for (std::uint32_t i = 0; i < memCount; ++i)
        digest.u64(addrs[i]);
}

/** One in-flight (fetched, not yet drained) unit.  The address copy
 *  lives in a per-slot vector reused across occupancies, so the
 *  steady state allocates nothing. */
struct RobUnit
{
    std::uint64_t commitEnd = 0;
    std::uint64_t pc = 0;
    std::uint32_t bytes = 0;
    std::uint32_t ops = 0;
    std::vector<std::uint64_t> addrs;  //!< retained memAddrs copy
    std::uint32_t memCount = 0;
};

class OooEngine
{
  public:
    OooEngine(const MachineConfig &config, OooTelemetry &telemetry)
        : cfg(config), tel(telemetry),
          rat(config.ooo.physRegs),
          lsq(config.ooo.lsqEntries),
          icache(config.icache), dcache(config.dcache)
    {
        physReady.assign(cfg.ooo.physRegs, 0);
        for (unsigned c = 0; c < oooNumClasses; ++c) {
            fu.emplace_back(fuWidth(c, cfg.issueWidth));
            rs[c].assign(cfg.ooo.rsPerClass, 0);
        }
        rob.resize(std::size_t(cfg.ooo.robOps) + 1);
    }

    void step(const TimingUnit &unit);
    SimResult finish();

  private:
    std::uint64_t fetchPhase(const TimingUnit &unit);
    std::uint64_t scheduleWrongPath(const DecodedOp *ops,
                                    std::uint32_t n,
                                    unsigned mustRunIdx,
                                    std::uint64_t fetchCycle,
                                    std::uint64_t squashCutoff);

    /** First reservation station of @p cls free, by earliest
     *  busy-until then lowest index — a deterministic tie-break. */
    std::size_t pickRs(unsigned cls) const
    {
        const std::vector<std::uint64_t> &v = rs[cls];
        std::size_t best = 0;
        for (std::size_t i = 1; i < v.size(); ++i)
            if (v[i] < v[best])
                best = i;
        return best;
    }

    std::size_t robNext(std::size_t i) const
    {
        return i + 1 == rob.size() ? 0 : i + 1;
    }

    std::size_t robSize() const
    {
        return robTail >= robHead ? robTail - robHead
                                  : robTail + rob.size() - robHead;
    }

    /** Drain the ROB head into the commit digest. */
    void popRobHead()
    {
        RobUnit &u = rob[robHead];
        foldUnit(digest, u.pc, u.bytes, u.ops, u.addrs.data(),
                 u.memCount);
        robOpsOcc -= u.ops;
        robHead = robNext(robHead);
    }

    const MachineConfig &cfg;
    OooTelemetry &tel;
    SimResult res;

    RegAliasTable rat;
    std::vector<std::uint64_t> physReady;
    LoadStoreQueue lsq;
    std::vector<IssueSlots> fu;
    std::vector<std::uint64_t> rs[oooNumClasses];

    std::vector<RobUnit> rob;
    std::size_t robHead = 0;
    std::size_t robTail = 0;
    std::uint64_t robOpsOcc = 0;

    Cache icache;
    Cache dcache;
    Fnv1a64 digest;

    std::uint64_t lastFetch = ~0ull;  //!< so the first fetch is cycle 0
    std::uint64_t lastCommit = 0;
    std::vector<std::uint64_t> prevDone;
    std::uint32_t prevCount = 0;
    /** Evicted-mapping scratch of the unit being scheduled. */
    std::vector<std::uint16_t> evicted;
};

std::uint64_t
OooEngine::scheduleWrongPath(const DecodedOp *ops, std::uint32_t n,
                             unsigned mustRunIdx,
                             std::uint64_t fetchCycle,
                             std::uint64_t squashCutoff)
{
    const RegAliasTable::Checkpoint cp = rat.checkpoint();
    ++tel.checkpointsTaken;

    const std::uint64_t earliest = fetchCycle + cfg.frontendDepth;
    std::uint64_t resolve = earliest;
    std::uint64_t lastDispatch = earliest;

    for (std::uint32_t i = 0; i < n; ++i) {
        const DecodedOp &op = ops[i];
        const unsigned cls = classify(op);
        const std::uint64_t s1 = physReady[rat.lookup(op.src1)];
        const std::uint64_t s2 = physReady[rat.lookup(op.src2)];
        const std::size_t slot = pickRs(cls);
        std::uint64_t dispatch =
            std::max({earliest, lastDispatch, rs[cls][slot]});
        const std::uint64_t ready0 = std::max({dispatch, s1, s2});
        if (i > mustRunIdx && ready0 > squashCutoff)
            continue;  // squashed before it could issue

        if (rat.freeCount() == 0) {
            // Free-list starvation on the wrong path: nothing
            // releases a register until the squash reclaims the
            // journal, so rename stalls past the resolve and the op
            // never issues.  The resolving op itself still has to
            // produce a resolve cycle — issue it without a rename
            // (its result is thrown away at the restore anyway).
            if (i != mustRunIdx)
                continue;
            const std::uint64_t start =
                fu[cls].allocate(std::max(ready0, dispatch));
            rs[cls][slot] = start + 1;
            ++res.wrongPathOps;
            resolve = start + op.latency;
            continue;
        }

        const RegAliasTable::Alloc alloc =
            rat.rename(op.dst, dispatch);
        dispatch = std::max(dispatch, alloc.ready);
        lastDispatch = dispatch;
        const std::uint64_t start =
            fu[cls].allocate(std::max(ready0, dispatch));
        // Wrong-path loads are modelled as L1 hits (their addresses
        // are speculative garbage) and wrong-path memory ops never
        // enter the LSQ: the restore below would remove them before
        // any committed-path op could observe them.
        const std::uint64_t done = start + op.latency;
        physReady[alloc.phys] = done;
        rs[cls][slot] = start + 1;
        if (i > mustRunIdx && start > squashCutoff)
            continue;  // issued past the squash: uncounted
        ++res.wrongPathOps;
        if (i == mustRunIdx)
            resolve = done;
    }

    rat.restore(cp, resolve);
    ++tel.checkpointsRestored;
    return resolve;
}

std::uint64_t
OooEngine::fetchPhase(const TimingUnit &unit)
{
    BSISA_ASSERT(unit.ops && unit.opCount > 0);
    const RedirectInfo &redirect = unit.redirect;

    std::uint64_t fetch = lastFetch + 1;
    const std::uint64_t fetchBase = fetch;

    if (redirect.mispredicted) {
        std::uint64_t resolve;
        if (redirect.resolveInWrongBlock) {
            BSISA_ASSERT(redirect.wrongOps);
            icache.accessRange(redirect.wrongPc, redirect.wrongBytes);
            resolve = scheduleWrongPath(redirect.wrongOps,
                                        redirect.wrongOpCount,
                                        redirect.resolveOpIdx, fetch,
                                        ~0ull);
        } else {
            resolve = prevCount == 0
                          ? fetch
                          : prevDone[redirect.resolveOpIdx];
            if (redirect.wrongOps) {
                icache.accessRange(redirect.wrongPc,
                                   redirect.wrongBytes);
                scheduleWrongPath(redirect.wrongOps,
                                  redirect.wrongOpCount, 0, fetch,
                                  resolve);
            }
        }
        std::uint64_t redirected = resolve + 1 + cfg.redirectPenalty;
        redirected += std::uint64_t(redirect.extraHops) *
                      (cfg.redirectPenalty + 1);
        fetch = std::max(fetch, redirected);
    }
    res.stallRedirect += fetch - fetchBase;
    const std::uint64_t fetchAfterRedirect = fetch;

    // ROB occupancy: drain units that have committed by now, then
    // wait for room.  A unit larger than the whole ROB degenerates to
    // sole occupancy (the capacity loop stops at an empty ROB).
    while (robHead != robTail && rob[robHead].commitEnd <= fetch)
        popRobHead();
    while (robOpsOcc + unit.opCount > cfg.ooo.robOps &&
           robHead != robTail) {
        fetch = std::max(fetch, rob[robHead].commitEnd);
        popRobHead();
    }
    res.stallWindow += fetch - fetchAfterRedirect;
    if (robOpsOcc + unit.opCount > cfg.ooo.robOps &&
        robHead != robTail)
        ++tel.robOverflows;

    unsigned missing = 0;
    if (!unit.skipIcache)
        missing = icache.accessRange(unit.pc, unit.bytes);
    if (missing > 0) {
        fetch += cfg.l2Latency;
        res.stallIcache += cfg.l2Latency;
    }

    lastFetch = fetch;
    for (unsigned c = 0; c < oooNumClasses; ++c)
        fu[c].advanceTo(fetch);
    lsq.drainCommitted(fetch);

    prevCount = unit.opCount;
    return fetch + cfg.frontendDepth;
}

void
OooEngine::step(const TimingUnit &unit)
{
    const std::uint64_t renameBase = fetchPhase(unit);

    if (prevDone.size() < unit.opCount) {
        prevDone.resize(unit.opCount);
        evicted.resize(unit.opCount);
    }

    const std::uint64_t unitLsqBase = lsq.nextSeq();
    std::uint64_t unitDone = renameBase;
    std::uint64_t lastDispatch = renameBase;
    std::uint32_t memIdx = 0;
    std::uint32_t nextReclaim = 0;

    for (std::uint32_t i = 0; i < unit.opCount; ++i) {
        const DecodedOp &op = unit.ops[i];
        const unsigned cls = classify(op);

        // Sources read the committed/speculative map before this
        // op's own destination is renamed.
        const std::uint64_t s1 = physReady[rat.lookup(op.src1)];
        const std::uint64_t s2 = physReady[rat.lookup(op.src2)];

        // In-order dispatch: a reservation station of the class, an
        // LSQ entry for memory ops, and a free physical register.
        const std::size_t slot = pickRs(cls);
        std::uint64_t dispatch =
            std::max({renameBase, lastDispatch, rs[cls][slot]});

        if (op.flags & opIsMem) {
            while (lsq.full()) {
                const std::uint64_t oc = lsq.oldestCommit();
                if (oc == LoadStoreQueue::commitPending) {
                    // The whole queue belongs to this unit (more
                    // memory ops than entries): reclaim in program
                    // order rather than deadlock.
                    lsq.popOldest();
                } else {
                    dispatch = std::max(dispatch, oc + 1);
                    lsq.drainCommitted(oc);
                }
            }
        }

        // A unit holding more renames in flight than spare physical
        // registers waits for its own older ops to commit and free
        // their evictions (hardware frees per op at commit; the
        // analytic model reclaims in program order, available no
        // earlier than the op's completion or the previous unit's
        // commit).  Dry ring => i - nextReclaim == spare >= 1, so
        // the reclaim always finds an unreleased eviction.
        while (rat.freeCount() == 0) {
            BSISA_ASSERT(nextReclaim < i, "rename starvation");
            rat.release(evicted[nextReclaim],
                        std::max(prevDone[nextReclaim] + 1,
                                 lastCommit + 1));
            ++nextReclaim;
        }

        const RegAliasTable::Alloc alloc =
            rat.rename(op.dst, dispatch);
        if (alloc.ready > dispatch) {
            tel.renameStallCycles += alloc.ready - dispatch;
            dispatch = alloc.ready;
        }
        lastDispatch = dispatch;
        evicted[i] = alloc.prev;

        std::uint64_t ready = std::max({dispatch, s1, s2});
        std::uint64_t start;
        unsigned latency = op.latency;

        if (op.flags & opIsMem) {
            const std::uint64_t addr =
                memIdx < unit.memCount ? unit.memAddrs[memIdx] : 0;
            ++memIdx;
            if (op.flags & opIsLoad) {
                // Conservative alias discipline: no load issues
                // before every older store's address is known.
                ready = std::max(ready, lsq.olderStoreAddrReady());
                const LoadStoreQueue::Conflict c =
                    lsq.searchOlderStores(addr);
                if (c.kind == LoadStoreQueue::ConflictKind::Forward) {
                    if (c.storeSeq >= lsq.nextSeq())
                        ++tel.youngerForwards;
                    start = fu[oooClsMem].allocate(
                        std::max(ready, c.dataReady));
                    latency = 1;  // bypassed from the store buffer
                    ++tel.forwardedLoads;
                } else {
                    if (c.kind ==
                        LoadStoreQueue::ConflictKind::Overlap) {
                        ready = std::max(ready, c.drain + 1);
                        ++tel.overlapStallLoads;
                    }
                    start = fu[oooClsMem].allocate(ready);
                    if (!dcache.access(addr))
                        latency += cfg.l2Latency;
                }
                lsq.pushLoad(addr, start);
            } else {
                start = fu[oooClsMem].allocate(ready);
                dcache.access(addr);  // stores never extend latency
                lsq.pushStore(addr, start, start + latency);
            }
            tel.peakLsq =
                std::max<std::uint64_t>(tel.peakLsq, lsq.size());
        } else {
            start = fu[cls].allocate(ready);
        }

        const std::uint64_t done = start + latency;
        physReady[alloc.phys] = done;
        rs[cls][slot] = start + 1;
        prevDone[i] = done;
        unitDone = std::max(unitDone, done);
    }

    // In-order commit from the ROB head, commitWidth ops per cycle.
    const std::uint64_t first =
        std::max(unitDone + 1, lastCommit + 1);
    const std::uint64_t span =
        (unit.opCount + cfg.ooo.commitWidth - 1) / cfg.ooo.commitWidth;
    const std::uint64_t commitEnd = first + span - 1;
    if (commitEnd < lastCommit)
        ++tel.commitOrderViolations;
    lastCommit = commitEnd;

    for (std::uint32_t i = nextReclaim; i < unit.opCount; ++i)
        rat.release(evicted[i], commitEnd + 1);
    lsq.stampCommit(unitLsqBase, commitEnd);

    // Retain the unit (identity + address copy) until it drains.
    RobUnit &slot = rob[robTail];
    slot.commitEnd = commitEnd;
    slot.pc = unit.pc;
    slot.bytes = unit.bytes;
    slot.ops = unit.opCount;
    slot.memCount = unit.memCount;
    slot.addrs.assign(unit.memAddrs, unit.memAddrs + unit.memCount);
    robTail = robNext(robTail);
    BSISA_ASSERT(robTail != robHead, "ROB ring overflow");
    robOpsOcc += unit.opCount;

    tel.peakRobOps = std::max(tel.peakRobOps, robOpsOcc);
    tel.peakRobUnits =
        std::max<std::uint64_t>(tel.peakRobUnits, robSize());

    res.retiredOps += unit.opCount;
    res.retiredUnits += 1;
    res.cycles = std::max(res.cycles, commitEnd);
}

SimResult
OooEngine::finish()
{
    while (robHead != robTail)
        popRobHead();
    tel.commitDigest = digest.value();
    res.peakWindowUnits = tel.peakRobUnits;
    res.peakWindowOps = tel.peakRobOps;
    res.icache = icache.stats();
    res.dcache = dcache.stats();
    return res;
}

} // namespace

SimResult
simulateOoO(FetchSource &source, const MachineConfig &config,
            OooTelemetry *telemetry)
{
    OooTelemetry local;
    OooTelemetry &tel = telemetry ? *telemetry : local;
    tel = OooTelemetry{};

    OooEngine engine(config, tel);
    TimingUnit unit;
    while (source.next(unit))
        engine.step(unit);

    SimResult result = engine.finish();
    fillSourceStats(result, source);
    return result;
}

std::uint64_t
fetchStreamDigest(FetchSource &source)
{
    Fnv1a64 digest;
    TimingUnit unit;
    while (source.next(unit))
        foldUnit(digest, unit.pc, unit.bytes, unit.opCount,
                 unit.memAddrs, unit.memCount);
    return digest.value();
}

} // namespace bsisa
