/**
 * @file
 * High-fidelity out-of-order backend behind the FetchSource seam.
 *
 * simulateOoO() consumes the identical TimingUnit stream as the
 * abstract model (sim/pipeline.hh) — same fetch bandwidth, icache,
 * redirect-resolution and frontend-depth discipline — but replaces
 * the flat window + uniform-FU backend with a ROB (in-order commit,
 * finite commit width), RAT renaming with a timed free list,
 * per-class reservation stations over per-class functional units, and
 * an LSQ with store-to-load forwarding and conservative alias stalls.
 * Redirects rename the wrong-path ops under a RAT checkpoint and
 * squash by restoring it.  See DESIGN.md §5.18.
 *
 * The model is timing-only: no data values flow.  Its committed-state
 * evidence is the commit-order digest — each unit's identity (pc,
 * size, op count, data addresses) is folded into an FNV-1a digest
 * when the unit drains from the ROB, computed from copies the backend
 * retained at fetch time.  Because the ROB holds units across many
 * subsequent next() calls, equality with fetchStreamDigest() — the
 * same fold done at emit time on a fresh walk — proves the reordering
 * consumer honoured the address-slice lifetime contract.
 */

#ifndef BSISA_SIM_OOO_OOO_HH
#define BSISA_SIM_OOO_OOO_HH

#include <cstdint>

#include "sim/fetch_source.hh"
#include "sim/machine.hh"

namespace bsisa
{

/** Functional-unit classes of the OoO backend.  Classification is by
 *  decoded latency (Table 1): memory ops to Mem, divides (8) to Div,
 *  FP add / multiply (3) to MulFp, everything single-cycle to Alu. */
enum OooFuClass : unsigned
{
    oooClsAlu = 0,
    oooClsMem,
    oooClsMulFp,
    oooClsDiv,
    oooNumClasses,
};

/** Backend-side counters of one simulateOoO() run.  The violation
 *  counters at the bottom are zero on every run by construction and
 *  are asserted zero by tests/test_ooo.cc and the `ooo` fuzz oracle.
 */
struct OooTelemetry
{
    /** Commit-order fold of every committed unit's identity, from
     *  data retained across reordered consumption. */
    std::uint64_t commitDigest = 0;

    std::uint64_t forwardedLoads = 0;   //!< exact-match store forwards
    std::uint64_t overlapStallLoads = 0;//!< partial-overlap waits
    std::uint64_t checkpointsTaken = 0;
    std::uint64_t checkpointsRestored = 0;
    std::uint64_t renameStallCycles = 0;//!< free-list-dry dispatch delay
    std::uint64_t peakRobOps = 0;
    std::uint64_t peakRobUnits = 0;
    std::uint64_t peakLsq = 0;

    /** ROB occupancy exceeded MachineConfig::ooo.robOps. */
    std::uint64_t robOverflows = 0;
    /** A unit's commit cycle preceded its predecessor's. */
    std::uint64_t commitOrderViolations = 0;
    /** A load forwarded from a store younger than itself. */
    std::uint64_t youngerForwards = 0;
};

/**
 * Run the out-of-order timing model over @p source.  The SimResult
 * mirrors the abstract model's shape; for this model peakWindowUnits
 * and peakWindowOps report ROB occupancy (bounded by config.ooo).
 */
SimResult simulateOoO(FetchSource &source, const MachineConfig &config,
                      OooTelemetry *telemetry = nullptr);

/**
 * Emit-time reference for OooTelemetry::commitDigest: walk @p source
 * to exhaustion folding each unit's identity while its spans are
 * still live.  In-order commit makes commit order equal emit order,
 * so a correct backend reproduces this digest exactly.
 */
std::uint64_t fetchStreamDigest(FetchSource &source);

} // namespace bsisa

#endif // BSISA_SIM_OOO_OOO_HH
