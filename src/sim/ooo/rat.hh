/**
 * @file
 * Register alias table with a FIFO free list and one-shot checkpoints.
 *
 * The map covers the architectural register file plus the dump slot
 * (numArchRegs + 1 entries; sim/decoded.hh).  Renaming is timed: the
 * free list is a FIFO of (physical register, cycle it becomes free),
 * so rename() reports both the allocated register and the earliest
 * cycle an allocation at the requested cycle could actually proceed —
 * a dry free list shows up as a dispatch stall in the engine rather
 * than as hidden state here.
 *
 * Checkpoint discipline is single-level by design: the analytic OoO
 * engine (sim/ooo/ooo.cc) processes one redirect at a time — take a
 * checkpoint, rename the wrong-path ops, restore at the resolve cycle
 * — so at most one checkpoint is ever outstanding, and rename() only
 * journals allocations while one is.  restore() returns every
 * journaled register to the free list (available the cycle after the
 * squash) and reinstates the mapped array wholesale.
 *
 * regZero (architectural register 0) is never written by any decoded
 * op, so its mapping is pinned to physical register 0 for the whole
 * run; the engine pins that register's ready time at cycle 0.
 */

#ifndef BSISA_SIM_OOO_RAT_HH
#define BSISA_SIM_OOO_RAT_HH

#include <cstdint>
#include <vector>

#include "arch/reg.hh"
#include "sim/decoded.hh"
#include "support/logging.hh"

namespace bsisa
{

class RegAliasTable
{
  public:
    /** Mapped slots: all architectural registers plus regDump. */
    static constexpr unsigned mappedRegs = numArchRegs + 1;

    struct Alloc
    {
        std::uint16_t phys;   //!< freshly allocated physical register
        std::uint16_t prev;   //!< previous mapping (freed at commit)
        std::uint64_t ready;  //!< earliest cycle the allocation fits
    };

    struct Checkpoint
    {
        std::uint16_t map[mappedRegs];
        std::size_t journalBase;
    };

    explicit RegAliasTable(unsigned physRegs) : physCount(physRegs)
    {
        BSISA_ASSERT(physRegs > mappedRegs,
                     "rename needs spare physical registers");
        map.resize(mappedRegs);
        for (unsigned r = 0; r < mappedRegs; ++r)
            map[r] = static_cast<std::uint16_t>(r);
        // Registers mappedRegs..physRegs-1 start free, in index order.
        freeRing.resize(physRegs);
        freeAvail.assign(physRegs, 0);
        for (unsigned p = mappedRegs; p < physRegs; ++p)
            freeRing[freeTail++] = static_cast<std::uint16_t>(p);
    }

    std::uint16_t lookup(RegNum r) const { return map[r]; }

    unsigned physRegs() const { return physCount; }

    std::size_t freeCount() const
    {
        return freeTail >= freeHead
                   ? freeTail - freeHead
                   : freeTail + freeRing.size() - freeHead;
    }

    /**
     * Map @p dst to a fresh physical register for an op dispatching
     * at @p cycle.  The returned ready time is max(cycle, the head
     * free register's availability) — the engine folds it into the
     * op's dispatch time.
     */
    Alloc rename(RegNum dst, std::uint64_t cycle)
    {
        BSISA_ASSERT(dst != regZero, "regZero is never renamed");
        BSISA_ASSERT(freeHead != freeTail, "free list underflow");
        const std::uint16_t phys = freeRing[freeHead];
        const std::uint64_t avail = freeAvail[phys];
        if (++freeHead == freeRing.size())
            freeHead = 0;
        const Alloc alloc{phys, map[dst],
                          avail > cycle ? avail : cycle};
        map[dst] = phys;
        if (journalActive)
            journal.push_back(JournalEntry{dst, alloc.prev, phys});
        return alloc;
    }

    /** Return @p phys to the free list, usable from @p cycle on.
     *  Called at commit for the mapping the committing op evicted. */
    void release(std::uint16_t phys, std::uint64_t cycle)
    {
        freeAvail[phys] = cycle;
        freeRing[freeTail] = phys;
        if (++freeTail == freeRing.size())
            freeTail = 0;
        BSISA_ASSERT(freeTail != freeHead, "free list overflow");
    }

    /** Snapshot the map ahead of wrong-path renaming.  Single-level:
     *  a second checkpoint before restore()/discard() is a bug. */
    Checkpoint checkpoint()
    {
        BSISA_ASSERT(!journalActive, "checkpoint already outstanding");
        journalActive = true;
        Checkpoint cp;
        for (unsigned r = 0; r < mappedRegs; ++r)
            cp.map[r] = map[r];
        cp.journalBase = journal.size();
        return cp;
    }

    /**
     * Squash everything renamed since @p cp: reinstate the mapped
     * array and return the journaled allocations to the free list,
     * each available the cycle after @p squashCycle.  Registers go
     * back in allocation order, so the free list stays deterministic.
     */
    void restore(const Checkpoint &cp, std::uint64_t squashCycle)
    {
        BSISA_ASSERT(journalActive, "restore without checkpoint");
        for (unsigned r = 0; r < mappedRegs; ++r)
            map[r] = cp.map[r];
        for (std::size_t i = cp.journalBase; i < journal.size(); ++i)
            release(journal[i].phys, squashCycle + 1);
        journal.resize(cp.journalBase);
        journalActive = false;
    }

    /** Keep the speculative renames (the path turned out right). */
    void discard(const Checkpoint &cp)
    {
        BSISA_ASSERT(journalActive, "discard without checkpoint");
        journal.resize(cp.journalBase);
        journalActive = false;
    }

  private:
    struct JournalEntry
    {
        RegNum arch;
        std::uint16_t prev;
        std::uint16_t phys;
    };

    unsigned physCount;
    std::vector<std::uint16_t> map;
    /** FIFO of free physical registers; capacity physCount, so head
     *  == tail only when empty. */
    std::vector<std::uint16_t> freeRing;
    std::vector<std::uint64_t> freeAvail;  //!< indexed by phys reg
    std::size_t freeHead = 0;
    std::size_t freeTail = 0;
    std::vector<JournalEntry> journal;
    bool journalActive = false;
};

} // namespace bsisa

#endif // BSISA_SIM_OOO_RAT_HH
