/**
 * @file
 * Pipeline core implementation.
 *
 * Both scheduling loops walk flat DecodedOp arrays (sim/decoded.hh).
 * The register conventions established at decode time — absent sources
 * read regZero, whose ready time is pinned at 0; absent destinations
 * write the regDump slot, which is never read — let the loops read
 * both sources and write the destination unconditionally, with no
 * per-op opcode dispatch.
 */

#include "sim/pipeline.hh"

#include <array>

#include "support/logging.hh"

namespace bsisa
{

namespace
{

/**
 * Fixed-capacity FIFO of in-flight units (retireCycle, opCount).
 * The window never holds more than windowUnits entries, so the ring
 * is allocated once up front and the per-unit push/pop never touch
 * the allocator (unlike the std::deque it replaces).
 */
class InflightRing
{
  public:
    explicit InflightRing(unsigned windowUnits)
        : buf(windowUnits + 1)
    {
    }

    bool empty() const { return head == tail; }

    std::size_t
    size() const
    {
        return tail >= head ? tail - head : tail + buf.size() - head;
    }

    const std::pair<std::uint64_t, unsigned> &
    front() const
    {
        return buf[head];
    }

    void
    pop_front()
    {
        if (++head == buf.size())
            head = 0;
    }

    void
    push_back(std::uint64_t retire, unsigned ops)
    {
        buf[tail] = {retire, ops};
        if (++tail == buf.size())
            tail = 0;
        BSISA_ASSERT(tail != head, "inflight ring overflow");
    }

  private:
    std::vector<std::pair<std::uint64_t, unsigned>> buf;
    std::size_t head = 0;
    std::size_t tail = 0;
};

/** Scheduler state shared across units. */
struct SchedState
{
    explicit SchedState(const MachineConfig &config)
        : cfg(config), slots(config.issueWidth),
          icache(config.icache), dcache(config.dcache),
          inflight(config.windowUnits)
    {
        // One extra slot for regDump; regReady[regZero] stays 0
        // because no decoded op writes regZero.
        regReady.assign(numArchRegs + 1, 0);
        prevDone.reserve(config.windowOps);
        wrongStamp.fill(0);
    }

    const MachineConfig &cfg;
    IssueSlots slots;
    Cache icache;
    Cache dcache;
    std::vector<std::uint64_t> regReady;

    /** In-flight units: (retireCycle, opCount). */
    InflightRing inflight;
    unsigned inflightOps = 0;

    std::uint64_t lastFetch = 0;
    std::uint64_t lastRetire = 0;

    /** Completion times of the previous committed unit's ops. */
    std::vector<std::uint64_t> prevDone;

    /** Wrong-path local-rename scoreboard: a flat array stamped with a
     *  per-mispredict generation, so scheduleWrongPath never clears or
     *  allocates on the hot path. */
    std::array<std::uint64_t, numArchRegs + 1> wrongReady;
    std::array<std::uint64_t, numArchRegs + 1> wrongStamp;
    std::uint64_t wrongGen = 0;
};

/**
 * Schedule the ops of a wrongly fetched block.  Ops up to and
 * including @p mustRunIdx always issue (the resolving fault needs its
 * operands); later ops issue only if they can start before the squash.
 * Register state is read from the committed scoreboard but written
 * only to the generation-stamped local scoreboard.  Returns the
 * completion time of op @p mustRunIdx (the resolve time for
 * fault-style mispredicts).
 */
std::uint64_t
scheduleWrongPath(SchedState &st, const DecodedOp *ops, std::uint32_t n,
                  unsigned mustRunIdx, std::uint64_t fetchCycle,
                  std::uint64_t squashCutoff, std::uint64_t &wrongOps)
{
    const std::uint64_t gen = ++st.wrongGen;
    const std::uint64_t earliest = fetchCycle + st.cfg.frontendDepth;
    std::uint64_t resolve = earliest;

    // Absent sources decode to regZero, which is never stamped (no op
    // writes it) and whose committed ready time is pinned at 0 — so
    // both sources can be read unconditionally.
    auto ready_of = [&](RegNum r) -> std::uint64_t {
        return st.wrongStamp[r] == gen ? st.wrongReady[r]
                                       : st.regReady[r];
    };

    for (std::uint32_t i = 0; i < n; ++i) {
        const DecodedOp &op = ops[i];
        const std::uint64_t ready =
            std::max({earliest, ready_of(op.src1), ready_of(op.src2)});

        if (i > mustRunIdx && ready > squashCutoff)
            continue;  // squashed before it could issue

        const std::uint64_t start = st.slots.allocate(ready);
        if (i > mustRunIdx && start > squashCutoff)
            continue;
        ++wrongOps;
        // Wrong-path loads are modelled as L1 hits: their addresses
        // are speculative garbage we do not track.
        const std::uint64_t done = start + op.latency;
        st.wrongReady[op.dst] = done;
        st.wrongStamp[op.dst] = gen;
        if (i == mustRunIdx)
            resolve = done;
    }
    return resolve;
}

} // namespace

SimResult
simulatePipeline(FetchSource &source, const MachineConfig &config)
{
    SchedState st(config);
    SimResult result;

    TimingUnit unit;
    while (source.next(unit)) {
        BSISA_ASSERT(unit.ops && unit.opCount > 0);

        // ----------------------------------------------------- fetch
        std::uint64_t fetch = st.lastFetch + 1;
        const std::uint64_t fetch_base = fetch;

        if (unit.redirect.mispredicted) {
            std::uint64_t resolve;
            if (unit.redirect.resolveInWrongBlock) {
                // A fault in the wrong block resolves the mispredict;
                // its ops must be issued to find out.
                BSISA_ASSERT(unit.redirect.wrongOps);
                // The wrong block was fetched in place of this one.
                st.icache.accessRange(unit.redirect.wrongPc,
                                      unit.redirect.wrongBytes);
                resolve = scheduleWrongPath(
                    st, unit.redirect.wrongOps,
                    unit.redirect.wrongOpCount,
                    unit.redirect.resolveOpIdx, fetch,
                    ~0ull, result.wrongPathOps);
            } else {
                // The previous unit's terminator resolves it.
                resolve = st.prevDone.empty()
                              ? fetch
                              : st.prevDone[unit.redirect.resolveOpIdx];
                if (unit.redirect.wrongOps) {
                    st.icache.accessRange(unit.redirect.wrongPc,
                                          unit.redirect.wrongBytes);
                    scheduleWrongPath(st, unit.redirect.wrongOps,
                                      unit.redirect.wrongOpCount,
                                      0, fetch, resolve,
                                      result.wrongPathOps);
                }
            }
            std::uint64_t redirected =
                resolve + 1 + config.redirectPenalty;
            redirected += std::uint64_t(unit.redirect.extraHops) *
                          (config.redirectPenalty + 1);
            fetch = std::max(fetch, redirected);
        }
        result.stallRedirect += fetch - fetch_base;
        const std::uint64_t fetch_after_redirect = fetch;

        // Window occupancy: wait for room.
        while (!st.inflight.empty() &&
               st.inflight.front().first <= fetch) {
            st.inflightOps -= st.inflight.front().second;
            st.inflight.pop_front();
        }
        const unsigned unit_ops = unit.opCount;
        while (st.inflight.size() >= config.windowUnits ||
               st.inflightOps + unit_ops > config.windowOps) {
            BSISA_ASSERT(!st.inflight.empty(),
                         "unit larger than the whole window");
            fetch = std::max(fetch, st.inflight.front().first);
            st.inflightOps -= st.inflight.front().second;
            st.inflight.pop_front();
        }

        result.stallWindow += fetch - fetch_after_redirect;

        // Instruction cache: any missing line stalls the fetch for one
        // L2 round trip (lines fill in parallel from the perfect L2).
        if (!unit.skipIcache &&
            st.icache.accessRange(unit.pc, unit.bytes) > 0) {
            fetch += config.l2Latency;
            result.stallIcache += config.l2Latency;
        }

        st.lastFetch = fetch;
        st.slots.advanceTo(fetch);

        // -------------------------------------------------- schedule
        const std::uint64_t earliest = fetch + config.frontendDepth;
        std::uint64_t unit_done = earliest;
        st.prevDone.assign(unit.opCount, 0);
        std::uint32_t mem_idx = 0;

        for (std::uint32_t i = 0; i < unit.opCount; ++i) {
            const DecodedOp &op = unit.ops[i];
            const std::uint64_t ready =
                std::max({earliest, st.regReady[op.src1],
                          st.regReady[op.src2]});

            const std::uint64_t start = st.slots.allocate(ready);
            unsigned latency = op.latency;
            if (op.flags & opIsMem) {
                const std::uint64_t addr =
                    mem_idx < unit.memCount ? unit.memAddrs[mem_idx]
                                            : 0;
                ++mem_idx;
                const bool hit = st.dcache.access(addr);
                if (!hit && (op.flags & opIsLoad))
                    latency += config.l2Latency;
            }
            const std::uint64_t done = start + latency;
            st.prevDone[i] = done;
            st.regReady[op.dst] = done;
            unit_done = std::max(unit_done, done);
        }

        // ---------------------------------------------------- retire
        const std::uint64_t retire =
            std::max(unit_done + 1, st.lastRetire + 1);
        st.lastRetire = retire;
        st.inflight.push_back(retire, unit_ops);
        st.inflightOps += unit_ops;
        result.peakWindowUnits =
            std::max<std::uint64_t>(result.peakWindowUnits,
                                    st.inflight.size());
        result.peakWindowOps =
            std::max<std::uint64_t>(result.peakWindowOps, st.inflightOps);

        result.retiredOps += unit_ops;
        result.retiredUnits += 1;
        result.cycles = std::max(result.cycles, retire);
    }

    result.predictions = source.predictions();
    result.mispredicts = source.mispredicts();
    result.trapMispredicts = source.trapMispredicts();
    result.faultMispredicts = source.faultMispredicts();
    result.cascadeHops = source.cascadeHops();
    result.icache = st.icache.stats();
    result.dcache = st.dcache.stats();
    return result;
}

} // namespace bsisa
