/**
 * @file
 * Pipeline core implementation.
 *
 * The scheduling arithmetic lives in LanePipelines (sim/lockstep.cc):
 * a sequential simulation is exactly a one-lane lockstep batch, so the
 * singleton and batched sweep paths share a single source of truth and
 * the lockstep engine's bit-exactness contract is structural rather
 * than maintained-by-hand.
 *
 * Both scheduling paths walk flat DecodedOp arrays (sim/decoded.hh).
 * The register conventions established at decode time — absent sources
 * read regZero, whose ready time is pinned at 0; absent destinations
 * write the regDump slot, which is never read — let the loops read
 * both sources and write the destination unconditionally, with no
 * per-op opcode dispatch.
 */

#include "sim/pipeline.hh"

#include "sim/lockstep.hh"

namespace bsisa
{

SimResult
simulatePipeline(FetchSource &source, const MachineConfig &config)
{
    LanePipelines lane(&config, 1);

    TimingUnit unit;
    while (source.next(unit))
        lane.step(0, unit);

    SimResult result = lane.takeResult(0);
    fillSourceStats(result, source);
    return result;
}

} // namespace bsisa
