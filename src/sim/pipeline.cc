/**
 * @file
 * Pipeline core implementation.
 */

#include "sim/pipeline.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace bsisa
{

namespace
{

/** Scheduler state shared across units. */
struct SchedState
{
    explicit SchedState(const MachineConfig &config)
        : cfg(config), slots(config.issueWidth),
          icache(config.icache), dcache(config.dcache)
    {
        regReady.assign(numArchRegs, 0);
    }

    const MachineConfig &cfg;
    IssueSlots slots;
    Cache icache;
    Cache dcache;
    std::vector<std::uint64_t> regReady;

    /** In-flight units: (retireCycle, opCount). */
    std::deque<std::pair<std::uint64_t, unsigned>> inflight;
    unsigned inflightOps = 0;

    std::uint64_t lastFetch = 0;
    std::uint64_t lastRetire = 0;

    /** Completion times of the previous committed unit's ops. */
    std::vector<std::uint64_t> prevDone;
};

/**
 * Schedule the ops of a wrongly fetched block.  Ops up to and
 * including @p mustRunIdx always issue (the resolving fault needs its
 * operands); later ops issue only if they can start before the squash.
 * Register state is read from the committed scoreboard but written
 * only to a local map.  Returns the completion time of op
 * @p mustRunIdx (the resolve time for fault-style mispredicts).
 */
std::uint64_t
scheduleWrongPath(SchedState &st, const std::vector<Operation> &ops,
                  unsigned mustRunIdx, std::uint64_t fetchCycle,
                  std::uint64_t squashCutoff, std::uint64_t &wrongOps)
{
    std::unordered_map<RegNum, std::uint64_t> local;
    const std::uint64_t earliest = fetchCycle + st.cfg.frontendDepth;
    std::uint64_t resolve = earliest;

    auto ready_of = [&](RegNum r) -> std::uint64_t {
        if (r == regZero)
            return 0;
        const auto it = local.find(r);
        if (it != local.end())
            return it->second;
        return st.regReady[r];
    };

    for (unsigned i = 0; i < ops.size(); ++i) {
        const Operation &op = ops[i];
        std::uint64_t ready = earliest;
        const unsigned nsrc = numSources(op.op);
        if (nsrc >= 1)
            ready = std::max(ready, ready_of(op.src1));
        if (nsrc >= 2)
            ready = std::max(ready, ready_of(op.src2));

        if (i > mustRunIdx && ready > squashCutoff)
            continue;  // squashed before it could issue

        const std::uint64_t start = st.slots.allocate(ready);
        if (i > mustRunIdx && start > squashCutoff)
            continue;
        ++wrongOps;
        // Wrong-path loads are modelled as L1 hits: their addresses
        // are speculative garbage we do not track.
        const std::uint64_t done = start + op.latency();
        if (const RegNum d = hasDest(op.op) ? op.dst : invalidId;
            d != invalidId) {
            local[d] = done;
        }
        if (i == mustRunIdx)
            resolve = done;
    }
    return resolve;
}

} // namespace

SimResult
simulatePipeline(FetchSource &source, const MachineConfig &config)
{
    SchedState st(config);
    SimResult result;

    TimingUnit unit;
    while (source.next(unit)) {
        BSISA_ASSERT(unit.ops && !unit.ops->empty());

        // ----------------------------------------------------- fetch
        std::uint64_t fetch = st.lastFetch + 1;
        const std::uint64_t fetch_base = fetch;

        if (unit.redirect.mispredicted) {
            std::uint64_t resolve;
            if (unit.redirect.resolveInWrongBlock) {
                // A fault in the wrong block resolves the mispredict;
                // its ops must be issued to find out.
                BSISA_ASSERT(unit.redirect.wrongOps);
                // The wrong block was fetched in place of this one.
                st.icache.accessRange(unit.redirect.wrongPc,
                                      unit.redirect.wrongBytes);
                resolve = scheduleWrongPath(
                    st, *unit.redirect.wrongOps,
                    unit.redirect.resolveOpIdx, fetch,
                    ~0ull, result.wrongPathOps);
            } else {
                // The previous unit's terminator resolves it.
                resolve = st.prevDone.empty()
                              ? fetch
                              : st.prevDone[unit.redirect.resolveOpIdx];
                if (unit.redirect.wrongOps) {
                    st.icache.accessRange(unit.redirect.wrongPc,
                                          unit.redirect.wrongBytes);
                    scheduleWrongPath(st, *unit.redirect.wrongOps,
                                      0, fetch, resolve,
                                      result.wrongPathOps);
                }
            }
            std::uint64_t redirected =
                resolve + 1 + config.redirectPenalty;
            redirected += std::uint64_t(unit.redirect.extraHops) *
                          (config.redirectPenalty + 1);
            fetch = std::max(fetch, redirected);
        }
        result.stallRedirect += fetch - fetch_base;
        const std::uint64_t fetch_after_redirect = fetch;

        // Window occupancy: wait for room.
        while (!st.inflight.empty() &&
               st.inflight.front().first <= fetch) {
            st.inflightOps -= st.inflight.front().second;
            st.inflight.pop_front();
        }
        const unsigned unit_ops =
            static_cast<unsigned>(unit.ops->size());
        while (st.inflight.size() >= config.windowUnits ||
               st.inflightOps + unit_ops > config.windowOps) {
            BSISA_ASSERT(!st.inflight.empty(),
                         "unit larger than the whole window");
            fetch = std::max(fetch, st.inflight.front().first);
            st.inflightOps -= st.inflight.front().second;
            st.inflight.pop_front();
        }

        result.stallWindow += fetch - fetch_after_redirect;

        // Instruction cache: any missing line stalls the fetch for one
        // L2 round trip (lines fill in parallel from the perfect L2).
        if (!unit.skipIcache &&
            st.icache.accessRange(unit.pc, unit.bytes) > 0) {
            fetch += config.l2Latency;
            result.stallIcache += config.l2Latency;
        }

        st.lastFetch = fetch;
        st.slots.advanceTo(fetch);

        // -------------------------------------------------- schedule
        const std::uint64_t earliest = fetch + config.frontendDepth;
        std::uint64_t unit_done = earliest;
        st.prevDone.assign(unit.ops->size(), 0);
        std::size_t mem_idx = 0;

        for (std::size_t i = 0; i < unit.ops->size(); ++i) {
            const Operation &op = (*unit.ops)[i];
            std::uint64_t ready = earliest;
            const unsigned nsrc = numSources(op.op);
            if (nsrc >= 1 && op.src1 != regZero)
                ready = std::max(ready, st.regReady[op.src1]);
            if (nsrc >= 2 && op.src2 != regZero)
                ready = std::max(ready, st.regReady[op.src2]);

            const std::uint64_t start = st.slots.allocate(ready);
            unsigned latency = op.latency();
            if (op.op == Opcode::Ld || op.op == Opcode::St) {
                std::uint64_t addr = 0;
                if (unit.memAddrs && mem_idx < unit.memAddrs->size())
                    addr = (*unit.memAddrs)[mem_idx];
                ++mem_idx;
                const bool hit = st.dcache.access(addr);
                if (!hit && op.op == Opcode::Ld)
                    latency += config.l2Latency;
            }
            const std::uint64_t done = start + latency;
            st.prevDone[i] = done;
            if (hasDest(op.op))
                st.regReady[op.dst] = done;
            unit_done = std::max(unit_done, done);
        }

        // ---------------------------------------------------- retire
        const std::uint64_t retire =
            std::max(unit_done + 1, st.lastRetire + 1);
        st.lastRetire = retire;
        st.inflight.emplace_back(retire, unit_ops);
        st.inflightOps += unit_ops;

        result.retiredOps += unit_ops;
        result.retiredUnits += 1;
        result.cycles = std::max(result.cycles, retire);
    }

    result.predictions = source.predictions();
    result.mispredicts = source.mispredicts();
    result.trapMispredicts = source.trapMispredicts();
    result.faultMispredicts = source.faultMispredicts();
    result.cascadeHops = source.cascadeHops();
    result.icache = st.icache.stats();
    result.dcache = st.dcache.stats();
    return result;
}

} // namespace bsisa
