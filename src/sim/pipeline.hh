/**
 * @file
 * The shared cycle-level pipeline core.
 *
 * Models the paper's HPS-style machine at the fidelity its evaluation
 * needs: one fetch unit per cycle through the L1 icache, a finite
 * instruction window with in-order unit retirement, data-dependence-
 * driven dynamic scheduling onto issueWidth uniform pipelined
 * functional units with Table-1 latencies, dcache-extended load
 * latencies, and misprediction redirects that resolve when the
 * mispredicted trap/fault's operands are ready — including the cost of
 * issuing the wrongly fetched block's operations.
 */

#ifndef BSISA_SIM_PIPELINE_HH
#define BSISA_SIM_PIPELINE_HH

#include <algorithm>
#include <vector>

#include "cache/cache.hh"
#include "sim/fetch_source.hh"
#include "sim/machine.hh"
#include "support/compiler.hh"

namespace bsisa
{

/** Run @p source through a machine configured by @p config. */
SimResult simulatePipeline(FetchSource &source,
                           const MachineConfig &config);

/**
 * Per-cycle issue-slot bookkeeping over a sliding window of future
 * cycles (exposed for unit testing).
 *
 * Stored as a power-of-two circular buffer of per-cycle counts
 * indexed by (cycle & mask): slot i holds the count for the unique
 * cycle in [base, base + capacity) congruent to i, and slots for
 * cycles never allocated read zero.  advanceTo() re-zeroes the slots
 * that leave the window, so the steady state never touches the
 * allocator (the std::deque this replaces allocated and freed chunks
 * as the window slid); growth happens only on a scheduling span
 * longer than the initial 4096 cycles, which doubles the buffer.
 */
class IssueSlots
{
  public:
    explicit IssueSlots(unsigned width) : width(width), used(4096, 0) {}

    /** First cycle >= @p earliest with a free slot; consumes it.
     *  @p earliest must be >= the last advanceTo() cycle.
     *
     *  This is the single hottest operation of a timing sweep (one
     *  call per op per lane), so the members are hoisted into locals
     *  for the search: the counts are uint8_t, and a store through an
     *  unsigned-char lvalue aliases *everything*, so without the
     *  hoist the compiler must reload data()/size()/base/width on
     *  every probe.  Force-inlined into the batch kernels; the rare
     *  grow path stays out of line to keep that cheap. */
    BSISA_ALWAYS_INLINE std::uint64_t
    allocate(std::uint64_t earliest)
    {
        const std::uint64_t b = base;
        const unsigned w = width;
        std::uint8_t *u = used.data();
        std::uint64_t mask = used.size() - 1;
        std::uint64_t cycle = earliest < b ? b : earliest;
        for (;;) {
            if (cycle - b > mask) {
                grow(cycle);
                u = used.data();
                mask = used.size() - 1;
            }
            std::uint8_t &count = u[cycle & mask];
            if (count < w) {
                ++count;
                return cycle;
            }
            ++cycle;
        }
    }

    /** Drop bookkeeping for cycles before @p cycle. */
    void
    advanceTo(std::uint64_t cycle)
    {
        if (cycle <= base)
            return;
        const std::uint64_t gone =
            std::min<std::uint64_t>(cycle - base, used.size());
        for (std::uint64_t i = 0; i < gone; ++i)
            used[(base + i) & (used.size() - 1)] = 0;
        base = cycle;
    }

  private:
    BSISA_NOINLINE void
    grow(std::uint64_t cycle)
    {
        std::size_t cap = used.size() * 2;
        while (cycle - base >= cap)
            cap *= 2;
        std::vector<std::uint8_t> bigger(cap, 0);
        for (std::size_t i = 0; i < used.size(); ++i) {
            const std::uint64_t c = base + i;
            bigger[c & (cap - 1)] = used[c & (used.size() - 1)];
        }
        used.swap(bigger);
    }

    unsigned width;
    std::uint64_t base = 0;
    std::vector<std::uint8_t> used;
};

} // namespace bsisa

#endif // BSISA_SIM_PIPELINE_HH
