/**
 * @file
 * The shared cycle-level pipeline core.
 *
 * Models the paper's HPS-style machine at the fidelity its evaluation
 * needs: one fetch unit per cycle through the L1 icache, a finite
 * instruction window with in-order unit retirement, data-dependence-
 * driven dynamic scheduling onto issueWidth uniform pipelined
 * functional units with Table-1 latencies, dcache-extended load
 * latencies, and misprediction redirects that resolve when the
 * mispredicted trap/fault's operands are ready — including the cost of
 * issuing the wrongly fetched block's operations.
 */

#ifndef BSISA_SIM_PIPELINE_HH
#define BSISA_SIM_PIPELINE_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "sim/fetch_source.hh"
#include "sim/machine.hh"
#include "support/compiler.hh"

namespace bsisa
{

/** Run @p source through a machine configured by @p config. */
SimResult simulatePipeline(FetchSource &source,
                           const MachineConfig &config);

/**
 * Per-cycle issue-slot bookkeeping over a sliding window of future
 * cycles (exposed for unit testing).
 *
 * Stored as a power-of-two circular buffer of per-cycle counts
 * indexed by (cycle & mask): slot i holds the count for the unique
 * cycle in [base, base + capacity) congruent to i, and slots for
 * cycles never allocated read zero.  A parallel occupancy bitmap
 * (`full`, one bit per cycle slot, bit set iff the cycle's count
 * reached width) turns the free-slot search from a per-cycle linear
 * scan into a word scan: one ~word + countr_zero finds the first
 * non-full cycle among 64 candidates, so congested schedules — deep
 * windows backed up behind a load miss routinely saturate dozens of
 * consecutive cycles — cost one probe per word instead of one per
 * cycle.  advanceTo() re-zeroes the slots (and occupancy bits) that
 * leave the window, so the steady state never touches the allocator;
 * growth happens only on a scheduling span longer than the initial
 * 4096 cycles, which doubles the buffer.
 */
class IssueSlots
{
  public:
    explicit IssueSlots(unsigned width)
        : width(width), used(4096, 0), full(4096 / 64, 0)
    {
    }

    /** First cycle >= @p earliest with a free slot; consumes it.
     *  @p earliest must be >= the last advanceTo() cycle.
     *
     *  This is the single hottest operation of a timing sweep (one
     *  call per op per lane), so the members are hoisted into locals
     *  for the search: the counts are uint8_t, and a store through an
     *  unsigned-char lvalue aliases *everything*, so without the
     *  hoist the compiler must reload data()/size()/base/width on
     *  every probe.  Force-inlined into the batch kernels; the rare
     *  grow path stays out of line to keep that cheap. */
    BSISA_ALWAYS_INLINE std::uint64_t
    allocate(std::uint64_t earliest)
    {
        const std::uint64_t b = base;
        std::uint64_t *fw = full.data();
        std::uint64_t mask = used.size() - 1;
        std::uint64_t cycle = earliest < b ? b : earliest;
        for (;;) {
            if (cycle - b > mask) {
                grow(cycle);
                fw = full.data();
                mask = used.size() - 1;
            }
            const std::uint64_t idx = cycle & mask;
            // Free cycles at or after idx within its occupancy word,
            // clamped to the in-window span: bits past the word end
            // wrap to lower indices, and bits past the window end
            // (base + capacity) alias early-window cycles — both are
            // other cycles entirely.  The aliased bits must read as
            // free here: cycles at or past base + capacity have a
            // zero count by definition, so a set aliased bit would
            // otherwise advance the search past a genuinely free
            // boundary cycle and grow() would claim too late a cycle.
            // span >= 1 always, and 2 << 63 wraps to 0, so the
            // span == 64 case masks with ~0 without a UB shift.
            const std::uint64_t span = std::min<std::uint64_t>(
                64 - (idx & 63), mask - (cycle - b) + 1);
            const std::uint64_t avail =
                (~fw[idx >> 6] >> (idx & 63)) &
                ((std::uint64_t(2) << (span - 1)) - 1);
            if (avail == 0) {
                // Word (or window) exhausted: hop to the next word,
                // or just past the window so the next probe grows and
                // claims base + capacity, the true first-free cycle.
                cycle += span;
                continue;
            }
            cycle += std::uint64_t(std::countr_zero(avail));
            const std::uint64_t at = cycle & mask;
            std::uint8_t &count = used[at];
            if (++count == width)
                fw[at >> 6] |= std::uint64_t(1) << (at & 63);
            return cycle;
        }
    }

    /** Drop bookkeeping for cycles before @p cycle. */
    void
    advanceTo(std::uint64_t cycle)
    {
        if (cycle <= base)
            return;
        const std::uint64_t mask = used.size() - 1;
        const std::uint64_t gone =
            std::min<std::uint64_t>(cycle - base, used.size());
        for (std::uint64_t i = 0; i < gone; ++i) {
            const std::uint64_t idx = (base + i) & mask;
            used[idx] = 0;
            full[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
        }
        base = cycle;
    }

  private:
    BSISA_NOINLINE void
    grow(std::uint64_t cycle)
    {
        std::size_t cap = used.size() * 2;
        while (cycle - base >= cap)
            cap *= 2;
        std::vector<std::uint8_t> bigger(cap, 0);
        for (std::size_t i = 0; i < used.size(); ++i) {
            const std::uint64_t c = base + i;
            bigger[c & (cap - 1)] = used[c & (used.size() - 1)];
        }
        used.swap(bigger);
        full.assign(cap / 64, 0);
        for (std::size_t i = 0; i < used.size(); ++i) {
            if (used[i] == width)
                full[i >> 6] |= std::uint64_t(1) << (i & 63);
        }
    }

    unsigned width;
    std::uint64_t base = 0;
    std::vector<std::uint8_t> used;
    /** Bit (cycle & mask): that cycle's count reached width. */
    std::vector<std::uint64_t> full;
};

} // namespace bsisa

#endif // BSISA_SIM_PIPELINE_HH
