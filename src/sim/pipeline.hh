/**
 * @file
 * The shared cycle-level pipeline core.
 *
 * Models the paper's HPS-style machine at the fidelity its evaluation
 * needs: one fetch unit per cycle through the L1 icache, a finite
 * instruction window with in-order unit retirement, data-dependence-
 * driven dynamic scheduling onto issueWidth uniform pipelined
 * functional units with Table-1 latencies, dcache-extended load
 * latencies, and misprediction redirects that resolve when the
 * mispredicted trap/fault's operands are ready — including the cost of
 * issuing the wrongly fetched block's operations.
 */

#ifndef BSISA_SIM_PIPELINE_HH
#define BSISA_SIM_PIPELINE_HH

#include <deque>

#include "cache/cache.hh"
#include "sim/fetch_source.hh"
#include "sim/machine.hh"

namespace bsisa
{

/** Run @p source through a machine configured by @p config. */
SimResult simulatePipeline(FetchSource &source,
                           const MachineConfig &config);

/**
 * Per-cycle issue-slot bookkeeping over a sliding window of future
 * cycles (exposed for unit testing).
 */
class IssueSlots
{
  public:
    explicit IssueSlots(unsigned width) : width(width) {}

    /** First cycle >= @p earliest with a free slot; consumes it.
     *  @p earliest must be >= the last advanceTo() cycle. */
    std::uint64_t
    allocate(std::uint64_t earliest)
    {
        if (earliest < base)
            earliest = base;
        std::uint64_t cycle = earliest;
        for (;;) {
            const std::size_t idx = cycle - base;
            if (idx >= used.size())
                used.resize(idx + 1, 0);
            if (used[idx] < width) {
                ++used[idx];
                return cycle;
            }
            ++cycle;
        }
    }

    /** Drop bookkeeping for cycles before @p cycle. */
    void
    advanceTo(std::uint64_t cycle)
    {
        while (base < cycle && !used.empty()) {
            used.pop_front();
            ++base;
        }
        if (used.empty())
            base = cycle;
    }

  private:
    unsigned width;
    std::uint64_t base = 0;
    std::deque<std::uint8_t> used;
};

} // namespace bsisa

#endif // BSISA_SIM_PIPELINE_HH
