/**
 * @file
 * Trace-cache fetch source implementation.
 */

#include "sim/tc_source.hh"

#include "support/logging.hh"

namespace bsisa
{

TraceCacheFetchSource::TraceCacheFetchSource(
    const Module &mod, const ConvLayout &lay,
    const MachineConfig &config, const TraceCacheConfig &tcConfig,
    Interp::Limits limits)
    : TraceCacheFetchSource(
          mod, lay, config, tcConfig,
          std::make_unique<InterpEventSource>(mod, limits))
{
}

TraceCacheFetchSource::TraceCacheFetchSource(
    const Module &mod, const ConvLayout &lay,
    const MachineConfig &config, const TraceCacheConfig &tcConfig,
    const ExecTrace &trace)
    : TraceCacheFetchSource(mod, lay, config, tcConfig,
                            std::make_unique<TraceReplaySource>(trace))
{
}

TraceCacheFetchSource::TraceCacheFetchSource(
    const Module &mod, const ConvLayout &lay,
    const MachineConfig &config, const TraceCacheConfig &tcConfig,
    std::unique_ptr<EventSource> source)
    : module(mod), layout(lay), perfect(config.perfectPrediction),
      predictor(config.predictor), cache(tcConfig),
      stream(std::move(source))
{
    refill();
}

void
TraceCacheFetchSource::refill()
{
    while (!streamDone && events.size() < 16) {
        BlockEvent ev;
        if (stream->next(ev))
            events.push_back(std::move(ev));
        else
            streamDone = true;
    }
}

std::uint64_t
TraceCacheFetchSource::token(FuncId func, BlockId block)
{
    return (std::uint64_t(func) << 32) | block;
}

bool
TraceCacheFetchSource::predictTrap(const BlockEvent &ev)
{
    const std::uint64_t pc = layout.addrOf(ev.func, ev.block);
    if (perfect)
        return ev.taken;
    ++nPredictions;
    const bool predicted = predictor.predictTaken(pc);
    predictor.update(pc, ev.taken);
    return predicted;
}

void
TraceCacheFetchSource::handleExit(const BlockEvent &ev)
{
    const Function &fn = module.functions[ev.func];
    const Operation &term = fn.blocks[ev.block].terminator();
    const std::uint64_t pc = layout.addrOf(ev.func, ev.block);
    switch (ev.exit) {
      case ExitKind::Call:
        predictor.pushReturn(token(ev.func, term.target0));
        break;
      case ExitKind::Ret: {
        if (perfect)
            break;
        ++nPredictions;
        const std::uint64_t actual = token(ev.nextFunc, ev.nextBlock);
        if (predictor.popReturn() != actual) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
        }
        break;
      }
      case ExitKind::IJump: {
        if (perfect)
            break;
        ++nPredictions;
        const std::uint64_t actual = token(ev.nextFunc, ev.nextBlock);
        const std::uint64_t predicted = predictor.predictTarget(pc);
        predictor.updateTarget(pc, actual);
        if (predicted != actual) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
        }
        break;
      }
      default:
        break;
    }
}

void
TraceCacheFetchSource::fillWith(const BlockEvent &ev)
{
    const Function &fn = module.functions[ev.func];
    const unsigned block_ops =
        static_cast<unsigned>(fn.blocks[ev.block].ops.size());

    if (fill.valid &&
        (fill.blocks.size() >= cache.config().maxBlocks ||
         fill.ops + block_ops > cache.config().maxOps)) {
        flushFill();
    }
    if (!fill.valid) {
        fill.valid = true;
        fill.start = token(ev.func, ev.block);
        fill.blocks.clear();
        fill.dirs.clear();
        fill.ops = 0;
    }
    fill.blocks.push_back(token(ev.func, ev.block));
    fill.ops += block_ops;

    switch (ev.exit) {
      case ExitKind::Trap:
        // Every trap direction (including the exit's) is part of the
        // trace identity, as in the original trace cache: a trace is
        // only fetched when the predictor agrees with its whole path.
        fill.dirs.push_back(ev.taken);
        break;
      case ExitKind::Jump:
        break;  // unconditional: no identity bit
      default:
        // Calls, returns, indirect jumps, and halt end the trace.
        flushFill();
        return;
    }
}

void
TraceCacheFetchSource::flushFill()
{
    if (fill.valid && fill.blocks.size() >= 2)
        cache.install(fill);
    fill = Trace{};
}

bool
TraceCacheFetchSource::next(TimingUnit &unit)
{
    refill();
    if (events.empty())
        return false;

    const BlockEvent &head = events.front();
    const std::uint64_t start = token(head.func, head.block);

    // Gather direction predictions along the upcoming path (the trace
    // cache needs multiple predictions per cycle; this is one of its
    // acknowledged hardware costs).
    std::vector<bool> predicted_dirs;
    std::uint64_t spec_hist =
        predictor.speculativeHistory(layout.addrOf(head.func,
                                                   head.block));
    for (std::size_t i = 0;
         i < events.size() &&
         predicted_dirs.size() + 1 < cache.config().maxBlocks * 2;
         ++i) {
        const BlockEvent &ev = events[i];
        if (ev.exit == ExitKind::Trap) {
            const std::uint64_t pc = layout.addrOf(ev.func, ev.block);
            bool dir;
            if (perfect) {
                dir = ev.taken;
            } else if (predictor.usesGlobalHistory()) {
                // Speculative history chaining keeps deep predictions
                // aligned with the indices update() will train.
                dir = predictor.predictTakenSpec(pc, spec_hist);
            } else {
                dir = predictor.predictTaken(pc);
            }
            predicted_dirs.push_back(dir);
        } else if (ev.exit != ExitKind::Jump) {
            break;
        }
    }

    const Trace *trace = cache.lookup(start, predicted_dirs);
    const std::size_t planned =
        trace ? trace->blocks.size() : std::size_t(1);

    unit.redirect = pendingRedirect;
    pendingRedirect = RedirectInfo{};

    // Commit planned blocks while they match the actual stream; a
    // wrong direction prediction truncates the unit at the offending
    // trap (earlier blocks commit; the rest of the trace is squashed).
    emitOps.clear();
    emitMemAddrs.clear();
    std::size_t committed = 0;
    std::size_t trap_idx = 0;  // index into predicted_dirs
    bool stop = false;
    while (committed < planned && !stop) {
        BSISA_ASSERT(!events.empty());
        const BlockEvent ev = events.front();
        events.pop_front();
        const Function &fn = module.functions[ev.func];
        const Block &blk = fn.blocks[ev.block];
        if (trace && trace->blocks[committed] != token(ev.func,
                                                       ev.block)) {
            // Should not happen: divergence is caught at the trap
            // below.  Defensive: re-queue and stop.
            events.push_front(ev);
            break;
        }
        emitOps.insert(emitOps.end(), blk.ops.begin(), blk.ops.end());
        emitMemAddrs.insert(emitMemAddrs.end(), ev.memAddrs.begin(),
                            ev.memAddrs.end());
        ++committed;
        fillWith(ev);

        switch (ev.exit) {
          case ExitKind::Trap: {
            // Use the SAME prediction the trace lookup consumed so the
            // fetch decision and its validation cannot disagree.
            bool predicted;
            if (trap_idx < predicted_dirs.size()) {
                predicted = predicted_dirs[trap_idx];
                if (!perfect) {
                    ++nPredictions;
                    predictor.update(
                        layout.addrOf(ev.func, ev.block), ev.taken);
                }
            } else {
                predicted = predictTrap(ev);
            }
            ++trap_idx;
            if (predicted != ev.taken) {
                ++nMispredicts;
                pendingRedirect.mispredicted = true;
                pendingRedirect.resolveOpIdx =
                    static_cast<unsigned>(emitOps.size() - 1);
                const Operation &term = blk.terminator();
                const BlockId wrong =
                    predicted ? term.target0 : term.target1;
                pendingRedirect.wrongOps = &fn.blocks[wrong].ops;
                pendingRedirect.wrongPc = layout.addrOf(ev.func, wrong);
                pendingRedirect.wrongBytes =
                    layout.bytesOf(ev.func, wrong);
                stop = true;  // the rest of the trace is wrong-path
            }
            break;
          }
          case ExitKind::Jump:
            break;
          default:
            handleExit(ev);
            if (ev.exit == ExitKind::Ret || ev.exit == ExitKind::IJump)
                pendingRedirect.resolveOpIdx =
                    static_cast<unsigned>(emitOps.size() - 1);
            stop = true;
            break;
        }
        refill();
        if (events.empty())
            break;
    }

    BSISA_ASSERT(!emitOps.empty());
    unit.pc = layout.addrOf(head.func, head.block);
    unit.bytes = static_cast<std::uint32_t>(emitOps.size() * opBytes);
    unit.skipIcache = trace != nullptr;
    unit.ops = &emitOps;
    unit.memAddrs = &emitMemAddrs;
    return true;
}

} // namespace bsisa
