/**
 * @file
 * Trace-cache fetch source implementation.
 */

#include "sim/tc_source.hh"

#include "support/logging.hh"

namespace bsisa
{

TraceCacheFetchSource::TraceCacheFetchSource(
    const Module &mod, const ConvLayout &lay,
    const MachineConfig &config, const TraceCacheConfig &tcConfig,
    Interp::Limits limits)
    : TraceCacheFetchSource(
          mod, lay, config, tcConfig,
          std::make_unique<InterpEventSource>(mod, limits), nullptr)
{
}

TraceCacheFetchSource::TraceCacheFetchSource(
    const Module &mod, const ConvLayout &lay,
    const MachineConfig &config, const TraceCacheConfig &tcConfig,
    const ExecTrace &trace)
    : TraceCacheFetchSource(mod, lay, config, tcConfig,
                            std::make_unique<TraceReplaySource>(trace),
                            nullptr)
{
}

TraceCacheFetchSource::TraceCacheFetchSource(
    const Module &mod, const ConvLayout &lay,
    const MachineConfig &config, const TraceCacheConfig &tcConfig,
    const ExecTrace &trace, const DecodedProgram &sharedDecoded)
    : TraceCacheFetchSource(mod, lay, config, tcConfig,
                            std::make_unique<TraceReplaySource>(trace),
                            &sharedDecoded)
{
}

TraceCacheFetchSource::TraceCacheFetchSource(
    const Module &mod, const ConvLayout &lay,
    const MachineConfig &config, const TraceCacheConfig &tcConfig,
    std::unique_ptr<EventSource> source,
    const DecodedProgram *sharedDecoded)
    : module(mod), layout(lay),
      ownedDecoded(sharedDecoded ? DecodedProgram()
                                 : DecodedProgram::forModule(mod)),
      decoded(sharedDecoded ? sharedDecoded : &ownedDecoded),
      perfect(config.perfectPrediction),
      predictor(config.predictor), cache(tcConfig),
      stream(std::move(source))
{
    refill();
}

void
TraceCacheFetchSource::refill()
{
    while (!streamDone && events.size() < lookahead) {
        BlockEvent ev;
        if (stream->next(ev))
            events.push_back(ev);
        else
            streamDone = true;
    }
}

std::uint64_t
TraceCacheFetchSource::token(FuncId func, BlockId block)
{
    return (std::uint64_t(func) << 32) | block;
}

bool
TraceCacheFetchSource::predictTrap(const BlockEvent &ev)
{
    const std::uint64_t pc = layout.addrOf(ev.func, ev.block);
    if (perfect)
        return ev.taken;
    ++nPredictions;
    const bool predicted = predictor.predictTaken(pc);
    predictor.update(pc, ev.taken);
    return predicted;
}

void
TraceCacheFetchSource::handleExit(const BlockEvent &ev)
{
    const Function &fn = module.functions[ev.func];
    const Operation &term = fn.blocks[ev.block].terminator();
    const std::uint64_t pc = layout.addrOf(ev.func, ev.block);
    switch (ev.exit) {
      case ExitKind::Call:
        predictor.pushReturn(token(ev.func, term.target0));
        break;
      case ExitKind::Ret: {
        if (perfect)
            break;
        ++nPredictions;
        const std::uint64_t actual = token(ev.nextFunc, ev.nextBlock);
        if (predictor.popReturn() != actual) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
        }
        break;
      }
      case ExitKind::IJump: {
        if (perfect)
            break;
        ++nPredictions;
        const std::uint64_t actual = token(ev.nextFunc, ev.nextBlock);
        const std::uint64_t predicted = predictor.predictTarget(pc);
        predictor.updateTarget(pc, actual);
        if (predicted != actual) {
            ++nMispredicts;
            pendingRedirect.mispredicted = true;
        }
        break;
      }
      default:
        break;
    }
}

void
TraceCacheFetchSource::fillWith(const BlockEvent &ev)
{
    const unsigned block_ops =
        decoded->unit(ev.func, ev.block).opCount;

    if (fill.valid &&
        (fill.blocks.size() >= cache.config().maxBlocks ||
         fill.ops + block_ops > cache.config().maxOps)) {
        flushFill();
    }
    if (!fill.valid) {
        fill.valid = true;
        fill.start = token(ev.func, ev.block);
        fill.blocks.clear();
        fill.dirs.clear();
        fill.ops = 0;
    }
    fill.blocks.push_back(token(ev.func, ev.block));
    fill.ops += block_ops;

    switch (ev.exit) {
      case ExitKind::Trap:
        // Every trap direction (including the exit's) is part of the
        // trace identity, as in the original trace cache: a trace is
        // only fetched when the predictor agrees with its whole path.
        fill.dirs.push_back(ev.taken);
        break;
      case ExitKind::Jump:
        break;  // unconditional: no identity bit
      default:
        // Calls, returns, indirect jumps, and halt end the trace.
        flushFill();
        return;
    }
}

void
TraceCacheFetchSource::flushFill()
{
    if (fill.valid && fill.blocks.size() >= 2)
        cache.install(fill);
    fill = Trace{};
}

bool
TraceCacheFetchSource::next(TimingUnit &unit)
{
    refill();
    if (events.empty())
        return false;

    // Copy the head's identity: events.front() is recycled by the
    // pop/refill cycle inside the commit loop below.
    const FuncId head_func = events.front().func;
    const BlockId head_block = events.front().block;
    const std::uint64_t start = token(head_func, head_block);

    // Gather direction predictions along the upcoming path (the trace
    // cache needs multiple predictions per cycle; this is one of its
    // acknowledged hardware costs).
    predictedDirs.clear();
    std::uint64_t spec_hist =
        predictor.speculativeHistory(layout.addrOf(head_func,
                                                   head_block));
    for (std::size_t i = 0;
         i < events.size() &&
         predictedDirs.size() + 1 < cache.config().maxBlocks * 2;
         ++i) {
        const BlockEvent &ev = events[i];
        if (ev.exit == ExitKind::Trap) {
            const std::uint64_t pc = layout.addrOf(ev.func, ev.block);
            bool dir;
            if (perfect) {
                dir = ev.taken;
            } else if (predictor.usesGlobalHistory()) {
                // Speculative history chaining keeps deep predictions
                // aligned with the indices update() will train.
                dir = predictor.predictTakenSpec(pc, spec_hist);
            } else {
                dir = predictor.predictTaken(pc);
            }
            predictedDirs.push_back(dir);
        } else if (ev.exit != ExitKind::Jump) {
            break;
        }
    }

    const Trace *trace = cache.lookup(start, predictedDirs);
    const std::size_t planned =
        trace ? trace->blocks.size() : std::size_t(1);

    unit.redirect = pendingRedirect;
    pendingRedirect = RedirectInfo{};

    // Commit planned blocks while they match the actual stream; a
    // wrong direction prediction truncates the unit at the offending
    // trap (earlier blocks commit; the rest of the trace is squashed).
    emitOps.clear();
    emitSpans.clear();
    std::size_t committed = 0;
    std::size_t trap_idx = 0;  // index into predictedDirs
    bool stop = false;
    while (committed < planned && !stop) {
        BSISA_ASSERT(!events.empty());
        const BlockEvent ev = events.front();
        events.pop_front();
        const Function &fn = module.functions[ev.func];
        const Block &blk = fn.blocks[ev.block];
        if (trace && trace->blocks[committed] != token(ev.func,
                                                       ev.block)) {
            // Should not happen: divergence is caught at the trap
            // below.  Defensive: re-queue and stop.
            events.push_front(ev);
            break;
        }
        const DecodedUnit &bdu = decoded->unit(ev.func, ev.block);
        const DecodedOp *bops = decoded->ops(bdu);
        emitOps.insert(emitOps.end(), bops, bops + bdu.opCount);
        emitSpans.emplace_back(ev.memAddrs, ev.memCount);
        ++committed;
        fillWith(ev);

        switch (ev.exit) {
          case ExitKind::Trap: {
            // Use the SAME prediction the trace lookup consumed so the
            // fetch decision and its validation cannot disagree.
            bool predicted;
            if (trap_idx < predictedDirs.size()) {
                predicted = predictedDirs[trap_idx];
                if (!perfect) {
                    ++nPredictions;
                    predictor.update(
                        layout.addrOf(ev.func, ev.block), ev.taken);
                }
            } else {
                predicted = predictTrap(ev);
            }
            ++trap_idx;
            if (predicted != ev.taken) {
                ++nMispredicts;
                pendingRedirect.mispredicted = true;
                pendingRedirect.resolveOpIdx =
                    static_cast<unsigned>(emitOps.size() - 1);
                const Operation &term = blk.terminator();
                const BlockId wrong =
                    predicted ? term.target0 : term.target1;
                const DecodedUnit &wdu = decoded->unit(ev.func, wrong);
                pendingRedirect.wrongOps = decoded->ops(wdu);
                pendingRedirect.wrongOpCount = wdu.opCount;
                pendingRedirect.wrongPc = layout.addrOf(ev.func, wrong);
                pendingRedirect.wrongBytes =
                    layout.bytesOf(ev.func, wrong);
                stop = true;  // the rest of the trace is wrong-path
            }
            break;
          }
          case ExitKind::Jump:
            break;
          default:
            handleExit(ev);
            if (ev.exit == ExitKind::Ret || ev.exit == ExitKind::IJump)
                pendingRedirect.resolveOpIdx =
                    static_cast<unsigned>(emitOps.size() - 1);
            stop = true;
            break;
        }
        refill();
        if (events.empty())
            break;
    }

    // Memory addresses: a single zero-copy span when the committed
    // events' pool slices are adjacent (always true on replay, where
    // the stream is consumed in capture order); otherwise concatenate
    // into the reused fallback buffer.  The consumed spans stay valid
    // per the EventSource stability contract.
    bool adjacent = true;
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < emitSpans.size(); ++i) {
        if (i > 0 && emitSpans[0].first + total != emitSpans[i].first) {
            adjacent = false;
            break;
        }
        total += emitSpans[i].second;
    }
    if (adjacent && !emitSpans.empty()) {
        unit.memAddrs = emitSpans[0].first;
        unit.memCount = total;
    } else {
        emitMemAddrs.clear();
        for (const auto &[span, count] : emitSpans)
            emitMemAddrs.insert(emitMemAddrs.end(), span,
                                span + count);
        unit.memAddrs = emitMemAddrs.data();
        unit.memCount =
            static_cast<std::uint32_t>(emitMemAddrs.size());
    }

    BSISA_ASSERT(!emitOps.empty());
    unit.pc = layout.addrOf(head_func, head_block);
    unit.bytes = static_cast<std::uint32_t>(emitOps.size() * opBytes);
    unit.skipIcache = trace != nullptr;
    unit.ops = emitOps.data();
    unit.opCount = static_cast<std::uint32_t>(emitOps.size());
    return true;
}

} // namespace bsisa
