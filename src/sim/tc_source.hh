/**
 * @file
 * Fetch source for a conventional machine augmented with a TRACE
 * CACHE — the paper's closest competitor (section 3) and suggested
 * complement (section 6).
 *
 * The core fetch unit supplies one basic block per cycle from the
 * icache; the trace cache supplies a whole multi-block trace in one
 * cycle when the predicted path matches a recorded trace.  Traces are
 * built at RETIREMENT from the committed stream (run-time combining,
 * in contrast to the block-structured ISA's compile-time combining:
 * no ISA change, no code expansion, but bounded by the trace cache's
 * own capacity).
 */

#ifndef BSISA_SIM_TC_SOURCE_HH
#define BSISA_SIM_TC_SOURCE_HH

#include <memory>
#include <vector>

#include "cache/trace_cache.hh"
#include "codegen/layout.hh"
#include "predict/twolevel.hh"
#include "sim/event_ring.hh"
#include "sim/fetch_source.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace bsisa
{

class TraceCacheFetchSource : public FetchSource
{
  public:
    /** Drive a private functional interpreter. */
    TraceCacheFetchSource(const Module &module, const ConvLayout &layout,
                          const MachineConfig &config,
                          const TraceCacheConfig &tcConfig,
                          Interp::Limits limits);

    /** Replay a captured trace (shared across timing configs). */
    TraceCacheFetchSource(const Module &module, const ConvLayout &layout,
                          const MachineConfig &config,
                          const TraceCacheConfig &tcConfig,
                          const ExecTrace &trace);

    /** Replay sharing a pre-built decode: lockstep batches build the
     *  DecodedProgram once and hand it to every lane's source, so a
     *  batch holds exactly one copy of the static metadata. */
    TraceCacheFetchSource(const Module &module, const ConvLayout &layout,
                          const MachineConfig &config,
                          const TraceCacheConfig &tcConfig,
                          const ExecTrace &trace,
                          const DecodedProgram &sharedDecoded);

    bool next(TimingUnit &unit) override;

    std::uint64_t predictions() const override { return nPredictions; }
    std::uint64_t mispredicts() const override { return nMispredicts; }
    std::uint64_t trapMispredicts() const override
    {
        return nMispredicts;
    }
    std::uint64_t faultMispredicts() const override { return 0; }
    std::uint64_t cascadeHops() const override { return 0; }

    /** Trace-cache hit/miss statistics. */
    std::uint64_t traceHits() const { return cache.hits(); }
    std::uint64_t traceMisses() const { return cache.misses(); }

  private:
    /** Common tail of the public constructors; @p sharedDecoded is
     *  null when this source should build (and own) its decode. */
    TraceCacheFetchSource(const Module &module, const ConvLayout &layout,
                          const MachineConfig &config,
                          const TraceCacheConfig &tcConfig,
                          std::unique_ptr<EventSource> source,
                          const DecodedProgram *sharedDecoded);

    /** Lookahead depth (ring capacity); must stay below the
     *  EventSource span-stability window. */
    static constexpr std::size_t lookahead = 16;
    static_assert(lookahead < eventSpanStability);

    const Module &module;
    const ConvLayout &layout;
    /** Per-op metadata: owned when standalone (decoded points at
     *  ownedDecoded), borrowed when batched (ownedDecoded empty). */
    DecodedProgram ownedDecoded;
    const DecodedProgram *decoded;
    bool perfect;
    TwoLevelPredictor predictor;
    TraceCache cache;
    std::unique_ptr<EventSource> stream;

    EventRing<BlockEvent, lookahead> events;
    bool streamDone = false;

    /** Redirect computed while emitting the previous unit. */
    RedirectInfo pendingRedirect;

    /** Fill unit: committed blocks accumulating into a new trace. */
    Trace fill;

    /** Stable emit buffers (reused across units; emitMemAddrs is a
     *  fallback used only when the committed events' spans are not
     *  adjacent in their pool — replayed traces stream zero-copy). */
    std::vector<DecodedOp> emitOps;
    std::vector<std::uint64_t> emitMemAddrs;
    /** (span, count) of each committed event, reused per next(). */
    std::vector<std::pair<const std::uint64_t *, std::uint32_t>>
        emitSpans;
    /** Direction predictions along the upcoming path, reused. */
    std::vector<bool> predictedDirs;

    std::uint64_t nPredictions = 0;
    std::uint64_t nMispredicts = 0;

    void refill();
    static std::uint64_t token(FuncId func, BlockId block);

    /** Predict the direction of the trap ending @p ev's block; counts
     *  and trains.  Returns predicted direction. */
    bool predictTrap(const BlockEvent &ev);

    /** Handle the non-trap exits (call/ret/ijmp bookkeeping). */
    void handleExit(const BlockEvent &ev);

    /** Append a committed block to the fill unit, flushing when the
     *  trace is complete. */
    void fillWith(const BlockEvent &ev);
    void flushFill();
};

} // namespace bsisa

#endif // BSISA_SIM_TC_SOURCE_HH
