/**
 * @file
 * Trace capture/replay implementation.
 */

#include "sim/trace.hh"

namespace bsisa
{

ExecTrace
captureTrace(const Module &module, Interp::Limits limits)
{
    ExecTrace trace;
    Interp interp(module, limits);
    BlockEvent ev;
    while (interp.step(ev)) {
        TraceEvent te;
        te.func = ev.func;
        te.block = ev.block;
        te.nextFunc = ev.nextFunc;
        te.nextBlock = ev.nextBlock;
        te.exit = ev.exit;
        te.taken = ev.taken;
        te.memBegin = trace.ownedAddrs.size();
        te.memCount = ev.memCount;
        trace.ownedAddrs.insert(trace.ownedAddrs.end(), ev.memAddrs,
                                ev.memAddrs + ev.memCount);
        trace.ownedEvents.push_back(te);
    }
    trace.dynOps = interp.dynOps();
    trace.dynBlocks = interp.dynBlocks();
    trace.sealOwned();
    return trace;
}

ProfileData
profileFromTrace(const ExecTrace &trace)
{
    ProfileData profile;
    for (std::size_t i = 0; i < trace.eventCount; ++i) {
        const TraceEvent &ev = trace.events[i];
        if (ev.exit == ExitKind::Trap)
            profile.record(ev.func, ev.block, ev.taken);
    }
    return profile;
}

bool
TraceReplaySource::next(BlockEvent &ev)
{
    if (pos >= trace.eventCount)
        return false;
    const TraceEvent &te = trace.events[pos++];
    ev.func = te.func;
    ev.block = te.block;
    ev.nextFunc = te.nextFunc;
    ev.nextBlock = te.nextBlock;
    ev.exit = te.exit;
    ev.taken = te.taken;
    // Zero-copy: hand out a view into the shared address pool (owned
    // memory or mmap-ed store pages alike).
    ev.memAddrs = trace.memAddrs + te.memBegin;
    ev.memCount = te.memCount;
    return true;
}

} // namespace bsisa
