/**
 * @file
 * Functional-trace capture and replay.
 *
 * Every timing model in this repo consumes the same committed dynamic
 * basic-block stream (DESIGN.md section 5), so one functional
 * execution can drive any number of timing configurations.  An
 * ExecTrace records that stream from one Interp run into a compact
 * in-memory buffer — per event: block identity, exit kind, trap
 * direction, successor, and the Ld/St addresses (pooled into a single
 * shared vector) — and a TraceReplaySource feeds it back through the
 * common EventSource interface the fetch sources consume.  Capturing
 * once per (module, limits) and replaying across an icache sweep or a
 * predictor ablation removes the dominant redundant work from the
 * paper's sweep-shaped experiments, and replay cursors are read-only
 * over the trace, so config points can fan out across threads (see
 * support/parallel.hh).
 */

#ifndef BSISA_SIM_TRACE_HH
#define BSISA_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/profile.hh"
#include "sim/interp.hh"

namespace bsisa
{

/** One committed block execution in trace form (addresses pooled). */
struct TraceEvent
{
    FuncId func = invalidId;
    BlockId block = invalidId;
    FuncId nextFunc = invalidId;
    BlockId nextBlock = invalidId;
    /** Slice [memBegin, memBegin + memCount) of the trace's pool. */
    std::uint64_t memBegin = 0;
    std::uint32_t memCount = 0;
    ExitKind exit = ExitKind::Halt;
    bool taken = false;
};

/**
 * The committed event stream of one functional execution.
 *
 * The consumer-facing shape is two relocatable pools — a TraceEvent
 * array and the shared Ld/St address pool — exposed as (pointer,
 * count) spans.  Events reference the pool by *offset* (memBegin),
 * never by pointer, so a trace is position-independent: the pools may
 * live in the owned vectors (capture path) or inside a mmap-ed trace
 * store entry (sim/trace_store.hh), whose pages then back replay
 * spans directly with zero copies.  `backing` pins whatever owns
 * foreign pools (e.g. the file mapping) for the trace's lifetime.
 *
 * Traces are move-only: spans point into the owned vectors, whose
 * heap buffers survive moves but not copies.
 */
struct ExecTrace
{
    ExecTrace() = default;
    ExecTrace(ExecTrace &&) = default;
    ExecTrace &operator=(ExecTrace &&) = default;
    ExecTrace(const ExecTrace &) = delete;
    ExecTrace &operator=(const ExecTrace &) = delete;

    /** Committed event stream. */
    const TraceEvent *events = nullptr;
    std::size_t eventCount = 0;
    /** Ld/St address pool, shared by all events. */
    const std::uint64_t *memAddrs = nullptr;
    std::size_t memAddrCount = 0;

    /** Dynamic operation count of the run (Table 2's metric). */
    std::uint64_t dynOps = 0;
    /** Dynamic block count of the run. */
    std::uint64_t dynBlocks = 0;

    /** Pool storage when the trace owns its data (capture path). */
    std::vector<TraceEvent> ownedEvents;
    std::vector<std::uint64_t> ownedAddrs;
    /** Keeps externally owned pools (a file mapping) alive. */
    std::shared_ptr<const void> backing;

    /** Point the spans at the owned vectors after filling them. */
    void
    sealOwned()
    {
        events = ownedEvents.data();
        eventCount = ownedEvents.size();
        memAddrs = ownedAddrs.data();
        memAddrCount = ownedAddrs.size();
    }

    /** True when the pools live in a mmap-ed store entry. */
    bool mapped() const { return backing != nullptr; }

    /** Approximate resident size, for capacity planning in reports. */
    std::size_t
    sizeBytes() const
    {
        return eventCount * sizeof(TraceEvent) +
               memAddrCount * sizeof(std::uint64_t);
    }
};

/** Run @p module under @p limits, recording the committed stream. */
ExecTrace captureTrace(const Module &module, Interp::Limits limits);

/** Derive a branch-bias profile from a captured trace (equivalent to
 *  collectProfile() over the same execution, without re-running it). */
ProfileData profileFromTrace(const ExecTrace &trace);

/**
 * A pull-based producer of committed BlockEvents — the seam between
 * functional execution and the fetch sources.  Implementations either
 * run the interpreter directly (InterpEventSource) or replay a
 * captured ExecTrace (TraceReplaySource); the streams are identical.
 *
 * Span contract: each event's memAddrs span points into storage owned
 * by the source and stays valid for at least the next
 * eventSpanStability - 1 subsequent next() calls (replayed spans point
 * into the trace pool and live as long as the trace itself).  Fetch
 * sources may therefore buffer up to eventSpanStability / 2 events of
 * lookahead without copying addresses.
 */
class EventSource
{
  public:
    virtual ~EventSource() = default;

    /** Produce the next committed event; false at end of program. */
    virtual bool next(BlockEvent &ev) = 0;
};

/** Minimum number of next() calls an event's memAddrs span survives
 *  (sized above every fetch source's lookahead depth). */
constexpr std::size_t eventSpanStability = 128;

/** EventSource that owns a live functional interpreter.  The
 *  interpreter reuses one address buffer per step, so events are
 *  rotated through eventSpanStability retained copies to satisfy the
 *  span contract. */
class InterpEventSource final : public EventSource
{
  public:
    InterpEventSource(const Module &module, Interp::Limits limits)
        : interp(module, limits)
    {
    }

    bool
    next(BlockEvent &ev) override
    {
        if (!interp.step(ev))
            return false;
        std::vector<std::uint64_t> &slot = pool[cursor];
        cursor = (cursor + 1) & (eventSpanStability - 1);
        slot.assign(ev.memAddrs, ev.memAddrs + ev.memCount);
        ev.memAddrs = slot.data();
        return true;
    }

  private:
    Interp interp;
    std::array<std::vector<std::uint64_t>, eventSpanStability> pool;
    std::size_t cursor = 0;
};

/** EventSource that replays a captured trace.  Holds only a cursor;
 *  many replay sources may read one trace concurrently.  Replay is
 *  zero-copy: emitted events carry spans into the trace's shared
 *  address pool. */
class TraceReplaySource final : public EventSource
{
  public:
    explicit TraceReplaySource(const ExecTrace &t) : trace(t) {}

    bool next(BlockEvent &ev) override;

  private:
    const ExecTrace &trace;
    std::size_t pos = 0;
};

} // namespace bsisa

#endif // BSISA_SIM_TRACE_HH
