/**
 * @file
 * Trace store implementation: entry naming, varint/delta codec,
 * mmap-backed open, and the capture-or-open path with atomic repair.
 */

#include "sim/trace_store.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <type_traits>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define BSISA_HAVE_MMAP 1
#else
#define BSISA_HAVE_MMAP 0
#endif

#include "ir/textform.hh"
#include "support/digest.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/varint.hh"

namespace bsisa
{

namespace
{

static_assert(sizeof(TraceFileHeader) == 112,
              "on-disk header layout changed; bump "
              "traceStoreFormatVersion");
static_assert(std::is_trivially_copyable_v<TraceFileHeader>);

/** Address-pool alignment inside the file (cache-line sized). */
constexpr std::uint64_t poolAlign = 64;

std::atomic<std::uint64_t> statWarm{0};
std::atomic<std::uint64_t> statCold{0};
std::atomic<std::uint64_t> statFallback{0};
std::atomic<bool> warnedReject{false};
std::atomic<bool> warnedWrite{false};
std::atomic<std::uint64_t> tempSeq{0};

/** A read-only file mapping; ExecTrace::backing keeps it alive. */
class MappedFile
{
  public:
    static std::shared_ptr<MappedFile>
    map(const std::string &path, bool &missing)
    {
        missing = false;
#if BSISA_HAVE_MMAP
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            missing = errno == ENOENT;
            return nullptr;
        }
        struct ::stat st;
        if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
            ::close(fd);
            return nullptr;
        }
        void *base = ::mmap(nullptr, std::size_t(st.st_size), PROT_READ,
                            MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (base == MAP_FAILED)
            return nullptr;
        auto file = std::make_shared<MappedFile>();
        file->base = static_cast<const std::uint8_t *>(base);
        file->length = std::size_t(st.st_size);
        return file;
#else
        // No mmap on this platform: the store degrades to
        // capture-always (opens report a missing entry).
        missing = true;
        (void)path;
        return nullptr;
#endif
    }

    ~MappedFile()
    {
#if BSISA_HAVE_MMAP
        if (base)
            ::munmap(const_cast<std::uint8_t *>(base), length);
#endif
    }

    const std::uint8_t *data() const { return base; }
    std::size_t size() const { return length; }

  private:
    const std::uint8_t *base = nullptr;
    std::size_t length = 0;
};

/** Encode one event against its predecessor.  The stream is the
 *  committed path, so an event's identity almost always equals the
 *  previous event's successor — predicting from it makes the common
 *  deltas zero (one byte each). */
void
encodeEvent(std::vector<std::uint8_t> &out, const TraceEvent &te,
            const TraceEvent &prev)
{
    putVarint(out, zigzagEncode(std::int64_t(te.func) -
                                std::int64_t(prev.nextFunc)));
    putVarint(out, zigzagEncode(std::int64_t(te.block) -
                                std::int64_t(prev.nextBlock)));
    putVarint(out, zigzagEncode(std::int64_t(te.nextFunc) -
                                std::int64_t(te.func)));
    putVarint(out, zigzagEncode(std::int64_t(te.nextBlock) -
                                std::int64_t(te.block)));
    out.push_back(std::uint8_t(unsigned(te.exit) & 7) |
                  std::uint8_t(te.taken ? 8 : 0));
    putVarint(out, te.memCount);
}

/** Decode the whole event section; false on any inconsistency. */
bool
decodeEvents(const std::uint8_t *p, const std::uint8_t *end,
             std::uint64_t eventCount, std::uint64_t addrCount,
             std::vector<TraceEvent> &out)
{
    out.clear();
    out.reserve(eventCount);
    TraceEvent prev;  // prev.nextFunc/nextBlock seed the prediction
    prev.nextFunc = 0;
    prev.nextBlock = 0;
    std::uint64_t pool = 0;
    for (std::uint64_t i = 0; i < eventCount; ++i) {
        std::uint64_t df, db, dnf, dnb, count;
        if (!getVarint(p, end, df) || !getVarint(p, end, db))
            return false;
        TraceEvent te;
        te.func = FuncId(std::int64_t(prev.nextFunc) + zigzagDecode(df));
        te.block =
            BlockId(std::int64_t(prev.nextBlock) + zigzagDecode(db));
        if (!getVarint(p, end, dnf) || !getVarint(p, end, dnb))
            return false;
        te.nextFunc = FuncId(std::int64_t(te.func) + zigzagDecode(dnf));
        te.nextBlock =
            BlockId(std::int64_t(te.block) + zigzagDecode(dnb));
        if (p >= end)
            return false;
        const std::uint8_t packed = *p++;
        if ((packed & 7) > unsigned(ExitKind::Halt) || (packed >> 4))
            return false;
        te.exit = ExitKind(packed & 7);
        te.taken = (packed & 8) != 0;
        if (!getVarint(p, end, count) || count > 0xffffffffull)
            return false;
        te.memCount = std::uint32_t(count);
        te.memBegin = pool;
        pool += count;
        if (pool > addrCount)
            return false;
        out.push_back(te);
        prev = te;
    }
    // The section must be consumed exactly, and the implicit pool
    // offsets must cover the whole address section.
    return p == end && pool == addrCount;
}

/** Atomically publish @p bytes as @p path (temp file + rename). */
bool
writeEntryFile(const std::string &dir, const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::uint64_t seq =
        tempSeq.fetch_add(1, std::memory_order_relaxed);
#if BSISA_HAVE_MMAP
    const std::uint64_t pid = std::uint64_t(::getpid());
#else
    const std::uint64_t pid = 0;
#endif
    const std::string temp = path + ".tmp-" + std::to_string(pid) +
                             "-" + std::to_string(seq);
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out ||
            !out.write(reinterpret_cast<const char *>(bytes.data()),
                       std::streamsize(bytes.size()))) {
            std::remove(temp.c_str());
            return false;
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

} // namespace

std::uint64_t
moduleDigest(const Module &module)
{
    return fnv1a64(moduleToText(module));
}

std::string
TraceKey::fileName() const
{
    const std::uint64_t h = Fnv1a64()
                                .u64(moduleDigest)
                                .u64(maxOps)
                                .u64(maxBlocks)
                                .u64(interpVersion)
                                .u64(traceStoreFormatVersion)
                                .value();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf) + ".bstrace";
}

const char *
traceOpenStatusName(TraceOpenStatus status)
{
    switch (status) {
      case TraceOpenStatus::Ok: return "ok";
      case TraceOpenStatus::NoEntry: return "no entry";
      case TraceOpenStatus::BadHeader: return "bad header";
      case TraceOpenStatus::BadVersion: return "stale version";
      case TraceOpenStatus::BadKey: return "key mismatch";
      case TraceOpenStatus::BadGeometry: return "bad section geometry";
      case TraceOpenStatus::BadChecksum: return "checksum mismatch";
      case TraceOpenStatus::BadEventStream: return "bad event stream";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encodeTrace(const ExecTrace &trace, const TraceKey &key)
{
    std::vector<std::uint8_t> events;
    events.reserve(trace.eventCount * 6);
    TraceEvent prev;
    prev.nextFunc = 0;
    prev.nextBlock = 0;
    for (std::size_t i = 0; i < trace.eventCount; ++i) {
        encodeEvent(events, trace.events[i], prev);
        prev = trace.events[i];
    }

    TraceFileHeader h;
    std::memset(&h, 0, sizeof(h));
    std::memcpy(h.magic, traceStoreMagic, sizeof(h.magic));
    h.formatVersion = traceStoreFormatVersion;
    h.interpVersionTag = interpVersion;
    h.moduleDigest = key.moduleDigest;
    h.maxOps = key.maxOps;
    h.maxBlocks = key.maxBlocks;
    h.dynOps = trace.dynOps;
    h.dynBlocks = trace.dynBlocks;
    h.eventCount = trace.eventCount;
    h.eventBytes = events.size();
    h.addrCount = trace.memAddrCount;
    h.addrOffset = (sizeof(TraceFileHeader) + events.size() +
                    poolAlign - 1) &
                   ~(poolAlign - 1);
    h.eventChecksum = fnv1a64Words(events.data(), events.size());
    h.addrChecksum =
        fnv1a64Words(trace.memAddrs,
                     trace.memAddrCount * sizeof(std::uint64_t));
    h.headerChecksum =
        fnv1a64(&h, offsetof(TraceFileHeader, headerChecksum));

    std::vector<std::uint8_t> file(h.addrOffset + h.addrCount *
                                                      sizeof(std::uint64_t));
    std::memcpy(file.data(), &h, sizeof(h));
    if (!events.empty())
        std::memcpy(file.data() + sizeof(h), events.data(),
                    events.size());
    if (h.addrCount)
        std::memcpy(file.data() + h.addrOffset, trace.memAddrs,
                    h.addrCount * sizeof(std::uint64_t));
    return file;
}

bool
readTraceHeader(const std::string &path, TraceFileHeader &out)
{
    std::ifstream in(path, std::ios::binary);
    return in &&
           bool(in.read(reinterpret_cast<char *>(&out), sizeof(out)));
}

std::vector<TraceStoreEntryInfo>
listTraceStore(const std::string &dir)
{
    std::vector<TraceStoreEntryInfo> entries;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return entries;
    for (const auto &de : it) {
        if (!de.is_regular_file(ec) || ec)
            continue;
        const std::string path = de.path().string();
        if (de.path().extension() != ".bstrace")
            continue;
        TraceStoreEntryInfo info;
        info.path = path;
        info.fileBytes = std::uint64_t(de.file_size(ec));
        if (ec)
            info.fileBytes = 0;
        std::memset(&info.header, 0, sizeof(info.header));
        info.headerOk = readTraceHeader(path, info.header) &&
                        std::memcmp(info.header.magic, traceStoreMagic,
                                    sizeof(info.header.magic)) == 0;
        entries.push_back(std::move(info));
    }
    std::sort(entries.begin(), entries.end(),
              [](const TraceStoreEntryInfo &a,
                 const TraceStoreEntryInfo &b) {
                  return a.path < b.path;
              });
    return entries;
}

TraceOpenStatus
openTraceFile(const std::string &path, const TraceKey &key,
              ExecTrace &out)
{
    bool missing = false;
    const std::shared_ptr<MappedFile> file =
        MappedFile::map(path, missing);
    if (!file)
        return missing ? TraceOpenStatus::NoEntry
                       : TraceOpenStatus::BadHeader;
    const std::uint8_t *base = file->data();
    const std::uint64_t size = file->size();

    if (size < sizeof(TraceFileHeader))
        return TraceOpenStatus::BadHeader;
    TraceFileHeader h;
    std::memcpy(&h, base, sizeof(h));
    if (std::memcmp(h.magic, traceStoreMagic, sizeof(h.magic)) != 0 ||
        h.headerChecksum !=
            fnv1a64(base, offsetof(TraceFileHeader, headerChecksum)))
        return TraceOpenStatus::BadHeader;
    if (h.formatVersion != traceStoreFormatVersion ||
        h.interpVersionTag != interpVersion)
        return TraceOpenStatus::BadVersion;
    if (h.moduleDigest != key.moduleDigest || h.maxOps != key.maxOps ||
        h.maxBlocks != key.maxBlocks)
        return TraceOpenStatus::BadKey;

    const std::uint64_t eventsEnd = sizeof(TraceFileHeader) +
                                    h.eventBytes;
    if (eventsEnd < sizeof(TraceFileHeader) ||  // overflow
        eventsEnd > h.addrOffset || (h.addrOffset & (poolAlign - 1)) ||
        h.addrOffset > size ||
        h.addrCount > (size - h.addrOffset) / sizeof(std::uint64_t) ||
        h.addrOffset + h.addrCount * sizeof(std::uint64_t) != size)
        return TraceOpenStatus::BadGeometry;

    const std::uint8_t *events = base + sizeof(TraceFileHeader);
    const std::uint8_t *pool = base + h.addrOffset;
    if (h.eventChecksum != fnv1a64Words(events, h.eventBytes) ||
        h.addrChecksum !=
            fnv1a64Words(pool, h.addrCount * sizeof(std::uint64_t)))
        return TraceOpenStatus::BadChecksum;

    if (!decodeEvents(events, events + h.eventBytes, h.eventCount,
                      h.addrCount, out.ownedEvents))
        return TraceOpenStatus::BadEventStream;

    out.ownedAddrs.clear();
    out.sealOwned();
    // Zero-copy: the address pool is the file's pages.
    out.memAddrs = reinterpret_cast<const std::uint64_t *>(pool);
    out.memAddrCount = h.addrCount;
    out.dynOps = h.dynOps;
    out.dynBlocks = h.dynBlocks;
    out.backing = file;
    return TraceOpenStatus::Ok;
}

TraceStore::TraceStore(std::string directory) : dir(std::move(directory))
{
}

TraceStore
TraceStore::fromEnv()
{
    return TraceStore(envString("BSISA_TRACE_DIR", ""));
}

std::string
TraceStore::entryPath(const TraceKey &key) const
{
    return dir + "/" + key.fileName();
}

ExecTrace
TraceStore::load(const Module &module, std::uint64_t digest,
                 Interp::Limits limits) const
{
    BSISA_ASSERT(enabled());
    const TraceKey key{digest, limits.maxOps, limits.maxBlocks};
    const std::string path = entryPath(key);

    ExecTrace out;
    const TraceOpenStatus status = openTraceFile(path, key, out);
    if (status == TraceOpenStatus::Ok) {
        statWarm.fetch_add(1, std::memory_order_relaxed);
        return out;
    }
    if (status != TraceOpenStatus::NoEntry) {
        statFallback.fetch_add(1, std::memory_order_relaxed);
        if (!warnedReject.exchange(true))
            warn("trace store: rejected ", path, " (",
                 traceOpenStatusName(status),
                 "); falling back to live capture and repairing the "
                 "entry");
    } else {
        statCold.fetch_add(1, std::memory_order_relaxed);
    }

    ExecTrace trace = captureTrace(module, limits);
    if (!writeEntryFile(dir, path, encodeTrace(trace, key)) &&
        !warnedWrite.exchange(true))
        warn("trace store: cannot write ", path,
             " (directory missing or not writable); captures will not "
             "persist");
    return trace;
}

TraceStoreStats
TraceStore::stats()
{
    TraceStoreStats s;
    s.warmLoads = statWarm.load(std::memory_order_relaxed);
    s.coldCaptures = statCold.load(std::memory_order_relaxed);
    s.fallbacks = statFallback.load(std::memory_order_relaxed);
    return s;
}

void
TraceStore::resetStats()
{
    statWarm.store(0, std::memory_order_relaxed);
    statCold.store(0, std::memory_order_relaxed);
    statFallback.store(0, std::memory_order_relaxed);
    warnedReject.store(false, std::memory_order_relaxed);
    warnedWrite.store(false, std::memory_order_relaxed);
}

ExecTrace
captureOrLoadTrace(const Module &module, Interp::Limits limits)
{
    const TraceStore store = TraceStore::fromEnv();
    if (!store.enabled())
        return captureTrace(module, limits);
    return store.load(module, moduleDigest(module), limits);
}

ExecTrace
captureOrLoadTrace(const Module &module, std::uint64_t digest,
                   Interp::Limits limits)
{
    const TraceStore store = TraceStore::fromEnv();
    if (!store.enabled())
        return captureTrace(module, limits);
    return store.load(module, digest, limits);
}

} // namespace bsisa
