/**
 * @file
 * Persistent content-addressed store of functional traces.
 *
 * The experiment suite is many separate bench processes, each of
 * which needs the same eight committed-block streams (one per
 * benchmark x op budget).  PR 1 made capture once-per-process; this
 * store makes it once-per-*content*: a captured ExecTrace is written
 * to `BSISA_TRACE_DIR` under a key derived from the compiled module
 * bytes, the op budget, and the interpreter version, and every later
 * run — same process or not — mmaps the entry back as a live
 * ExecTrace instead of re-executing the program.
 *
 * On-disk format (little-endian, one file per entry):
 *
 *   [TraceFileHeader]  magic, format + interp versions, the full
 *                      content key, counts, section geometry, and
 *                      per-section FNV-1a checksums (the header
 *                      itself is checksummed too).
 *   [event section]    varint/delta stream, ~4-6 bytes per committed
 *                      block (vs 32 in memory): zigzag deltas for
 *                      func/block/successor, one packed exit|taken
 *                      byte, a varint address count.  Pool offsets
 *                      (TraceEvent::memBegin) are implicit — the
 *                      running sum of counts — which is what makes
 *                      the layout relocatable.
 *   [address pool]     the Ld/St addresses as raw uint64s, 64-byte
 *                      aligned.  Stored verbatim *because* replay
 *                      hands out zero-copy spans into this section:
 *                      the mmap-ed pages become ExecTrace::memAddrs
 *                      directly and satisfy the span-stability
 *                      contract for the life of the trace.
 *
 * Opening verifies the header, both section checksums, and the
 * decoded event stream's bounds; any mismatch (torn write, stale
 * version, truncation, tampering) degrades gracefully: warn once,
 * fall back to live capture, and atomically repair the entry
 * (write-to-temp + rename, safe under BSISA_JOBS concurrency and
 * across processes).
 */

#ifndef BSISA_SIM_TRACE_STORE_HH
#define BSISA_SIM_TRACE_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.hh"
#include "sim/trace.hh"

namespace bsisa
{

/** Format version of the on-disk layout (content-key component). */
constexpr std::uint32_t traceStoreFormatVersion = 1;

/** Digest of a module's complete compiled form (structure + data),
 *  via the canonical text serialization.  Compute once per module
 *  and reuse — suite drivers hash each benchmark exactly once. */
std::uint64_t moduleDigest(const Module &module);

/** The content-address key of one trace entry. */
struct TraceKey
{
    std::uint64_t moduleDigest = 0;
    std::uint64_t maxOps = 0;
    std::uint64_t maxBlocks = 0;

    /** Entry file name: hex of the combined key hash. */
    std::string fileName() const;
};

/** On-disk entry header.  POD, written/read by memcpy; all integer
 *  fields little-endian (the store is a same-machine cache, not an
 *  interchange format — tracedump verifies, it does not translate). */
struct TraceFileHeader
{
    char magic[8];                   //!< traceStoreMagic
    std::uint32_t formatVersion;     //!< traceStoreFormatVersion
    std::uint32_t interpVersionTag;  //!< interpVersion
    std::uint64_t moduleDigest;
    std::uint64_t maxOps;
    std::uint64_t maxBlocks;
    std::uint64_t dynOps;
    std::uint64_t dynBlocks;
    std::uint64_t eventCount;   //!< committed blocks in the stream
    std::uint64_t eventBytes;   //!< size of the varint event section
    std::uint64_t addrCount;    //!< uint64 entries in the pool
    std::uint64_t addrOffset;   //!< file offset of the pool (aligned)
    std::uint64_t eventChecksum;
    std::uint64_t addrChecksum;
    std::uint64_t headerChecksum;  //!< over all preceding bytes
};

constexpr char traceStoreMagic[8] = {'B', 'S', 'A', 'T',
                                     'R', 'C', '0', '1'};

/** Why an open failed; Ok means the entry was mapped. */
enum class TraceOpenStatus
{
    Ok,
    NoEntry,        //!< file absent (cold) — not a corruption
    BadHeader,      //!< short file, magic/checksum mismatch
    BadVersion,     //!< format or interpreter version is stale
    BadKey,         //!< header key fields disagree with the request
    BadGeometry,    //!< section offsets/sizes exceed the file
    BadChecksum,    //!< an event/address section checksum mismatch
    BadEventStream, //!< varint stream truncated or inconsistent
};

/** Human-readable name of an open status (tracedump, warnings). */
const char *traceOpenStatusName(TraceOpenStatus status);

/** Serialize @p trace into the on-disk entry format. */
std::vector<std::uint8_t> encodeTrace(const ExecTrace &trace,
                                      const TraceKey &key);

/**
 * Open one entry file: mmap, verify header + checksums against
 * @p key, decode the event stream.  On success @p out is a live
 * trace whose address pool points into the mapping (pinned by
 * ExecTrace::backing).
 */
TraceOpenStatus openTraceFile(const std::string &path,
                              const TraceKey &key, ExecTrace &out);

/** Read just the header of an entry file (tracedump). */
bool readTraceHeader(const std::string &path, TraceFileHeader &out);

/** One entry of a store-directory listing (`bsisa-tracedump --list`,
 *  `bsisa-sweep status`).  The header is only meaningful when
 *  headerOk; a false headerOk flags a short or unreadable entry
 *  without aborting the listing. */
struct TraceStoreEntryInfo
{
    std::string path;           //!< full path of the entry file
    TraceFileHeader header;     //!< raw header bytes (when headerOk)
    std::uint64_t fileBytes = 0;
    bool headerOk = false;
};

/** Enumerate every `*.bstrace` entry under @p dir, sorted by file
 *  name for deterministic output.  Missing/empty directories yield an
 *  empty listing (not an error — a cold cache looks the same). */
std::vector<TraceStoreEntryInfo> listTraceStore(const std::string &dir);

/** Process-wide store traffic, for suite reporting and tests. */
struct TraceStoreStats
{
    std::uint64_t warmLoads = 0;     //!< entries served from disk
    std::uint64_t coldCaptures = 0;  //!< misses that captured + wrote
    std::uint64_t fallbacks = 0;     //!< entries present but rejected
};

/**
 * A directory of trace entries.  Stateless beyond the path: entries
 * are looked up per call, so many threads and processes may share
 * one directory (writes are atomic renames).
 */
class TraceStore
{
  public:
    explicit TraceStore(std::string directory);

    /** The store named by BSISA_TRACE_DIR, or disabled when unset. */
    static TraceStore fromEnv();

    /** False when the store is disabled (no directory configured). */
    bool enabled() const { return !dir.empty(); }

    const std::string &directory() const { return dir; }

    /** Full path of the entry for @p key. */
    std::string entryPath(const TraceKey &key) const;

    /**
     * The capture-or-open primitive: return the trace for
     * (module, limits), serving it from disk when a valid entry
     * exists and otherwise capturing live and (re)writing the entry.
     * @p digest is moduleDigest(module), hoisted so callers hash each
     * module once per suite.
     */
    ExecTrace load(const Module &module, std::uint64_t digest,
                   Interp::Limits limits) const;

    /** Process-wide traffic counters. */
    static TraceStoreStats stats();

    /** Reset the traffic counters (tests). */
    static void resetStats();

  private:
    std::string dir;
};

/**
 * Convenience used by the runners and bench drivers: capture-or-open
 * through the BSISA_TRACE_DIR store, or plain captureTrace when the
 * store is disabled (the default — behavior is then byte-identical
 * to capture-always).  The @p digest overload reuses a hoisted
 * module hash.
 */
ExecTrace captureOrLoadTrace(const Module &module,
                             Interp::Limits limits);
ExecTrace captureOrLoadTrace(const Module &module, std::uint64_t digest,
                             Interp::Limits limits);

} // namespace bsisa

#endif // BSISA_SIM_TRACE_STORE_HH
