/**
 * @file
 * Minimal over-aligned allocator for SoA pools.
 *
 * The lockstep engine's lane pools are walked by SIMD kernels that
 * load whole lane rows at a time; AlignedAlloc gives std::vector
 * storage whose base address meets the kernels' alignment requirement
 * (cache-line/vector alignment), so a row at a stride-multiple offset
 * is itself aligned and no kernel load straddles rows.
 */

#ifndef BSISA_SUPPORT_ALIGNED_HH
#define BSISA_SUPPORT_ALIGNED_HH

#include <cstddef>
#include <new>
#include <vector>

namespace bsisa
{

template <typename T, std::size_t Align>
struct AlignedAlloc
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two >= alignof(T)");

    using value_type = T;

    AlignedAlloc() = default;
    template <typename U>
    AlignedAlloc(const AlignedAlloc<U, Align> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAlloc<U, Align>;
    };

    friend bool
    operator==(const AlignedAlloc &, const AlignedAlloc &)
    {
        return true;
    }
};

/** std::vector with @p Align-aligned storage. */
template <typename T, std::size_t Align = 64>
using AlignedVec = std::vector<T, AlignedAlloc<T, Align>>;

} // namespace bsisa

#endif // BSISA_SUPPORT_ALIGNED_HH
