/**
 * @file
 * Small bit-manipulation helpers used by caches and predictors.
 */

#ifndef BSISA_SUPPORT_BITUTIL_HH
#define BSISA_SUPPORT_BITUTIL_HH

#include <cstdint>

namespace bsisa
{

/** True iff x is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); x must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** ceil(log2(x)); x must be nonzero.  ceilLog2(1) == 0. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    return floorLog2(x) + (isPowerOfTwo(x) ? 0 : 1);
}

/** Mask with the low n bits set (n in [0, 64]). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

} // namespace bsisa

#endif // BSISA_SUPPORT_BITUTIL_HH
