/**
 * @file
 * Small portable wrappers for compiler-specific attributes.
 *
 * Only attributes with a measured payoff belong here; everything else
 * should trust the optimizer's defaults.
 */

#ifndef BSISA_SUPPORT_COMPILER_HH
#define BSISA_SUPPORT_COMPILER_HH

#if defined(__GNUC__) || defined(__clang__)
/** Force a function inline even past the inliner's size budget.  Use
 *  only for functions measured to sit on a hot path whose call
 *  overhead shows up in profiles. */
#define BSISA_ALWAYS_INLINE inline __attribute__((always_inline))
/** Keep a cold slow path out of its hot caller so the caller stays
 *  within inlining budgets. */
#define BSISA_NOINLINE __attribute__((noinline))
#else
#define BSISA_ALWAYS_INLINE inline
#define BSISA_NOINLINE
#endif

#endif // BSISA_SUPPORT_COMPILER_HH
