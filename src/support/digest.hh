/**
 * @file
 * Content hashing for cache keys and file checksums.
 *
 * FNV-1a (64-bit): tiny, dependency-free, and byte-order independent
 * on the input side, which is all the trace store needs — the digest
 * names cache entries and guards sections against corruption; it is
 * not a cryptographic integrity boundary.  The incremental Fnv1a64
 * hasher feeds arbitrary byte runs; the free functions cover the
 * one-shot cases.
 */

#ifndef BSISA_SUPPORT_DIGEST_HH
#define BSISA_SUPPORT_DIGEST_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bsisa
{

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a64
{
  public:
    static constexpr std::uint64_t offsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    /** Absorb a run of raw bytes. */
    Fnv1a64 &
    bytes(const void *data, std::size_t size)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        std::uint64_t v = state;
        for (std::size_t i = 0; i < size; ++i)
            v = (v ^ p[i]) * prime;
        state = v;
        return *this;
    }

    /** Absorb an integer as its 8 little-endian bytes (fixed width,
     *  so digests are stable across platforms). */
    Fnv1a64 &
    u64(std::uint64_t v)
    {
        unsigned char buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = static_cast<unsigned char>(v >> (8 * i));
        return bytes(buf, sizeof(buf));
    }

    /** The digest of everything absorbed so far. */
    std::uint64_t value() const { return state; }

  private:
    std::uint64_t state = offsetBasis;
};

/** One-shot digest of a byte run. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t size)
{
    return Fnv1a64().bytes(data, size).value();
}

/** One-shot digest of a string. */
inline std::uint64_t
fnv1a64(std::string_view s)
{
    return fnv1a64(s.data(), s.size());
}

/**
 * One-shot digest of a byte run, mixed 8 bytes at a time.  Not the
 * same function as fnv1a64(): the FNV-1a step is applied once per
 * little-endian 64-bit word (tail zero-padded, total length absorbed
 * last so "\0" and "\0\0" differ), cutting the byte-serial multiply
 * chain by 8x.  Used for the trace store's bulk section checksums,
 * where verification runs on the warm-open path and its latency is
 * the product being sold.
 */
inline std::uint64_t
fnv1a64Words(const void *data, std::size_t size)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = Fnv1a64::offsetBasis;
    std::size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        std::uint64_t w = 0;
        for (int b = 0; b < 8; ++b)
            w |= std::uint64_t(p[i + b]) << (8 * b);
        h = (h ^ w) * Fnv1a64::prime;
    }
    if (i < size) {
        std::uint64_t w = 0;
        for (int b = 0; i + std::size_t(b) < size; ++b)
            w |= std::uint64_t(p[i + b]) << (8 * b);
        h = (h ^ w) * Fnv1a64::prime;
    }
    return (h ^ size) * Fnv1a64::prime;
}

} // namespace bsisa

#endif // BSISA_SUPPORT_DIGEST_HH
