/**
 * @file
 * Environment-variable override implementation.
 */

#include "support/env.hh"

#include <cstdlib>

#include "support/logging.hh"

namespace bsisa
{

std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return def;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(raw, &end, 0);
    if (end == raw || *end != '\0')
        fatal("environment variable ", name, "='", raw,
              "' is not an unsigned integer");
    return v;
}

std::string
envString(const char *name, const std::string &def)
{
    const char *raw = std::getenv(name);
    return (raw && *raw) ? std::string(raw) : def;
}

bool
envSet(const char *name)
{
    const char *raw = std::getenv(name);
    return raw && *raw;
}

} // namespace bsisa
