/**
 * @file
 * Environment-variable overrides for experiment scaling.
 */

#ifndef BSISA_SUPPORT_ENV_HH
#define BSISA_SUPPORT_ENV_HH

#include <cstdint>
#include <string>

namespace bsisa
{

/** Read an unsigned integer env var, returning @p def when unset. */
std::uint64_t envU64(const char *name, std::uint64_t def);

/** Read a string env var, returning @p def when unset. */
std::string envString(const char *name, const std::string &def);

/** True when the env var is set to a non-empty value. */
bool envSet(const char *name);

} // namespace bsisa

#endif // BSISA_SUPPORT_ENV_HH
