/**
 * @file
 * Advisory file-lease implementation (exclusive create + pid-based
 * stale-lease breaking).
 */

#include "support/lockfile.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#define BSISA_HAVE_LEASES 1
#else
#define BSISA_HAVE_LEASES 0
#endif

namespace bsisa
{

namespace
{

std::atomic<std::uint64_t> uniqueSeq{0};

#if BSISA_HAVE_LEASES

std::string
uniqueSibling(const std::string &path, const char *tag)
{
    return path + tag + std::to_string(std::uint64_t(::getpid())) +
           "-" +
           std::to_string(
               uniqueSeq.fetch_add(1, std::memory_order_relaxed));
}

/**
 * One exclusive-create attempt.  The "pid <pid>\n" line is written to
 * a private temp file which is then link()ed into place, so creation
 * and content are one atomic step: no observer can ever see a lease
 * without a parseable holder pid, however the creator dies.  (A
 * SIGKILL between the temp write and the link leaves only an inert
 * `.new-*` temp, never a malformed lease.)  On failure errno is
 * preserved from the failing call; an existing lease reads as EEXIST.
 */
bool
createExclusive(const std::string &path)
{
    const std::string temp = uniqueSibling(path, ".new-");
    const int fd = ::open(temp.c_str(), O_CREAT | O_EXCL | O_WRONLY,
                          0644);
    if (fd < 0)
        return false;
    char buf[48];
    const int len = std::snprintf(
        buf, sizeof(buf), "pid %llu\n",
        static_cast<unsigned long long>(::getpid()));
    const bool wrote = ::write(fd, buf, std::size_t(len)) == len;
    ::close(fd);
    if (!wrote) {
        std::remove(temp.c_str());
        errno = EIO;
        return false;
    }
    const bool linked = ::link(temp.c_str(), path.c_str()) == 0;
    const int linkErrno = errno;
    std::remove(temp.c_str());
    errno = linkErrno;
    return linked;
}

/** A lease without a parseable pid line is foreign or torn.  Honor it
 *  briefly (it may be a peer's mid-publish artifact on a filesystem
 *  we did not anticipate), then treat it as stale — otherwise one
 *  such file would park every worker forever. */
bool
malformedLeaseExpired(const std::string &path)
{
    constexpr auto grace = std::chrono::seconds(5);
    std::error_code ec;
    const auto stamp = std::filesystem::last_write_time(path, ec);
    if (ec)
        return false;  // vanished: the next acquire attempt decides
    return std::filesystem::file_time_type::clock::now() - stamp >
           grace;
}

#endif // BSISA_HAVE_LEASES

} // namespace

std::uint64_t
leaseHolderPid(const std::string &path)
{
    std::ifstream in(path);
    std::string tag;
    std::uint64_t pid = 0;
    if (!(in >> tag >> pid) || tag != "pid")
        return 0;
    return pid;
}

bool
processAlive(std::uint64_t pid)
{
#if BSISA_HAVE_LEASES
    if (pid == 0)
        return true;  // malformed lease: assume live, honor it
    if (::kill(pid_t(pid), 0) == 0)
        return true;
    return errno != ESRCH;
#else
    (void)pid;
    return true;
#endif
}

bool
FileLease::tryAcquire(const std::string &path)
{
#if BSISA_HAVE_LEASES
    release();
    if (createExclusive(path)) {
        path_ = path;
        return true;
    }
    if (errno != EEXIST)
        return false;

    // The lease exists.  Break it only if its holder is provably
    // dead (or the file is malformed and older than the grace
    // window): rename to a unique trash name first so one of N
    // concurrent breakers wins (rename is atomic; the losers' renames
    // fail with ENOENT), then retry the exclusive create once.
    const std::uint64_t holder = leaseHolderPid(path);
    if (holder != 0) {
        if (processAlive(holder))
            return false;
    } else if (!malformedLeaseExpired(path)) {
        return false;
    }
    const std::string trash = uniqueSibling(path, ".trash-");
    if (std::rename(path.c_str(), trash.c_str()) != 0)
        return false;  // a peer won the steal (or holder released)
    // The rename alone is not proof of winning: a slow breaker can
    // rename the *fresh* lease a faster breaker just re-created, not
    // the stale one.  The trashed file's content tells the two apart
    // — if it no longer names the dead holder we observed, put it
    // back (link is atomic and fails if yet another lease appeared
    // meanwhile) and report the lease as held.
    if (leaseHolderPid(trash) != holder) {
        (void)!::link(trash.c_str(), path.c_str());
        std::remove(trash.c_str());
        return false;
    }
    std::remove(trash.c_str());
    if (createExclusive(path)) {
        path_ = path;
        return true;
    }
    return false;
#else
    (void)path;
    return false;
#endif
}

void
FileLease::release()
{
    if (path_.empty())
        return;
    std::remove(path_.c_str());
    path_.clear();
}

} // namespace bsisa
