/**
 * @file
 * Advisory file-lease implementation (exclusive create + pid-based
 * stale-lease breaking).
 */

#include "support/lockfile.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#define BSISA_HAVE_LEASES 1
#else
#define BSISA_HAVE_LEASES 0
#endif

namespace bsisa
{

namespace
{

std::atomic<std::uint64_t> trashSeq{0};

#if BSISA_HAVE_LEASES

/** One exclusive-create attempt; writes "pid <pid>\n" on success. */
bool
createExclusive(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY,
                          0644);
    if (fd < 0)
        return false;
    char buf[48];
    const int len = std::snprintf(
        buf, sizeof(buf), "pid %llu\n",
        static_cast<unsigned long long>(::getpid()));
    // A short write leaves a lease that parses as pid 0 — treated as
    // malformed by probers, i.e. honored until this process exits and
    // the file is unlinked by release(); never a correctness issue.
    (void)!::write(fd, buf, std::size_t(len));
    ::close(fd);
    return true;
}

#endif // BSISA_HAVE_LEASES

} // namespace

std::uint64_t
leaseHolderPid(const std::string &path)
{
    std::ifstream in(path);
    std::string tag;
    std::uint64_t pid = 0;
    if (!(in >> tag >> pid) || tag != "pid")
        return 0;
    return pid;
}

bool
processAlive(std::uint64_t pid)
{
#if BSISA_HAVE_LEASES
    if (pid == 0)
        return true;  // malformed lease: assume live, honor it
    if (::kill(pid_t(pid), 0) == 0)
        return true;
    return errno != ESRCH;
#else
    (void)pid;
    return true;
#endif
}

bool
FileLease::tryAcquire(const std::string &path)
{
#if BSISA_HAVE_LEASES
    release();
    if (createExclusive(path)) {
        path_ = path;
        return true;
    }
    if (errno != EEXIST)
        return false;

    // The lease exists.  Break it only if its holder is provably
    // dead: rename to a unique trash name first so exactly one of N
    // concurrent breakers wins (rename is atomic; the losers' renames
    // fail with ENOENT), then retry the exclusive create once.
    const std::uint64_t holder = leaseHolderPid(path);
    if (processAlive(holder))
        return false;
    const std::string trash =
        path + ".trash-" +
        std::to_string(std::uint64_t(::getpid())) + "-" +
        std::to_string(trashSeq.fetch_add(1,
                                          std::memory_order_relaxed));
    if (std::rename(path.c_str(), trash.c_str()) != 0)
        return false;  // a peer won the steal (or holder released)
    std::remove(trash.c_str());
    if (createExclusive(path)) {
        path_ = path;
        return true;
    }
    return false;
#else
    (void)path;
    return false;
#endif
}

void
FileLease::release()
{
    if (path_.empty())
        return;
    std::remove(path_.c_str());
    path_.clear();
}

} // namespace bsisa
