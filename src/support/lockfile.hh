/**
 * @file
 * Advisory file leases for the multi-process sweep service.
 *
 * A lease is a lock *hint*, not a correctness mechanism: sweep work
 * units are idempotent and their publishes are atomic renames, so two
 * workers running the same unit waste cycles but never corrupt state.
 * The lease exists to make that waste rare — a worker claims a chunk
 * of units by creating `<name>.lease` with O_CREAT|O_EXCL (atomic on
 * every POSIX filesystem), and peers skip chunks whose lease exists.
 *
 * Crash recovery: the lease file records the holder's pid, written
 * atomically with the file itself (temp + link), so a lease can never
 * be observed without a parseable holder — a creator killed at any
 * instant leaves either no lease or a complete one.  When acquisition
 * fails, the prober reads that pid and checks liveness with
 * kill(pid, 0); a dead holder's lease is *stolen* by renaming it to a
 * unique trash name first — rename is atomic, and the breaker
 * verifies the trashed content still names the dead holder (restoring
 * it when it grabbed a freshly re-created lease instead), so one of N
 * concurrent breakers wins the steal — and then retrying the
 * exclusive create.  A live holder's lease is honored; a malformed
 * (foreign/torn) lease is honored for a short mtime grace window and
 * then treated as stale.
 *
 * Non-POSIX builds degrade to "never acquire": the service then runs
 * single-process (the store and plan layers are platform-neutral;
 * only the cheap multi-process hinting is Unix-bound, matching the
 * mmap degradation in sim/trace_store.cc).
 */

#ifndef BSISA_SUPPORT_LOCKFILE_HH
#define BSISA_SUPPORT_LOCKFILE_HH

#include <cstdint>
#include <string>

namespace bsisa
{

/**
 * One advisory lease.  Move-only RAII: releasing (or destroying) a
 * held lease unlinks its file.  The path should live on the same
 * filesystem as the store it guards so create/rename are atomic.
 */
class FileLease
{
  public:
    FileLease() = default;
    ~FileLease() { release(); }

    FileLease(FileLease &&other) noexcept { swap(other); }
    FileLease &operator=(FileLease &&other) noexcept
    {
        release();
        swap(other);
        return *this;
    }
    FileLease(const FileLease &) = delete;
    FileLease &operator=(const FileLease &) = delete;

    /**
     * Try to acquire the lease at @p path.  Returns true and holds on
     * success.  A lease whose recorded holder is a dead process is
     * broken and re-acquired transparently.  Never blocks.
     */
    bool tryAcquire(const std::string &path);

    /** Unlink the lease file if held; safe to call when not held. */
    void release();

    bool held() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

  private:
    void swap(FileLease &other) noexcept { path_.swap(other.path_); }

    std::string path_;  //!< empty when not held
};

/** Read the holder pid recorded in a lease file; 0 when absent or
 *  malformed (tests, `bsisa-sweep status`). */
std::uint64_t leaseHolderPid(const std::string &path);

/** True when @p pid names a live process on this host.  Conservative:
 *  unknown (e.g. EPERM) counts as alive, so leases are only broken on
 *  a definite ESRCH. */
bool processAlive(std::uint64_t pid);

} // namespace bsisa

#endif // BSISA_SUPPORT_LOCKFILE_HH
