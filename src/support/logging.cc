/**
 * @file
 * Implementation of the logging sink.
 */

#include "support/logging.hh"

#include <cstdio>

namespace bsisa
{

void
logMessage(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

} // namespace bsisa
