/**
 * @file
 * Error-reporting helpers in the gem5 fatal/panic tradition.
 *
 * panic() is for internal invariant violations (simulator bugs); it
 * aborts.  fatal() is for user errors (bad configuration, malformed
 * input programs); it exits with status 1.  warn()/inform() report
 * conditions without stopping the run.
 */

#ifndef BSISA_SUPPORT_LOGGING_HH
#define BSISA_SUPPORT_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace bsisa
{

/** Internal sink; prints "<tag>: <msg>" to stderr. */
void logMessage(const char *tag, const std::string &msg);

namespace detail
{

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/** Report an internal invariant violation and abort. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    logMessage("panic", detail::formatAll(args...));
    std::abort();
}

/** Report an unrecoverable user-level error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    logMessage("fatal", detail::formatAll(args...));
    std::exit(1);
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage("warn", detail::formatAll(args...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage("info", detail::formatAll(args...));
}

/** Panic unless a condition holds; used for simulator invariants. */
#define BSISA_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::bsisa::panic("assertion failed: ", #cond, " at ", __FILE__, \
                           ":", __LINE__, " ", ##__VA_ARGS__);            \
        }                                                                 \
    } while (0)

} // namespace bsisa

#endif // BSISA_SUPPORT_LOGGING_HH
