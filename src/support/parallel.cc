/**
 * @file
 * Deterministic parallel-for implementation.
 */

#include "support/parallel.hh"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "support/env.hh"

namespace bsisa
{

unsigned
parallelJobs()
{
    const std::uint64_t jobs =
        envU64("BSISA_JOBS", std::thread::hardware_concurrency());
    if (jobs == 0)
        return 1;
    return static_cast<unsigned>(jobs);
}

namespace detail
{

void
parallelForImpl(std::size_t n, std::size_t chunk,
                void (*fn)(void *, std::size_t, std::size_t),
                void *ctx)
{
    if (n == 0)
        return;
    const std::size_t workers =
        std::min<std::size_t>(parallelJobs(), n);
    if (workers <= 1) {
        fn(ctx, 0, n);
        return;
    }
    if (chunk == 0) {
        // Adaptive: aim for ~8 claims per worker so late-finishing
        // chunks still balance, but never claim fewer than 1 or more
        // than 64 indices per CAS.
        chunk = std::min<std::size_t>(
            std::max<std::size_t>(n / (workers * 8), 1), 64);
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t begin =
                next.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= n)
                return;
            fn(ctx, begin, std::min(begin + chunk, n));
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 1; t < workers; ++t)
        pool.emplace_back(worker);
    worker();  // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();
}

} // namespace detail

} // namespace bsisa
