/**
 * @file
 * Deterministic parallel-for implementation.
 */

#include "support/parallel.hh"

#include <atomic>
#include <thread>
#include <vector>

#include "support/env.hh"

namespace bsisa
{

unsigned
parallelJobs()
{
    const std::uint64_t jobs =
        envU64("BSISA_JOBS", std::thread::hardware_concurrency());
    if (jobs == 0)
        return 1;
    return static_cast<unsigned>(jobs);
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    const std::size_t workers =
        std::min<std::size_t>(parallelJobs(), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 1; t < workers; ++t)
        pool.emplace_back(worker);
    worker();  // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();
}

} // namespace bsisa
