/**
 * @file
 * Deterministic fork/join parallelism for the experiment drivers.
 *
 * The sweep drivers produce grids of independent simulation points
 * (benchmark x machine config); each point owns its module reference,
 * trace cursor, caches, and predictor, so points are embarrassingly
 * parallel.  parallelFor() fans an index range across a fixed pool of
 * threads; callers write each result into a pre-sized slot and print
 * in index order afterwards, so the output is byte-identical for any
 * worker count — including BSISA_JOBS=1, which runs inline on the
 * caller's thread with no pool at all.
 */

#ifndef BSISA_SUPPORT_PARALLEL_HH
#define BSISA_SUPPORT_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace bsisa
{

/** Worker count: the BSISA_JOBS env var when set (0 means "one"),
 *  otherwise the hardware concurrency.  Read at every call so tests
 *  can re-point it between runs. */
unsigned parallelJobs();

/**
 * Invoke @p fn(i) for every i in [0, n), fanning across up to
 * parallelJobs() threads.  Indices are claimed from a shared atomic
 * counter; @p fn must not depend on claim order and must write its
 * result to storage owned by index i.  Blocks until all calls return.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace bsisa

#endif // BSISA_SUPPORT_PARALLEL_HH
