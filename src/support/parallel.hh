/**
 * @file
 * Deterministic fork/join parallelism for the experiment drivers.
 *
 * The sweep drivers produce grids of independent simulation points
 * (benchmark x machine config); each point owns its module reference,
 * trace cursor, caches, and predictor, so points are embarrassingly
 * parallel.  parallelFor() fans an index range across a fixed pool of
 * threads; callers write each result into a pre-sized slot and print
 * in index order afterwards, so the output is byte-identical for any
 * worker count — including BSISA_JOBS=1, which runs inline on the
 * caller's thread with no pool at all.
 *
 * Work is claimed in *chunks*: each CAS on the shared counter claims a
 * run of K consecutive indices, not one, so fine-grained grids (the
 * sweep service plans thousands of work units) no longer serialize on
 * the counter's cache line.  The callable is invoked through a
 * monomorphic trampoline captured from the template wrapper — no
 * std::function, no per-index indirect allocation.  Claim order is
 * still unspecified; the determinism contract is unchanged (every
 * index exactly once, results into caller-owned slots).
 */

#ifndef BSISA_SUPPORT_PARALLEL_HH
#define BSISA_SUPPORT_PARALLEL_HH

#include <cstddef>
#include <type_traits>
#include <utility>

namespace bsisa
{

/** Worker count: the BSISA_JOBS env var when set (0 means "one"),
 *  otherwise the hardware concurrency.  Read at every call so tests
 *  can re-point it between runs. */
unsigned parallelJobs();

namespace detail
{

/** Range-claiming core: invokes @p fn(ctx, begin, end) over disjoint
 *  chunks covering [0, n), @p chunk indices per claim (0 = pick an
 *  adaptive chunk from n and the worker count). */
void parallelForImpl(std::size_t n, std::size_t chunk,
                     void (*fn)(void *, std::size_t, std::size_t),
                     void *ctx);

} // namespace detail

/**
 * Invoke @p fn(i) for every i in [0, n), fanning across up to
 * parallelJobs() threads; indices are claimed @p chunk at a time from
 * a shared atomic counter (one CAS per chunk).  @p fn must not depend
 * on claim order and must write its result to storage owned by index
 * i.  Blocks until all calls return.
 */
template <typename Fn>
void
parallelForChunked(std::size_t n, std::size_t chunk, Fn &&fn)
{
    using Callable = std::remove_reference_t<Fn>;
    Callable &callable = fn;
    detail::parallelForImpl(
        n, chunk,
        [](void *ctx, std::size_t begin, std::size_t end) {
            Callable &f = *static_cast<Callable *>(ctx);
            for (std::size_t i = begin; i < end; ++i)
                f(i);
        },
        const_cast<void *>(static_cast<const void *>(&callable)));
}

/** parallelForChunked with an adaptive chunk size (grids much larger
 *  than the worker count claim runs of indices per CAS; small grids
 *  degrade to one index per claim, preserving load balance). */
template <typename Fn>
void
parallelFor(std::size_t n, Fn &&fn)
{
    parallelForChunked(n, 0, std::forward<Fn>(fn));
}

} // namespace bsisa

#endif // BSISA_SUPPORT_PARALLEL_HH
