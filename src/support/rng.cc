/**
 * @file
 * xoshiro256** implementation (public-domain algorithm by Blackman and
 * Vigna) plus portable distribution helpers.
 */

#include "support/rng.hh"

#include <cmath>

#include "support/logging.hh"

namespace bsisa
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    BSISA_ASSERT(bound != 0);
    // Debiased via rejection on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    BSISA_ASSERT(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0)  // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextReal()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextReal() < p;
}

unsigned
Rng::sizeDraw(double mean, unsigned cap)
{
    BSISA_ASSERT(cap >= 1);
    if (mean <= 1.0)
        return 1;
    // Geometric with success probability 1/mean, shifted to start at 1.
    const double p = 1.0 / mean;
    const double u = nextReal();
    double draw = 1.0 + std::floor(std::log1p(-u) / std::log1p(-p));
    if (draw < 1.0)
        draw = 1.0;
    if (draw > cap)
        draw = cap;
    return static_cast<unsigned>(draw);
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace bsisa
