/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generation and functional data initialization must be
 * bit-for-bit reproducible across platforms and standard-library
 * versions, so we own the generator (xoshiro256**, seeded through
 * splitmix64) and the distributions instead of relying on
 * implementation-defined std::uniform_int_distribution behaviour.
 */

#ifndef BSISA_SUPPORT_RNG_HH
#define BSISA_SUPPORT_RNG_HH

#include <cstdint>

namespace bsisa
{

/** splitmix64 step; used for seeding and cheap hashing. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** generator with owned, portable distributions.
 */
class Rng
{
  public:
    /** Construct from a single 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [0, 1). */
    double nextReal();

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Geometric-ish positive size draw with the given mean, clamped to
     * [1, cap].  Used for basic-block size distributions.
     */
    unsigned sizeDraw(double mean, unsigned cap);

    /** Fork an independent stream (deterministic function of state). */
    Rng fork();

  private:
    std::uint64_t s[4];
};

} // namespace bsisa

#endif // BSISA_SUPPORT_RNG_HH
