/**
 * @file
 * N-bit saturating counter, the basic building block of the two-level
 * adaptive predictors (Yeh and Patt, MICRO-24 1991).
 */

#ifndef BSISA_SUPPORT_SAT_COUNTER_HH
#define BSISA_SUPPORT_SAT_COUNTER_HH

#include <cstdint>

#include "support/logging.hh"

namespace bsisa
{

/**
 * Saturating up/down counter with a configurable bit width.
 *
 * The counter predicts "taken" when its value is in the upper half of
 * its range (the MSB is set), which for the canonical 2-bit counter
 * gives the usual strongly/weakly taken and not-taken states.
 */
class SatCounter
{
  public:
    /** @param bits Counter width; must be in [1, 8].
     *  @param initial Initial counter value. */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal((1u << bits) - 1), val(initial)
    {
        BSISA_ASSERT(bits >= 1 && bits <= 8);
        BSISA_ASSERT(initial <= maxVal);
    }

    /** Saturating increment. */
    void
    increment()
    {
        if (val < maxVal)
            ++val;
    }

    /** Saturating decrement. */
    void
    decrement()
    {
        if (val > 0)
            --val;
    }

    /** Move toward taken (true) or not-taken (false). */
    void
    train(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Predicted direction: MSB of the counter. */
    bool predictTaken() const { return val > maxVal / 2; }

    /** Raw counter value. */
    unsigned value() const { return val; }

    /** Counter saturation bound. */
    unsigned maxValue() const { return maxVal; }

  private:
    std::uint8_t maxVal;
    std::uint8_t val;
};

} // namespace bsisa

#endif // BSISA_SUPPORT_SAT_COUNTER_HH
