/**
 * @file
 * AVX2 kernel for the lockstep op-major loop.
 *
 * Built with the target("avx2") function attribute instead of a
 * per-TU -mavx2 flag: only the functions below carry AVX2 codegen, so
 * no inline helper shared with other translation units (IssueSlots
 * methods, std::vector internals, ...) is ever emitted as a comdat
 * symbol compiled with AVX2 — the classic way a "runtime-dispatched"
 * binary still crashes on an older host when the linker happens to
 * keep the wide copy.  The kernel is selected only after
 * __builtin_cpu_supports("avx2") at runtime.
 *
 * The unsigned 64-bit max uses the signed compare + blend idiom:
 * AVX2 has no unsigned 64-bit compare, and all inputs are cycle
 * counts < 2^63 (see simd_dispatch.hh), for which signed and
 * unsigned comparison agree bit for bit.
 *
 * Rows may start at any lane offset within an aligned pool (a batch
 * chunk is a contiguous lane range, not necessarily vector-aligned),
 * so pool accesses use unaligned loads/stores; the stride padding
 * guarantees a row's tail never crosses into the next row.
 *
 * Narrow batches (fewer than 4 lanes — below one quad) delegate to
 * the scalar reference kernel.  The floor used to be 8, back when the
 * issue-slot search was a linear scan whose scalar cost dominated a
 * single quad's vector setup; the bitmap-based IssueSlots::allocate
 * and the vectorized operand-ready floor moved the crossover down to
 * one quad, and the fused cross-group batches (sim/lockstep.cc) make
 * sub-quad widths rare anyway.
 */

#include "support/simd_dispatch.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(BSISA_DISABLE_SIMD)

#include <immintrin.h>

namespace bsisa
{

namespace
{

#define BSISA_AVX2 __attribute__((target("avx2")))

BSISA_AVX2 inline __m256i
maxU64(__m256i a, __m256i b)
{
    // Values < 2^63: signed compare is exact.
    return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

BSISA_AVX2 inline __m256i
loadu(const std::uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

BSISA_AVX2 inline void
storeu(std::uint64_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

BSISA_AVX2 void
avx2StepOps(const StepOpsCtx &c)
{
    if (c.n < 4) {
        // Below one quad nothing vectorizes; the plain loop wins.
        // The floor used to be 8: with the linear issue-slot scan a
        // single quad couldn't amortize the vector setup around the
        // dominant scalar search, and prediction-grouped batches
        // (typically 4 lanes) delegated constantly.  Re-tuned after
        // the bitmap allocator and the fused cross-group batches:
        // Grid16's per-group reference path (4-lane batches) now
        // measures faster through the vector kernel, and the fused
        // path's full-width chunks never hit this branch at all.
        simdScalarStepOps(c);
        return;
    }

    // Op-outer iteration: each op advances every lane before the next
    // op starts.  This was measured against a quad-outer variant
    // (whole op sequence per four-lane quad, floors and completion
    // accumulators pinned in registers): quad-outer loses ~20% —
    // dependent ops through the same register row become back-to-back
    // store-to-load forwards, and op decode repeats per quad, while
    // op-outer puts a whole row of independent lanes between a dst
    // write and the next op's src read of the same row.
    const std::size_t stride = c.stride;
    const std::size_t n = c.n;
    alignas(32) std::uint64_t ready[64];
    alignas(32) std::uint64_t lat[64];

    std::uint32_t mem_idx = 0;
    for (std::uint32_t i = 0; i < c.opCount; ++i) {
        const DecodedOp &op = c.ops[i];
        const std::uint64_t *s1 = c.regBase + op.src1 * stride;
        const std::uint64_t *s2 = c.regBase + op.src2 * stride;
        std::uint64_t *dst = c.regBase + op.dst * stride;
        std::uint64_t *prev = c.prevBase + std::size_t(i) * stride;

        std::uint64_t miss = 0;
        if (op.flags & opIsMem) {
            if (op.flags & opIsLoad)
                miss = c.missMasks[mem_idx];
            ++mem_idx;
        }

        // SIMD-assisted multi-lane claim: the operand-ready floor
        // max(src1, src2, earliest) is a pure row-wide max, computed
        // vectorized into the scratch row; the claim loop then only
        // walks the occupancy bitmap (IssueSlots::allocate, a ctz
        // scan) per lane.  With the old linear slot scan the scalar
        // claim dominated and folding the max into it measured
        // faster; with the bitmap allocator the claim is short enough
        // that the vector floor pass wins from one quad up.
        std::size_t l = 0;
        for (; l + 4 <= n; l += 4) {
            const __m256i floor =
                maxU64(maxU64(loadu(s1 + l), loadu(s2 + l)),
                       loadu(c.earliest + l));
            _mm256_store_si256(
                reinterpret_cast<__m256i *>(ready + l), floor);
        }
        for (; l < n; ++l) {
            const std::uint64_t m = s1[l] > s2[l] ? s1[l] : s2[l];
            const std::uint64_t f = c.earliest[l];
            ready[l] = m > f ? m : f;
        }
        for (l = 0; l < n; ++l)
            ready[l] = c.slots[l].allocate(ready[l]);

        // Completion writeback.
        if (miss == 0) {
            const __m256i vlat = _mm256_set1_epi64x(
                static_cast<long long>(op.latency));
            for (l = 0; l + 4 <= n; l += 4) {
                const __m256i done = _mm256_add_epi64(
                    _mm256_load_si256(
                        reinterpret_cast<const __m256i *>(ready + l)),
                    vlat);
                storeu(prev + l, done);
                storeu(dst + l, done);
            }
            for (; l < n; ++l) {
                const std::uint64_t done = ready[l] + op.latency;
                prev[l] = done;
                dst[l] = done;
            }
        } else {
            const std::uint64_t base_lat = op.latency;
            for (l = 0; l < n; ++l) {
                lat[l] = base_lat +
                         (c.l2Lat[l] &
                          (std::uint64_t(0) - ((miss >> l) & 1)));
            }
            for (l = 0; l + 4 <= n; l += 4) {
                const __m256i done = _mm256_add_epi64(
                    _mm256_load_si256(
                        reinterpret_cast<const __m256i *>(ready + l)),
                    _mm256_load_si256(
                        reinterpret_cast<const __m256i *>(lat + l)));
                storeu(prev + l, done);
                storeu(dst + l, done);
            }
            for (; l < n; ++l) {
                const std::uint64_t done = ready[l] + lat[l];
                prev[l] = done;
                dst[l] = done;
            }
        }
    }

    // Unit completion: elementwise max over the just-written rows.
    for (std::size_t l = 0; l + 4 <= n; l += 4) {
        __m256i vdone = loadu(c.unitDone + l);
        for (std::uint32_t i = 0; i < c.opCount; ++i) {
            vdone = maxU64(
                vdone,
                loadu(c.prevBase + std::size_t(i) * stride + l));
        }
        storeu(c.unitDone + l, vdone);
    }
    for (std::size_t l = n & ~std::size_t(3); l < n; ++l) {
        std::uint64_t best = c.unitDone[l];
        for (std::uint32_t i = 0; i < c.opCount; ++i) {
            const std::uint64_t v =
                c.prevBase[std::size_t(i) * stride + l];
            best = best > v ? best : v;
        }
        c.unitDone[l] = best;
    }
}

#undef BSISA_AVX2

constexpr SimdKernels avx2Set{"avx2", avx2StepOps};

} // namespace

const SimdKernels *
simdAvx2Kernels()
{
    if (!__builtin_cpu_supports("avx2"))
        return nullptr;
    return &avx2Set;
}

} // namespace bsisa

#else // !x86-64 || BSISA_DISABLE_SIMD

namespace bsisa
{

const SimdKernels *
simdAvx2Kernels()
{
    return nullptr;
}

} // namespace bsisa

#endif
