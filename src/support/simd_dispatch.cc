/**
 * @file
 * Scalar reference kernel and the runtime kernel selection.
 */

#include "support/simd_dispatch.hh"

#include <atomic>

#include "support/env.hh"

namespace bsisa
{

namespace
{

/** The scalar op walk with the lane count as a compile-time or
 *  runtime bound.  For the batch widths prediction-grouped sweeps
 *  produce constantly (one group = a handful of lanes), the
 *  constant-bound instantiation lets the compiler fully unroll the
 *  lane loop, so the four data-dependent issue-slot searches overlap
 *  instead of serializing behind loop control. */
template <std::size_t StaticN>
inline void
scalarStepOpsImpl(const StepOpsCtx &c)
{
    const std::size_t stride = c.stride;
    const std::size_t n = StaticN != 0 ? StaticN : c.n;
    std::uint32_t mem_idx = 0;
    for (std::uint32_t i = 0; i < c.opCount; ++i) {
        const DecodedOp &op = c.ops[i];
        const std::uint64_t *s1 = c.regBase + op.src1 * stride;
        const std::uint64_t *s2 = c.regBase + op.src2 * stride;
        std::uint64_t *dst = c.regBase + op.dst * stride;
        std::uint64_t *prev = c.prevBase + std::size_t(i) * stride;

        // Loads extend by the lane's L2 penalty under the miss mask;
        // every other op (including stores, whose cache accesses were
        // resolved into the mask builder already) has miss == 0.
        std::uint64_t miss = 0;
        if (op.flags & opIsMem) {
            if (op.flags & opIsLoad)
                miss = c.missMasks[mem_idx];
            ++mem_idx;
        }
        const std::uint64_t base_lat = op.latency;

        for (std::size_t l = 0; l < n; ++l) {
            std::uint64_t ready = s1[l] > s2[l] ? s1[l] : s2[l];
            const std::uint64_t floor = c.earliest[l];
            ready = ready > floor ? ready : floor;
            const std::uint64_t start = c.slots[l].allocate(ready);
            const std::uint64_t lat =
                base_lat +
                (c.l2Lat[l] & (std::uint64_t(0) - ((miss >> l) & 1)));
            const std::uint64_t done = start + lat;
            prev[l] = done;
            dst[l] = done;
        }
    }

    // Unit completion: one elementwise pass over the rows the loop
    // above just wrote, instead of a read-modify-write per op.
    for (std::uint32_t i = 0; i < c.opCount; ++i) {
        const std::uint64_t *row =
            c.prevBase + std::size_t(i) * stride;
        for (std::size_t l = 0; l < n; ++l) {
            c.unitDone[l] =
                c.unitDone[l] > row[l] ? c.unitDone[l] : row[l];
        }
    }
}

} // namespace

/** The semantic reference: branchless per-lane loops the optimizer
 *  can autovectorize where profitable, and the exact arithmetic every
 *  ISA kernel must reproduce.  Externally callable so vector kernels
 *  can delegate narrow batches to it. */
void
simdScalarStepOps(const StepOpsCtx &c)
{
    switch (c.n) {
      case 2:
        scalarStepOpsImpl<2>(c);
        break;
      case 3:
        scalarStepOpsImpl<3>(c);
        break;
      case 4:
        scalarStepOpsImpl<4>(c);
        break;
      default:
        scalarStepOpsImpl<0>(c);
        break;
    }
}

namespace
{

constexpr SimdKernels scalarKernels{"scalar", simdScalarStepOps};

const SimdKernels *
selectFromEnvironment()
{
    if (envSet("BSISA_FORCE_SCALAR"))
        return &scalarKernels;
    if (const SimdKernels *avx2 = simdAvx2Kernels())
        return avx2;
    return &scalarKernels;
}

std::atomic<const SimdKernels *> active{nullptr};

} // namespace

const SimdKernels &
simdKernels()
{
    const SimdKernels *k = active.load(std::memory_order_acquire);
    if (!k) {
        k = selectFromEnvironment();
        // Last selection wins; every candidate is valid, so a race
        // between first users is harmless.
        active.store(k, std::memory_order_release);
    }
    return *k;
}

bool
simdSetMode(SimdMode mode)
{
    const SimdKernels *k = nullptr;
    switch (mode) {
      case SimdMode::Scalar:
        k = &scalarKernels;
        break;
      case SimdMode::Avx2:
        k = simdAvx2Kernels();
        break;
    }
    if (!k)
        return false;
    active.store(k, std::memory_order_release);
    return true;
}

void
simdReset()
{
    active.store(selectFromEnvironment(), std::memory_order_release);
}

} // namespace bsisa
