/**
 * @file
 * Runtime-dispatched kernels for the lockstep op-major inner loop.
 *
 * The hot core of a lockstep sweep is "advance N contiguous config
 * lanes over one decoded operation sequence": per operation, an
 * elementwise max over three lane rows (operand-ready resolution), a
 * per-lane issue-slot allocation, and an elementwise completion-time
 * writeback into the register-major scoreboard pools
 * (sim/lockstep.hh).  That whole per-unit walk is one kernel call —
 * StepOpsKernel — so an ISA-specific implementation keeps the loop
 * state in registers and the dispatch cost is one indirect call per
 * unit chunk, not per operation.
 *
 * Implementations:
 *   - scalar: portable branchless reference (simd_dispatch.cc);
 *   - avx2: 4-lanes-per-vector x86-64 kernel (simd_avx2.cc), built
 *     via the target("avx2") function attribute rather than a per-TU
 *     -mavx2 flag, so no comdat-shared inline helper is ever emitted
 *     with AVX2 codegen (safe to link into binaries that must still
 *     run on non-AVX2 hosts), and selected only when the host CPU
 *     reports AVX2.
 *
 * Contract: every implementation is bit-identical to the scalar
 * reference.  All cycle values are < 2^63 (bounded by the op budget
 * times the maximum latency), so implementations may synthesize the
 * unsigned 64-bit max from signed comparison.
 *
 * Selection: the first call to simdKernels() picks the widest
 * implementation the host supports, unless the BSISA_FORCE_SCALAR
 * environment variable is set (or the library was built with
 * BSISA_DISABLE_SIMD), which pins the scalar fallback.  simdSetMode()
 * overrides the selection at runtime (tests and benchmarks compare
 * paths in one process); simdReset() re-reads the environment.
 */

#ifndef BSISA_SUPPORT_SIMD_DISPATCH_HH
#define BSISA_SUPPORT_SIMD_DISPATCH_HH

#include <cstddef>
#include <cstdint>

#include "sim/decoded.hh"
#include "sim/pipeline.hh"

namespace bsisa
{

/**
 * One op-major batch step: everything a kernel needs to advance the
 * n <= 64 lanes of one contiguous chunk over one unit's decoded ops.
 *
 * Pool pointers are pre-offset to the chunk's first lane, so lane l
 * of the chunk is element l of a row and scoreboard slot r of a pool
 * is r * stride elements in.  missMasks holds one lane bitmask per
 * *memory* op, in op order (bit l set: lane l's access missed); the
 * cache models were already consulted when the masks were built, so
 * the kernel only applies each lane's l2Lat penalty to load ops
 * under its mask bit — branchless, no cache state in the loop.
 *
 * Per-lane arithmetic per op (must match LanePipelines::stepOneLane
 * bit for bit):
 *   ready = max(earliest[l], reg[src1][l], reg[src2][l])
 *   start = slots[l].allocate(ready)
 *   done  = start + op.latency (+ l2Lat[l] if load && miss bit l)
 *   prev[op][l] = reg[dst][l] = done
 * The unit completion max is NOT folded inside the per-op loop:
 * every done value lands in its prevDone row, so the kernel finishes
 * with one elementwise pass over those rows, maxing into unitDone
 * (whose caller-set entries are the per-lane floors) — a pass that
 * vectorizes cleanly instead of a read-modify-write per op.
 */
struct StepOpsCtx
{
    const DecodedOp *ops;            //!< the unit's decoded ops
    std::uint32_t opCount;
    const std::uint64_t *missMasks;  //!< per mem op, in op order
    IssueSlots *slots;               //!< [n] first lane's ring
    std::uint64_t *regBase;          //!< regReady slot 0, first lane
    std::uint64_t *prevBase;         //!< prevDone row 0, first lane
    const std::uint64_t *l2Lat;      //!< [n] per-lane miss penalty
    const std::uint64_t *earliest;   //!< [n] post-fetch schedule floor
    std::uint64_t *unitDone;         //!< [n] in-out completion max
    std::size_t stride;              //!< pool row stride in elements
    std::size_t n;                   //!< chunk lanes, 1..64
};

using StepOpsKernel = void (*)(const StepOpsCtx &);

/** One kernel implementation set. */
struct SimdKernels
{
    /** Implementation name ("scalar", "avx2") for reports/tests. */
    const char *name;
    StepOpsKernel stepOps;
};

enum class SimdMode
{
    Scalar,
    Avx2,
};

/** The active kernel set (selected on first use; see file comment). */
const SimdKernels &simdKernels();

/** Force a kernel set; returns false (and keeps the current set) when
 *  the requested implementation is not available on this host/build.
 *  Not thread-safe against concurrent simdKernels() users — switch
 *  between sweeps, not during one. */
bool simdSetMode(SimdMode mode);

/** Drop any override and re-read BSISA_FORCE_SCALAR. */
void simdReset();

/** The AVX2 kernel set, or nullptr when unsupported by this build or
 *  host (defined in simd_avx2.cc). */
const SimdKernels *simdAvx2Kernels();

/** The scalar reference kernel, callable directly: vector kernels
 *  delegate narrow batches (below one vector of lanes) to it, where
 *  vector setup costs more than it saves.  The floor was two vectors
 *  when the issue-slot search was a linear scan; the bitmap-based
 *  IssueSlots::allocate and the vectorized operand-ready floor moved
 *  the crossover down, and the fused cross-group batches
 *  (sim/lockstep.cc) make sub-vector widths rare anyway. */
void simdScalarStepOps(const StepOpsCtx &ctx);

} // namespace bsisa

#endif // BSISA_SUPPORT_SIMD_DISPATCH_HH
