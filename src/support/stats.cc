/**
 * @file
 * Statistics registry implementation.
 */

#include "support/stats.hh"

#include <iomanip>

#include "support/logging.hh"

namespace bsisa
{

Stat *
StatSet::find(const std::string &name)
{
    for (auto &s : stats)
        if (s.name == name)
            return &s;
    return nullptr;
}

const Stat *
StatSet::find(const std::string &name) const
{
    for (const auto &s : stats)
        if (s.name == name)
            return &s;
    return nullptr;
}

void
StatSet::set(const std::string &name, double value, const std::string &desc)
{
    if (Stat *s = find(name)) {
        s->value = value;
        if (!desc.empty())
            s->desc = desc;
    } else {
        stats.push_back({name, desc, value});
    }
}

void
StatSet::add(const std::string &name, double delta)
{
    if (Stat *s = find(name))
        s->value += delta;
    else
        stats.push_back({name, "", delta});
}

double
StatSet::get(const std::string &name) const
{
    const Stat *s = find(name);
    if (!s)
        fatal("unknown statistic '", name, "'");
    return s->value;
}

bool
StatSet::has(const std::string &name) const
{
    return find(name) != nullptr;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &s : stats) {
        os << std::left << std::setw(40) << s.name << " "
           << std::setw(16) << s.value;
        if (!s.desc.empty())
            os << " # " << s.desc;
        os << "\n";
    }
}

} // namespace bsisa
