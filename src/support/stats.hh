/**
 * @file
 * Lightweight named-statistics registry in the spirit of gem5's stats
 * package: simulation components register scalar statistics with names
 * and descriptions, and the registry renders them as a table.
 */

#ifndef BSISA_SUPPORT_STATS_HH
#define BSISA_SUPPORT_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace bsisa
{

/** A single named scalar statistic. */
struct Stat
{
    std::string name;
    std::string desc;
    double value = 0.0;
};

/**
 * A flat collection of named statistics.
 *
 * Components add counters during simulation; the registry supports
 * lookups for tests and a formatted dump for reports.
 */
class StatSet
{
  public:
    /** Add (or overwrite) a statistic. */
    void set(const std::string &name, double value,
             const std::string &desc = "");

    /** Add to a statistic, creating it at zero if missing. */
    void add(const std::string &name, double delta);

    /** Value lookup; fatal if the statistic does not exist. */
    double get(const std::string &name) const;

    /** True iff the statistic exists. */
    bool has(const std::string &name) const;

    /** Render all statistics as "name value  # desc" lines. */
    void dump(std::ostream &os) const;

    /** All statistics in insertion order. */
    const std::vector<Stat> &all() const { return stats; }

  private:
    std::vector<Stat> stats;

    Stat *find(const std::string &name);
    const Stat *find(const std::string &name) const;
};

} // namespace bsisa

#endif // BSISA_SUPPORT_STATS_HH
